//! Multi-hop chain regressions at the workspace level: the §IV-B chaining
//! note ("may lead to exploitable attacks when chained with other HTTP
//! implementations") exercised end to end, including the response path.

use hdiff::servers::{product, run_multihop, ProductId};
use hdiff::wire::{Method, Request, Version};

#[test]
fn hot_ambiguity_survives_any_all_transparent_chain() {
    let mut req = Request::builder();
    req.method(Method::Get).target("/").version(Version::Http11).header("Host", "h1.com@h2.com");
    let bytes = req.build().to_bytes();

    // Every ordering of the transparent proxies delivers the ambiguity.
    let transparent = [ProductId::Varnish, ProductId::Haproxy, ProductId::Nginx];
    for first in transparent {
        for second in transparent {
            if first == second {
                continue;
            }
            let r = run_multihop(
                &[product(first), product(second)],
                &product(ProductId::Weblogic),
                &bytes,
            );
            assert!(r.rejected_at.is_none(), "{first}->{second}");
            assert_eq!(
                r.origin_replies[0].interpretation.host.as_deref(),
                Some(&b"h2.com"[..]),
                "{first}->{second}: weblogic resolves the RFC host"
            );
            // Both fronts keep believing the transparent identity.
            for hop in &r.hops {
                assert_eq!(
                    hop.results[0].interpretation.host.as_deref(),
                    Some(&b"h1.com@h2.com"[..]),
                    "{first}->{second}: {}",
                    hop.name
                );
            }
        }
    }
}

#[test]
fn any_strict_hop_blocks_the_ambiguity() {
    let mut req = Request::builder();
    req.method(Method::Get).target("/").version(Version::Http11).header("Host", "h1.com@h2.com");
    let bytes = req.build().to_bytes();

    for strict_hop in [ProductId::Apache, ProductId::Squid] {
        let r = run_multihop(
            &[product(ProductId::Varnish), product(strict_hop)],
            &product(ProductId::Weblogic),
            &bytes,
        );
        assert_eq!(r.rejected_at, Some(1), "{strict_hop} must block");
    }
}

#[test]
fn rejection_at_every_hop_index_truncates_the_chain_there() {
    // An ambiguous host the transparent proxies forward but apache 400s:
    // placing apache at index i must reject at exactly i, leave the origin
    // unreached, and deliver no client response.
    let mut req = Request::builder();
    req.method(Method::Get).target("/").version(Version::Http11).header("Host", "h1.com@h2.com");
    let bytes = req.build().to_bytes();
    let transparent = [ProductId::Varnish, ProductId::Haproxy, ProductId::Nginx];

    for reject_at in 0..=transparent.len() {
        let mut chain: Vec<_> = transparent.iter().map(|p| product(*p)).collect();
        chain.insert(reject_at, product(ProductId::Apache));
        let r = run_multihop(&chain, &product(ProductId::Weblogic), &bytes);
        assert_eq!(r.rejected_at, Some(reject_at), "apache at index {reject_at}");
        assert_eq!(r.hops.len(), reject_at + 1, "processing stops at the rejecting hop");
        assert!(r.origin_replies.is_empty(), "origin is never reached");
        assert!(r.origin_bytes.is_empty());
        assert!(
            r.client_response.is_none(),
            "no origin reply means nothing to relay at index {reject_at}"
        );
        assert!(r.faults.is_empty(), "no fault session, no fault events");
    }
}

#[test]
fn empty_origin_replies_yield_no_client_response() {
    // A request the front itself rejects: zero forwarded bytes, zero
    // origin replies, and the relay path must cope with `None` instead of
    // inventing a response.
    let r = run_multihop(
        &[product(ProductId::Apache)],
        &product(ProductId::Iis),
        b"GET / HTTP/1.1\r\nBad Header\r\n\r\n",
    );
    assert_eq!(r.rejected_at, Some(0));
    assert!(r.origin_replies.is_empty());
    assert!(r.client_response.is_none());
    // The rejecting hop still recorded its own interpretation.
    assert_eq!(r.hops.len(), 1);
    assert!(!r.hops[0].results.is_empty());
}

#[test]
fn zero_proxy_chain_is_a_direct_origin_round_trip() {
    let r = run_multihop(&[], &product(ProductId::Tomcat), &Request::get("h.com").to_bytes());
    assert!(r.hops.is_empty());
    assert_eq!(r.rejected_at, None);
    assert_eq!(r.origin_replies.len(), 1);
    let resp = r.client_response.expect("origin reply relays through zero hops untouched");
    assert_eq!(resp.status.as_u16(), 200);
}

#[test]
fn round_trip_response_reaches_the_client_with_all_vias() {
    let r = run_multihop(
        &[product(ProductId::Squid), product(ProductId::Ats)],
        &product(ProductId::Iis),
        &Request::get("h1.com").to_bytes(),
    );
    let resp = r.client_response.expect("round trip");
    assert_eq!(resp.status.as_u16(), 200);
    let via_count = resp.headers.count(b"Via");
    assert!(via_count >= 2, "expected a Via per hop, got {via_count}");
}

#[test]
fn chained_version_repair_is_visible_at_every_stage() {
    // nginx repairs the invalid token; the repaired four-token line is
    // itself malformed, so a strict second hop 400s it — the error a
    // caching front would poison itself with.
    let mut req = Request::get("victim.com");
    req.set_version(b"1.1/HTTP");
    let r = run_multihop(
        &[product(ProductId::Nginx), product(ProductId::Apache)],
        &product(ProductId::Tomcat),
        &req.to_bytes(),
    );
    assert_eq!(r.rejected_at, Some(1), "apache rejects the repaired line");

    // Without the strict hop, the repaired line reaches tomcat and fails
    // there instead.
    let r2 =
        run_multihop(&[product(ProductId::Nginx)], &product(ProductId::Tomcat), &req.to_bytes());
    assert!(r2.rejected_at.is_none());
    assert_eq!(r2.origin_replies[0].response.status.as_u16(), 400);
    assert_eq!(r2.client_response.unwrap().status.as_u16(), 400);
}
