//! Rendering regression over a real pipeline run: every report the
//! harness binaries print must render, contain its key rows, and the CSV
//! must stay machine-parseable.

use hdiff::report;
use hdiff::{HDiff, HdiffConfig};

#[test]
fn all_reports_render_from_one_run() {
    let r = HDiff::new(HdiffConfig::quick()).run();

    let stats = report::render_stats(&r);
    for needle in ["specification requirements", "ABNF grammar rules", "SR-translated"] {
        assert!(stats.contains(needle), "{needle} missing from stats");
    }

    let t1 = report::render_table1(&r.summary);
    for product in [
        "iis", "tomcat", "weblogic", "lighttpd", "apache", "nginx", "varnish", "squid", "haproxy",
        "ats",
    ] {
        assert!(t1.contains(product), "{product} missing from table1");
    }

    let t2 = report::render_table2(&r.summary);
    assert_eq!(t2.matches('\n').count(), 2 + 14 + 1, "14 vector rows expected:\n{t2}");

    let f7 = report::render_figure7(&r.summary);
    assert!(f7.contains("[HRS]") && f7.contains("[HoT]") && f7.contains("[CPDoS]"));

    let exploits = report::render_exploits(&r, 5);
    assert!(exploits.contains("payload"), "{exploits}");
    assert!(exploits.contains("evidence"));

    let csv = report::render_findings_csv(&r.summary);
    let mut lines = csv.lines();
    assert_eq!(lines.next(), Some("class,uuid,origin,front,back,culprits,evidence"));
    let body: Vec<&str> = lines.collect();
    assert_eq!(body.len(), r.summary.findings.len());
    // Every row has at least 7 columns (commas inside quoted cells are
    // escaped, so a simple quote-aware count suffices).
    for row in body.iter().take(50) {
        let mut in_quotes = false;
        let commas = row
            .chars()
            .filter(|&c| {
                if c == '"' {
                    in_quotes = !in_quotes;
                }
                c == ',' && !in_quotes
            })
            .count();
        assert_eq!(commas, 6, "bad CSV row: {row}");
    }
}

#[test]
fn exploit_writeups_reference_real_cases() {
    let r = HDiff::new(HdiffConfig::quick()).run();
    for finding in r.summary.findings.iter().take(25) {
        assert!(r.case(finding.uuid).is_some(), "finding #{} has no backing case", finding.uuid);
    }
}
