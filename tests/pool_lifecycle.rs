//! Keep-alive pool lifecycle gate.
//!
//! Both keep-alive pools — the blocking [`hdiff::net::ConnPool`] behind
//! `hdiff probe` and the reactor's warm pool behind `--transport
//! tcp-async` — share one contract: a request claims an idle connection
//! (hit) or opens one (miss), a connection the server closed in the
//! meantime is evicted and the request retried exactly once, and the
//! counters obey `hits + misses == requests + retries` no matter how
//! many threads run their own pools. This gate pins each clause.

use hdiff::net::{AsyncTestbed, ConnPool, NetServer, NetServerConfig, SendMode, IO_TIMEOUT_ENV};
use hdiff::servers::ParserProfile;

const REQ: &[u8] = b"GET / HTTP/1.1\r\nHost: h\r\n\r\n";

/// Shortens the shared socket timeout (unless the caller already chose
/// one) so the idle-eviction test can wait out a server-side close
/// without half-second defaults. Must run before the first socket is
/// opened because [`hdiff::net::io_timeout`] caches on first use, so
/// every test here calls it first thing.
fn pin_timeouts() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        if std::env::var(IO_TIMEOUT_ENV).is_err() {
            std::env::set_var(IO_TIMEOUT_ENV, "250");
        }
        assert!(hdiff::net::io_timeout() >= std::time::Duration::from_millis(1));
    });
}

#[test]
fn pooled_connection_is_reused_across_cases() {
    pin_timeouts();
    let server =
        NetServer::spawn(ParserProfile::strict("wire"), NetServerConfig::default()).unwrap();
    let mut pool = ConnPool::new(server.addr(), 2);
    for _ in 0..4 {
        let reply = pool.request(REQ).unwrap();
        assert_eq!(reply.status.as_u16(), 200);
    }
    pool.close();
    let stats = pool.stats();
    assert_eq!(stats.misses, 1, "{stats:?}");
    assert_eq!(stats.hits, 3, "{stats:?}");
    assert_eq!(stats.evictions, 0, "{stats:?}");
    let logs = server.take_logs();
    assert_eq!(logs.len(), 1, "all four cases rode one connection: {logs:?}");
    assert_eq!(logs[0].replies.len(), 4);
}

#[test]
fn server_initiated_close_evicts_and_retries_once() {
    pin_timeouts();
    // The server hangs up every connection after two replies, so every
    // third request lands on a stale pooled connection mid-sweep.
    let config = NetServerConfig { max_messages: 2, ..NetServerConfig::default() };
    let server = NetServer::spawn(ParserProfile::strict("wire"), config).unwrap();
    let mut pool = ConnPool::new(server.addr(), 2);
    for _ in 0..5 {
        let reply = pool.request(REQ).unwrap();
        assert_eq!(reply.status.as_u16(), 200, "retry-once must hide the stale connection");
    }
    let stats = pool.stats();
    assert_eq!(stats.evictions, 2, "{stats:?}");
    assert_eq!(stats.hits, 4, "{stats:?}");
    assert_eq!(stats.misses, 3, "{stats:?}");
    assert_eq!(
        stats.hits + stats.misses,
        5 + stats.evictions,
        "claims must equal requests plus retries: {stats:?}"
    );
}

#[test]
fn stale_retry_counters_reach_campaign_telemetry() {
    pin_timeouts();
    // A one-message server makes the reuse on request 2 deterministically
    // stale: claim (hit) → EOF with nothing → evict → fresh retry (miss).
    let config = NetServerConfig { max_messages: 1, ..NetServerConfig::default() };
    let server = NetServer::spawn(ParserProfile::strict("wire"), config).unwrap();
    let ((), tel) = hdiff::obs::with_case(7, || {
        let mut pool = ConnPool::new(server.addr(), 2);
        for _ in 0..2 {
            let reply = pool.request(REQ).unwrap();
            assert_eq!(reply.status.as_u16(), 200);
        }
        let stats = pool.stats();
        assert_eq!((stats.hits, stats.misses, stats.evictions), (1, 2, 1), "{stats:?}");
    });
    assert_eq!(tel.counters.get("net.pool.hit"), Some(&1), "{:?}", tel.counters);
    assert_eq!(tel.counters.get("net.pool.miss"), Some(&2), "{:?}", tel.counters);
    assert_eq!(tel.counters.get("net.pool.evict"), Some(&1), "{:?}", tel.counters);
    assert_eq!(tel.counters.get("net.conn.open"), Some(&2), "{:?}", tel.counters);
}

#[test]
fn async_warm_pool_evicts_idle_connections_the_server_closed() {
    pin_timeouts();
    let testbed = AsyncTestbed::new(&[ParserProfile::strict("wire")], &[]).unwrap();
    let listener = testbed.backends()[0].clone();
    let first = testbed.exchange(&listener, REQ, SendMode::Whole);
    assert!(first.error.is_none(), "{first:?}");
    // Wait out the origin's read timeout: the server tears the parked
    // warm connections down, and the reactor must notice the close and
    // evict them rather than hand a dead socket to the next case.
    std::thread::sleep(hdiff::net::io_timeout() + std::time::Duration::from_millis(300));
    let second = testbed.exchange(&listener, REQ, SendMode::Whole);
    assert!(second.error.is_none(), "{second:?}");
    assert!(second.server_log.is_some(), "post-eviction case still pairs its log");
    let stats = testbed.stats();
    assert!(stats.pool_evictions >= 1, "{stats:?}");
}

#[test]
fn pool_counters_are_thread_count_invariant() {
    pin_timeouts();
    const REQUESTS_PER_THREAD: u64 = 6;
    // Two-message connections force retries so the invariant is checked
    // with a nonzero eviction term, not just hits + misses == requests.
    let config = NetServerConfig { max_messages: 2, ..NetServerConfig::default() };
    let server = NetServer::spawn(ParserProfile::strict("wire"), config).unwrap();
    let addr = server.addr();

    let sweep = |threads: usize| -> (u64, u64) {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                std::thread::spawn(move || {
                    let mut pool = ConnPool::new(addr, 2);
                    for _ in 0..REQUESTS_PER_THREAD {
                        let reply = pool.request(REQ).unwrap();
                        assert_eq!(reply.status.as_u16(), 200);
                    }
                    pool.stats()
                })
            })
            .collect();
        let mut claims = 0;
        let mut evictions = 0;
        for handle in handles {
            let stats = handle.join().unwrap();
            assert_eq!(
                stats.hits + stats.misses,
                REQUESTS_PER_THREAD + stats.evictions,
                "per-pool invariant: {stats:?}"
            );
            claims += stats.hits + stats.misses;
            evictions += stats.evictions;
        }
        (claims, evictions)
    };

    for threads in [1usize, 4] {
        let (claims, evictions) = sweep(threads);
        assert_eq!(
            claims,
            threads as u64 * REQUESTS_PER_THREAD + evictions,
            "claims must track requests + retries at {threads} threads"
        );
    }
}
