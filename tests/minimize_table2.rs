//! Minimizer acceptance over the Table II catalog.
//!
//! Every catalog vector, padded with campaign-style noise headers, must
//! shrink to at most half its padded size while the same detector keeps
//! firing on the same profile pair — and the minimized bytes must be
//! identical whether the finding came from a single-threaded or a
//! multi-threaded campaign.

use hdiff::diff::{DiffEngine, Finding, FindingContext, MinimizeOptions, Workflow};
use hdiff::gen::{catalog, Origin, TestCase};

/// Campaign-style padding: inert noise headers inserted before the blank
/// line, tripling the request size.
fn pad_with_noise(bytes: &[u8]) -> Vec<u8> {
    let Some(head_end) = bytes.windows(4).position(|w| w == b"\r\n\r\n") else {
        return bytes.to_vec();
    };
    let mut out = bytes[..head_end + 2].to_vec();
    let mut i = 0usize;
    while out.len() + (bytes.len() - head_end - 2) < bytes.len() * 3 {
        out.extend_from_slice(format!("X-Pad-{i}: {:a>40}\r\n", "").as_bytes());
        i += 1;
    }
    out.extend_from_slice(&bytes[head_end + 2..]);
    out
}

fn pick<'a>(findings: &'a [Finding], entry: &catalog::CatalogEntry) -> Option<&'a Finding> {
    let of_class = |f: &&Finding| entry.classes.contains(&f.class);
    findings
        .iter()
        .filter(of_class)
        .find(|f| f.is_pair())
        .or_else(|| findings.iter().find(of_class))
}

#[test]
fn every_catalog_vector_minimizes_to_half_or_less() {
    let workflow = Workflow::standard();
    let profiles = hdiff::servers::products();
    let ctx = FindingContext::new(&workflow, &profiles);
    let opts = MinimizeOptions::default();
    for (idx, entry) in catalog::catalog().iter().enumerate() {
        let uuid = 100 + idx as u64;
        let origin = format!("catalog:{}", entry.id);
        // First payload of the entry that flags a finding of its class.
        let seed = entry.requests.iter().find_map(|(req, _)| {
            let padded = pad_with_noise(&req.to_bytes());
            let findings = ctx.findings_for(uuid, &origin, &padded);
            pick(&findings, entry).cloned().map(|f| (padded, f))
        });
        let Some((padded, finding)) = seed else {
            panic!("{}: no payload flags any of {:?}", entry.id, entry.classes);
        };
        let out = ctx.minimize_finding(&finding, &padded, &opts);
        assert!(
            out.bytes.len() * 2 <= padded.len(),
            "{}: {} -> {} bytes (ratio {:.2})",
            entry.id,
            padded.len(),
            out.bytes.len(),
            out.stats.shrink_ratio()
        );
        // The minimized case still trips the same detector on the same
        // profile pair.
        let again = ctx.findings_for(uuid, &origin, &out.bytes);
        assert!(
            again.iter().any(|f| f.class == finding.class
                && f.front == finding.front
                && f.back == finding.back),
            "{}: minimized case no longer flags {}",
            entry.id,
            finding
        );
    }
}

#[test]
fn minimization_is_identical_across_thread_counts() {
    let cases: Vec<TestCase> = {
        let mut out = Vec::new();
        let mut uuid = 1u64;
        for entry in catalog::catalog() {
            for (req, note) in &entry.requests {
                out.push(TestCase {
                    uuid,
                    request: req.clone(),
                    assertions: Vec::new(),
                    origin: Origin::Catalog(entry.id.to_string()),
                    note: note.clone(),
                });
                uuid += 1;
            }
        }
        out
    };
    let mut one = DiffEngine::standard();
    one.threads = 1;
    let mut four = DiffEngine::standard();
    four.threads = 4;
    let s1 = one.run(&cases);
    let s4 = four.run(&cases);
    assert_eq!(s1, s4, "campaign summaries must not depend on the thread count");

    // Minimize the same finding as reported by each run; the minimized
    // bytes must agree exactly.
    let workflow = Workflow::standard();
    let profiles = hdiff::servers::products();
    let ctx = FindingContext::new(&workflow, &profiles);
    let opts = MinimizeOptions::default();
    let survives_padding = |f: &&Finding| {
        let case = cases.iter().find(|c| c.uuid == f.uuid).unwrap();
        let padded = pad_with_noise(&case.request.to_bytes());
        ctx.findings_for(f.uuid, &f.origin, &padded)
            .iter()
            .any(|g| g.class == f.class && g.front == f.front && g.back == f.back)
    };
    let f1 = s1
        .findings
        .iter()
        .filter(|f| f.is_pair())
        .find(survives_padding)
        .expect("catalog run flags pair findings that survive noise padding");
    let f4 = s4.findings.iter().find(|f| *f == f1).unwrap();
    let case = cases.iter().find(|c| c.uuid == f1.uuid).unwrap();
    let padded = pad_with_noise(&case.request.to_bytes());
    let a = ctx.minimize_finding(f1, &padded, &opts);
    let b = ctx.minimize_finding(f4, &padded, &opts);
    assert_eq!(a, b, "minimization must be deterministic across thread counts");
    assert!(a.bytes.len() < padded.len());
}
