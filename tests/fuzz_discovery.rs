//! Acceptance gates for the fuzzing loop: a seeded session rediscovers
//! the paper's three Table II divergence classes (HRS, HoT, CPDoS) from
//! non-catalog inputs, and every auto-promoted bundle replays PASS —
//! with identical findings — on both the simulated and the async wire
//! transport.

use hdiff::diff::Transport;
use hdiff::fuzz::{FuzzBudget, FuzzEngine, FuzzOptions};

fn session(iters: u64) -> hdiff::fuzz::FuzzReport {
    FuzzEngine::standard(FuzzOptions {
        seed: 0x4d1f,
        budget: FuzzBudget::Iters(iters),
        threads: 2,
        ..FuzzOptions::default()
    })
    .run()
}

#[test]
fn seeded_session_rediscovers_all_three_attack_classes() {
    let r = session(400);
    for class in ["HRS|", "HoT|", "CPDoS|"] {
        assert!(
            r.divergence_classes.iter().any(|c| c.starts_with(class)),
            "no {class} divergence in {:?}",
            r.divergence_classes
        );
    }
    assert!(
        r.promoted.len() >= 3,
        "expected at least one promotion per class, got {:?}",
        r.promoted_names()
    );
    // Non-catalog by construction: every fuzz case carries a fuzz:…
    // origin, and the promoted bundles inherit it.
    for p in &r.promoted {
        assert!(
            p.bundle.origin.starts_with("fuzz:"),
            "catalog-origin promotion {:?}",
            p.bundle.origin
        );
    }
}

#[test]
fn promoted_bundles_replay_pass_on_sim_and_tcp_async() {
    let r = session(300);
    assert!(!r.promoted.is_empty(), "session promoted nothing");
    let workflow = hdiff::diff::Workflow::standard();
    let profiles = hdiff::servers::products();
    for p in &r.promoted {
        let sim = p.bundle.replay(&workflow, &profiles, None);
        assert!(
            sim.passed(),
            "{} drifts on sim: missing {:?} unexpected {:?} drifted {:?}",
            p.name,
            sim.missing,
            sim.unexpected,
            sim.drifted
        );

        // The same bundle — the same recorded findings and digests —
        // must reproduce over real multiplexed sockets: replay PASS here
        // means the wire run re-detected *identical* findings.
        let mut wire = p.bundle.clone();
        wire.transport = Transport::TcpAsync;
        let async_report = wire.replay(&workflow, &profiles, None);
        assert!(
            async_report.passed(),
            "{} drifts on tcp-async: missing {:?} unexpected {:?} drifted {:?}",
            p.name,
            async_report.missing,
            async_report.unexpected,
            async_report.drifted
        );
    }
}

#[test]
fn promote_dir_bundles_reload_and_replay() {
    let dir = std::env::temp_dir().join(format!("hdiff-fuzz-promote-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let r = FuzzEngine::standard(FuzzOptions {
        seed: 0x4d1f,
        budget: FuzzBudget::Iters(300),
        threads: 2,
        promote_dir: Some(dir.clone()),
        ..FuzzOptions::default()
    })
    .run();
    assert!(!r.promoted.is_empty());
    let workflow = hdiff::diff::Workflow::standard();
    let profiles = hdiff::servers::products();
    let mut replayed = 0;
    for entry in std::fs::read_dir(&dir).expect("promote dir exists") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_some_and(|e| e == "json") {
            let bundle = hdiff::diff::ReplayBundle::load(&path).expect("bundle loads");
            assert!(bundle.replay(&workflow, &profiles, None).passed(), "{path:?} drifts");
            replayed += 1;
            // Its stream sidecar reloads too.
            let sidecar = path.with_extension("stream");
            let json = std::fs::read(&sidecar).expect("stream sidecar exists");
            let stream = hdiff::fuzz::Stream::from_json(&json).expect("sidecar parses");
            assert_eq!(stream.effective_bytes(), bundle.request, "sidecar/bundle bytes diverge");
        }
    }
    assert_eq!(replayed, r.promoted.len());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn seed_corpus_reloads_promoted_artifacts_and_stays_deterministic() {
    let dir = std::env::temp_dir().join(format!("hdiff-fuzz-corpus-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let producer = FuzzEngine::standard(FuzzOptions {
        seed: 0x4d1f,
        budget: FuzzBudget::Iters(300),
        threads: 2,
        promote_dir: Some(dir.clone()),
        ..FuzzOptions::default()
    })
    .run();
    assert!(!producer.promoted.is_empty(), "producer session promoted nothing");

    // A corpus-seeded session executes the promoted streams first, so a
    // budget far too small for cold discovery still reproduces known
    // divergence classes — that is the point of the flag.
    let seeded = |threads: usize| {
        FuzzEngine::standard(FuzzOptions {
            seed: 0x5eed,
            budget: FuzzBudget::Iters(40),
            threads,
            seed_corpus: Some(dir.clone()),
            ..FuzzOptions::default()
        })
        .run()
    };
    let a = seeded(1);
    let b = seeded(4);
    assert_eq!(
        a.telemetry.counters.get("fuzz.seed-corpus.loaded"),
        Some(&(producer.promoted.len() as u64)),
        "every promoted stream sidecar loads exactly once (bundles with sidecars are skipped)"
    );
    assert!(
        !a.divergence_classes.is_empty(),
        "corpus-seeded session reproduced no divergence in 40 iterations"
    );
    assert_eq!(a.corpus_digests, b.corpus_digests, "corpus loading is thread-invariant");
    assert_eq!(a.divergence_classes, b.divergence_classes);
    let _ = std::fs::remove_dir_all(&dir);
}
