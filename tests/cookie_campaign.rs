//! End-to-end gate for the cookie workload behind the protocol-generic
//! campaign core: same seed corpus ⇒ identical findings regardless of
//! worker count, promoted bundles are protocol-keyed and re-verify via
//! `replay_protocol`, and a misrouted classic replay fails loudly
//! instead of silently mis-executing.

use hdiff::cookie::CookieProtocol;
use hdiff::diff::{
    run_protocol_campaign, Protocol, ProtocolCampaignOptions, ReplayBundle, Workflow,
};

#[test]
fn cookie_campaign_is_deterministic_across_thread_counts() {
    let p = CookieProtocol::standard();
    let base = run_protocol_campaign(&p, &ProtocolCampaignOptions::default()).unwrap();
    assert!(base.classes.len() >= 3, "want ≥3 divergence classes, got {:?}", base.classes);
    for threads in [1, 2, 8] {
        let run = run_protocol_campaign(
            &p,
            &ProtocolCampaignOptions { threads, ..ProtocolCampaignOptions::default() },
        )
        .unwrap();
        assert_eq!(run.cases, base.cases, "threads={threads}");
        assert_eq!(run.findings, base.findings, "threads={threads}");
        assert_eq!(run.classes, base.classes, "threads={threads}");
    }
}

#[test]
fn promoted_cookie_bundles_replay_and_refuse_the_classic_path() {
    let dir = std::env::temp_dir().join(format!("hdiff-cookie-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let p = CookieProtocol::standard();
    let summary = run_protocol_campaign(
        &p,
        &ProtocolCampaignOptions { threads: 0, promote_dir: Some(dir.clone()) },
    )
    .unwrap();
    assert!(summary.promoted.len() >= 3, "{:?}", summary.promoted);

    let workflow = Workflow::standard();
    let profiles = hdiff::servers::products();
    for path in &summary.promoted {
        let bundle = ReplayBundle::load(path).unwrap();
        assert_eq!(bundle.protocol.as_deref(), Some(p.name()));

        // Routed correctly, the minimized case still reproduces.
        let report = bundle.replay_protocol(&p);
        assert!(report.passed(), "{}: {}", path.display(), report.summary());

        // Routed down the classic HTTP path, the guard fails the replay
        // with an explicit unrouted marker.
        let misrouted = bundle.replay(&workflow, &profiles, None);
        assert!(!misrouted.passed(), "{}", path.display());
        assert!(
            misrouted.drifted.iter().any(|d| d == "protocol:cookie:unrouted"),
            "{:?}",
            misrouted.drifted
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
