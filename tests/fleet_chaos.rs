//! Fleet-fabric acceptance: the sharded multi-process campaign must
//! converge to the *identical* summary the single-process run produces —
//! under a hostile kill schedule (every worker SIGKILLed at least once),
//! with a hung worker the watchdog has to reap, and with a torn
//! checkpoint left over from a previous incarnation.

use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Duration;

use hdiff::fleet::{run_fleet, FleetConfig};
use hdiff::{HDiff, HdiffConfig};

/// The fleet tests spawn real worker processes and the watchdog test
/// asserts on wall-clock silence; running them concurrently makes both
/// flaky under load. One at a time.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Catalog-only corpus (the full Table II inventory): small enough that
/// a worker incarnation is cheap, rich enough that the merged summary
/// carries findings of every class.
fn catalog_config() -> HdiffConfig {
    let mut c = HdiffConfig::quick();
    c.sr_variants = 0;
    c.abnf_seeds = 0;
    c.mutants_per_seed = 0;
    c.threads = 2;
    c.checkpoint_every = 2;
    c
}

fn fleet_config(shards: u32, tag: &str) -> FleetConfig {
    let dir = std::env::temp_dir().join(format!("hdiff-fleet-test-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let mut f = FleetConfig::new(shards, dir);
    f.worker_exe = PathBuf::from(env!("CARGO_BIN_EXE_hdiff"));
    f.poll_interval = Duration::from_millis(20);
    f.backoff_base = Duration::from_millis(10);
    f
}

#[test]
fn chaos_campaign_converges_to_the_single_process_summary() {
    let _guard = serial();
    let config = catalog_config();
    let single = HDiff::new(config.clone()).run();

    // Rate 100: *every* incarnation that can still be killed (one more
    // checkpoint interval fits before the shard end) is killed.
    let mut fleet = fleet_config(4, "chaos");
    fleet.chaos_rate = 100;
    let merged = run_fleet(&config, &fleet).expect("fleet campaign");

    assert!(
        merged.summary.shard_errors.is_empty(),
        "chaos kills must not exhaust any respawn budget: {:?}",
        merged.summary.shard_errors
    );
    let topo = &merged.summary.topology;
    assert_eq!(topo.shards, 4);
    for (i, s) in topo.stats.iter().enumerate() {
        assert!(s.chaos_kills >= 1, "shard {i} was never killed: {s:?}");
        assert!(s.respawns >= 1, "shard {i} was never respawned: {s:?}");
        assert!(s.generation >= 1, "shard {i} never checkpointed: {s:?}");
    }
    assert_eq!(
        merged.summary, single.summary,
        "merged summary must be identical to the single-process run"
    );
    assert_eq!(
        merged.summary.telemetry.merged.shape_digest(),
        single.summary.telemetry.merged.shape_digest(),
        "merged telemetry shape must match the single-process run"
    );
    assert_eq!(merged.summary.cases, merged.total_cases(), "no case may be lost in the merge");
}

#[test]
fn stalled_worker_is_watchdogged_and_redispatched() {
    let _guard = serial();
    let config = catalog_config();
    let single = HDiff::new(config.clone()).run();

    // Shard 0's first incarnation hangs after one liveness tick; the
    // watchdog must declare it dead on silence (the process never exits
    // on its own) and the respawn must finish the shard.
    let mut fleet = fleet_config(2, "stall");
    fleet.stall_shard = Some((0, 0));
    fleet.heartbeat_timeout = Duration::from_millis(1500);
    let merged = run_fleet(&config, &fleet).expect("fleet campaign");

    let topo = &merged.summary.topology;
    assert_eq!(topo.stats[0].watchdog_kills, 1, "{:?}", topo.stats);
    assert!(topo.stats[0].respawns >= 1, "{:?}", topo.stats);
    assert_eq!(topo.stats[1].watchdog_kills, 0, "healthy shard reaped: {:?}", topo.stats);
    assert!(merged.summary.shard_errors.is_empty(), "{:?}", merged.summary.shard_errors);
    assert_eq!(merged.summary, single.summary);
}

#[test]
fn torn_checkpoint_falls_back_to_a_clean_shard_restart() {
    let _guard = serial();
    let config = catalog_config();
    let single = HDiff::new(config.clone()).run();

    // A checkpoint truncated mid-record (as if a worker died mid-write
    // on a filesystem without the atomic-rename guarantee): the worker
    // must discard it and restart the shard clean, not crash or resume
    // from garbage.
    let fleet = fleet_config(2, "torn");
    std::fs::create_dir_all(&fleet.dir).unwrap();
    std::fs::write(
        fleet.dir.join("shard-0.json"),
        b"{\"version\":1,\"generation\":3,\"completed\":[{\"uu",
    )
    .unwrap();
    let merged = run_fleet(&config, &fleet).expect("fleet campaign");

    assert!(merged.summary.shard_errors.is_empty(), "{:?}", merged.summary.shard_errors);
    assert_eq!(merged.summary, single.summary);
}
