//! The paper's single-implementation claim: unlike plain differential
//! testing (which needs two implementations to see a discrepancy), HDiff
//! checks one implementation against SR assertions extracted from the RFC.

use hdiff::diff::srcheck::check_assertions;
use hdiff::gen::{AbnfGenerator, GenOptions, SrTranslator};
use hdiff::servers::{product, ProductId};

#[test]
fn a_single_implementation_can_be_tested_against_the_spec() {
    let analysis = hdiff::analyzer::DocumentAnalyzer::with_default_inputs()
        .analyze(&hdiff::corpus::core_documents());
    let gen = AbnfGenerator::new(analysis.grammar.clone(), GenOptions::default());
    let mut translator = SrTranslator::new(gen);
    let cases = translator.translate_all(&analysis.requirements);
    assert!(!cases.is_empty());

    // IIS alone — no second implementation — is caught violating the
    // whitespace-before-colon MUST.
    let iis = product(ProductId::Iis);
    let mut iis_mandatory = 0usize;
    for case in &cases {
        iis_mandatory += check_assertions(&iis, case).iter().filter(|v| v.is_mandatory()).count();
    }
    assert!(iis_mandatory > 0, "IIS must violate at least one MUST-level SR");

    // The violations name the SR, so the root cause is known without any
    // cross-implementation comparison.
    let violation = cases
        .iter()
        .flat_map(|c| check_assertions(&iis, c))
        .find(|v| v.is_mandatory())
        .expect("checked above");
    assert!(violation.sr_id.starts_with("rfc"), "{violation:?}");
    assert!(!violation.expected.is_empty());
}

#[test]
fn products_differ_in_conformance_level() {
    let analysis = hdiff::analyzer::DocumentAnalyzer::with_default_inputs()
        .analyze(&hdiff::corpus::core_documents());
    let gen = AbnfGenerator::new(analysis.grammar.clone(), GenOptions::default());
    let mut translator = SrTranslator::new(gen);
    let cases = translator.translate_all(&analysis.requirements);

    let count = |id: ProductId| {
        let p = product(id);
        cases.iter().flat_map(|c| check_assertions(&p, c)).filter(|v| v.is_mandatory()).count()
    };
    // Weblogic (the most lenient model) must violate strictly more MUSTs
    // than Tomcat (a mostly-strict server).
    assert!(
        count(ProductId::Weblogic) > count(ProductId::Tomcat),
        "weblogic {} vs tomcat {}",
        count(ProductId::Weblogic),
        count(ProductId::Tomcat)
    );
}
