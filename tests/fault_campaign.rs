//! Fault-injection campaign acceptance: a corpus run against an
//! environment containing an always-panicking profile, under a 20% fault
//! plan, must run to completion — quarantining the panicking cases,
//! retrying transient faults, reporting typed errors — and a campaign
//! killed at a checkpoint must resume to the identical summary.

use std::sync::Once;

use hdiff::diff::DiffEngine;
use hdiff::gen::{catalog, Origin, TestCase};
use hdiff::servers::fault::FaultPlan;
use hdiff::servers::ParserProfile;

/// Silences the panic hook for the *injected* parser panics only: the
/// campaign triggers hundreds of them deliberately and the spew would
/// drown the test output. Genuine panics (failed assertions included)
/// still reach the default hook; `catch_unwind` observes every payload
/// either way.
fn quiet_panics() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|m| m.contains("injected parser panic"));
            if !injected {
                default_hook(info);
            }
        }));
    });
}

fn catalog_cases() -> Vec<TestCase> {
    let mut out = Vec::new();
    let mut uuid = 1u64;
    for entry in catalog::catalog() {
        for (req, note) in &entry.requests {
            out.push(TestCase {
                uuid,
                request: req.clone(),
                assertions: Vec::new(),
                origin: Origin::Catalog(entry.id.to_string()),
                note: note.clone(),
            });
            uuid += 1;
        }
    }
    out
}

/// The standard environment plus one back-end whose parser panics on
/// every input — the crash-prone implementation the runner must survive.
fn hostile_engine(seed: u64) -> DiffEngine {
    let mut crasher = ParserProfile::strict("crashd");
    crasher.always_panic = true;
    let mut backends = hdiff::servers::backends();
    backends.push(crasher);
    let mut engine = DiffEngine::new(hdiff::servers::proxies(), backends);
    engine.fault_plan = FaultPlan::new(seed, 20);
    engine
}

#[test]
fn campaign_with_panicking_profile_completes_with_quarantine_and_retries() {
    quiet_panics();
    let cases = catalog_cases();
    let engine = hostile_engine(0xca);
    let summary = engine.run(&cases);

    assert_eq!(summary.cases, cases.len(), "every case is accounted for");
    assert!(!summary.quarantined.is_empty(), "panicking cases are quarantined");
    assert!(summary.errors > 0, "panics and persistent faults surface as typed errors");
    assert!(summary.retries > 0, "transient origin faults are retried");
    // Quarantined uuids are real corpus members, recorded in order.
    for w in summary.quarantined.windows(2) {
        assert!(w[0] < w[1]);
    }
    for uuid in &summary.quarantined {
        assert!(cases.iter().any(|c| c.uuid == *uuid));
    }
}

#[test]
fn killed_campaign_resumes_to_the_identical_summary() {
    quiet_panics();
    let cases = catalog_cases();
    let dir = std::env::temp_dir().join("hdiff-fault-campaign");
    std::fs::create_dir_all(&dir).unwrap();
    let ckpt = dir.join("resume.json");
    std::fs::remove_file(&ckpt).ok();

    // The reference: one uninterrupted run.
    let uninterrupted = hostile_engine(0xca).run(&cases);

    // The drill: die after the first checkpoint interval…
    let mut killed = hostile_engine(0xca);
    killed.checkpoint_every = 5;
    killed.stop_after_chunks = Some(1);
    let partial = killed.run_with_checkpoint(&cases, &ckpt).unwrap();
    assert!(partial.cases < cases.len(), "the kill left work undone");
    assert!(ckpt.exists(), "progress was persisted before the kill");

    // …then restart and converge.
    let mut resumed_engine = hostile_engine(0xca);
    resumed_engine.checkpoint_every = 5;
    let resumed = resumed_engine.run_with_checkpoint(&cases, &ckpt).unwrap();
    assert_eq!(resumed, uninterrupted, "resume converges to the uninterrupted summary");

    std::fs::remove_file(&ckpt).ok();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fault_free_run_matches_between_plain_and_checkpointed_execution() {
    let cases = catalog_cases();
    let dir = std::env::temp_dir().join("hdiff-fault-campaign-clean");
    std::fs::create_dir_all(&dir).unwrap();
    let ckpt = dir.join("clean.json");
    std::fs::remove_file(&ckpt).ok();

    let engine = DiffEngine::standard();
    let plain = engine.run(&cases);
    let checkpointed = engine.run_with_checkpoint(&cases, &ckpt).unwrap();
    assert_eq!(plain, checkpointed);
    assert_eq!(plain.errors, 0);
    assert!(plain.quarantined.is_empty());

    std::fs::remove_file(&ckpt).ok();
    std::fs::remove_dir_all(&dir).ok();
}
