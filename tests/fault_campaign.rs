//! Fault-injection campaign acceptance: a corpus run against an
//! environment containing an always-panicking profile, under a 20% fault
//! plan, must run to completion — quarantining the panicking cases,
//! retrying transient faults, reporting typed errors — and a campaign
//! killed at a checkpoint must resume to the identical summary.

use std::sync::Once;

use hdiff::diff::{DiffEngine, FindingContext, MinimizeOptions, Workflow};
use hdiff::gen::{catalog, Origin, TestCase};
use hdiff::servers::fault::{FaultInjector, FaultKind, FaultPlan, FaultSession, FaultStage};
use hdiff::servers::{ParserProfile, ORIGIN_HOP};

/// Silences the panic hook for the *injected* parser panics only: the
/// campaign triggers hundreds of them deliberately and the spew would
/// drown the test output. Genuine panics (failed assertions included)
/// still reach the default hook; `catch_unwind` observes every payload
/// either way.
fn quiet_panics() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|m| m.contains("injected parser panic"));
            if !injected {
                default_hook(info);
            }
        }));
    });
}

fn catalog_cases() -> Vec<TestCase> {
    let mut out = Vec::new();
    let mut uuid = 1u64;
    for entry in catalog::catalog() {
        for (req, note) in &entry.requests {
            out.push(TestCase {
                uuid,
                request: req.clone(),
                assertions: Vec::new(),
                origin: Origin::Catalog(entry.id.to_string()),
                note: note.clone(),
            });
            uuid += 1;
        }
    }
    out
}

/// The standard environment plus one back-end whose parser panics on
/// every input — the crash-prone implementation the runner must survive.
fn hostile_engine(seed: u64) -> DiffEngine {
    let mut crasher = ParserProfile::strict("crashd");
    crasher.always_panic = true;
    let mut backends = hdiff::servers::backends();
    backends.push(crasher);
    let mut engine = DiffEngine::new(hdiff::servers::proxies(), backends);
    engine.fault_plan = FaultPlan::new(seed, 20);
    engine
}

#[test]
fn campaign_with_panicking_profile_completes_with_quarantine_and_retries() {
    quiet_panics();
    let cases = catalog_cases();
    let engine = hostile_engine(0xca);
    let summary = engine.run(&cases);

    assert_eq!(summary.cases, cases.len(), "every case is accounted for");
    assert!(!summary.quarantined.is_empty(), "panicking cases are quarantined");
    assert!(summary.errors > 0, "panics and persistent faults surface as typed errors");
    assert!(summary.retries > 0, "transient origin faults are retried");
    // Quarantined uuids are real corpus members, recorded in order.
    for w in summary.quarantined.windows(2) {
        assert!(w[0] < w[1]);
    }
    for uuid in &summary.quarantined {
        assert!(cases.iter().any(|c| c.uuid == *uuid));
    }
}

#[test]
fn killed_campaign_resumes_to_the_identical_summary() {
    quiet_panics();
    let cases = catalog_cases();
    let dir = std::env::temp_dir().join("hdiff-fault-campaign");
    std::fs::create_dir_all(&dir).unwrap();
    let ckpt = dir.join("resume.json");
    std::fs::remove_file(&ckpt).ok();

    // The reference: one uninterrupted run.
    let uninterrupted = hostile_engine(0xca).run(&cases);

    // The drill: die after the first checkpoint interval…
    let mut killed = hostile_engine(0xca);
    killed.checkpoint_every = 5;
    killed.stop_after_chunks = Some(1);
    let partial = killed.run_with_checkpoint(&cases, &ckpt).unwrap();
    assert!(partial.cases < cases.len(), "the kill left work undone");
    assert!(ckpt.exists(), "progress was persisted before the kill");

    // …then restart and converge.
    let mut resumed_engine = hostile_engine(0xca);
    resumed_engine.checkpoint_every = 5;
    let resumed = resumed_engine.run_with_checkpoint(&cases, &ckpt).unwrap();
    assert_eq!(resumed, uninterrupted, "resume converges to the uninterrupted summary");

    std::fs::remove_file(&ckpt).ok();
    std::fs::remove_dir_all(&dir).ok();
}

/// Replays the runner's retry policy for one case against the fault
/// plan's deterministic schedule: attempts keep firing the transient
/// origin fault until one comes back clean or `max_retries` is spent.
/// Returns `(retries, backoff_units, terminal_error)`.
fn expected_schedule(plan: &FaultPlan, uuid: u64, max_retries: u32) -> (u32, u64, bool) {
    let injector = FaultInjector::new(plan.clone());
    let mut retries = 0u32;
    let mut backoff = 0u64;
    loop {
        let session = FaultSession::new(&injector, uuid, retries, 4096);
        let fired = session.decide(ORIGIN_HOP, FaultStage::OriginRespond).is_some();
        if !fired {
            return (retries, backoff, false);
        }
        if retries >= max_retries {
            return (retries, backoff, true);
        }
        retries += 1;
        backoff += 1u64 << retries.min(16);
    }
}

#[test]
fn recorded_retry_counts_match_the_injected_transient_schedule_exactly() {
    // Regression: `RunSummary.backoff_units` must aggregate the per-case
    // backoff bookkeeping (it used to be recorded per case and then
    // dropped on aggregation). With the plan restricted to Transient5xx —
    // which only fires at the origin-respond decision point — the retry
    // and backoff totals are exactly computable from the fault schedule.
    let cases = catalog_cases();
    let plan = FaultPlan::new(0x5c3d, 40).with_kinds(&[FaultKind::Transient5xx]);
    let mut engine = DiffEngine::standard();
    engine.fault_plan = plan.clone();
    let summary = engine.run(&cases);

    let mut retries = 0usize;
    let mut backoff = 0u64;
    let mut errors = 0usize;
    for case in &cases {
        let (r, b, failed) = expected_schedule(&plan, case.uuid, engine.max_retries);
        retries += r as usize;
        backoff += b;
        errors += usize::from(failed);
    }
    assert!(retries > 0, "a 40% rate over the catalog must schedule retries");
    assert_eq!(summary.retries, retries, "recorded retries drift from the fault schedule");
    assert_eq!(summary.backoff_units, backoff, "recorded backoff drifts from the fault schedule");
    assert_eq!(summary.errors, errors, "terminal transient-5xx errors drift from the schedule");
}

#[test]
fn findings_from_a_resumed_campaign_minimize_to_identical_bytes() {
    // Checkpoint/resume × minimizer: a campaign killed at a checkpoint
    // and resumed must hand the minimizer the same findings, and the
    // minimizer must converge to byte-identical minimized cases.
    let cases = catalog_cases();
    let dir = std::env::temp_dir().join("hdiff-resume-minimize");
    std::fs::create_dir_all(&dir).unwrap();
    let ckpt = dir.join("campaign.json");
    std::fs::remove_file(&ckpt).ok();

    let uninterrupted = DiffEngine::standard().run(&cases);

    let mut killed = DiffEngine::standard();
    killed.checkpoint_every = 7;
    killed.stop_after_chunks = Some(1);
    let partial = killed.run_with_checkpoint(&cases, &ckpt).unwrap();
    assert!(partial.cases < cases.len(), "the kill left work undone");
    let mut resumed_engine = DiffEngine::standard();
    resumed_engine.checkpoint_every = 7;
    let resumed = resumed_engine.run_with_checkpoint(&cases, &ckpt).unwrap();
    assert_eq!(resumed, uninterrupted);

    let workflow = Workflow::standard();
    let profiles = hdiff::servers::products();
    let ctx = FindingContext::new(&workflow, &profiles);
    let opts = MinimizeOptions::default();
    let finding = resumed.findings.iter().find(|f| f.is_pair()).unwrap();
    let case = cases.iter().find(|c| c.uuid == finding.uuid).unwrap();
    let bytes = case.request.to_bytes();
    let from_resumed = ctx.minimize_finding(finding, &bytes, &opts);
    let from_uninterrupted = ctx.minimize_finding(
        uninterrupted.findings.iter().find(|f| *f == finding).unwrap(),
        &bytes,
        &opts,
    );
    assert_eq!(from_resumed, from_uninterrupted);
    assert!(from_resumed.bytes.len() <= bytes.len());

    std::fs::remove_file(&ckpt).ok();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fault_free_run_matches_between_plain_and_checkpointed_execution() {
    let cases = catalog_cases();
    let dir = std::env::temp_dir().join("hdiff-fault-campaign-clean");
    std::fs::create_dir_all(&dir).unwrap();
    let ckpt = dir.join("clean.json");
    std::fs::remove_file(&ckpt).ok();

    let engine = DiffEngine::standard();
    let plain = engine.run(&cases);
    let checkpointed = engine.run_with_checkpoint(&cases, &ckpt).unwrap();
    assert_eq!(plain, checkpointed);
    assert_eq!(plain.errors, 0);
    assert!(plain.quarantined.is_empty());

    std::fs::remove_file(&ckpt).ok();
    std::fs::remove_dir_all(&dir).ok();
}
