//! Table II regression: every catalog attack vector produces at least one
//! finding of one of its declared classes.

use hdiff::diff::{detect_case, Workflow};
use hdiff::gen::{catalog, Origin, TestCase};
use hdiff::servers::products;

#[test]
fn every_catalog_vector_produces_a_matching_finding() {
    let workflow = Workflow::standard();
    let profiles = products();
    let mut uuid = 1u64;

    for entry in catalog::catalog() {
        let mut matched = false;
        for (req, note) in &entry.requests {
            let case = TestCase {
                uuid,
                request: req.clone(),
                assertions: Vec::new(),
                origin: Origin::Catalog(entry.id.to_string()),
                note: note.clone(),
            };
            uuid += 1;
            let outcome = workflow.run_case(&case);
            let findings = detect_case(&profiles, &outcome);
            if findings.iter().any(|f| entry.classes.contains(&f.class)) {
                matched = true;
            }
        }
        assert!(
            matched,
            "catalog vector {} ({}) produced no finding of classes {:?}",
            entry.id, entry.description, entry.classes
        );
    }
}

#[test]
fn novel_vectors_produce_findings() {
    // The paper's three new attack vectors must all fire.
    let workflow = Workflow::standard();
    let profiles = products();
    for id in ["invalid-http-version", "shifted-http-version", "expect"] {
        let entry = catalog::entry(id).unwrap();
        let mut findings = 0usize;
        for (i, (req, note)) in entry.requests.iter().enumerate() {
            let case = TestCase {
                uuid: i as u64 + 1,
                request: req.clone(),
                assertions: Vec::new(),
                origin: Origin::Catalog(entry.id.to_string()),
                note: note.clone(),
            };
            findings += detect_case(&profiles, &workflow.run_case(&case)).len();
        }
        assert!(findings > 0, "novel vector {id} produced no findings");
    }
}
