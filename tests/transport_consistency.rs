//! Cross-transport consistency gate.
//!
//! The wire transports (`crates/net`) exist to observe byte-stream
//! behaviors the in-process calls cannot show — but on a fault-free
//! corpus every transport runs the *same* engine over the *same*
//! delivered bytes, so every finding, pair verdict, and behavior digest
//! must agree. This gate runs the full Table II catalog through the
//! differential engine over all three transports (`sim`, blocking
//! `tcp`, and the multiplexed `tcp-async` event loop) and fails on any
//! drift; it also checks that segmented delivery over real sockets
//! still splits the profiles (the HMetrics divergence the transport is
//! for).

use hdiff::diff::{
    consistency_findings, consistency_findings_async, segmented_probe, DiffEngine, Transport,
    Workflow,
};
use hdiff::gen::{catalog, Origin, TestCase};
use hdiff::net::{AsyncTestbed, SendMode};

/// Widens the shared socket timeout for this gate unless the caller
/// already chose one: a loaded CI box can stall a loopback read past the
/// 500ms default, and a timeout here means a spurious transport
/// divergence. Must run before the first socket is opened because
/// [`hdiff::net::io_timeout`] caches on first use; `#[ctor]`-less, so
/// each test calls it first thing.
fn widen_timeouts_for_ci() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        if std::env::var(hdiff::net::IO_TIMEOUT_ENV).is_err() {
            std::env::set_var(hdiff::net::IO_TIMEOUT_ENV, "2000");
        }
        // Force the cache now so every later reader sees the widened
        // value regardless of which test touches a socket first.
        assert!(hdiff::net::io_timeout() >= std::time::Duration::from_millis(1));
    });
}

/// The Table II catalog as a test-case corpus (same construction as the
/// pipeline's step 3).
fn catalog_cases() -> Vec<TestCase> {
    let mut cases = Vec::new();
    let mut next_uuid = 1u64;
    for entry in catalog::catalog() {
        for (req, note) in &entry.requests {
            cases.push(TestCase {
                uuid: next_uuid,
                request: req.clone(),
                assertions: Vec::new(),
                origin: Origin::Catalog(entry.id.to_string()),
                note: note.clone(),
            });
            next_uuid += 1;
        }
    }
    cases
}

#[test]
fn catalog_campaign_findings_match_across_transports() {
    widen_timeouts_for_ci();
    let cases = catalog_cases();

    let mut sim = DiffEngine::standard();
    sim.threads = 2;
    let sim_summary = sim.run(&cases);

    let mut tcp = DiffEngine::standard();
    tcp.threads = 2;
    tcp.transport = Transport::Tcp;
    let tcp_summary = tcp.run(&cases);

    assert_eq!(sim_summary.transport, Transport::Sim);
    assert_eq!(tcp_summary.transport, Transport::Tcp);
    assert_eq!(sim_summary.cases, tcp_summary.cases);
    assert_eq!(sim_summary.errors, 0, "sim campaign hit terminal errors");
    assert_eq!(tcp_summary.errors, 0, "tcp campaign hit terminal errors");
    assert_eq!(
        sim_summary.findings, tcp_summary.findings,
        "wire campaign found different findings than the simulation"
    );
    assert_eq!(sim_summary.pairs, tcp_summary.pairs);
    assert_eq!(sim_summary.verdicts, tcp_summary.verdicts);
    assert!(!tcp_summary.findings.is_empty(), "catalog campaign found nothing");

    if !hdiff::net::reactor::sys::supported() {
        eprintln!("skipping tcp-async leg: no epoll backend on this target");
        return;
    }
    let mut multiplexed = DiffEngine::standard();
    multiplexed.threads = 2;
    multiplexed.transport = Transport::TcpAsync;
    let async_summary = multiplexed.run(&cases);

    assert_eq!(async_summary.transport, Transport::TcpAsync);
    assert_eq!(sim_summary.cases, async_summary.cases);
    assert_eq!(async_summary.errors, 0, "tcp-async campaign hit terminal errors");
    assert_eq!(
        sim_summary.findings, async_summary.findings,
        "multiplexed campaign found different findings than the simulation"
    );
    assert_eq!(sim_summary.pairs, async_summary.pairs);
    assert_eq!(sim_summary.verdicts, async_summary.verdicts);
}

#[test]
fn catalog_vectors_have_consistent_behavior_digests() {
    widen_timeouts_for_ci();
    let workflow = Workflow::standard();
    let profiles = hdiff::servers::products();
    for (idx, entry) in catalog::catalog().iter().enumerate() {
        let uuid = 500 + idx as u64;
        let origin = format!("catalog:{}", entry.id);
        for (req, note) in &entry.requests {
            let findings =
                consistency_findings(&workflow, &profiles, uuid, &origin, &req.to_bytes());
            assert!(findings.is_empty(), "transport divergence on {origin} ({note}): {findings:?}");
        }
    }
}

#[test]
fn catalog_vectors_are_consistent_over_the_multiplexed_transport() {
    widen_timeouts_for_ci();
    if !hdiff::net::reactor::sys::supported() {
        eprintln!("skipping: no epoll backend on this target");
        return;
    }
    let workflow = Workflow::standard();
    let profiles = hdiff::servers::products();
    // One shared testbed serves the whole catalog, so later vectors ride
    // the warm keep-alive pool instead of fresh connections.
    let testbed = AsyncTestbed::new(workflow.backends(), workflow.proxies()).unwrap();
    for (idx, entry) in catalog::catalog().iter().enumerate() {
        let uuid = 700 + idx as u64;
        let origin = format!("catalog:{}", entry.id);
        for (req, note) in &entry.requests {
            let findings = consistency_findings_async(
                &workflow,
                &profiles,
                uuid,
                &origin,
                &req.to_bytes(),
                &testbed,
            );
            assert!(
                findings.is_empty(),
                "multiplexed transport divergence on {origin} ({note}): {findings:?}"
            );
        }
    }
    let stats = testbed.stats();
    assert!(stats.pool_hits > 0, "catalog sweep never reused a pooled connection: {stats:?}");
}

#[test]
fn segmented_delivery_still_splits_the_profiles() {
    widen_timeouts_for_ci();
    // The Tomcat-style lenient Transfer-Encoding vector, delivered one
    // byte at a time across real socket writes: lenient profiles accept
    // the chunked body, strict profiles reject the TE/CL conflict. The
    // divergence must survive segmentation (incremental reads only
    // finalize when the parse cannot change with more bytes).
    let bytes: &[u8] =
        b"POST / HTTP/1.1\r\nHost: h\r\nContent-Length: 10\r\nTransfer-Encoding:\x0bchunked\r\n\r\n3\r\nabc\r\n0\r\n\r\n";
    let splits: Vec<usize> = (1..bytes.len()).collect();
    let metrics =
        segmented_probe(&hdiff::servers::backends(), 901, bytes, &SendMode::Segmented(splits));
    assert!(metrics.len() >= 2, "need at least two profile views");
    let disagree = metrics.iter().any(|a| {
        metrics.iter().any(|b| a.accepted != b.accepted || a.status_code != b.status_code)
    });
    assert!(disagree, "segmented delivery produced uniform behavior: {metrics:?}");
}
