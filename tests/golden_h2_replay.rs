//! Golden-corpus regression gate for the h2 downgrade subsystem.
//!
//! `tests/golden-h2/` holds one minimized replay bundle per downgrade
//! class, written by `hdiff golden regen-h2 tests/golden-h2`. Each
//! bundle freezes the h2c connection bytes, the downgrade findings, and
//! an FNV digest of every front's translation + backend behavior; this
//! gate re-executes all of them and fails on any drift.

use std::path::Path;

use hdiff::diff::replay::replay_dir;
use hdiff::diff::{finding_tag, Frontend, ReplayBundle, Workflow};

fn golden_dir() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden-h2")
}

#[test]
fn golden_h2_corpus_replays_byte_identically() {
    let workflow = Workflow::standard();
    let profiles = hdiff::servers::products();
    let reports = replay_dir(&golden_dir(), &workflow, &profiles, None).unwrap();
    assert!(reports.len() >= 3, "golden h2 corpus too small: {} bundles", reports.len());
    for (path, report) in &reports {
        assert!(report.passed(), "{}: {}", path.display(), report.summary());
    }
}

#[test]
fn golden_h2_corpus_covers_three_downgrade_classes() {
    let mut classes = std::collections::BTreeSet::new();
    for entry in std::fs::read_dir(golden_dir()).unwrap().filter_map(Result::ok) {
        let path = entry.path();
        if path.extension().is_none_or(|e| e != "json") {
            continue;
        }
        let bundle = ReplayBundle::load(&path).unwrap();
        assert_eq!(bundle.frontend, Frontend::H2, "{}: not an h2 bundle", path.display());
        assert!(!bundle.findings.is_empty(), "{}: bundle with no findings", path.display());
        assert!(
            bundle.origin.starts_with("h2:"),
            "{}: golden h2 bundle with origin {:?}",
            path.display(),
            bundle.origin
        );
        for f in &bundle.findings {
            classes.extend(finding_tag(f).map(str::to_string));
        }
    }
    assert!(classes.len() >= 3, "golden h2 corpus covers only {classes:?}");
}
