//! End-to-end pipeline regression: corpus → analyzer → generation →
//! differential testing → Table I verdict matrix.

use hdiff::gen::AttackClass;
use hdiff::{HDiff, HdiffConfig};

#[test]
fn full_pipeline_reproduces_the_paper_verdict_matrix() {
    let report = HDiff::new(HdiffConfig::quick()).run();

    // §IV-B extraction volumes (scaled to the embedded corpus).
    assert!(report.analysis.stats.srs >= 40, "{}", report.analysis.stats);
    assert!(report.analysis.stats.abnf_rules >= 150, "{}", report.analysis.stats);
    assert!(report.total_cases() > 100);

    // Table I, exactly as printed in the paper.
    let expected: [(&str, bool, bool, bool); 10] = [
        // (product, HRS, HoT, CPDoS)
        ("iis", true, true, false),
        ("tomcat", true, true, false),
        ("weblogic", true, true, false),
        ("lighttpd", true, false, false),
        ("apache", false, false, true),
        ("nginx", false, true, true),
        ("varnish", true, true, true),
        ("squid", true, false, true),
        ("haproxy", true, true, true),
        ("ats", true, false, true),
    ];
    let v = &report.summary.verdicts;
    for (product, hrs, hot, cpdos) in expected {
        assert_eq!(v.is_vulnerable(product, AttackClass::Hrs), hrs, "{product} HRS");
        assert_eq!(v.is_vulnerable(product, AttackClass::Hot), hot, "{product} HoT");
        assert_eq!(v.is_vulnerable(product, AttackClass::Cpdos), cpdos, "{product} CPDoS");
    }

    // Eight implementations deviate from the specification in HRS-relevant
    // ways — the paper's §IV-B headline count.
    let hrs_products = hdiff::servers::products()
        .iter()
        .filter(|p| v.is_vulnerable(&p.name, AttackClass::Hrs))
        .count();
    assert_eq!(hrs_products, 8);
}

#[test]
fn full_configuration_preserves_the_verdict_matrix() {
    // The quick and full configurations differ in generation volume; the
    // verdict matrix must be stable across both (an over-sensitive
    // detection rule would flip cells as volume grows).
    let report = HDiff::new(HdiffConfig::full()).run();
    let v = &report.summary.verdicts;
    assert!(v.is_vulnerable("ats", AttackClass::Hrs));
    assert!(!v.is_vulnerable("ats", AttackClass::Hot), "{:?}", v.classes("ats"));
    assert!(!v.is_vulnerable("squid", AttackClass::Hot), "{:?}", v.classes("squid"));
    assert!(!v.is_vulnerable("apache", AttackClass::Hrs), "{:?}", v.classes("apache"));
    assert!(!v.is_vulnerable("nginx", AttackClass::Hrs), "{:?}", v.classes("nginx"));
    assert_eq!(
        hdiff::servers::products()
            .iter()
            .filter(|p| v.is_vulnerable(&p.name, AttackClass::Cpdos))
            .count(),
        6
    );
}

#[test]
fn pipeline_is_deterministic_per_seed() {
    let a = HDiff::new(HdiffConfig::quick()).run();
    let b = HDiff::new(HdiffConfig::quick()).run();
    assert_eq!(a.total_cases(), b.total_cases());
    assert_eq!(a.summary.findings.len(), b.summary.findings.len());
    assert_eq!(a.summary.verdicts.total_marks(), b.summary.verdicts.total_marks());
}
