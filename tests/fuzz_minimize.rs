//! Stream-level minimization gates: after ddmin the shrunk stream still
//! triggers the finding, padded synthetic corpora shrink substantially,
//! and a probe hostile enough to panic the predicate is quarantined
//! rather than fatal.

use std::panic::{self, AssertUnwindSafe};

use hdiff::diff::{detect_case, MinimizeOptions, Workflow};
use hdiff::fuzz::{minimize_stream, Stream, StreamRequest};
use hdiff::servers::fault::{FaultInjector, FaultPlan, FaultSession};
use hdiff::servers::ParserProfile;

/// A CL.TE conflict request — the classic smuggling trigger (the
/// catalog's `invalid-cl-te` vector, which keeps flagging HRS even when
/// sandwiched between noise requests).
fn trigger() -> Vec<u8> {
    let catalog = hdiff::gen::catalog::catalog();
    let entry = catalog
        .iter()
        .find(|e| e.id == "invalid-cl-te")
        .expect("invalid-cl-te catalog vector exists");
    entry.requests[0].0.to_bytes()
}

/// Noise requests the minimizer should discard wholesale.
fn padding(n: usize) -> Vec<StreamRequest> {
    (0..n)
        .map(|i| {
            StreamRequest::whole(
                format!(
                    "GET /pad{i} HTTP/1.1\r\nHost: pad{i}.example\r\nX-Filler: {}\r\n\r\n",
                    "z".repeat(40)
                )
                .into_bytes(),
            )
        })
        .collect()
}

fn padded_stream() -> Stream {
    let mut requests = padding(3);
    requests.push(StreamRequest::whole(trigger()));
    requests.extend(padding(3));
    Stream { requests }
}

/// Re-runs detection on a stream's effective bytes, exactly the way the
/// fuzz engine's promotion predicate does.
fn detects_hrs(workflow: &Workflow, profiles: &[ParserProfile], s: &Stream) -> bool {
    let injector = FaultInjector::new(FaultPlan::disabled());
    let session = FaultSession::new(&injector, 0xfa22, 0, 4096);
    let outcome =
        workflow.run_bytes_faulted(0xfa22, "fuzz:test", &s.effective_bytes(), Some(&session));
    detect_case(profiles, &outcome).iter().any(|f| f.class == hdiff::gen::AttackClass::Hrs)
}

#[test]
fn minimized_stream_still_triggers_the_finding() {
    let workflow = Workflow::standard();
    let profiles = hdiff::servers::products();
    let stream = padded_stream();
    assert!(detects_hrs(&workflow, &profiles, &stream), "padded stream must trigger HRS");

    let (minimized, stats) = minimize_stream(
        &stream,
        |s| detects_hrs(&workflow, &profiles, s),
        &MinimizeOptions::default(),
    );
    assert!(
        detects_hrs(&workflow, &profiles, &minimized),
        "minimization lost the finding: {minimized:?}"
    );
    assert!(minimized.well_formed());
    assert_eq!(minimized.requests.len(), 1, "padding requests must be dropped: {minimized:?}");
    assert!(stats.minimized_len < stats.original_len);
}

#[test]
fn padded_corpus_shrinks_at_least_thirty_percent() {
    let workflow = Workflow::standard();
    let profiles = hdiff::servers::products();
    let stream = padded_stream();
    let (minimized, stats) = minimize_stream(
        &stream,
        |s| detects_hrs(&workflow, &profiles, s),
        &MinimizeOptions::default(),
    );
    assert!(
        stats.shrink_ratio() <= 0.7,
        "only shrank {} -> {} bytes (ratio {:.2}): {minimized:?}",
        stats.original_len,
        stats.minimized_len,
        stats.shrink_ratio(),
    );
}

#[test]
fn quarantining_probe_never_panics_the_minimizer() {
    let stream = Stream {
        requests: (0..8)
            .map(|i| StreamRequest::whole(format!("REQ{i} / HTTP/1.1\r\n\r\n").into_bytes()))
            .collect(),
    };
    // The probe panics on every candidate that drops below five requests
    // — the minimizer must swallow those panics, count them, and settle
    // on the smallest candidate the probe still accepts.
    let probe = |s: &Stream| {
        assert!(s.requests.len() >= 5, "hostile candidate");
        s.requests.iter().any(|r| r.bytes.starts_with(b"REQ3"))
    };
    let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
        minimize_stream(&stream, probe, &MinimizeOptions::default())
    }));
    let (minimized, stats) = outcome.expect("minimizer must quarantine panicking probes");
    assert!(stats.quarantined > 0, "no candidate exercised the quarantine path: {stats:?}");
    assert!(minimized.requests.len() >= 5);
    assert!(minimized.requests.iter().any(|r| r.bytes.starts_with(b"REQ3")));
}

#[test]
fn minimization_is_deterministic() {
    let workflow = Workflow::standard();
    let profiles = hdiff::servers::products();
    let stream = padded_stream();
    let run = || {
        minimize_stream(
            &stream,
            |s| detects_hrs(&workflow, &profiles, s),
            &MinimizeOptions::default(),
        )
    };
    let (a, sa) = run();
    let (b, sb) = run();
    assert_eq!(a, b);
    assert_eq!(sa, sb);
}
