//! Golden-corpus regression gate.
//!
//! `tests/golden/` holds one minimized replay bundle per Table II catalog
//! vector, written by `hdiff golden regen tests/golden`. Each bundle
//! freezes the exact request bytes, the detector verdicts, and an FNV
//! digest of every implementation's behavior; this gate re-executes all
//! of them and fails on any drift. A legitimate behavior change (a new
//! profile policy, a detector fix) is accepted by regenerating the
//! corpus and reviewing the bundle diff.

use std::path::Path;

use hdiff::diff::replay::replay_dir;
use hdiff::diff::{ReplayBundle, Workflow};

fn golden_dir() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

#[test]
fn golden_corpus_replays_byte_identically() {
    let workflow = Workflow::standard();
    let profiles = hdiff::servers::products();
    let reports = replay_dir(&golden_dir(), &workflow, &profiles, None).unwrap();
    assert!(reports.len() >= 10, "golden corpus too small: {} bundles", reports.len());
    for (path, report) in &reports {
        assert!(report.passed(), "{}: {}", path.display(), report.summary());
    }
}

#[test]
fn golden_corpus_covers_every_catalog_vector() {
    let names: Vec<String> = std::fs::read_dir(golden_dir())
        .unwrap()
        .filter_map(Result::ok)
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .collect();
    for entry in hdiff::gen::catalog::catalog() {
        assert!(
            names.iter().any(|n| n == &format!("catalog-{}.json", entry.id)),
            "no golden bundle for catalog vector {}",
            entry.id
        );
    }
}

#[test]
fn golden_bundles_are_minimized_and_well_formed() {
    for path in std::fs::read_dir(golden_dir()).unwrap().filter_map(Result::ok) {
        let path = path.path();
        if path.extension().is_none_or(|e| e != "json") {
            continue;
        }
        let bundle = ReplayBundle::load(&path).unwrap();
        assert!(!bundle.findings.is_empty(), "{}: bundle with no findings", path.display());
        assert_eq!(bundle.digests.len(), 12, "{}: 6 direct + 6 proxy views", path.display());
        // Minimization floor: nothing in the corpus should carry more
        // than 100 bytes of request — the vectors are tiny by design.
        assert!(
            bundle.request.len() <= 100,
            "{}: {}-byte request looks unminimized",
            path.display(),
            bundle.request.len()
        );
    }
}
