//! Acceptance gates for the HTTP/2 downgrade-desync subsystem: the
//! seeded campaign detects at least three distinct downgrade classes,
//! its output is invariant across worker threads and across the sim and
//! TCP front-end transports (byte-stable translation), and every
//! promoted bundle re-verifies through the ordinary replay machinery.

use hdiff::diff::{
    finding_tag, run_downgrade_campaign, seed_vectors, DowngradeCampaignOptions, DowngradeSummary,
    DowngradeWorkflow, Frontend, ReplayBundle, Transport, Workflow,
};
use hdiff::h2::{encode_client_connection, EncodeOptions};

fn campaign(threads: usize, tcp: bool) -> DowngradeSummary {
    run_downgrade_campaign(&DowngradeCampaignOptions { threads, tcp, promote_dir: None })
        .expect("campaign runs")
}

fn identity(s: &DowngradeSummary) -> (usize, Vec<String>, Vec<String>) {
    (s.cases, s.findings.iter().map(ToString::to_string).collect(), s.classes.clone())
}

#[test]
fn seeded_campaign_detects_at_least_three_downgrade_classes() {
    let s = campaign(2, false);
    assert_eq!(s.cases, seed_vectors().len());
    assert!(s.classes.len() >= 3, "expected >= 3 distinct downgrade classes, got {:?}", s.classes);
    for class in ["cl-mismatch", "te-forwarded", "authority-host"] {
        assert!(s.classes.iter().any(|c| c == class), "no {class} in {:?}", s.classes);
    }
    for f in &s.findings {
        assert!(finding_tag(f).is_some(), "non-downgrade evidence in campaign finding {f}");
        assert!(f.origin.starts_with("h2:"), "campaign finding without h2 origin: {f}");
    }
}

#[test]
fn campaign_is_thread_and_transport_invariant() {
    let one = campaign(1, false);
    let four = campaign(4, false);
    assert_eq!(identity(&one), identity(&four), "1 vs 4 threads");

    // The TCP fronts must reproduce the in-process translation byte for
    // byte: identical findings, identical classes.
    let wire = campaign(2, true);
    assert_eq!(identity(&one), identity(&wire), "sim vs tcp");
}

#[test]
fn sim_and_tcp_fronts_produce_identical_digests() {
    let workflow = DowngradeWorkflow::standard();
    for (i, vector) in seed_vectors().into_iter().enumerate() {
        let bytes = encode_client_connection(&vector.requests, &EncodeOptions::default());
        let uuid = hdiff::diff::H2_UUID_BASE + i as u64;
        let origin = format!("h2:{}", vector.id);
        let sim = workflow.run_bytes(uuid, &origin, &bytes);
        let tcp = hdiff::diff::run_downgrade_case_tcp(&workflow, uuid, &origin, &bytes)
            .expect("tcp fronts serve");
        assert_eq!(
            hdiff::diff::downgrade_digests(&sim),
            hdiff::diff::downgrade_digests(&tcp),
            "digest drift between sim and tcp fronts on {}",
            vector.id
        );
    }
}

#[test]
fn promoted_bundles_reverify_through_replay() {
    let dir = std::env::temp_dir().join(format!("hdiff-h2-promote-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let s = run_downgrade_campaign(&DowngradeCampaignOptions {
        threads: 2,
        tcp: false,
        promote_dir: Some(dir.clone()),
    })
    .expect("campaign runs");
    assert!(s.promoted.len() >= 3, "expected >= 3 promoted bundles, got {:?}", s.promoted);

    // The h1 workflow arguments are ignored for h2 bundles; replay
    // dispatches on the recorded frontend.
    let workflow = Workflow::standard();
    let profiles = hdiff::servers::products();
    for path in &s.promoted {
        let bundle = ReplayBundle::load(path).expect("promoted bundle loads");
        assert_eq!(bundle.frontend, Frontend::H2);
        assert_eq!(bundle.transport, Transport::Sim);
        let report = bundle.replay(&workflow, &profiles, None);
        assert!(report.passed(), "{}: {}", path.display(), report.summary());
    }
    let _ = std::fs::remove_dir_all(&dir);
}
