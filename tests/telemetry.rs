//! Campaign telemetry acceptance: counter totals and span counts must be
//! byte-for-byte identical whatever the thread count, a campaign resumed
//! from a checkpoint must not double-count the cases already executed,
//! and the JSONL trace must order events replay-stably so two runs of the
//! same corpus produce the same event sequence (durations aside).

use std::collections::BTreeMap;

use hdiff::diff::{
    load_report, trace_to_jsonl, write_summary, write_trace, DiffEngine, RunSummary,
};
use hdiff::gen::{catalog, Origin, TestCase};

fn catalog_cases() -> Vec<TestCase> {
    let mut out = Vec::new();
    let mut uuid = 1u64;
    for entry in catalog::catalog() {
        for (req, note) in &entry.requests {
            out.push(TestCase {
                uuid,
                request: req.clone(),
                assertions: Vec::new(),
                origin: Origin::Catalog(entry.id.to_string()),
                note: note.clone(),
            });
            uuid += 1;
        }
    }
    out
}

fn engine(threads: usize) -> DiffEngine {
    let mut engine = DiffEngine::standard();
    engine.threads = threads;
    engine
}

/// Span name -> how many times it closed (durations vary run to run, the
/// counts must not).
fn span_counts(summary: &RunSummary) -> BTreeMap<String, u64> {
    summary.telemetry.merged.spans.iter().map(|(n, s)| (n.clone(), s.count)).collect()
}

#[test]
fn counter_totals_and_span_counts_are_thread_invariant() {
    let cases = catalog_cases();
    let one = engine(1).run(&cases);
    let two = engine(2).run(&cases);
    let eight = engine(8).run(&cases);

    assert_eq!(one, two, "summaries must not depend on the thread count");
    assert_eq!(one, eight);
    // Beyond the shape equality above: exact counter totals and span
    // counts, which double-counting or dropped buckets would skew.
    assert_eq!(one.telemetry.merged.counters, two.telemetry.merged.counters);
    assert_eq!(one.telemetry.merged.counters, eight.telemetry.merged.counters);
    assert_eq!(span_counts(&one), span_counts(&two));
    assert_eq!(span_counts(&one), span_counts(&eight));

    // Every case ran under exactly one "case" span and one execute stage.
    let spans = span_counts(&one);
    assert_eq!(spans.get("case"), Some(&(cases.len() as u64)));
    assert_eq!(spans.get("stage.chain-execute"), Some(&(cases.len() as u64)));
    assert_eq!(spans.get("stage.detect"), Some(&(cases.len() as u64)));
    // The sim transport histogram saw every case exactly once.
    let rtt = one.telemetry.merged.hists.get("transport.rtt.sim").expect("sim RTT histogram");
    assert_eq!(rtt.count, cases.len() as u64);
    // The slowest-case table only names cases from this corpus.
    assert!(!one.telemetry.slowest.is_empty());
    for &(uuid, ns) in &one.telemetry.slowest {
        assert!(cases.iter().any(|c| c.uuid == uuid), "unknown uuid {uuid:#x}");
        assert!(ns > 0);
    }
}

#[test]
fn resumed_campaign_merges_telemetry_without_double_counting() {
    let cases = catalog_cases();
    let dir = std::env::temp_dir().join(format!("hdiff-telemetry-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("resume.ckpt");
    let _ = std::fs::remove_file(&path);

    // Uninterrupted reference run.
    let full = engine(2).run(&cases);

    // Killed after one chunk, then resumed to completion.
    let mut first = engine(2);
    first.checkpoint_every = 8;
    first.stop_after_chunks = Some(1);
    let partial = first.run_with_checkpoint(&cases, &path).unwrap();
    assert!(partial.cases < cases.len(), "the first leg must stop early");
    let partial_case_spans = span_counts(&partial).get("case").copied().unwrap_or(0);
    assert_eq!(partial_case_spans, partial.cases as u64);

    let mut second = engine(2);
    second.checkpoint_every = 8;
    let resumed = second.run_with_checkpoint(&cases, &path).unwrap();
    assert_eq!(resumed, full, "resume must reach the uninterrupted summary");
    assert_eq!(
        resumed.telemetry.merged.counters, full.telemetry.merged.counters,
        "resuming must re-merge persisted buckets, not re-run and double-count"
    );
    assert_eq!(span_counts(&resumed), span_counts(&full));

    let _ = std::fs::remove_file(&path);
}

#[test]
fn trace_event_order_is_replay_stable_and_reports_render() {
    hdiff::obs::set_trace(true);
    let cases = catalog_cases();
    let one = engine(1).run(&cases);
    let four = engine(4).run(&cases);
    hdiff::obs::set_trace(false);

    // Same (case, seq, kind, name) sequence whatever the thread count;
    // only durations may differ.
    let skeleton = |s: &RunSummary| -> Vec<(u64, u64, &'static str, String)> {
        s.telemetry
            .merged
            .sorted_events()
            .iter()
            .map(|e| (e.case, e.seq, e.kind.as_str(), e.name.clone()))
            .collect()
    };
    let sk1 = skeleton(&one);
    assert!(!sk1.is_empty(), "trace mode must record events");
    assert_eq!(sk1, skeleton(&four), "event order must not depend on the thread count");

    // JSONL lines come out in exactly that order.
    let jsonl = trace_to_jsonl(&one.telemetry.merged);
    assert_eq!(jsonl.lines().count(), sk1.len());

    // Both persisted forms round-trip into a renderable report that
    // agrees with the in-memory totals.
    let dir = std::env::temp_dir().join(format!("hdiff-telemetry-rep-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let summary_path = dir.join("summary.json");
    let trace_path = dir.join("trace.jsonl");
    write_summary(&summary_path, &one).unwrap();
    write_trace(&trace_path, &one.telemetry.merged).unwrap();

    let from_summary = load_report(&summary_path).unwrap();
    assert_eq!(from_summary.telemetry.counters, one.telemetry.merged.counters);
    let from_trace = load_report(&trace_path).unwrap();
    assert_eq!(from_trace.telemetry.counters, one.telemetry.merged.counters);
    for input in [&from_summary, &from_trace] {
        let rendered = hdiff::obs::render_report(input);
        assert!(rendered.contains("stage.chain-execute"), "{rendered}");
        assert!(rendered.contains("transport.rtt.sim"), "{rendered}");
    }

    let _ = std::fs::remove_file(&summary_path);
    let _ = std::fs::remove_file(&trace_path);
}
