//! Property-based tests over the fuzzing stream model: mutators
//! preserve the well-formedness invariants, and the stream JSON codec
//! round-trips byte-exactly.

use std::sync::OnceLock;

use proptest::prelude::*;

use hdiff::fuzz::{Delivery, IngredientPool, Stream, StreamMutator, StreamRequest, MAX_REQUESTS};

/// The ingredient pool is distilled from the analyzed RFC grammar —
/// expensive, so every proptest case shares one.
fn pool() -> &'static IngredientPool {
    static POOL: OnceLock<IngredientPool> = OnceLock::new();
    POOL.get_or_init(|| {
        let grammar = hdiff::analyzer::DocumentAnalyzer::with_default_inputs()
            .analyze_syntax(&hdiff::corpus::core_documents())
            .grammar;
        IngredientPool::build(&grammar, 0xbeef)
    })
}

/// A stream assembled from raw proptest-drawn parts (parallel vectors,
/// zipped to the shortest), then repaired — the repaired form must
/// always satisfy the invariants. The shape knobs (`kinds`, `ats`,
/// `pipelined`) deliberately produce out-of-bounds offsets and
/// truncation points so repair has real work to do.
fn assemble(bodies: &[Vec<u8>], kinds: &[u8], ats: &[usize], pipelined: &[bool]) -> Stream {
    let n = bodies.len().min(kinds.len()).min(ats.len()).min(pipelined.len());
    let requests = (0..n)
        .map(|i| StreamRequest {
            bytes: bodies[i].clone(),
            delivery: match kinds[i] % 3 {
                0 => Delivery::Whole,
                1 => Delivery::Segmented(vec![ats[i] % 97, (ats[i] / 7) % 89]),
                _ => Delivery::TruncateAt(ats[i] % 131),
            },
            pipelined: pipelined[i],
        })
        .collect();
    Stream { requests }
}

proptest! {
    /// Any mutation chain, from any seed, over any pair of corpus
    /// parents, keeps every invariant: streams non-empty and bounded,
    /// segment offsets strictly ascending and in-bounds, truncation
    /// points within the request, the first request never pipelined.
    #[test]
    fn mutants_preserve_well_formedness(seed in any::<u64>(), rounds in 1usize..24) {
        let mut mutator = StreamMutator::new(seed, pool().clone());
        let mut base = Stream::single(mutator.pool().requests[0].clone());
        let mut other = Stream::single(mutator.pool().requests[1].clone());
        for _ in 0..rounds {
            let (next, _op) = mutator.mutate(&base, &other);
            prop_assert!(next.well_formed(), "ill-formed mutant: {next:?}");
            prop_assert!(next.requests.len() <= MAX_REQUESTS);
            prop_assert!(!next.requests[0].pipelined, "first request pipelined");
            for r in &next.requests {
                match &r.delivery {
                    Delivery::Whole => {}
                    Delivery::Segmented(cuts) => {
                        prop_assert!(!cuts.is_empty());
                        prop_assert!(cuts.windows(2).all(|w| w[0] < w[1]), "unsorted cuts {cuts:?}");
                        prop_assert!(cuts.iter().all(|&c| c > 0 && c < r.bytes.len()));
                    }
                    Delivery::TruncateAt(at) => prop_assert!(*at <= r.bytes.len()),
                }
            }
            other = base;
            base = next;
        }
    }

    /// `repair` always lands on a well-formed stream (or reports an
    /// unrepairable one), no matter how hostile the raw parts are.
    #[test]
    fn repair_restores_invariants_on_arbitrary_parts(
        bodies in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..40), 0..6),
        kinds in proptest::collection::vec(any::<u8>(), 6usize),
        ats in proptest::collection::vec(any::<usize>(), 6usize),
        flags in proptest::collection::vec(any::<bool>(), 6usize),
    ) {
        let mut stream = assemble(&bodies, &kinds, &ats, &flags);
        if stream.repair() {
            prop_assert!(stream.well_formed(), "repair accepted an ill-formed stream: {stream:?}");
        } else {
            prop_assert!(stream.requests.is_empty(), "repair refused a non-empty stream");
        }
    }

    /// The stream JSON codec round-trips byte-exactly: decode(encode(s))
    /// is structurally equal AND re-encodes to the identical byte string
    /// (so corpus sidecars are stable across save/load cycles).
    #[test]
    fn codec_round_trips_byte_exactly(
        bodies in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..40), 1..6),
        kinds in proptest::collection::vec(any::<u8>(), 6usize),
        ats in proptest::collection::vec(any::<usize>(), 6usize),
        flags in proptest::collection::vec(any::<bool>(), 6usize),
    ) {
        let mut stream = assemble(&bodies, &kinds, &ats, &flags);
        prop_assume!(stream.repair());
        let json = stream.to_json();
        let decoded = Stream::from_json(json.as_bytes()).expect("codec rejects its own output");
        prop_assert_eq!(&decoded, &stream);
        prop_assert_eq!(decoded.to_json(), json);
    }

    /// Effective bytes honor delivery semantics: truncation cuts the
    /// request's contribution, segmentation never changes it.
    #[test]
    fn effective_bytes_respect_delivery(
        bytes in proptest::collection::vec(any::<u8>(), 1..60),
        at in any::<usize>(),
        cut in any::<usize>(),
    ) {
        let whole = Stream::single(bytes.clone());
        let mut segmented = Stream::single(bytes.clone());
        segmented.requests[0].delivery = Delivery::Segmented(vec![1 + cut % bytes.len().max(1)]);
        segmented.requests[0].repair_delivery();
        prop_assert_eq!(segmented.effective_bytes(), whole.effective_bytes());

        let mut truncated = Stream::single(bytes.clone());
        truncated.requests[0].delivery = Delivery::TruncateAt(at % (bytes.len() + 1));
        truncated.requests[0].repair_delivery();
        let eff = truncated.effective_bytes();
        prop_assert!(eff.len() <= bytes.len());
        prop_assert_eq!(&bytes[..eff.len()], &eff[..]);
    }
}
