//! Figure 7 regression: the affected server pairs per attack class.

use hdiff::gen::AttackClass;
use hdiff::{HDiff, HdiffConfig};

#[test]
fn figure7_pair_sets_match_the_paper_shape() {
    let report = HDiff::new(HdiffConfig::quick()).run();
    let pairs = &report.summary.pairs;

    // HoT: the pairs the paper names explicitly.
    for (front, back) in [("varnish", "iis"), ("nginx", "weblogic")] {
        assert!(pairs.contains(AttackClass::Hot, front, back), "missing HoT pair {front}->{back}");
    }
    // The full HoT set in this reproduction (paper reports nine pairs; our
    // default-configuration models yield these seven — see EXPERIMENTS.md).
    let hot = pairs.pairs(AttackClass::Hot);
    for (front, back) in [
        ("varnish", "iis"),
        ("varnish", "tomcat"),
        ("varnish", "weblogic"),
        ("haproxy", "iis"),
        ("haproxy", "tomcat"),
        ("haproxy", "weblogic"),
        ("nginx", "weblogic"),
    ] {
        assert!(
            hot.contains(&(front.to_string(), back.to_string())),
            "missing {front}->{back} in {hot:?}"
        );
    }
    // Squid and ATS must not be HoT fronts; apache/lighttpd/nginx must not
    // be HoT backs.
    for (front, _) in &hot {
        assert!(front != "squid" && front != "ats" && front != "apache", "{hot:?}");
    }
    for (_, back) in &hot {
        assert!(back != "apache" && back != "lighttpd" && back != "nginx", "{hot:?}");
    }

    // CPDoS: all six proxies are affected (the paper's headline).
    assert_eq!(pairs.fronts(AttackClass::Cpdos).len(), 6);

    // HRS: pairs exist, with the lenient proxies in front.
    let hrs_fronts = pairs.fronts(AttackClass::Hrs);
    for front in ["varnish", "ats"] {
        assert!(hrs_fronts.contains(front), "{hrs_fronts:?}");
    }
}
