//! Determinism regression gates for the fuzzing engine: a session is a
//! pure function of `(seed, iteration budget, transport)` — identical
//! corpus digests, coverage summary, digest-novelty count, divergence
//! classes, and promoted-bundle set on every rerun, at every worker
//! thread count.

use hdiff::fuzz::{FuzzBudget, FuzzEngine, FuzzOptions, FuzzReport};

fn session(seed: u64, iters: u64, threads: usize) -> FuzzReport {
    let opts =
        FuzzOptions { seed, budget: FuzzBudget::Iters(iters), threads, ..FuzzOptions::default() };
    FuzzEngine::standard(opts).run()
}

/// The identity the gates compare — everything except wall-clock and
/// telemetry timings.
fn identity(r: &FuzzReport) -> (Vec<u64>, String, u64, Vec<String>, Vec<String>) {
    (
        r.corpus_digests.clone(),
        format!("{:?}", r.coverage),
        r.novel_digest_views,
        r.divergence_classes.clone(),
        r.promoted_names(),
    )
}

#[test]
fn same_seed_same_session() {
    let a = session(0xd5, 220, 2);
    let b = session(0xd5, 220, 2);
    assert_eq!(a.execs, b.execs);
    assert_eq!(identity(&a), identity(&b));
    assert!(!a.corpus_digests.is_empty(), "session admitted nothing to the corpus");
    assert!(a.novel_digest_views > 0, "session observed no behavior");
}

#[test]
fn thread_count_never_changes_results() {
    let one = session(0x7a11, 200, 1);
    let two = session(0x7a11, 200, 2);
    let eight = session(0x7a11, 200, 8);
    assert_eq!(identity(&one), identity(&two), "1 vs 2 threads");
    assert_eq!(identity(&one), identity(&eight), "1 vs 8 threads");
}

#[test]
fn different_seeds_explore_differently() {
    let a = session(1, 200, 2);
    let b = session(2, 200, 2);
    assert_ne!(
        a.corpus_digests, b.corpus_digests,
        "two seeds grew identical corpora — the RNG is not feeding the session"
    );
}

#[test]
fn promoted_bundles_and_counters_are_reproducible() {
    let a = session(0xfee1, 300, 4);
    let b = session(0xfee1, 300, 4);
    assert_eq!(a.promoted_names(), b.promoted_names());
    for (pa, pb) in a.promoted.iter().zip(&b.promoted) {
        assert_eq!(pa.class_key, pb.class_key);
        assert_eq!(pa.stream, pb.stream, "minimized stream differs for {}", pa.class_key);
        assert_eq!(pa.bundle.request, pb.bundle.request);
    }
    // Telemetry *counters* are part of the deterministic surface (span
    // timings are not).
    assert_eq!(a.telemetry.counters, b.telemetry.counters);
}
