//! Property-based tests over the core invariants (proptest).

use proptest::prelude::*;

use hdiff::diff::DiffEngine;
use hdiff::gen::{AbnfGenerator, GenOptions, MutationEngine, PredefinedRules, TestCase};
use hdiff::servers::fault::{FaultInjector, FaultKind, FaultPlan, FaultStage};
use hdiff::servers::{interpret, ParserProfile};
use hdiff::wire::chunked::encode_chunked_with;
use hdiff::wire::{decode_chunked, parse_request, ChunkedDecodeOptions, Request};

proptest! {
    /// Chunked encode→decode round-trips any payload at any chunk size.
    #[test]
    fn chunked_round_trip(payload in proptest::collection::vec(any::<u8>(), 0..512),
                          chunk in 1usize..64) {
        let enc = encode_chunked_with(&payload, chunk);
        let dec = decode_chunked(&enc, &ChunkedDecodeOptions::strict()).unwrap();
        prop_assert_eq!(dec.payload, payload);
        prop_assert_eq!(dec.consumed, enc.len());
        prop_assert!(!dec.repaired);
    }

    /// A request built from well-formed parts always re-parses strictly,
    /// with host and body preserved.
    #[test]
    fn builder_parser_round_trip(
        host in "[a-z][a-z0-9]{0,10}(\\.[a-z]{2,3})?",
        path in "/[a-z0-9]{0,12}",
        body in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let req = Request::builder()
            .method(hdiff::wire::Method::Post)
            .target(path.as_str())
            .version(hdiff::wire::Version::Http11)
            .header("Host", host.as_str())
            .header("Content-Length", body.len().to_string())
            .body(body.clone())
            .build();
        let bytes = req.to_bytes();
        let parsed = parse_request(&bytes).unwrap();
        prop_assert_eq!(parsed.effective_host().unwrap(), host.as_bytes().to_vec());
        prop_assert_eq!(parsed.consumed, bytes.len());
        prop_assert_eq!(parsed.body, body);
    }

    /// The strict engine never panics on arbitrary bytes and never claims
    /// to have consumed more than the input.
    #[test]
    fn engine_is_total_on_arbitrary_bytes(input in proptest::collection::vec(any::<u8>(), 0..256)) {
        let profile = ParserProfile::strict("fuzz");
        let i = interpret(&profile, &input);
        prop_assert!(i.consumed <= input.len());
    }

    /// Every product engine is total on arbitrary printable streams.
    #[test]
    fn product_engines_are_total(input in "[ -~\\r\\n]{0,200}") {
        for p in hdiff::servers::products() {
            let i = interpret(&p, input.as_bytes());
            prop_assert!(i.consumed <= input.len(), "{}", p.name);
        }
    }

    /// The mutation engine never panics and keeps the request line
    /// parseable as bytes (serialization is always possible).
    #[test]
    fn mutations_always_serialize(seed in any::<u64>(), rounds in 0usize..6) {
        let mut engine = MutationEngine::new(seed);
        engine.rounds = rounds;
        let mut req = Request::get("example.com");
        engine.mutate(&mut req);
        let bytes = req.to_bytes();
        prop_assert!(bytes.windows(2).any(|w| w == b"\r\n"));
    }

    /// The same fault plan produces a byte-identical fault schedule:
    /// every (case, hop, stage, attempt) coordinate resolves to the same
    /// decision in two independently constructed injectors.
    #[test]
    fn fault_schedule_is_deterministic(seed in any::<u64>(), rate in 0u8..=100, uuid in any::<u64>()) {
        let a = FaultInjector::new(FaultPlan::new(seed, rate));
        let b = FaultInjector::new(FaultPlan::new(seed, rate));
        for hop in ["origin", "nginx", "squid", "a-very-long-hop-name"] {
            for stage in [FaultStage::Forward, FaultStage::OriginRespond, FaultStage::Relay] {
                for attempt in 0..3u32 {
                    prop_assert_eq!(
                        a.decide(uuid, hop, stage, attempt),
                        b.decide(uuid, hop, stage, attempt),
                        "{hop}/{stage:?}/{attempt}"
                    );
                }
            }
        }
    }

    /// The same fault-plan seed reproduces the identical `RunSummary`,
    /// end to end — the property the checkpoint/resume machinery and the
    /// retry schedule both rest on.
    #[test]
    fn fault_campaigns_reproduce_identically(seed in any::<u64>(), rate in 0u8..=100) {
        let cases = fault_probe_cases();
        let mut first = DiffEngine::standard();
        first.fault_plan = FaultPlan::new(seed, rate);
        let mut second = DiffEngine::standard();
        second.fault_plan = FaultPlan::new(seed, rate);
        second.threads = 2;
        prop_assert_eq!(first.run(&cases), second.run(&cases));
    }

    /// Arbitrary fault plans — any seed, any rate, any non-empty subset
    /// of fault kinds — never panic the engine, and the resilience
    /// counters stay within their bounds.
    #[test]
    fn arbitrary_fault_plans_never_panic(seed in any::<u64>(), rate in 0u8..=100, mask in 1u8..32) {
        let kinds: Vec<FaultKind> = FaultKind::ALL
            .into_iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, k)| k)
            .collect();
        let cases = fault_probe_cases();
        let mut engine = DiffEngine::standard();
        engine.fault_plan = FaultPlan::new(seed, rate).with_kinds(&kinds);
        let summary = engine.run(&cases);
        prop_assert_eq!(summary.cases, cases.len());
        prop_assert!(summary.retries <= cases.len() * engine.max_retries as usize);
        prop_assert!(summary.errors <= summary.cases);
        prop_assert!(summary.quarantined.is_empty(), "no profile panics here");
    }

    /// ABNF generation output for `Host` under the default (predefined)
    /// options is always accepted by the strict parser when framed in a
    /// valid request.
    #[test]
    fn generated_hosts_are_strictly_acceptable(seed in any::<u64>()) {
        let analysis = analysis();
        let mut gen = AbnfGenerator::new(
            analysis,
            GenOptions { seed, predefined: PredefinedRules::standard(), ..GenOptions::default() },
        );
        if let Some(host) = gen.generate("Host") {
            let req = Request::builder().header("Host", &host).build();
            let i = interpret(&ParserProfile::strict("fuzz"), &req.to_bytes());
            prop_assert!(i.outcome.is_accept(), "host {:?}", String::from_utf8_lossy(&host));
        }
    }
}

/// A small fixed corpus that exercises both the replay path (ambiguous
/// double-CL) and the plain path, keeping each property iteration cheap.
fn fault_probe_cases() -> Vec<TestCase> {
    let mut ambiguous = Request::builder();
    ambiguous
        .method(hdiff::wire::Method::Post)
        .target("/")
        .version(hdiff::wire::Version::Http11)
        .header("Host", "h1.com")
        .header("Content-Length", "3")
        .header("Content-Length", "0")
        .body(b"abc".to_vec());
    vec![
        TestCase::generated(1, Request::get("example.com"), "plain"),
        TestCase::generated(2, ambiguous.build(), "double content-length"),
    ]
}

fn analysis() -> hdiff::abnf::Grammar {
    use std::sync::OnceLock;
    static GRAMMAR: OnceLock<hdiff::abnf::Grammar> = OnceLock::new();
    GRAMMAR
        .get_or_init(|| {
            hdiff::analyzer::DocumentAnalyzer::with_default_inputs()
                .analyze(&hdiff::corpus::core_documents())
                .grammar
        })
        .clone()
}
