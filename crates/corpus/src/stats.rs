//! Corpus-level statistics for the `table0_stats` experiment harness.

use crate::document::RfcDocument;

/// Aggregate corpus statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CorpusStats {
    /// Number of documents.
    pub documents: usize,
    /// Total whitespace-separated words.
    pub words: usize,
    /// Total non-empty lines.
    pub lines: usize,
    /// Total sections.
    pub sections: usize,
}

impl CorpusStats {
    /// Computes statistics over a set of documents.
    pub fn for_documents(docs: &[RfcDocument]) -> CorpusStats {
        let mut s = CorpusStats { documents: docs.len(), ..CorpusStats::default() };
        for d in docs {
            s.words += d.word_count();
            s.sections += d.sections.len();
            s.lines += d.full_text().lines().filter(|l| !l.trim().is_empty()).count();
        }
        s
    }
}

impl std::fmt::Display for CorpusStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} documents, {} sections, {} non-empty lines, {} words",
            self.documents, self.sections, self.lines, self.words
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_over_core_corpus() {
        let docs = crate::core_documents();
        let s = CorpusStats::for_documents(&docs);
        assert_eq!(s.documents, 6);
        assert!(s.words > 5_000, "corpus unexpectedly small: {s}");
        assert!(s.sections > 30);
    }

    #[test]
    fn empty_corpus() {
        let s = CorpusStats::for_documents(&[]);
        assert_eq!(s, CorpusStats::default());
    }
}
