//! RFC document model: tag, title, numbered sections.

use std::fmt;

/// One numbered section of an RFC.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Section {
    /// Section number as written (`"3.2.4"`).
    pub number: String,
    /// Section title.
    pub title: String,
    /// Body text (prose and/or ABNF).
    pub text: String,
}

/// An RFC document assembled from embedded text.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct RfcDocument {
    /// Lowercase tag (`"rfc7230"`).
    pub tag: String,
    /// Document title.
    pub title: String,
    /// Sections in document order.
    pub sections: Vec<Section>,
}

impl RfcDocument {
    /// Splits embedded text into sections on heading lines of the form
    /// `N.  Title` / `N.M.N.  Title` (two spaces after the dotted number,
    /// as RFCs format them).
    pub fn from_text(tag: &str, title: &str, text: &str) -> RfcDocument {
        let mut sections = Vec::new();
        let mut current: Option<Section> = None;
        for line in text.lines() {
            if let Some((number, heading)) = parse_heading(line) {
                if let Some(s) = current.take() {
                    sections.push(s);
                }
                current = Some(Section { number, title: heading, text: String::new() });
                continue;
            }
            match &mut current {
                Some(s) => {
                    s.text.push_str(line);
                    s.text.push('\n');
                }
                None => {
                    // Preamble before the first heading becomes section "0".
                    current = Some(Section {
                        number: "0".to_string(),
                        title: "Preamble".to_string(),
                        text: format!("{line}\n"),
                    });
                }
            }
        }
        if let Some(s) = current.take() {
            sections.push(s);
        }
        RfcDocument { tag: tag.to_ascii_lowercase(), title: title.to_string(), sections }
    }

    /// The concatenated text of all sections.
    pub fn full_text(&self) -> String {
        let mut out = String::new();
        for s in &self.sections {
            out.push_str(&s.text);
            out.push('\n');
        }
        out
    }

    /// Whitespace-separated word count over all section text.
    pub fn word_count(&self) -> usize {
        self.sections.iter().map(|s| s.text.split_whitespace().count()).sum()
    }

    /// Finds a section by its dotted number.
    pub fn section(&self, number: &str) -> Option<&Section> {
        self.sections.iter().find(|s| s.number == number)
    }
}

impl fmt::Display for RfcDocument {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({}, {} sections)", self.tag.to_uppercase(), self.title, self.sections.len())
    }
}

/// Parses `3.2.4.  Field Parsing` into `("3.2.4", "Field Parsing")`.
fn parse_heading(line: &str) -> Option<(String, String)> {
    let bytes = line.as_bytes();
    if bytes.first().is_none_or(|b| !b.is_ascii_digit()) {
        return None;
    }
    let mut i = 0;
    // dotted number: DIGIT+ ( "." DIGIT+ )* "."
    loop {
        let start = i;
        while i < bytes.len() && bytes[i].is_ascii_digit() {
            i += 1;
        }
        if i == start || i >= bytes.len() || bytes[i] != b'.' {
            return None;
        }
        i += 1; // consume '.'
        if i >= bytes.len() || !bytes[i].is_ascii_digit() {
            break;
        }
    }
    // Two spaces then the title.
    let rest = &line[i..];
    let title = rest.strip_prefix("  ")?;
    if title.trim().is_empty() {
        return None;
    }
    Some((line[..i - 1].to_string(), title.trim().to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heading_parsing() {
        assert_eq!(
            parse_heading("3.  Message Format"),
            Some(("3".into(), "Message Format".into()))
        );
        assert_eq!(
            parse_heading("3.2.4.  Field Parsing"),
            Some(("3.2.4".into(), "Field Parsing".into()))
        );
        assert_eq!(parse_heading("   indented"), None);
        assert_eq!(parse_heading("3. single space"), None);
        assert_eq!(parse_heading("400 (Bad Request)"), None);
        assert_eq!(parse_heading("1*DIGIT"), None);
    }

    #[test]
    fn document_splits_into_sections() {
        let text = "preamble line\n1.  Intro\nbody a\n2.1.  Deep\nbody b\nbody c\n";
        let d = RfcDocument::from_text("rfcX", "T", text);
        assert_eq!(d.sections.len(), 3);
        assert_eq!(d.sections[0].number, "0");
        assert_eq!(d.sections[1].number, "1");
        assert_eq!(d.sections[2].number, "2.1");
        assert_eq!(d.sections[2].text, "body b\nbody c\n");
        assert_eq!(d.section("2.1").unwrap().title, "Deep");
        assert_eq!(d.word_count(), 8);
        assert_eq!(d.tag, "rfcx");
    }

    #[test]
    fn full_text_concatenates() {
        let d = RfcDocument::from_text("r", "t", "1.  A\nx\n2.  B\ny\n");
        assert_eq!(d.full_text(), "x\n\ny\n\n");
    }
}
