//! Curated excerpt of RFC 7235 — HTTP/1.1: Authentication.

/// The embedded document text.
pub const TEXT: &str = r##"
1.  Introduction

   HTTP provides a general framework for access control and
   authentication, via an extensible set of challenge-response
   authentication schemes, which can be used by a server to challenge a
   client request and by a client to provide authentication information.
   This document defines HTTP/1.1 authentication in terms of the
   architecture defined in RFC 7230.

2.1.  Challenge and Response

   HTTP provides a simple challenge-response authentication framework
   that can be used by a server to challenge a client request and by a
   client to provide authentication information.

     auth-scheme = token
     auth-param = token BWS "=" BWS ( token / quoted-string )
     token68 = 1*( ALPHA / DIGIT / "-" / "." / "_" / "~" / "+" / "/" )
      *"="
     challenge = auth-scheme [ 1*SP ( token68 / ( *( "," OWS )
      auth-param *( OWS "," [ OWS auth-param ] ) ) ) ]
     credentials = auth-scheme [ 1*SP ( token68 / ( *( "," OWS )
      auth-param *( OWS "," [ OWS auth-param ] ) ) ) ]

   Upon receipt of a request for a protected resource that omits
   credentials, contains invalid credentials, or contains partial
   credentials, the server SHOULD send a 401 (Unauthorized) response
   that contains a WWW-Authenticate header field with at least one
   (possibly new) challenge applicable to the requested resource.

   A server that receives valid credentials that are not adequate to
   gain access ought to respond with the 403 (Forbidden) status code.

3.1.  401 Unauthorized

   The 401 (Unauthorized) status code indicates that the request has not
   been applied because it lacks valid authentication credentials for
   the target resource. The server generating a 401 response MUST send a
   WWW-Authenticate header field containing at least one challenge
   applicable to the target resource.

3.2.  407 Proxy Authentication Required

   The 407 (Proxy Authentication Required) status code is similar to 401
   (Unauthorized), but it indicates that the client needs to
   authenticate itself in order to use a proxy. The proxy MUST send a
   Proxy-Authenticate header field containing a challenge applicable to
   that proxy for the target resource.

4.1.  WWW-Authenticate

   The "WWW-Authenticate" header field indicates the authentication
   scheme(s) and parameters applicable to the target resource.

     WWW-Authenticate = *( "," OWS ) challenge *( OWS "," [ OWS
      challenge ] )

   A server generating a 401 (Unauthorized) response MUST send a
   WWW-Authenticate header field containing at least one challenge. A
   server MAY generate a WWW-Authenticate header field in other response
   messages to indicate that supplying credentials (or different
   credentials) might affect the response.

4.2.  Authorization

   The "Authorization" header field allows a user agent to authenticate
   itself with an origin server, usually, but not necessarily, after
   receiving a 401 (Unauthorized) response.

     Authorization = credentials

   If a request is authenticated and a realm specified, the same
   credentials are presumed to be valid for all other requests within
   this realm. A proxy forwarding a request MUST NOT modify any
   Authorization header fields in that request. A shared cache MUST NOT
   use a cached response to a request with an Authorization header field
   to satisfy any subsequent request unless explicitly allowed by a
   cache directive.

4.3.  Proxy-Authenticate

   The "Proxy-Authenticate" header field consists of at least one
   challenge that indicates the authentication scheme(s) and parameters
   applicable to the proxy for this effective request URI.

     Proxy-Authenticate = *( "," OWS ) challenge *( OWS "," [ OWS
      challenge ] )

   Unlike WWW-Authenticate, the Proxy-Authenticate header field applies
   only to the next outbound client on the response chain. An
   intermediary MUST NOT forward the Proxy-Authenticate header field.

4.4.  Proxy-Authorization

   The "Proxy-Authorization" header field allows the client to identify
   itself (or its user) to a proxy that requires authentication.

     Proxy-Authorization = credentials

   An intermediary MAY consume the Proxy-Authorization header field if
   the credentials were intended for that intermediary; otherwise the
   intermediary MUST forward the field unmodified.

5.1.  Authentication Scheme Registry

   The "Hypertext Transfer Protocol (HTTP) Authentication Scheme
   Registry" defines the namespace for the authentication schemes in
   challenges and credentials. A new scheme registration MUST include a
   pointer to the specification text. The authentication parameter
   "realm" is reserved for use by authentication schemes that wish to
   indicate a scope of protection. A sender MUST NOT generate the
   quoted and unquoted form of the same parameter value in the same
   challenge, since recipients are known to disagree about which one
   wins.

6.  Security Considerations

   The HTTP authentication framework does not define a single mechanism
   for maintaining the confidentiality of credentials. A sender MUST NOT
   transmit credentials within a URI, since URIs are routinely logged
   and forwarded by intermediaries that have no obligation to keep them
   secret. A proxy MUST NOT use a cached 401 (Unauthorized) response to
   satisfy a request with different credentials, since doing so denies
   service to authorized users.
"##;
