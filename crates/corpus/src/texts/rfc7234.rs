//! Curated excerpt of RFC 7234 — HTTP/1.1: Caching.

/// The embedded document text.
pub const TEXT: &str = r##"
1.  Introduction

   HTTP is typically used for distributed information systems, where
   performance can be improved by the use of response caches. This
   document defines aspects of HTTP/1.1 related to caching and reusing
   response messages. An HTTP cache is a local store of response
   messages and the subsystem that controls storage, retrieval, and
   deletion of messages in it. A shared cache is a cache that stores
   responses to be reused by more than one user; shared caches are
   usually (but not always) deployed as a part of an intermediary.

2.  Overview of Cache Operation

   Proper cache operation preserves the semantics of HTTP transfers
   while eliminating the transfer of information already held in the
   cache. The goal of caching in HTTP/1.1 is to significantly improve
   performance by reusing a prior response message to satisfy a current
   request. A stored response is considered fresh if the response can be
   reused without validation.

3.  Storing Responses in Caches

   A cache MUST NOT store a response to any request, unless the request
   method is understood by the cache and defined as being cacheable, and
   the response status code is understood by the cache, and the
   "no-store" cache directive does not appear in request or response
   header fields, and the "private" response directive does not appear
   in the response if the cache is shared, and the Authorization header
   field does not appear in the request if the cache is shared, unless
   the response explicitly allows it.

   In this context, a cache has understood a request method or a
   response status code if it recognizes it and implements all specified
   caching-related behavior. A response message is considered complete
   when all of the octets indicated by the message framing are received
   prior to the connection being closed.

   A shared cache SHOULD NOT store a response to a request whose
   protocol version is below HTTP/1.1, since the framing and caching
   semantics of earlier protocol versions are ambiguous and reuse of
   such responses can mislead other users of the cache. A cache SHOULD
   NOT store an error response, such as one with a 400 (Bad Request) or
   5xx status code, unless storage is explicitly permitted through
   cache directives, since reusing an error that was specific to one
   malformed request denies service to subsequent well-formed requests.

3.1.  Storing Incomplete Responses

   A response message is considered complete when all of the octets
   indicated by the message framing are received prior to the connection
   being closed. If the request method is GET, the response status code
   is 200 (OK), and the entire response header section has been
   received, a cache MAY store an incomplete response message body if
   the cache entry is recorded as incomplete. A cache MUST NOT use an
   incomplete response to answer requests unless the response has been
   made complete or the request is partial and specifies a range that is
   wholly within the incomplete response.

4.  Constructing Responses from Caches

   When presented with a request, a cache MUST NOT reuse a stored
   response, unless the presented effective request URI and that of the
   stored response match, and the request method associated with the
   stored response allows it to be used for the presented request, and
   selecting header fields nominated by the stored response (if any)
   match those presented, and the presented request does not contain the
   no-cache pragma, nor the no-cache cache directive, unless the stored
   response is successfully validated, and the stored response is either
   fresh, allowed to be served stale, or successfully validated.

   The primary cache key consists of the request method and target URI.
   However, since HTTP caches in common use today are typically limited
   to caching responses to GET, many caches simply decline other methods
   and use only the URI as the primary cache key. Because the cache key
   is derived from the request as interpreted by the cache, any
   disagreement between the cache and the origin server about the
   request's target host allows an attacker to poison the cache entry
   of a victim host.

4.2.4.  Serving Stale Responses

   A "stale" response is one that either has explicit expiry information
   or is allowed to have heuristic expiry calculated, but is not fresh.
   A cache MUST NOT generate a stale response if it is prohibited by an
   explicit in-protocol directive. A cache SHOULD generate a Warning
   header field with the 110 warn-code in stale responses.

5.1.  Age

   The "Age" header field conveys the sender's estimate of the amount of
   time since the response was generated or successfully validated at
   the origin server.

     Age = delta-seconds
     delta-seconds = 1*DIGIT

   The presence of an Age header field implies that the response was not
   generated or validated by the origin server for this request.

5.2.  Cache-Control

   The "Cache-Control" header field is used to specify directives for
   caches along the request/response chain. Such cache directives are
   unidirectional in that the presence of a directive in a request does
   not imply that the same directive is to be given in the response.

     Cache-Control = *( "," OWS ) cache-directive *( OWS "," [ OWS
      cache-directive ] )
     cache-directive = token [ "=" ( token / quoted-string ) ]

   A cache MUST obey the requirements of the Cache-Control directives
   defined in this section. A proxy, whether or not it implements a
   cache, MUST pass cache directives through in forwarded messages,
   regardless of their significance to that application, since the
   directives might be applicable to all recipients along the
   request/response chain.

5.2.1.1.  no-cache

   The "no-cache" request directive indicates that a cache MUST NOT use
   a stored response to satisfy the request without successful
   validation on the origin server.

5.2.1.5.  no-store

   The "no-store" request directive indicates that a cache MUST NOT
   store any part of either this request or any response to it. This
   directive applies to both private and shared caches.

5.3.  Expires

   The "Expires" header field gives the date/time after which the
   response is considered stale.

     Expires = HTTP-date

   A cache recipient MUST interpret invalid date formats, especially the
   value "0", as representing a time in the past (i.e., "already
   expired").

5.4.  Pragma

   The "Pragma" header field allows backwards compatibility with
   HTTP/1.0 caches so that clients can specify a "no-cache" request that
   they will understand.

     Pragma = *( "," OWS ) pragma-directive *( OWS "," [ OWS
      pragma-directive ] )
     pragma-directive = "no-cache" / extension-pragma
     extension-pragma = token [ "=" ( token / quoted-string ) ]

   When the Cache-Control header field is not present in a request,
   caches MUST consider the no-cache request pragma-directive as having
   the same effect as if "Cache-Control: no-cache" were present.

5.5.  Warning

   The "Warning" header field is used to carry additional information
   about the status or transformation of a message that might not be
   reflected in the status code.

     Warning = *( "," OWS ) warning-value *( OWS "," [ OWS
      warning-value ] )
     warning-value = warn-code SP warn-agent SP warn-text [ SP
      warn-date ]
     warn-code = 3DIGIT
     warn-agent = ( uri-host [ ":" port ] ) / pseudonym
     warn-text = quoted-string
     warn-date = DQUOTE HTTP-date DQUOTE

4.4.  Invalidation

   Because unsafe request methods (Section 4.2.1 of RFC 7231) such as
   PUT, POST, or DELETE have the potential for changing state on the
   origin server, intervening caches can use them to keep their contents
   up to date. A cache MUST invalidate the effective Request URI as well
   as the URI(s) in the Location and Content-Location response header
   fields (if present) when a non-error status code is received in
   response to an unsafe request method. However, a cache MUST NOT
   invalidate a URI from a Location or Content-Location response header
   field if the host part of that URI differs from the host part in the
   effective request URI, since an attacker could otherwise use a
   response it controls to evict a victim's entries.

6.  History Lists

   User agents often have history mechanisms, such as "Back" buttons,
   that can be used to redisplay a representation retrieved earlier in a
   session. The freshness model does not necessarily apply to history
   mechanisms. A user agent MAY display a stale representation from its
   history without validation, provided the display clearly indicates
   that the content is historical rather than current.

8.  Security Considerations

   Caches expose additional potential vulnerabilities, since the
   contents of the cache represent an attractive target for malicious
   exploitation. Because cache contents persist after an HTTP request is
   complete, an attack on the cache can reveal information long after a
   user believes that the information has been removed from the network.
   Therefore, cache contents need to be protected as sensitive
   information. Implementation flaws might allow attackers to insert
   content into a cache ("cache poisoning"), leading to compromise of
   clients that trust that content. A cache that disagrees with a
   downstream server about the identity of the request's target is
   especially exposed: the cache stores the poisoned response under the
   key of the victim resource, and every subsequent user receives the
   attacker's payload or a denial of service.
"##;
