//! Embedded curated RFC excerpts (see crate docs for the substitution note).

mod rfc3986;
mod rfc5321;
mod rfc7230;
mod rfc7231;
mod rfc7232;
mod rfc7233;
mod rfc7234;
mod rfc7235;

pub use rfc3986::TEXT as RFC3986;
pub use rfc5321::TEXT as RFC5321;
pub use rfc7230::TEXT as RFC7230;
pub use rfc7231::TEXT as RFC7231;
pub use rfc7232::TEXT as RFC7232;
pub use rfc7233::TEXT as RFC7233;
pub use rfc7234::TEXT as RFC7234;
pub use rfc7235::TEXT as RFC7235;
