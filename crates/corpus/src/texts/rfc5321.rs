//! Curated excerpt of RFC 5321 — Simple Mail Transfer Protocol.
//!
//! Not part of the HTTP evaluation corpus: this document backs the
//! `smtp_preview` example, demonstrating the paper's §V claim that the
//! Documentation Analyzer generalizes to other RFC-specified protocols.

/// The embedded document text.
pub const TEXT: &str = r##"
2.  The SMTP Model

   The SMTP design can be pictured as a sender-SMTP process that
   transfers mail to one or more receiver-SMTP processes. The means by
   which a mail message is presented to an SMTP client, and how that
   client determines the identifier(s) ("names") of the domain(s) to
   which mail messages are to be transferred, is a local matter.

2.3.5.  Domain Names

   A domain name (or often just a "domain") consists of one or more
   components, separated by dots if more than one appears. Only resolvable,
   fully-qualified domain names (FQDNs) are permitted when domain names
   are used in SMTP. A sender MUST NOT send a domain name that is
   unresolvable in the address parameters of a MAIL command. The domain
   name given in the EHLO command MUST be either a primary host name or,
   if the host has no name, an address literal.

3.3.  Mail Transactions

   There are three steps to SMTP mail transactions. The transaction
   starts with a MAIL command that gives the sender identification. A
   series of one or more RCPT commands follows, giving the receiver
   information. Then, a DATA command initiates transfer of the mail data
   and is terminated by the "end of mail" data indicator, which also
   confirms the transaction.

     mail-command = "MAIL FROM:" reverse-path [ SP mail-parameters ] CRLF
     rcpt-command = "RCPT TO:" forward-path [ SP rcpt-parameters ] CRLF
     reverse-path = path / empty-path
     forward-path = path
     path = "<" [ a-d-l ":" ] mailbox ">"
     empty-path = "<>"
     a-d-l = at-domain *( "," at-domain )
     at-domain = "@" domain
     mailbox = local-part "@" ( domain / address-literal )
     local-part = dot-string / quoted-string-smtp
     dot-string = atom *( "." atom )
     atom = 1*atext
     atext = ALPHA / DIGIT / "!" / "#" / "$" / "%" / "&" / "'" / "*" /
      "+" / "-" / "/" / "=" / "?" / "^" / "_" / "`" / "{" / "|" / "}" /
      "~"
     quoted-string-smtp = DQUOTE *qcontent DQUOTE
     qcontent = %x20-21 / %x23-5B / %x5D-7E
     domain = sub-domain *( "." sub-domain )
     sub-domain = let-dig [ ldh-str ]
     let-dig = ALPHA / DIGIT
     ldh-str = *( ALPHA / DIGIT / "-" ) let-dig
     address-literal = "[" 1*( DIGIT / "." / ":" ) "]"
     mail-parameters = esmtp-param *( SP esmtp-param )
     rcpt-parameters = esmtp-param *( SP esmtp-param )
     esmtp-param = esmtp-keyword [ "=" esmtp-value ]
     esmtp-keyword = ( ALPHA / DIGIT ) *( ALPHA / DIGIT / "-" )
     esmtp-value = 1*( %x21-3C / %x3E-7E )

   The sender MUST NOT send a MAIL command with a reverse-path that the
   receiver has already rejected in this session. A server MUST NOT
   apply the mail transaction until the end of mail data indicator is
   received. If a RCPT command appears without a previous MAIL command,
   the server MUST respond with a 503 "Bad sequence of commands"
   response.

4.1.1.1.  Extended HELLO or HELLO

   These commands are used to identify the SMTP client to the SMTP
   server. A server MUST respond with a 501 status code to an EHLO
   command that contains an invalid domain name or address literal. An
   SMTP server MAY verify that the domain name argument in the EHLO
   command actually corresponds to the IP address of the client.
   However, if the verification fails, the server MUST NOT refuse to
   accept a message on that basis.

4.5.3.1.  Size Limits and Minimums

   There are several objects that have required minimum or maximum
   sizes. Every implementation MUST be able to receive objects of at
   least these sizes. Objects larger than these sizes SHOULD be avoided
   when possible. To the maximum extent possible, implementation
   techniques that impose no limits on the length of these objects
   should be used. A server that receives a command line longer than it
   can handle MUST respond with a 500 status code rather than
   truncating the line, since acting on a truncated command changes the
   meaning of the transaction.
"##;
