//! Curated excerpt of RFC 7233 — HTTP/1.1: Range Requests.

/// The embedded document text.
pub const TEXT: &str = r##"
1.  Introduction

   Hypertext Transfer Protocol (HTTP) clients often encounter
   interrupted data transfers as a result of canceled requests or
   dropped connections. When a client has stored a partial
   representation, it is desirable to request the remainder of that
   representation in a subsequent request rather than transfer the
   entire representation. Likewise, devices with limited local storage
   might benefit from being able to request only a subset of a larger
   representation.

2.1.  Byte Ranges

   Since representation data is transferred in payloads as a sequence of
   octets, a byte range is a meaningful substructure for any
   representation transferable over HTTP.

     bytes-unit       = "bytes"
     byte-ranges-specifier = bytes-unit "=" byte-range-set
     byte-range-set  = *( "," OWS ) ( byte-range-spec /
      suffix-byte-range-spec ) *( OWS "," [ OWS ( byte-range-spec /
      suffix-byte-range-spec ) ] )
     byte-range-spec = first-byte-pos "-" [ last-byte-pos ]
     first-byte-pos  = 1*DIGIT
     last-byte-pos   = 1*DIGIT
     suffix-byte-range-spec = "-" suffix-length
     suffix-length = 1*DIGIT

   A byte-range-spec is invalid if the last-byte-pos value is present
   and less than the first-byte-pos. A client can limit the number of
   bytes requested without knowing the size of the selected
   representation. A client MUST NOT generate a byte-range-spec whose
   first-byte-pos is greater than its last-byte-pos.

   In the byte-range syntax, first-byte-pos, last-byte-pos, and
   suffix-length are expressed as decimal number of octets. Overlapping
   ranges, and many small requests for tiny ranges, can be exploited to
   cause a denial of service through amplification; a server that
   receives a request with many overlapping ranges MAY either ignore the
   Range header field or coalesce the ranges before processing.

3.1.  Range

   The "Range" header field on a GET request modifies the method
   semantics to request transfer of only one or more subranges of the
   selected representation data, rather than the entire selected
   representation data.

     Range = byte-ranges-specifier / other-ranges-specifier
     other-ranges-specifier = other-range-unit "=" other-range-set
     other-range-unit = token
     other-range-set = 1*VCHAR

   A server MAY ignore the Range header field. However, origin servers
   and intermediate caches ought to support byte ranges when possible,
   since Range supports efficient recovery from partially failed
   transfers. A server MUST ignore a Range header field received with a
   request method other than GET. A proxy MAY discard a Range header
   field that contains a range unit it does not understand.

   A server that supports range requests MAY ignore or reject a Range
   header field that consists of more than two overlapping ranges, or a
   set of many small ranges that are not listed in ascending order,
   since both are indications of either a broken client or a deliberate
   denial-of-service attack.

3.2.  If-Range

   If a client has a partial copy of a representation and wishes to have
   an up-to-date copy of the entire representation, it could use the
   Range header field with a conditional GET. The "If-Range" header
   field allows a client to "short-circuit" the second request.

     If-Range = entity-tag / HTTP-date

   A client MUST NOT generate an If-Range header field in a request that
   does not contain a Range header field. A server MUST ignore an
   If-Range header field received in a request that does not contain a
   Range header field. A client MUST NOT generate an If-Range header
   field containing an entity-tag that is marked as weak.

4.1.  206 Partial Content

   The 206 (Partial Content) status code indicates that the server is
   successfully fulfilling a range request for the target resource by
   transferring one or more parts of the selected representation that
   correspond to the satisfiable ranges found in the request's Range
   header field.

     Content-Range = byte-content-range / other-content-range
     byte-content-range = bytes-unit SP ( byte-range-resp /
      unsatisfied-range )
     byte-range-resp = byte-range "/" ( complete-length / "*" )
     byte-range = first-byte-pos "-" last-byte-pos
     unsatisfied-range = "*/" complete-length
     complete-length = 1*DIGIT
     other-content-range = other-range-unit SP other-range-resp
     other-range-resp = *CHAR

   A server generating a 206 response MUST generate a Content-Range
   header field, describing what range of the selected representation is
   enclosed, and a payload consisting of the range.

4.4.  416 Range Not Satisfiable

   The 416 (Range Not Satisfiable) status code indicates that none of
   the ranges in the request's Range header field overlap the current
   extent of the selected resource or that the set of ranges requested
   has been rejected due to invalid ranges or an excessive request of
   small or overlapping ranges.
"##;
