//! Curated excerpt of RFC 7231 — HTTP/1.1: Semantics and Content.

/// The embedded document text.
pub const TEXT: &str = r##"
1.  Introduction

   Each Hypertext Transfer Protocol (HTTP) message is either a request or
   a response. A server listens on a connection for a request, parses
   each message received, interprets the message semantics in relation to
   the identified request target, and responds to that request with one
   or more response messages. A client constructs request messages to
   communicate specific intentions, examines received responses to see if
   the intentions were carried out, and determines how to interpret the
   results.

   This document defines HTTP/1.1 request and response semantics in terms
   of the architecture, syntax notation, and conformance criteria defined
   in RFC 7230.

3.1.1.  Media Type

   HTTP uses Internet media types in the Content-Type and Accept header
   fields in order to provide open and extensible data typing and type
   negotiation.

     media-type = type "/" subtype *( OWS ";" OWS parameter )
     type       = token
     subtype    = token
     parameter  = token "=" ( token / quoted-string )

   The type/subtype MAY be followed by parameters in the form of
   name=value pairs. The type, subtype, and parameter name tokens are
   case-insensitive. A sender MUST NOT generate whitespace around the "="
   character of a parameter.

     Content-Type = media-type

   A sender that generates a message containing a payload body SHOULD
   generate a Content-Type header field in that message unless the
   intended media type of the enclosed representation is unknown to the
   sender.

3.1.2.  Encoding

   Content codings are transformations applied to a representation in
   order to compress its data without losing the identity of its
   underlying media type.

     content-coding   = token
     Content-Encoding = *( "," OWS ) content-coding *( OWS "," [ OWS
      content-coding ] )

   If the media type includes an inherent encoding, such as a data format
   that is always compressed, then that encoding would not be restated in
   Content-Encoding even if it happens to be the same algorithm as one of
   the content codings. An origin server MAY respond with a status code
   of 415 (Unsupported Media Type) if a representation in the request
   message has a content coding that is not acceptable.

4.1.  Request Method Overview

   The request method token is the primary source of request semantics;
   it indicates the purpose for which the client has made this request
   and what is expected by the client as a successful result.

     method = token

   The method token is case-sensitive because it might be used as a
   gateway to object-based systems with case-sensitive method names. By
   convention, standardized methods are defined in all-uppercase
   US-ASCII letters. An origin server that receives a request method
   that is unrecognized or not implemented SHOULD respond with the 501
   (Not Implemented) status code. An origin server that receives a
   request method that is recognized and implemented, but not allowed
   for the target resource, SHOULD respond with the 405 (Method Not
   Allowed) status code.

4.3.1.  GET

   The GET method requests transfer of a current selected representation
   for the target resource. GET is the primary mechanism of information
   retrieval and the focus of almost all performance optimizations.

   A payload within a GET request message has no defined semantics;
   sending a payload body on a GET request might cause some existing
   implementations to reject the request. A client SHOULD NOT generate a
   body in a GET request. A server SHOULD ignore a received payload body
   in a GET request if the framing is otherwise valid.

4.3.2.  HEAD

   The HEAD method is identical to GET except that the server MUST NOT
   send a message body in the response (i.e., the response terminates at
   the end of the header section). A payload within a HEAD request
   message has no defined semantics; sending a payload body on a HEAD
   request might cause some existing implementations to reject the
   request.

4.3.3.  POST

   The POST method requests that the target resource process the
   representation enclosed in the request according to the resource's
   own specific semantics. A server that supports POST SHOULD read the
   entire request message body before acting on the request.

4.3.6.  CONNECT

   The CONNECT method requests that the recipient establish a tunnel to
   the destination origin server identified by the request-target and,
   if successful, thereafter restrict its behavior to blind forwarding
   of packets, in both directions, until the tunnel is closed. A client
   sending a CONNECT request MUST send the authority form of
   request-target. A server MUST NOT send any Transfer-Encoding or
   Content-Length header fields in a 2xx (Successful) response to
   CONNECT.

4.3.8.  TRACE

   The TRACE method requests a remote, application-level loop-back of
   the request message. The final recipient of the request SHOULD
   reflect the message received, excluding some fields, back to the
   client as the message body of a 200 (OK) response. A client MUST NOT
   send a message body in a TRACE request.

5.1.1.  Expect

   The "Expect" header field in a request indicates a certain set of
   behaviors (expectations) that need to be supported by the server in
   order to properly handle this request. The only such expectation
   defined by this specification is 100-continue.

     Expect = "100-continue"

   The Expect field-value is case-insensitive. A server that receives an
   Expect field-value other than 100-continue MAY respond with a 417
   (Expectation Failed) status code to indicate that the unexpected
   expectation cannot be met.

   A 100-continue expectation informs recipients that the client is
   about to send a (presumably large) message body in this request and
   wishes to receive a 100 (Continue) interim response if the
   request-line and header fields are not sufficient to cause an
   immediate success, redirect, or error response. A client MUST NOT
   generate a 100-continue expectation in a request that does not
   include a message body.

   A server that receives a 100-continue expectation in an HTTP/1.0
   request MUST ignore that expectation. A server MAY omit sending a 100
   (Continue) response if it has already received some or all of the
   message body for the corresponding request, or if the framing
   indicates that there is no message body. A proxy MUST NOT forward a
   100-continue expectation in a request that it forwards using a
   protocol version below HTTP/1.1.

5.1.2.  Max-Forwards

   The "Max-Forwards" header field provides a mechanism with the TRACE
   and OPTIONS request methods to limit the number of times that the
   request is forwarded by proxies.

     Max-Forwards = 1*DIGIT

   Each intermediary that receives a TRACE or OPTIONS request containing
   a Max-Forwards header field MUST check and update its value prior to
   forwarding the request. If the received value is zero (0), the
   intermediary MUST NOT forward the request; instead, the intermediary
   MUST respond as the final recipient.

5.3.1.  Quality Values

   Many of the request header fields for proactive negotiation use a
   common parameter, named "q" (case-insensitive), to assign a relative
   "weight" to the preference for that associated kind of content.

     weight = OWS ";" OWS "q=" qvalue
     qvalue = ( "0" [ "." *3DIGIT ] ) / ( "1" [ "." *3"0" ] )

   A sender of qvalue MUST NOT generate more than three digits after the
   decimal point. User configuration of these values ought to be limited
   in the same fashion.

5.3.2.  Accept

   The "Accept" header field can be used by user agents to specify
   response media types that are acceptable.

     Accept = [ ( "," / ( media-range [ accept-params ] ) ) *( OWS ","
      [ OWS ( media-range [ accept-params ] ) ] ) ]
     media-range = ( "*/*" / ( type "/*" ) / ( type "/" subtype ) ) *(
      OWS ";" OWS parameter )
     accept-params = weight *( accept-ext )
     accept-ext = OWS ";" OWS token [ "=" ( token / quoted-string ) ]

   A request without any Accept header field implies that the user agent
   will accept any media type in response. If the header field is
   present in a request and none of the available representations for
   the response have a media type that is listed as acceptable, the
   origin server can either honor the header field by sending a 406
   (Not Acceptable) response or disregard the header field by treating
   the response as if it is not subject to content negotiation.

5.3.4.  Accept-Encoding

   The "Accept-Encoding" header field can be used by user agents to
   indicate what response content codings are acceptable in the
   response.

     Accept-Encoding = [ ( "," / ( codings [ weight ] ) ) *( OWS "," [
      OWS ( codings [ weight ] ) ] ) ]
     codings = content-coding / "identity" / "*"

   A server that fails to honor a qvalue of 0 for a coding the client
   refuses can deliver a payload the client cannot decode; a server MUST
   NOT send a content coding assigned a qvalue of 0 by the request.

5.5.3.  User-Agent

   The "User-Agent" header field contains information about the user
   agent originating the request, which is often used by servers to help
   identify the scope of reported interoperability problems.

     User-Agent = product *( RWS ( product / comment ) )

   A user agent SHOULD send a User-Agent field in each request unless
   specifically configured not to do so. A user agent SHOULD NOT
   generate a User-Agent field containing needlessly fine-grained
   detail. A sender MUST NOT generate advertising or other nonessential
   information within the product identifier.

6.  Response Status Codes

   The status-code element is a three-digit integer code giving the
   result of the attempt to understand and satisfy the request. HTTP
   status codes are extensible. A client MUST understand the class of
   any status code, as indicated by the first digit, and treat an
   unrecognized status code as being equivalent to the x00 status code
   of that class.

6.5.1.  400 Bad Request

   The 400 (Bad Request) status code indicates that the server cannot or
   will not process the request due to something that is perceived to be
   a client error (e.g., malformed request syntax, invalid request
   message framing, or deceptive request routing). A server sending a
   400 response SHOULD include a representation explaining the error.

6.5.7.  408 Request Timeout

   The 408 (Request Timeout) status code indicates that the server did
   not receive a complete request message within the time that it was
   prepared to wait. A server SHOULD send the "close" connection option
   in the response, since 408 implies that the server has decided to
   close the connection rather than continue waiting.

6.5.10.  411 Length Required

   The 411 (Length Required) status code indicates that the server
   refuses to accept the request without a defined Content-Length. The
   client MAY repeat the request if it adds a valid Content-Length
   header field containing the length of the message body in the request
   message.

6.5.14.  417 Expectation Failed

   The 417 (Expectation Failed) status code indicates that the
   expectation given in the request's Expect header field could not be
   met by at least one of the inbound servers.

6.6.2.  501 Not Implemented

   The 501 (Not Implemented) status code indicates that the server does
   not support the functionality required to fulfill the request. This
   is the appropriate response when the server does not recognize the
   request method and is not capable of supporting it for any resource.

6.6.6.  505 HTTP Version Not Supported

   The 505 (HTTP Version Not Supported) status code indicates that the
   server does not support, or refuses to support, the major version of
   HTTP that was used in the request message. The server is indicating
   that it is unable or unwilling to complete the request using the same
   major version as the client, other than with this error message.

7.1.1.  Date/Time Formats

   Prior to 1995, there were three different formats commonly used by
   servers to communicate timestamps. For compatibility with old
   implementations, all three are defined here.

     HTTP-date = IMF-fixdate / obs-date
     IMF-fixdate = day-name "," SP date1 SP time-of-day SP GMT
     day-name = %x4D.6F.6E / %x54.75.65 / %x57.65.64 / %x54.68.75 /
      %x46.72.69 / %x53.61.74 / %x53.75.6E
     date1 = day SP month SP year
     day = 2DIGIT
     month = %x4A.61.6E / %x46.65.62 / %x4D.61.72 / %x41.70.72 /
      %x4D.61.79 / %x4A.75.6E / %x4A.75.6C / %x41.75.67 / %x53.65.70 /
      %x4F.63.74 / %x4E.6F.76 / %x44.65.63
     year = 4DIGIT
     GMT = %x47.4D.54
     time-of-day = hour ":" minute ":" second
     hour = 2DIGIT
     minute = 2DIGIT
     second = 2DIGIT
     obs-date = rfc850-date / asctime-date
     rfc850-date = day-name-l "," SP date2 SP time-of-day SP GMT
     date2 = day "-" month "-" 2DIGIT
     day-name-l = %x4D.6F.6E.64.61.79 / %x54.75.65.73.64.61.79 /
      %x57.65.64.6E.65.73.64.61.79 / %x54.68.75.72.73.64.61.79 /
      %x46.72.69.64.61.79 / %x53.61.74.75.72.64.61.79 /
      %x53.75.6E.64.61.79
     asctime-date = day-name SP date3 SP time-of-day SP year
     date3 = month SP ( 2DIGIT / ( SP 1DIGIT ) )

   A recipient that parses a timestamp value in an HTTP header field
   MUST accept all three HTTP-date formats. A sender MUST generate
   timestamps in the IMF-fixdate format.

7.1.2.  Location

   The "Location" header field is used in some responses to refer to a
   specific resource in relation to the response.

     Location = URI-reference

7.1.3.  Retry-After

   Servers send the "Retry-After" header field to indicate how long the
   user agent ought to wait before making a follow-up request.

     Retry-After = HTTP-date / delay-seconds
     delay-seconds = 1*DIGIT

7.4.1.  Allow

   The "Allow" header field lists the set of methods advertised as
   supported by the target resource.

     Allow = [ ( "," / method ) *( OWS "," [ OWS method ] ) ]

   The actual set of allowed methods is defined by the origin server at
   the time of each request. A proxy MUST NOT modify the Allow header
   field.

7.4.2.  Server

   The "Server" header field contains information about the software
   used by the origin server to handle the request.

     Server = product *( RWS ( product / comment ) )
     product = token [ "/" product-version ]
     product-version = token

   An origin server SHOULD NOT generate a Server field containing
   needlessly fine-grained detail, since that can reveal internal
   implementation details that might make it easier for attackers to
   find and exploit known security holes.

4.3.4.  PUT

   The PUT method requests that the state of the target resource be
   created or replaced with the state defined by the representation
   enclosed in the request message payload. An origin server MUST NOT
   send a validator header field, such as an ETag or Last-Modified
   field, in a successful response to PUT unless the request's
   representation data was saved without any transformation applied to
   the body. An origin server SHOULD verify that the PUT representation
   is consistent with any constraints the server has for the target
   resource. An origin server MUST ignore unrecognized header fields
   received in a PUT request when those fields cannot affect the
   outcome of the request.

4.3.5.  DELETE

   The DELETE method requests that the origin server remove the
   association between the target resource and its current
   functionality. A payload within a DELETE request message has no
   defined semantics; sending a payload body on a DELETE request might
   cause some existing implementations to reject the request.

4.3.7.  OPTIONS

   The OPTIONS method requests information about the communication
   options available for the target resource. A client that generates
   an OPTIONS request containing a payload body MUST send a valid
   Content-Type header field describing the representation media type.
   A server generating a successful response to OPTIONS SHOULD send any
   header fields that might indicate optional features implemented by
   the server, such as Allow.

5.1.  Controls

   Controls are request header fields with directives for how the
   request is to be handled. A cache or origin server MUST evaluate the
   request controls before generating or selecting a response.

6.4.  Redirection 3xx

   The 3xx (Redirection) class of status code indicates that further
   action needs to be taken by the user agent in order to fulfill the
   request. A client SHOULD detect and intervene in cyclical
   redirections (i.e., "infinite" redirection loops). A user agent MUST
   NOT automatically redirect a request more than a small, bounded
   number of times. An automatic redirection of a request that changes
   the request method from POST to GET can change the conditions under
   which the request was originally generated; a user agent SHOULD NOT
   automatically redirect such a request unless it can confirm the
   change is safe.

6.4.2.  301 Moved Permanently

   The 301 (Moved Permanently) status code indicates that the target
   resource has been assigned a new permanent URI. The server SHOULD
   generate a Location header field in the response containing a
   preferred URI reference for the new permanent URI.

7.1.4.  Vary

   The "Vary" header field in a response describes what parts of a
   request message, aside from the method, Host header field, and
   request target, might influence the origin server's process for
   selecting and representing this response.

     Vary = "*" / ( *( "," OWS ) field-name *( OWS "," [ OWS field-name
      ] ) )

   A server SHOULD send a Vary header field when its algorithm for
   selecting a representation varies based on aspects of the request
   message other than the method and request target. A cache MUST NOT
   reuse a stored response whose Vary field-value is "*" without
   validation.

8.3.1.  Considerations for New Header Fields

   New header fields are registered with IANA. Authors of specifications
   defining new fields are advised to keep the name as short as
   practical and not to prefix the name with "X-" unless the header
   field will never be used on the Internet. A recipient MUST be able to
   parse a header field value that contains a comma within a quoted
   string without splitting the value at that comma.

9.1.  Attacks Based on File and Path Names

   Origin servers frequently make use of their local file system to
   manage the mapping from effective request URI to resource
   representations. An origin server MUST NOT allow path components of a
   request-target to escape its configured document root, since
   dot-dot-segments in a decoded path provide access to resources
   outside the intended tree. A server that fails to normalize
   percent-encoded path separators before applying access control
   decisions can be bypassed by a request whose encoded form hides the
   separator from the filter.

9.  Security Considerations

   This section is meant to inform developers, information providers,
   and users of known security concerns relevant to HTTP semantics and
   its use for transferring information over the Internet. Intermediaries
   that are not aware of new method semantics might blindly forward
   requests that ought to be rejected, which can be exploited to bypass
   security policies. A gateway ought not forward requests whose
   semantics it cannot evaluate against its security policy.
"##;
