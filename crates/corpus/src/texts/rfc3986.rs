//! Curated excerpt of RFC 3986 — URI: Generic Syntax (reference document
//! pulled in by the ABNF adaptor for `uri-host` and friends).

/// The embedded document text.
pub const TEXT: &str = r##"
1.  Introduction

   A Uniform Resource Identifier (URI) provides a simple and extensible
   means for identifying a resource. This specification defines the
   generic URI syntax and a process for resolving URI references that
   might be in relative form, along with guidelines and security
   considerations for the use of URIs on the Internet.

2.1.  Percent-Encoding

   A percent-encoding mechanism is used to represent a data octet in a
   component when that octet's corresponding character is outside the
   allowed set or is being used as a delimiter of, or within, the
   component.

     pct-encoded = "%" HEXDIG HEXDIG

   The uppercase hexadecimal digits 'A' through 'F' are equivalent to
   the lowercase digits 'a' through 'f', respectively. For consistency,
   URI producers and normalizers SHOULD use uppercase hexadecimal digits
   for all percent-encodings.

2.2.  Reserved Characters

   URIs include components and subcomponents that are delimited by
   characters in the "reserved" set.

     reserved    = gen-delims / sub-delims
     gen-delims  = ":" / "/" / "?" / "#" / "[" / "]" / "@"
     sub-delims  = "!" / "$" / "&" / "'" / "(" / ")" / "*" / "+" / "," /
      ";" / "="

2.3.  Unreserved Characters

   Characters that are allowed in a URI but do not have a reserved
   purpose are called unreserved.

     unreserved  = ALPHA / DIGIT / "-" / "." / "_" / "~"

3.  Syntax Components

   The generic URI syntax consists of a hierarchical sequence of
   components referred to as the scheme, authority, path, query, and
   fragment.

     URI = scheme ":" hier-part [ "?" query ] [ "#" fragment ]
     hier-part = ( "//" authority path-abempty ) / path-absolute /
      path-rootless / path-empty
     URI-reference = URI / relative-ref
     absolute-URI = scheme ":" hier-part [ "?" query ]
     relative-ref = relative-part [ "?" query ] [ "#" fragment ]
     relative-part = ( "//" authority path-abempty ) / path-absolute /
      path-noscheme / path-empty

3.1.  Scheme

   Each URI begins with a scheme name that refers to a specification for
   assigning identifiers within that scheme.

     scheme = ALPHA *( ALPHA / DIGIT / "+" / "-" / "." )

   An implementation SHOULD accept uppercase letters as equivalent to
   lowercase in scheme names for the sake of robustness, but SHOULD only
   produce lowercase scheme names.

3.2.  Authority

   Many URI schemes include a hierarchical element for a naming
   authority, such that governance of the name space defined by the
   remainder of the URI is delegated to that authority.

     authority = [ userinfo "@" ] host [ ":" port ]

   The authority component is preceded by a double slash ("//") and is
   terminated by the next slash ("/"), question mark ("?"), or number
   sign ("#") character, or by the end of the URI. URI producers and
   normalizers SHOULD omit the port component and its ":" delimiter if
   port is empty.

3.2.1.  User Information

   The userinfo subcomponent may consist of a user name and,
   optionally, scheme-specific information about how to gain
   authorization to access the resource.

     userinfo = *( unreserved / pct-encoded / sub-delims / ":" )

   Use of the format "user:password" in the userinfo field is
   deprecated. Applications SHOULD NOT render as clear text any data
   after the first colon found within a userinfo subcomponent.
   A recipient ought to be careful when interpreting an authority that
   contains an "@" character, since everything before the "@" is
   userinfo and only the remainder identifies the host; naive parsers
   that treat the leading substring as the host can be misled about
   the identity of the target.

3.2.2.  Host

   The host subcomponent of authority is identified by an IP literal
   encapsulated within square brackets, an IPv4 address in dotted-
   decimal form, or a registered name.

     host = IP-literal / IPv4address / reg-name
     IP-literal = "[" ( IPv6address / IPvFuture ) "]"
     IPvFuture = "v" 1*HEXDIG "." 1*( unreserved / sub-delims / ":" )
     IPv6address = ( 6( h16 ":" ) ls32 ) / ( "::" 5( h16 ":" ) ls32 ) /
      ( [ h16 ] "::" 4( h16 ":" ) ls32 ) / ( [ *1( h16 ":" ) h16 ] "::"
      3( h16 ":" ) ls32 ) / ( [ *2( h16 ":" ) h16 ] "::" 2( h16 ":" )
      ls32 ) / ( [ *3( h16 ":" ) h16 ] "::" h16 ":" ls32 ) / ( [ *4(
      h16 ":" ) h16 ] "::" ls32 ) / ( [ *5( h16 ":" ) h16 ] "::" h16 )
      / ( [ *6( h16 ":" ) h16 ] "::" )
     h16 = 1*4HEXDIG
     ls32 = ( h16 ":" h16 ) / IPv4address
     IPv4address = dec-octet "." dec-octet "." dec-octet "." dec-octet
     dec-octet = DIGIT / ( %x31-39 DIGIT ) / ( "1" 2DIGIT ) / ( "2"
      %x30-34 DIGIT ) / ( "25" %x30-35 )
     reg-name = *( unreserved / pct-encoded / sub-delims )

   The host subcomponent is case-insensitive. A registered name
   intended for lookup in the DNS uses the syntax defined in Section
   3.5 of RFC 1034. Producers SHOULD use lowercase letters for
   registered names and hexadecimal addresses for the sake of
   uniformity.

3.2.3.  Port

   The port subcomponent of authority is designated by an optional port
   number in decimal following the host and delimited from it by a
   single colon (":") character.

     port = *DIGIT

   A scheme may define a default port. URI producers and normalizers
   SHOULD omit the port component and its ":" delimiter if port is
   empty or if its value would be the same as that of the scheme's
   default.

3.3.  Path

   The path component contains data, usually organized in hierarchical
   form, that, along with data in the non-hierarchical query component,
   serves to identify a resource.

     path = path-abempty / path-absolute / path-noscheme /
      path-rootless / path-empty
     path-abempty = *( "/" segment )
     path-absolute = "/" [ segment-nz *( "/" segment ) ]
     path-noscheme = segment-nz-nc *( "/" segment )
     path-rootless = segment-nz *( "/" segment )
     path-empty = 0pchar
     segment = *pchar
     segment-nz = 1*pchar
     segment-nz-nc = 1*( unreserved / pct-encoded / sub-delims / "@" )
     pchar = unreserved / pct-encoded / sub-delims / ":" / "@"

   The path segments "." and "..", also known as dot-segments, are
   defined for relative reference within the path name hierarchy. An
   implementation MUST remove dot-segments from a path before using it
   to identify a resource, since attackers use dot-segments to traverse
   outside the intended name space.

3.4.  Query

   The query component contains non-hierarchical data that, along with
   data in the path component, serves to identify a resource within the
   scope of the URI's scheme and naming authority.

     query = *( pchar / "/" / "?" )

3.5.  Fragment

   The fragment identifier component of a URI allows indirect
   identification of a secondary resource by reference to a primary
   resource and additional identifying information.

     fragment = *( pchar / "/" / "?" )

7.6.  Semantic Attacks

   Because a URI is composed of multiple components with differing
   delimiters, an attacker can craft URIs that a human or a lenient
   parser interprets differently than a conformant parser. For example,
   the URI "http://trusted.example@evil.example/" identifies the host
   evil.example, while a careless reader assumes trusted.example. A
   parser MUST identify the host as the substring after the last "@" in
   the authority and before the next ":" or end of authority; any other
   interpretation enables authority spoofing.
"##;
