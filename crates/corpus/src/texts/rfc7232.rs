//! Curated excerpt of RFC 7232 — HTTP/1.1: Conditional Requests.

/// The embedded document text.
pub const TEXT: &str = r##"
1.  Introduction

   Conditional requests are HTTP requests that include one or more header
   fields indicating a precondition to be tested before applying the
   method semantics to the target resource. This document defines the
   HTTP/1.1 conditional request mechanisms in terms of the architecture,
   syntax notation, and conformance criteria defined in RFC 7230.

2.2.  Last-Modified

   The "Last-Modified" header field in a response provides a timestamp
   indicating the date and time at which the origin server believes the
   selected representation was last modified.

     Last-Modified = HTTP-date

   An origin server SHOULD send Last-Modified for any selected
   representation for which a last modification date can be reasonably
   and consistently determined. An origin server MUST NOT send a
   Last-Modified date that is later than the server's time of message
   origination.

2.3.  ETag

   The "ETag" header field in a response provides the current entity-tag
   for the selected representation, as determined at the conclusion of
   handling the request.

     ETag       = entity-tag
     entity-tag = [ weak ] opaque-tag
     weak       = %x57.2F ; "W/", case-sensitive
     opaque-tag = DQUOTE *etagc DQUOTE
     etagc      = %x21 / %x23-7E / obs-text

   An entity-tag can be more reliable for validation than a modification
   date in situations where it is inconvenient to store modification
   dates. A sender MUST NOT generate an entity-tag with a weakness
   indicator unless the representation might change in a way that is
   not semantically significant.

3.1.  If-Match

   The "If-Match" header field makes the request method conditional on
   the recipient origin server either having at least one current
   representation of the target resource, when the field-value is "*",
   or having a current representation of the target resource that has an
   entity-tag matching a member of the list of entity-tags provided in
   the field-value.

     If-Match = "*" / ( *( "," OWS ) entity-tag *( OWS "," [ OWS
      entity-tag ] ) )

   An origin server MUST NOT perform the requested method if a received
   If-Match condition evaluates to false; instead, the origin server
   MUST respond with either the 412 (Precondition Failed) status code or
   one of the 2xx (Successful) status codes if the origin server has
   already succeeded in processing an equivalent request.

3.2.  If-None-Match

   The "If-None-Match" header field makes the request method conditional
   on a recipient cache or origin server either not having any current
   representation of the target resource, when the field-value is "*",
   or having a selected representation with an entity-tag that does not
   match any of those listed in the field-value.

     If-None-Match = "*" / ( *( "," OWS ) entity-tag *( OWS "," [ OWS
      entity-tag ] ) )

   An origin server MUST NOT perform the requested method if the
   condition evaluates to false; instead, the origin server MUST respond
   with either the 304 (Not Modified) status code if the request method
   is GET or HEAD, or the 412 (Precondition Failed) status code for all
   other request methods.

3.3.  If-Modified-Since

   The "If-Modified-Since" header field makes a GET or HEAD request
   method conditional on the selected representation's modification date
   being more recent than the date provided in the field-value.

     If-Modified-Since = HTTP-date

   A recipient MUST ignore If-Modified-Since if the request contains an
   If-None-Match header field. A recipient MUST ignore the
   If-Modified-Since header field if the received field-value is not a
   valid HTTP-date, or if the request method is neither GET nor HEAD.

3.4.  If-Unmodified-Since

   The "If-Unmodified-Since" header field makes the request method
   conditional on the selected representation's last modification date
   being earlier than or equal to the date provided in the field-value.

     If-Unmodified-Since = HTTP-date

   A recipient MUST ignore If-Unmodified-Since if the request contains
   an If-Match header field.

4.1.  304 Not Modified

   The 304 (Not Modified) status code indicates that a conditional GET
   or HEAD request has been received and would have resulted in a 200
   (OK) response if it were not for the fact that the condition
   evaluated to false. The server generating a 304 response MUST
   generate any of the following header fields that would have been sent
   in a 200 (OK) response to the same request: Cache-Control,
   Content-Location, Date, ETag, Expires, and Vary. A 304 response
   cannot contain a message body; it is always terminated by the first
   empty line after the header fields.

4.2.  412 Precondition Failed

   The 412 (Precondition Failed) status code indicates that one or more
   conditions given in the request header fields evaluated to false when
   tested on the server.

2.4.  When to Use Entity-Tags and Last-Modified Dates

   In 200 (OK) responses to GET or HEAD, an origin server SHOULD send an
   entity-tag validator unless it is not feasible to generate one. An
   origin server SHOULD send a Last-Modified value if it is feasible to
   send one. A client that has one or more stored responses for a GET
   SHOULD send an If-None-Match header field with all of the associated
   entity-tags when generating a conditional request for that resource.

5.  Evaluation

   Except when excluded by the definition of the precondition itself, a
   recipient cache or origin server MUST evaluate received request
   preconditions after it has successfully performed its normal request
   checks and just before it would perform the action associated with
   the request method. A server MUST ignore all received preconditions
   if its response to the same request without those conditions would
   have been a status code other than a 2xx (Successful) or 412
   (Precondition Failed). A server that evaluates a precondition before
   verifying the request's target can be tricked into revealing the
   existence of resources the client is not authorized to see.

6.  Precedence

   When more than one conditional request header field is present in a
   request, the order in which the fields are evaluated becomes
   important. A recipient cache or origin server MUST evaluate the
   request preconditions defined by this specification in the order
   defined. A server MUST ignore all received preconditions if its
   response to the same request without those conditions would have been
   a status code other than a 2xx (Successful) or 412 (Precondition
   Failed). In other words, redirects and failures take precedence over
   the evaluation of preconditions in conditional requests.
"##;
