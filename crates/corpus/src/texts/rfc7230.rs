//! Curated excerpt of RFC 7230 — HTTP/1.1: Message Syntax and Routing.

/// The embedded document text.
pub const TEXT: &str = r##"
1.  Introduction

   The Hypertext Transfer Protocol (HTTP) is a stateless application-level
   protocol for distributed, collaborative, hypertext information systems.
   This document provides an overview of HTTP architecture and its
   associated terminology, defines the "http" and "https" Uniform Resource
   Identifier (URI) schemes, defines the HTTP/1.1 message syntax and
   parsing requirements, and describes related security concerns for
   implementations.

   HTTP is a generic interface protocol for information systems. It is
   designed to hide the details of how a service is implemented by
   presenting a uniform interface to clients that is independent of the
   types of resources provided. A server is not required to honor every
   request. Likewise, clients are not required to wait for a response
   before sending another request.

1.1.  Requirements Notation

   The key words "MUST", "MUST NOT", "REQUIRED", "SHALL", "SHALL NOT",
   "SHOULD", "SHOULD NOT", "RECOMMENDED", "MAY", and "OPTIONAL" in this
   document are to be interpreted as described in RFC 2119.

   Conformance criteria and considerations regarding error handling are
   defined in Section 2.5. An implementation is considered conformant if
   it complies with all of the requirements associated with the roles it
   partakes in HTTP.

1.2.  Syntax Notation

   This specification uses the Augmented Backus-Naur Form (ABNF) notation
   of RFC 5234 with a list extension that allows for compact definition of
   comma-separated lists. The following core rules are included by
   reference: ALPHA (letters), CR (carriage return), CRLF (CR LF), CTL
   (controls), DIGIT (decimal 0-9), DQUOTE (double quote), HEXDIG
   (hexadecimal 0-9/A-F/a-f), HTAB (horizontal tab), LF (line feed),
   OCTET (any 8-bit sequence of data), SP (space), and VCHAR (any visible
   US-ASCII character).

2.  Architecture

   HTTP was created for the World Wide Web architecture and has evolved
   over time to support the scalability needs of a worldwide hypertext
   system. Much of that architecture is reflected in the terminology and
   syntax productions used to define HTTP.

2.1.  Client/Server Messaging

   HTTP is a stateless request/response protocol that operates by
   exchanging messages across a reliable transport- or session-layer
   connection. An HTTP client is a program that establishes a connection
   to a server for the purpose of sending one or more HTTP requests. An
   HTTP server is a program that accepts connections in order to service
   HTTP requests by sending HTTP responses.

   The terms "client" and "server" refer only to the roles that these
   programs perform for a particular connection. The same program might
   act as a client on some connections and a server on others.

2.3.  Intermediaries

   HTTP enables the use of intermediaries to satisfy requests through a
   chain of connections. There are three common forms of HTTP
   intermediary: proxy, gateway, and tunnel. In some cases, a single
   intermediary might act as an origin server, proxy, gateway, or tunnel,
   switching behavior based on the nature of each request.

   A proxy is a message-forwarding agent that is selected by the client,
   usually via local configuration rules, to receive requests for some
   type of absolute URI and attempt to satisfy those requests via
   translation through the HTTP interface. A gateway (a.k.a. reverse
   proxy) is an intermediary that acts as an origin server for the
   outbound connection but translates received requests and forwards them
   inbound to another server or servers.

   A tunnel acts as a blind relay between two connections without
   changing the messages. HTTP requirements placed on intermediaries do
   not apply to tunnels while they are acting as tunnels.

2.5.  Conformance and Error Handling

   This specification targets conformance criteria according to the role
   of a participant in HTTP communication. Hence, HTTP requirements are
   placed on senders, recipients, clients, servers, user agents,
   intermediaries, origin servers, proxies, gateways, or caches, depending
   on what behavior is being constrained by the requirement.

   An implementation is considered conformant if it complies with all of
   the requirements associated with the roles it partakes in HTTP. A
   sender MUST NOT generate protocol elements that convey a meaning that
   is known by that sender to be false. A sender MUST NOT generate
   protocol elements that do not match the grammar defined by the
   corresponding ABNF rules.

   A recipient MUST be able to parse any value of reasonable length that
   is applicable to the recipient's role and that matches the grammar
   defined by the corresponding ABNF rules. Unless noted otherwise, a
   recipient MAY attempt to recover a usable protocol element from an
   invalid construct. HTTP does not define specific error handling
   mechanisms except when they have a direct impact on security, since
   different applications of the protocol require different error
   handling strategies.

2.6.  Protocol Versioning

   HTTP uses a "<major>.<minor>" numbering scheme to indicate versions of
   the protocol. The protocol version as a whole indicates the sender's
   conformance with the set of requirements laid out in that version's
   corresponding specification of HTTP.

     HTTP-version  = HTTP-name "/" DIGIT "." DIGIT
     HTTP-name     = %x48.54.54.50 ; "HTTP", case-sensitive

   The HTTP version number consists of two decimal digits separated by a
   "." (period or decimal point). A sender MUST NOT send a version to
   which it is not conformant. A client SHOULD send a request version
   equal to the highest version to which the client is conformant and
   whose major version is no higher than the highest version supported
   by the server.

   A server MAY send an HTTP/1.0 response to a request if it is known or
   suspected that the client incorrectly implements the HTTP
   specification. The intermediaries that process HTTP messages (i.e.,
   all intermediaries other than those acting as tunnels) MUST send their
   own HTTP-version in forwarded messages. In other words, an
   intermediary is not allowed to blindly forward the first line of an
   HTTP message without ensuring that the protocol version in that
   message matches a version to which that intermediary is conformant.
   A server MAY send a 505 (HTTP Version Not Supported) response if it
   cannot send a response using the major version used in the client's
   request.

2.7.  Uniform Resource Identifiers

   Uniform Resource Identifiers (URIs) are used throughout HTTP as the
   means for identifying resources. The definitions of "URI-reference",
   "absolute-URI", "relative-part", "scheme", "authority", "port",
   "host", "path-abempty", "segment", "query", and "fragment" are adopted
   from the URI generic syntax.

     URI-reference = <URI-reference, see [RFC3986], Section 4.1>
     absolute-URI  = <absolute-URI, see [RFC3986], Section 4.3>
     relative-part = <relative-part, see [RFC3986], Section 4.2>
     scheme        = <scheme, see [RFC3986], Section 3.1>
     authority     = <authority, see [RFC3986], Section 3.2>
     uri-host      = <host, see [RFC3986], Section 3.2.2>
     port          = <port, see [RFC3986], Section 3.2.3>
     path-abempty  = <path-abempty, see [RFC3986], Section 3.3>
     segment       = <segment, see [RFC3986], Section 3.3>
     query         = <query, see [RFC3986], Section 3.4>
     fragment      = <fragment, see [RFC3986], Section 3.5>
     absolute-path = 1*( "/" segment )
     partial-URI   = relative-part [ "?" query ]

   A sender MUST NOT generate an "http" URI with an empty host
   identifier. A recipient that processes such a URI reference MUST
   reject it as invalid.

3.  Message Format

   All HTTP/1.1 messages consist of a start-line followed by a sequence
   of octets in a format similar to the Internet Message Format: zero or
   more header fields (collectively referred to as the "headers" or the
   "header section"), an empty line indicating the end of the header
   section, and an optional message body.

     HTTP-message   = start-line
                      *( header-field CRLF )
                      CRLF
                      [ message-body ]

   The normal procedure for parsing an HTTP message is to read the
   start-line into a structure, read each header field into a hash table
   by field name until the empty line, and then use the parsed data to
   determine if a message body is expected. If a message body has been
   indicated, then it is read as a stream until an amount of octets
   equal to the message body length is read or the connection is closed.

   A recipient MUST parse an HTTP message as a sequence of octets in an
   encoding that is a superset of US-ASCII. Parsing an HTTP message as a
   stream of Unicode characters, without regard for the specific
   encoding, creates security vulnerabilities due to the varying ways
   that string processing libraries handle invalid multibyte character
   sequences that contain the octet LF. A sender MUST NOT send whitespace
   between the start-line and the first header field.

   A recipient that receives whitespace between the start-line and the
   first header field MUST either reject the message as invalid or
   consume each whitespace-preceded line without further processing of it.

3.1.  Start Line

   An HTTP message can be either a request from client to server or a
   response from server to client. Syntactically, the two types of
   message differ only in the start-line, which is either a request-line
   (for requests) or a status-line (for responses), and in the algorithm
   for determining the length of the message body.

     start-line     = request-line / status-line

3.1.1.  Request Line

   A request-line begins with a method token, followed by a single space
   (SP), the request-target, another single space (SP), the protocol
   version, and ends with CRLF.

     request-line   = method SP request-target SP HTTP-version CRLF
     method         = token

   The method token indicates the request method to be performed on the
   target resource. The request method is case-sensitive. Although the
   request-line grammar rule requires that each of the component elements
   be separated by a single SP octet, recipients MAY instead parse on
   whitespace-delimited word boundaries and, aside from the CRLF
   terminator, treat any form of whitespace as the SP separator while
   ignoring preceding or trailing whitespace; such whitespace includes
   one or more of the following octets: SP, HTAB, VT, FF, or bare CR.
   However, lenient parsing can result in security vulnerabilities if
   other implementations within the request chain interpret the same
   message differently.

   Recipients of an invalid request-line SHOULD respond with either a 400
   (Bad Request) error or a 301 (Moved Permanently) redirect with the
   request-target properly encoded. A recipient SHOULD NOT attempt to
   autocorrect and then process the request without a redirect, since the
   invalid request-line might be deliberately crafted to bypass security
   filters along the request chain.

   A server that receives a method longer than any that it implements
   SHOULD respond with a 501 (Not Implemented) status code. A server that
   receives a request-target longer than any URI it wishes to parse MUST
   respond with a 414 (URI Too Long) status code.

3.1.2.  Status Line

   The first line of a response message is the status-line, consisting of
   the protocol version, a space (SP), the status code, another space, a
   possibly empty textual phrase describing the status code, and ending
   with CRLF.

     status-line = HTTP-version SP status-code SP reason-phrase CRLF
     status-code    = 3DIGIT
     reason-phrase  = *( HTAB / SP / VCHAR / obs-text )

   The status-code element is a 3-digit integer code describing the
   result of the server's attempt to understand and satisfy the client's
   corresponding request. A client SHOULD ignore the reason-phrase
   content.

3.2.  Header Fields

   Each header field consists of a case-insensitive field name followed
   by a colon (":"), optional leading whitespace, the field value, and
   optional trailing whitespace.

     header-field   = field-name ":" OWS field-value OWS
     field-name     = token
     field-value    = *( field-content / obs-fold )
     field-content  = field-vchar [ 1*( SP / HTAB ) field-vchar ]
     field-vchar    = VCHAR / obs-text
     obs-fold       = CRLF 1*( SP / HTAB )
                    ; obsolete line folding

   The field-name token labels the corresponding field-value as having
   the semantics defined by that header field. The order in which header
   fields with differing field names are received is not significant.
   However, it is good practice to send header fields that contain
   control data first.

3.2.2.  Field Order

   A sender MUST NOT generate multiple header fields with the same field
   name in a message unless either the entire field value for that header
   field is defined as a comma-separated list or the header field is a
   well-known exception. A recipient MAY combine multiple header fields
   with the same field name into one "field-name: field-value" pair,
   without changing the semantics of the message, by appending each
   subsequent field value to the combined field value in order, separated
   by a comma.

3.2.3.  Whitespace

   This specification uses three rules to denote the use of linear
   whitespace: OWS (optional whitespace), RWS (required whitespace), and
   BWS ("bad" whitespace).

     OWS            = *( SP / HTAB )
     RWS            = 1*( SP / HTAB )
     BWS            = OWS

3.2.4.  Field Parsing

   Messages are parsed using a generic algorithm, independent of the
   individual header field names. The contents within a given field value
   are not parsed until a later stage of message interpretation.

   No whitespace is allowed between the header field-name and colon. In
   the past, differences in the handling of such whitespace have led to
   security vulnerabilities in request routing and response handling. A
   server MUST reject any received request message that contains
   whitespace between a header field-name and colon with a response code
   of 400 (Bad Request). A proxy MUST remove any such whitespace from a
   response message before forwarding the message downstream.

   A field value might be preceded and/or followed by optional
   whitespace (OWS); a single SP preceding the field-value is preferred
   for consistent readability by humans. The field value does not include
   any leading or trailing whitespace: OWS occurring before the first
   non-whitespace octet of the field value or after the last
   non-whitespace octet of the field value ought to be excluded by
   parsers when extracting the field value from a header field.

   Historically, HTTP header field values could be extended over multiple
   lines by preceding each extra line with at least one space or
   horizontal tab (obs-fold). This specification deprecates such line
   folding except within the message/http media type. A sender MUST NOT
   generate a message that includes line folding (i.e., that has any
   field-value that contains a match to the obs-fold rule) unless the
   message is intended for packaging within the message/http media type.
   A server that receives an obs-fold in a request message that is not
   within a message/http container MUST either reject the message by
   sending a 400 (Bad Request), preferably with a representation
   explaining that obsolete line folding is unacceptable, or replace
   each received obs-fold with one or more SP octets prior to
   interpreting the field value or forwarding the message downstream.

   A proxy or gateway that receives an obs-fold in a response message
   that is not within a message/http container MUST either discard the
   message and replace it with a 502 (Bad Gateway) response, or replace
   each received obs-fold with one or more SP octets prior to
   interpreting the field value or forwarding the message downstream.

3.2.5.  Field Limits

   HTTP does not place a predefined limit on the length of each header
   field or on the length of the header section as a whole. Various
   ad hoc limitations on individual header field length are found in
   practice, often depending on the specific field semantics.

   A server that receives a request header field, or set of fields,
   larger than it wishes to process MUST respond with an appropriate 4xx
   (Client Error) status code. Ignoring such header fields would increase
   the server's vulnerability to request smuggling attacks.

3.2.6.  Field Value Components

   Most HTTP header field values are defined using common syntax
   components (token, quoted-string, and comment) separated by
   whitespace or specific delimiting characters.

     token          = 1*tchar
     tchar          = "!" / "#" / "$" / "%" / "&" / "'" / "*"
                    / "+" / "-" / "." / "^" / "_" / "`" / "|" / "~"
                    / DIGIT / ALPHA
     quoted-string  = DQUOTE *( qdtext / quoted-pair ) DQUOTE
     qdtext         = HTAB / SP / %x21 / %x23-5B / %x5D-7E / obs-text
     obs-text       = %x80-FF
     comment        = "(" *( ctext / quoted-pair / comment ) ")"
     ctext          = HTAB / SP / %x21-27 / %x2A-5B / %x5D-7E / obs-text
     quoted-pair    = "\" ( HTAB / SP / VCHAR / obs-text )

3.3.  Message Body

   The message body (if any) of an HTTP message is used to carry the
   payload body of that request or response. The message body is
   identical to the payload body unless a transfer coding has been
   applied.

     message-body = *OCTET

   The rules for when a message body is allowed in a message differ for
   requests and responses. The presence of a message body in a request
   is signaled by a Content-Length or Transfer-Encoding header field.
   Request message framing is independent of method semantics, even if
   the method does not define any use for a message body.

3.3.1.  Transfer-Encoding

   The Transfer-Encoding header field lists the transfer coding names
   corresponding to the sequence of transfer codings that have been (or
   will be) applied to the payload body in order to form the message
   body.

     Transfer-Encoding = 1#transfer-coding

   Transfer-Encoding was added in HTTP/1.1. It is generally assumed that
   implementations advertising only HTTP/1.0 support will not understand
   how to process a transfer-encoded payload. A client MUST NOT send a
   request containing Transfer-Encoding unless it knows the server will
   handle HTTP/1.1 (or later) requests; such knowledge might be in the
   form of specific user configuration or by remembering the version of
   a prior received response. A server MUST NOT send a response
   containing Transfer-Encoding unless the corresponding request
   indicates HTTP/1.1 (or later).

   A server that receives a request message with a transfer coding it
   does not understand SHOULD respond with 501 (Not Implemented).

3.3.2.  Content-Length

   When a message does not have a Transfer-Encoding header field, a
   Content-Length header field can provide the anticipated size, as a
   decimal number of octets, for a potential payload body.

     Content-Length = 1*DIGIT

   A sender MUST NOT send a Content-Length header field in any message
   that contains a Transfer-Encoding header field. A user agent SHOULD
   send a Content-Length in a request message when no Transfer-Encoding
   is sent and the request method defines a meaning for an enclosed
   payload body.

   A sender MUST NOT forward a message with a Content-Length header
   field value that does not match the ABNF above, with one exception: a
   recipient of a Content-Length header field value consisting of the
   same decimal value repeated as a comma-separated list (e.g.,
   "Content-Length: 42, 42") MAY either reject the message as invalid or
   replace that invalid field value with a single instance of the decimal
   value, since this likely indicates that a duplicate was generated or
   combined by an upstream message processor.

   If a message is received that has multiple Content-Length header
   fields with field-values consisting of the same decimal value, or a
   single Content-Length header field with a field value containing a
   list of identical decimal values (e.g., "Content-Length: 42, 42"),
   indicating that duplicate Content-Length header fields have been
   generated or combined by an upstream message processor, then the
   recipient MUST either reject the message as invalid or replace the
   duplicated field-values with a single valid Content-Length field
   containing that decimal value prior to determining the message body
   length or forwarding the message.

3.3.3.  Message Body Length

   The length of a message body is determined by one of the following
   (in order of precedence). If a Transfer-Encoding header field is
   present and the chunked transfer coding is the final encoding, the
   message body length is determined by reading and decoding the chunked
   data until the transfer coding indicates the data is complete.

   If a Transfer-Encoding header field is present in a request and the
   chunked transfer coding is not the final encoding, the message body
   length cannot be determined reliably; the server MUST respond with the
   400 (Bad Request) status code and then close the connection.

   If a message is received with both a Transfer-Encoding and a
   Content-Length header field, the Transfer-Encoding overrides the
   Content-Length. Such a message might indicate an attempt to perform
   request smuggling or response splitting and ought to be handled as an
   error. A sender MUST remove the received Content-Length field prior
   to forwarding such a message downstream.

   If a message is received without Transfer-Encoding and with either
   multiple Content-Length header fields having differing field-values
   or a single Content-Length header field having an invalid value, then
   the message framing is invalid and the recipient MUST treat it as an
   unrecoverable error. If this is a request message, the server MUST
   respond with a 400 (Bad Request) status code and then close the
   connection.

   If a valid Content-Length header field is present without
   Transfer-Encoding, its decimal value defines the expected message
   body length in octets. If the sender closes the connection or the
   recipient times out before the indicated number of octets are
   received, the recipient MUST consider the message to be incomplete
   and close the connection.

   A server MAY reject a request that contains a message body but not a
   Content-Length by responding with 411 (Length Required). Unless a
   transfer coding other than chunked has been applied, a client that
   sends a request containing a message body SHOULD use a valid
   Content-Length header field if the message body length is known in
   advance, rather than the chunked transfer coding, since some existing
   services respond to chunked with a 411 (Length Required) status code
   even though they understand the chunked transfer coding.

4.  Transfer Codings

   Transfer coding names are used to indicate an encoding transformation
   that has been, can be, or might need to be applied to a payload body
   in order to ensure safe transport through the network.

     transfer-coding    = "chunked"
                        / "compress"
                        / "deflate"
                        / "gzip"
                        / transfer-extension
     transfer-extension = token *( OWS ";" OWS transfer-parameter )
     transfer-parameter = token BWS "=" BWS ( token / quoted-string )

   All transfer-coding names are case-insensitive and ought to be
   registered within the HTTP Transfer Coding registry.

4.1.  Chunked Transfer Coding

   The chunked transfer coding wraps the payload body in order to
   transfer it as a series of chunks, each with its own size indicator,
   followed by an OPTIONAL trailer containing header fields.

     chunked-body   = *chunk
                      last-chunk
                      trailer-part
                      CRLF
     chunk          = chunk-size [ chunk-ext ] CRLF
                      chunk-data CRLF
     chunk-size     = 1*HEXDIG
     last-chunk     = 1*"0" [ chunk-ext ] CRLF
     chunk-data     = 1*OCTET
     chunk-ext      = *( ";" chunk-ext-name [ "=" chunk-ext-val ] )
     chunk-ext-name = token
     chunk-ext-val  = token / quoted-string
     trailer-part   = *( header-field CRLF )

   The chunk-size field is a string of hex digits indicating the size of
   the chunk-data in octets. The chunked transfer coding is complete when
   a chunk with a chunk-size of zero is received, possibly followed by a
   trailer, and finally terminated by an empty line.

   A recipient MUST be able to parse and decode the chunked transfer
   coding. A sender MUST NOT apply chunked more than once to a message
   body. If any transfer coding other than chunked is applied to a
   request payload body, the sender MUST apply chunked as the final
   transfer coding to ensure that the message is properly framed. The
   chunked coding does not define any parameters, and their presence in
   the chunk extensions SHOULD be ignored by recipients. A recipient MUST
   ignore unrecognized chunk extensions. A server ought to limit the
   total length of chunk extensions received in a request.

4.3.  TE

   The "TE" header field in a request indicates what transfer codings,
   besides chunked, the client is willing to accept in response, and
   whether or not the client is willing to accept trailer fields in a
   chunked transfer coding.

     TE        = #t-codings
     t-codings = "trailers" / ( transfer-coding [ t-ranking ] )
     t-ranking = OWS ";" OWS "q=" rank
     rank      = ( "0" [ "." *3DIGIT ] )
               / ( "1" [ "." *3"0" ] )

   A sender of TE MUST also send a "TE" connection option within the
   Connection header field to inform intermediaries not to forward this
   field.

5.3.  Request Target

   Once an inbound connection is obtained, the client sends an HTTP
   request message with a request-target derived from the target URI.
   There are four distinct formats for the request-target, depending on
   both the method being requested and whether the request is to a proxy.

     request-target = origin-form
                    / absolute-form
                    / authority-form
                    / asterisk-form
     origin-form    = absolute-path [ "?" query ]
     absolute-form  = absolute-URI
     authority-form = authority
     asterisk-form  = "*"

   The most common form of request-target is the origin-form. When
   making a request directly to an origin server, other than a CONNECT
   or server-wide OPTIONS request, a client MUST send only the absolute
   path and query components of the target URI as the request-target.

   When making a request to a proxy, other than a CONNECT or server-wide
   OPTIONS request, a client MUST send the target URI in absolute-form
   as the request-target. An HTTP/1.1 server MUST accept the
   absolute-form in requests, even though HTTP/1.1 clients will only
   send them in requests to proxies.

5.4.  Host

   The "Host" header field in a request provides the host and port
   information from the target URI, enabling the origin server to
   distinguish among resources while servicing requests for multiple
   host names on a single IP address.

     Host = uri-host [ ":" port ] ; Section 2.7.1

   A client MUST send a Host header field in all HTTP/1.1 request
   messages. If the target URI includes an authority component, then a
   client MUST send a field-value for Host that is identical to that
   authority component, excluding any userinfo subcomponent and its "@"
   delimiter. If the authority component is missing or undefined for
   the target URI, then a client MUST send a Host header field with an
   empty field-value.

   When a proxy receives a request with an absolute-form of
   request-target, the proxy MUST ignore the received Host header field
   (if any) and instead replace it with the host information of the
   request-target. A proxy that forwards such a request MUST generate a
   new Host field-value based on the received request-target rather than
   forward the received Host field-value.

   Since the Host header field acts as an application-level routing
   mechanism, it is a frequent target for malware seeking to poison a
   shared cache or redirect a request to an unintended server. An
   interception proxy is particularly vulnerable if it relies on the
   Host field-value for redirecting requests to internal servers, or for
   use as a cache key in a shared cache, without first verifying that
   the intercepted connection is targeting a valid IP address for that
   host.

   A server MUST respond with a 400 (Bad Request) status code to any
   HTTP/1.1 request message that lacks a Host header field and to any
   request message that contains more than one Host header field or a
   Host header field with an invalid field-value.

5.7.  Message Forwarding

   As described in Section 2.3, intermediaries can serve a variety of
   roles in the processing of HTTP requests and responses. An
   intermediary not acting as a tunnel MUST implement the Connection
   header field, as specified in Section 6.1, and exclude fields from
   being forwarded that are only intended for the corresponding
   immediate connection.

   An intermediary MUST NOT forward a message to itself unless it is
   protected from an infinite request loop. In general, an intermediary
   ought to recognize its own server names, including any aliases, local
   variations, or literal IP addresses, and respond to such requests
   directly.

5.7.1.  Via

   The "Via" header field indicates the presence of intermediate
   protocols and recipients between the user agent and the server (on
   requests) or between the origin server and the client (on responses).

     Via = 1#( received-protocol RWS received-by [ RWS comment ] )
     received-protocol = [ protocol-name "/" ] protocol-version
     received-by       = ( uri-host [ ":" port ] ) / pseudonym
     pseudonym         = token

   A proxy MUST send an appropriate Via header field in each message
   that it forwards. An HTTP-to-HTTP gateway MUST send an appropriate
   Via header field in each inbound request message and MAY send a Via
   header field in forwarded response messages.

6.1.  Connection

   The "Connection" header field allows the sender to indicate desired
   control options for the current connection. In order to avoid
   confusing downstream recipients, a proxy or gateway MUST remove or
   replace any received connection options before forwarding the
   message.

     Connection        = 1#connection-option
     connection-option = token

   When a header field aside from Connection is used to supply control
   information for or about the current connection, the sender MUST list
   the corresponding field name within the Connection header field. A
   proxy or gateway MUST parse a received Connection header field before
   a message is forwarded and, for each connection-option in this field,
   remove any header field(s) from the message with the same name as the
   connection-option, and then remove the Connection header field itself
   (or replace it with the intermediary's own connection options for the
   forwarded message).

   Intermediaries SHOULD NOT forward hop-by-hop header fields that are
   only intended for the immediate connection. A sender MUST NOT send a
   connection option corresponding to a header field that is intended
   for all recipients of the payload, such as Cache-Control or Host,
   since nominating such a field for removal would break the message
   along the chain. The connection options do not always correspond to
   a header field present in the message, since a connection-specific
   header field might not be needed if there are no parameters
   associated with a connection option.

6.3.  Persistence

   HTTP/1.1 defaults to the use of persistent connections, allowing
   multiple requests and responses to be carried over a single
   connection. The "close" connection option is used to signal that a
   connection will not persist after the current request/response. HTTP
   implementations SHOULD support persistent connections.

   A recipient determines whether a connection is persistent or not
   based on the most recently received message's protocol version and
   Connection header field (if any). A server MUST read the entire
   request message body or close the connection after sending its
   response, since otherwise the remaining data on a persistent
   connection would be misinterpreted as the next request.

6.6.  Tear-down

   The Connection header field provides a "close" connection option
   that a sender SHOULD send when it wishes to close the connection
   after the current request/response pair. A client that sends a
   "close" connection option MUST NOT send further requests on that
   connection (after the one containing "close") and MUST close the
   connection after reading the final response message corresponding to
   this request.

4.1.2.  Chunked Trailer Part

   A trailer allows the sender to include additional fields at the end
   of a chunked message in order to supply metadata that might be
   dynamically generated while the message body is sent. A sender MUST
   NOT generate a trailer that contains a field necessary for message
   framing (e.g., Transfer-Encoding and Content-Length), routing (e.g.,
   Host), request modifiers, authentication, response control data, or
   determining how to process the payload. When a chunked message
   containing a non-empty trailer is received, the recipient MAY process
   the fields as if they were appended to the message's header section.
   A recipient MUST ignore (or consider as an error) any fields that are
   forbidden to be sent in a trailer, since processing them as if they
   were present in the header section might bypass external security
   filters.

4.2.  Compression Codings

   The codings defined below can be used to compress the payload of a
   message. The "compress" coding is an adaptive Lempel-Ziv-Welch (LZW)
   coding. A recipient SHOULD consider "x-compress" to be equivalent to
   "compress". The "deflate" coding is a "zlib" data format containing a
   "deflate" compressed data stream. Note: Some non-conformant
   implementations send the "deflate" compressed data without the zlib
   wrapper. The "gzip" coding is an LZ77 coding with a 32-bit Cyclic
   Redundancy Check (CRC). A recipient SHOULD consider "x-gzip" to be
   equivalent to "gzip".

5.5.  Effective Request URI

   Once an inbound connection is obtained, the client sends an HTTP
   request message. For a user agent, the target URI is typically known.
   A server that receives a request with an authority component in the
   request-target MUST use that authority to identify the target
   resource. If the server's configuration (or outbound gateway)
   provides a fixed URI scheme, that scheme is used for the effective
   request URI. Once the effective request URI has been constructed, an
   origin server needs to decide whether or not to provide service for
   that URI via the connection in which the request was received. A
   server that does not provide service for the URI indicated by the
   effective request URI SHOULD respond with a 421 (Misdirected Request)
   or 404 (Not Found) status code.

6.7.  Upgrade

   The "Upgrade" header field is intended to provide a simple mechanism
   for transitioning from HTTP/1.1 to some other protocol on the same
   connection.

     Upgrade = *( "," OWS ) protocol *( OWS "," [ OWS protocol ] )

   A client MUST NOT send the Upgrade header field in an HTTP/1.0
   request. A server that receives an Upgrade header field in an
   HTTP/1.0 request MUST ignore that Upgrade field. A server MUST ignore
   an Upgrade header field that is received in an HTTP/1.0 request. A
   sender of Upgrade MUST also send an "Upgrade" connection option in
   the Connection header field to inform intermediaries not to forward
   this field. A server that receives an Upgrade header in a request
   with a message body MUST either process the body before switching
   protocols or reject the request, since the two protocols would
   otherwise disagree about where the body ends.

9.2.  Risks of Intermediaries

   By their very nature, HTTP intermediaries are men-in-the-middle and,
   thus, represent an opportunity for man-in-the-middle attacks.
   Intermediaries that contain a shared cache are especially vulnerable
   to cache poisoning attacks. Implementers need to consider the privacy
   and security implications of their design and coding decisions, and
   of the configuration options they provide to operators. An
   intermediary SHOULD NOT combine the headers of distinct requests, and
   an intermediary MUST NOT reuse a parsed request structure for a
   different message, since stale fields from an earlier message can
   silently alter the meaning of the next one.

9.4.  Buffer Overflows

   Because HTTP uses mostly textual, character-delimited fields, parsers
   are often vulnerable to attacks based on sending very long (or very
   slow) streams of data, particularly where an implementation is
   expecting a protocol element with no predefined length. To promote
   interoperability, specific recommendations are made for minimum size
   limits on request-line and header fields. A recipient MUST anticipate
   potentially large decimal numerals and prevent parsing errors due to
   integer conversion overflows, since a chunk-size or Content-Length
   value larger than the implementation's integer type silently wraps
   into a much smaller number and desynchronizes the message framing.

9.5.  Request Smuggling

   Abusing the ways that messages are parsed and combined by multiple
   senders and recipients, request smuggling is a technique for
   bypassing security-related filters or poisoning shared caches by
   embedding a message within another message such that different
   recipients along the chain disagree about where one message ends and
   the next begins. This specification has introduced parsing
   requirements specifically to reduce the ability of attackers to
   perform request smuggling, and implementations are advised to treat
   framing ambiguities as errors rather than attempting to guess the
   sender's intent.

9.6.  Message Integrity

   HTTP does not define a specific mechanism for ensuring message
   integrity. The length and framing requirements of Section 3.3 are
   intended to reduce the risk of truncation attacks, in which an
   attacker causes a recipient to interpret a partial message as being
   complete. A user agent ought to notify the user when an incomplete
   response is received.

10.  Collected ABNF

   In the collected ABNF below, list rules are expanded as per Section 7.

     BWS = OWS
     Connection = *( "," OWS ) connection-option *( OWS "," [ OWS
      connection-option ] )
     Content-Length = 1*DIGIT
     HTTP-message = start-line *( header-field CRLF ) CRLF [ message-body
      ]
     HTTP-name = %x48.54.54.50 ; HTTP
     HTTP-version = HTTP-name "/" DIGIT "." DIGIT
     Host = uri-host [ ":" port ]
     OWS = *( SP / HTAB )
     RWS = 1*( SP / HTAB )
     TE = [ ( "," / t-codings ) *( OWS "," [ OWS t-codings ] ) ]
     Trailer = *( "," OWS ) field-name *( OWS "," [ OWS field-name ] )
     Transfer-Encoding = *( "," OWS ) transfer-coding *( OWS "," [ OWS
      transfer-coding ] )
     URI-reference = <URI-reference, see [RFC3986], Section 4.1>
     Upgrade = *( "," OWS ) protocol *( OWS "," [ OWS protocol ] )
     Via = *( "," OWS ) ( received-protocol RWS received-by [ RWS comment
      ] ) *( OWS "," [ OWS ( received-protocol RWS received-by [ RWS
      comment ] ) ] )

     absolute-URI = <absolute-URI, see [RFC3986], Section 4.3>
     absolute-form = absolute-URI
     absolute-path = 1*( "/" segment )
     asterisk-form = "*"
     authority = <authority, see [RFC3986], Section 3.2>
     authority-form = authority

     chunk = chunk-size [ chunk-ext ] CRLF chunk-data CRLF
     chunk-data = 1*OCTET
     chunk-ext = *( ";" chunk-ext-name [ "=" chunk-ext-val ] )
     chunk-ext-name = token
     chunk-ext-val = token / quoted-string
     chunk-size = 1*HEXDIG
     chunked-body = *chunk last-chunk trailer-part CRLF
     comment = "(" *( ctext / quoted-pair / comment ) ")"
     connection-option = token
     ctext = HTAB / SP / %x21-27 / %x2A-5B / %x5D-7E / obs-text

     field-content = field-vchar [ 1*( SP / HTAB ) field-vchar ]
     field-name = token
     field-value = *( field-content / obs-fold )
     field-vchar = VCHAR / obs-text
     fragment = <fragment, see [RFC3986], Section 3.5>

     header-field = field-name ":" OWS field-value OWS
     http-URI = "http://" authority path-abempty [ "?" query ] [ "#"
      fragment ]
     https-URI = "https://" authority path-abempty [ "?" query ] [ "#"
      fragment ]

     last-chunk = 1*"0" [ chunk-ext ] CRLF

     message-body = *OCTET
     method = token

     obs-fold = CRLF 1*( SP / HTAB )
     obs-text = %x80-FF
     origin-form = absolute-path [ "?" query ]

     partial-URI = relative-part [ "?" query ]
     path-abempty = <path-abempty, see [RFC3986], Section 3.3>
     port = <port, see [RFC3986], Section 3.2.3>
     protocol = protocol-name [ "/" protocol-version ]
     protocol-name = token
     protocol-version = token
     pseudonym = token

     qdtext = HTAB / SP / %x21 / %x23-5B / %x5D-7E / obs-text
     query = <query, see [RFC3986], Section 3.4>
     quoted-pair = "\" ( HTAB / SP / VCHAR / obs-text )
     quoted-string = DQUOTE *( qdtext / quoted-pair ) DQUOTE

     rank = ( "0" [ "." *3DIGIT ] ) / ( "1" [ "." *3"0" ] )
     reason-phrase = *( HTAB / SP / VCHAR / obs-text )
     received-by = ( uri-host [ ":" port ] ) / pseudonym
     received-protocol = [ protocol-name "/" ] protocol-version
     relative-part = <relative-part, see [RFC3986], Section 4.2>
     request-line = method SP request-target SP HTTP-version CRLF
     request-target = origin-form / absolute-form / authority-form /
      asterisk-form

     scheme = <scheme, see [RFC3986], Section 3.1>
     segment = <segment, see [RFC3986], Section 3.3>
     start-line = request-line / status-line
     status-code = 3DIGIT
     status-line = HTTP-version SP status-code SP reason-phrase CRLF

     t-codings = "trailers" / ( transfer-coding [ t-ranking ] )
     t-ranking = OWS ";" OWS "q=" rank
     tchar = "!" / "#" / "$" / "%" / "&" / "'" / "*" / "+" / "-" / "." /
      "^" / "_" / "`" / "|" / "~" / DIGIT / ALPHA
     token = 1*tchar
     trailer-part = *( header-field CRLF )
     transfer-coding = "chunked" / "compress" / "deflate" / "gzip" /
      transfer-extension
     transfer-extension = token *( OWS ";" OWS transfer-parameter )
     transfer-parameter = token BWS "=" BWS ( token / quoted-string )

     uri-host = <host, see [RFC3986], Section 3.2.2>
"##;
