//! Embedded RFC 7230–7235 corpus for HDiff.
//!
//! The paper runs its Documentation Analyzer over the core HTTP/1.1
//! specifications (RFC 7230–7235) fetched through the IETF datatracker.
//! This reproduction cannot fetch documents at build time, so this crate
//! embeds a **curated excerpt corpus**: for each RFC, the requirement-
//! bearing prose the paper's pipeline mines (MUST/SHOULD/"not allowed"/
//! "ought to" sentences around message parsing, framing, Host handling,
//! Expect, caching, …) together with the document's collected ABNF. The
//! substitution is recorded in `DESIGN.md` §2; `EXPERIMENTS.md` reports the
//! corpus's measured word/sentence/rule counts next to the paper's.
//!
//! # Example
//!
//! ```
//! let docs = hdiff_corpus::core_documents();
//! assert_eq!(docs.len(), 6);
//! let stats = hdiff_corpus::CorpusStats::for_documents(&docs);
//! assert!(stats.words > 5_000);
//! ```

pub mod document;
pub mod stats;
mod texts;

pub use document::{RfcDocument, Section};
pub use stats::CorpusStats;

/// Loads the six core HTTP/1.1 documents (RFC 7230–7235), mirroring the
/// paper's datatracker collection step.
pub fn core_documents() -> Vec<RfcDocument> {
    vec![
        RfcDocument::from_text("rfc7230", "HTTP/1.1: Message Syntax and Routing", texts::RFC7230),
        RfcDocument::from_text("rfc7231", "HTTP/1.1: Semantics and Content", texts::RFC7231),
        RfcDocument::from_text("rfc7232", "HTTP/1.1: Conditional Requests", texts::RFC7232),
        RfcDocument::from_text("rfc7233", "HTTP/1.1: Range Requests", texts::RFC7233),
        RfcDocument::from_text("rfc7234", "HTTP/1.1: Caching", texts::RFC7234),
        RfcDocument::from_text("rfc7235", "HTTP/1.1: Authentication", texts::RFC7235),
    ]
}

/// Loads reference documents that core-document prose rules point into
/// (currently RFC 3986, the URI syntax).
pub fn reference_documents() -> Vec<RfcDocument> {
    vec![RfcDocument::from_text("rfc3986", "URI: Generic Syntax", texts::RFC3986)]
}

/// Extension documents beyond the HTTP core: used by the generalization
/// preview (`examples/smtp_preview.rs`), not by the HTTP evaluation.
pub fn extension_documents() -> Vec<RfcDocument> {
    vec![RfcDocument::from_text("rfc5321", "SMTP", texts::RFC5321)]
}

/// Looks up any embedded document by tag (`"rfc7230"`, …).
pub fn document(tag: &str) -> Option<RfcDocument> {
    core_documents()
        .into_iter()
        .chain(reference_documents())
        .chain(extension_documents())
        .find(|d| d.tag.eq_ignore_ascii_case(tag))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_core_documents() {
        let docs = core_documents();
        let tags: Vec<_> = docs.iter().map(|d| d.tag.as_str()).collect();
        assert_eq!(tags, vec!["rfc7230", "rfc7231", "rfc7232", "rfc7233", "rfc7234", "rfc7235"]);
    }

    #[test]
    fn lookup_by_tag() {
        assert!(document("RFC7230").is_some());
        assert!(document("rfc3986").is_some());
        assert!(document("rfc9999").is_none());
    }

    #[test]
    fn every_document_has_sections_and_words() {
        for d in core_documents().iter().chain(reference_documents().iter()) {
            assert!(!d.sections.is_empty(), "{} has no sections", d.tag);
            assert!(d.word_count() > 100, "{} too small", d.tag);
        }
    }

    #[test]
    fn rfc7230_contains_key_requirements() {
        let d = document("rfc7230").unwrap();
        let text = d.full_text();
        assert!(text.contains("whitespace between a header field-name and colon"));
        assert!(text.contains("Transfer-Encoding overrides the"));
        assert!(text.contains("lacks a Host header field"));
    }

    #[test]
    fn rfc7230_contains_collected_abnf() {
        let d = document("rfc7230").unwrap();
        let text = d.full_text();
        assert!(text.contains("HTTP-version = HTTP-name"));
        assert!(text.contains("uri-host = <host, see [RFC3986], Section 3.2.2>"));
        assert!(text.contains("chunk-size"));
    }
}
