//! Packrat matcher over the compiled grammar IR.
//!
//! The reference matcher ([`crate::matcher::reference`]) re-expands every
//! rule reference it meets, so a sub-derivation shared by two alternatives
//! is paid for twice — and in ambiguous HTTP grammars (`uri-host` inside
//! `authority` inside `Host`, all over the same span) the re-expansion
//! count grows exponentially with input length. This matcher memoizes
//! `(rule index, position) → end-offset set`, so each rule is expanded at
//! most once per position: worst-case work is `O(rules × positions ×
//! alternative-width)` instead of exponential, and the expansion budget —
//! which here counts **memo misses** (fresh rule computations), not node
//! visits — is effectively never reached on real inputs.
//!
//! Two further cheap rejections avoid even the memo lookup:
//!
//! * **first-set pruning** — a rule that cannot match empty and whose
//!   precomputed first-byte set excludes `input[pos]` fails in O(1);
//! * **cycle detection** — re-entering a rule at the same position (left
//!   recursion) returns the empty set instead of recursing; since the
//!   partial sets this produces are *subsets* of the true end sets, any
//!   `Match` found is still sound, and a non-match with a detected cycle
//!   is reported as [`MatchOutcome::Overflow`] rather than claiming a
//!   definite `NoMatch`.
//!
//! Match semantics (which end offsets each construct yields, including
//! the zero-width-repetition quirks) deliberately mirror the reference
//! matcher op for op; `tests/matcher_equivalence.rs` holds the
//! differential property test.

use std::collections::HashMap;

use crate::compile::CompiledGrammar;
use crate::compile::Op;
use crate::matcher::MatchOutcome;

/// Memo table entry for one `(rule, pos)` key.
#[derive(Debug, Clone, Default)]
enum Memo {
    /// Never computed.
    #[default]
    Unseen,
    /// Currently being computed further up the stack (cycle sentinel).
    InProgress,
    /// Finished: the full end-offset set (sorted ascending).
    Done(Vec<usize>),
}

/// Row table for short inputs, sparse for long ones.
///
/// A row (one rule's `len+1` slots) is allocated lazily the first time
/// that rule is queried: a typical match touches a handful of the
/// grammar's hundreds of rules, so zeroing the full `rules × (len+1)`
/// matrix up front would cost more than the match itself. Past ~1M
/// total slots even single rows get big, and the sparse map wins.
enum Table {
    Rows { rows: Vec<Option<Box<[Memo]>>>, width: usize },
    Sparse(HashMap<u64, Memo>),
}

const DENSE_SLOT_LIMIT: usize = 1 << 20;

impl Table {
    fn new(rules: usize, input_len: usize) -> Table {
        let width = input_len + 1;
        match rules.checked_mul(width) {
            Some(slots) if slots <= DENSE_SLOT_LIMIT => {
                Table::Rows { rows: vec![None; rules], width }
            }
            _ => Table::Sparse(HashMap::new()),
        }
    }

    fn slot(&mut self, rule: u32, pos: usize) -> &mut Memo {
        match self {
            Table::Rows { rows, width } => {
                let row = rows[rule as usize]
                    .get_or_insert_with(|| vec![Memo::Unseen; *width].into_boxed_slice());
                &mut row[pos]
            }
            Table::Sparse(map) => map.entry((u64::from(rule) << 32) | pos as u64).or_default(),
        }
    }
}

/// One match attempt's state: input, memo table, budget, outcome flags.
pub struct MemoMatcher<'a> {
    cg: &'a CompiledGrammar,
    input: &'a [u8],
    table: Table,
    /// Remaining fresh rule computations.
    budget: usize,
    overflowed: bool,
    cycled: bool,
    /// One bit per interned rule: entered during this attempt. Allocated
    /// only when tracing is enabled ([`Self::enable_trace`]) so the hot
    /// path pays a single `Option` check.
    trace: Option<Box<[u64]>>,
    /// Memo-table hit/miss tallies, accumulated in plain fields so the
    /// hot path never touches thread-local telemetry; flushed once per
    /// attempt on drop.
    memo_hits: u64,
    memo_misses: u64,
}

impl Drop for MemoMatcher<'_> {
    fn drop(&mut self) {
        hdiff_obs::count_many(&[
            ("abnf.memo.hit", self.memo_hits),
            ("abnf.memo.miss", self.memo_misses),
        ]);
    }
}

impl<'a> MemoMatcher<'a> {
    /// Creates a matcher for one `input` against `cg`.
    pub fn new(cg: &'a CompiledGrammar, input: &'a [u8], budget: usize) -> MemoMatcher<'a> {
        MemoMatcher {
            cg,
            input,
            table: Table::new(cg.rule_count(), input.len()),
            budget,
            overflowed: false,
            cycled: false,
            trace: None,
            memo_hits: 0,
            memo_misses: 0,
        }
    }

    /// Starts recording which defined rules this attempt enters (feeds
    /// grammar-coverage accounting). Idempotent.
    pub fn enable_trace(&mut self) {
        if self.trace.is_none() {
            let words = self.cg.rule_count().div_ceil(64).max(1);
            self.trace = Some(vec![0u64; words].into_boxed_slice());
        }
    }

    /// The rules entered since tracing was enabled, ascending by index.
    pub fn visited_rules(&self) -> Vec<u32> {
        let Some(trace) = &self.trace else { return Vec::new() };
        let mut out = Vec::new();
        for (w, &word) in trace.iter().enumerate() {
            let mut word = word;
            while word != 0 {
                let bit = word.trailing_zeros();
                out.push(w as u32 * 64 + bit);
                word &= word - 1;
            }
        }
        out
    }

    /// Full-input match of `rule_idx`, mirroring the reference matcher's
    /// outcome mapping: a found `Match` wins even over an overflow.
    pub fn match_full(&mut self, rule_idx: u32) -> MatchOutcome {
        let ends = self.rule_ends(rule_idx, 0);
        if ends.contains(&self.input.len()) {
            MatchOutcome::Match
        } else if self.overflowed || self.cycled {
            MatchOutcome::Overflow
        } else {
            MatchOutcome::NoMatch
        }
    }

    /// End offsets reachable by matching `rule_idx` at `pos` (sorted
    /// ascending, deduplicated; possibly a subset of the true set when a
    /// cycle or budget overflow was hit — check [`Self::indeterminate`]).
    pub fn rule_ends(&mut self, rule_idx: u32, pos: usize) -> Vec<usize> {
        let mut out = Vec::new();
        self.rule_ends_into(rule_idx, pos, &mut out);
        out
    }

    /// [`Self::rule_ends`] in accumulator style: a memo hit appends the
    /// cached (sorted) set without cloning it.
    fn rule_ends_into(&mut self, rule_idx: u32, pos: usize, out: &mut Vec<usize>) {
        if rule_idx as usize >= self.cg.rule_count() {
            // Detached-program extra names: defined nowhere.
            return;
        }
        let info = self.cg.rule(rule_idx);
        let Some(root) = info.root else {
            return;
        };
        if let Some(trace) = &mut self.trace {
            trace[rule_idx as usize / 64] |= 1u64 << (rule_idx % 64);
        }
        if let Some(class) = info.single {
            // Exact character class: answer in O(1), no memo traffic.
            if let Some(&b) = self.input.get(pos) {
                if class.contains(b) {
                    out.push(pos + 1);
                }
            }
            return;
        }
        if !info.nullable {
            // The rule must consume at least one byte; reject in O(1) if
            // the next byte cannot start it.
            match self.input.get(pos) {
                Some(&b) if info.first.contains(b) => {}
                _ => return,
            }
        }
        match self.table.slot(rule_idx, pos) {
            Memo::Done(ends) => {
                self.memo_hits += 1;
                out.extend_from_slice(ends);
                return;
            }
            Memo::InProgress => {
                self.cycled = true;
                return;
            }
            Memo::Unseen => {}
        }
        if self.budget == 0 {
            self.overflowed = true;
            return;
        }
        self.budget -= 1;
        self.memo_misses += 1;
        *self.table.slot(rule_idx, pos) = Memo::InProgress;
        let ends = self.op_ends(root, pos);
        out.extend_from_slice(&ends);
        *self.table.slot(rule_idx, pos) = Memo::Done(ends);
    }

    /// Whether the attempt hit the budget or a left-recursive cycle (end
    /// sets may be incomplete).
    pub fn indeterminate(&self) -> bool {
        self.overflowed || self.cycled
    }

    /// End-offset *set* (sorted, deduplicated) for one op.
    fn op_ends(&mut self, op: u32, pos: usize) -> Vec<usize> {
        let mut out = Vec::new();
        self.op_ends_into(op, pos, &mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Appends the reachable end offsets of `op` at `pos` to `out`,
    /// possibly unsorted and with duplicates — the accumulator style
    /// keeps leaf ops (bytes, ranges, literals) allocation-free, which
    /// dominates matcher throughput. Callers that need set semantics
    /// sort+dedup at their consumption boundary ([`Self::op_ends`], the
    /// concatenation frontier, each repetition round).
    fn op_ends_into(&mut self, op: u32, pos: usize, out: &mut Vec<usize>) {
        // Copy the arena reference out of `self` so iterating kid slices
        // does not hold a borrow across the recursive calls.
        let arena = self.cg.arena();
        match arena.op(op) {
            Op::Alt(range) => {
                for &k in arena.kid_slice(range) {
                    self.op_ends_into(k, pos, out);
                }
            }
            Op::Cat(range) => {
                let mut current = vec![pos];
                let mut next = Vec::new();
                for &k in arena.kid_slice(range) {
                    next.clear();
                    for &p in &current {
                        self.op_ends_into(k, p, &mut next);
                    }
                    next.sort_unstable();
                    next.dedup();
                    if next.is_empty() {
                        return;
                    }
                    std::mem::swap(&mut current, &mut next);
                }
                out.extend_from_slice(&current);
            }
            Op::Repeat { min, max, kid } => self.repeat_ends_into(min, max, kid, pos, out),
            Op::Opt { kid } => {
                self.op_ends_into(kid, pos, out);
                out.push(pos);
            }
            Op::Rule(r) => self.rule_ends_into(r, pos, out),
            Op::Lit { range, case_insensitive } => {
                let lit = arena.lit_bytes(range);
                let end = pos + lit.len();
                if end <= self.input.len() {
                    let slice = &self.input[pos..end];
                    let ok = if case_insensitive {
                        slice.eq_ignore_ascii_case(lit)
                    } else {
                        slice == lit
                    };
                    if ok {
                        out.push(end);
                    }
                }
            }
            Op::Byte(b) => {
                if self.input.get(pos) == Some(&b) {
                    out.push(pos + 1);
                }
            }
            Op::Range { lo, hi } => {
                if let Some(&b) = self.input.get(pos) {
                    if u32::from(b) >= lo && u32::from(b) <= hi {
                        out.push(pos + 1);
                    }
                }
            }
            Op::Fail => {}
        }
    }

    /// Frontier-based repetition, the reference algorithm set-for-set
    /// (including its zero-width quirks: a zero-width inner match is
    /// accepted once but never looped, and `2*4("")` matches nothing).
    fn repeat_ends_into(&mut self, min: u32, max: u32, kid: u32, pos: usize, out: &mut Vec<usize>) {
        let mut frontier = vec![pos];
        if min == 0 {
            out.push(pos);
        }
        let mut count = 0u32;
        let mut kid_ends = Vec::new();
        let mut next = Vec::new();
        while count < max && !frontier.is_empty() {
            count += 1;
            next.clear();
            for &p in &frontier {
                kid_ends.clear();
                self.op_ends_into(kid, p, &mut kid_ends);
                for &end in &kid_ends {
                    if end > p {
                        next.push(end);
                    } else if count >= min {
                        // Zero-width inner match: accept but do not loop.
                        out.push(end);
                    }
                }
            }
            next.sort_unstable();
            next.dedup();
            if count >= min {
                out.extend_from_slice(&next);
            }
            std::mem::swap(&mut frontier, &mut next);
            if self.overflowed {
                break;
            }
        }
    }
}

/// Full-input match of `rule` against the compiled grammar.
pub fn match_rule(cg: &CompiledGrammar, rule: &str, input: &[u8], budget: usize) -> MatchOutcome {
    let Some(idx) = cg.rule_index(rule) else {
        return MatchOutcome::NoMatch;
    };
    if cg.rule(idx).root.is_none() {
        // Referenced-but-undefined names are not matchable rules, exactly
        // like `Grammar::get` returning `None`.
        return MatchOutcome::NoMatch;
    }
    MemoMatcher::new(cg, input, budget).match_full(idx)
}

/// [`match_rule`] plus the set of defined rules the attempt entered
/// (ascending by interned index) — the matcher-side feed for grammar
/// coverage. Memoization means a rule appears once per attempt however
/// often its derivation is shared.
pub fn match_rule_traced(
    cg: &CompiledGrammar,
    rule: &str,
    input: &[u8],
    budget: usize,
) -> (MatchOutcome, Vec<u32>) {
    let Some(idx) = cg.rule_index(rule) else {
        return (MatchOutcome::NoMatch, Vec::new());
    };
    if cg.rule(idx).root.is_none() {
        return (MatchOutcome::NoMatch, Vec::new());
    }
    let mut m = MemoMatcher::new(cg, input, budget);
    m.enable_trace();
    let outcome = m.match_full(idx);
    (outcome, m.visited_rules())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grammar::Grammar;
    use crate::matcher::DEFAULT_BUDGET;
    use crate::parser::parse_rulelist;

    fn compiled(text: &str) -> CompiledGrammar {
        CompiledGrammar::compile(&Grammar::from_rules("t", parse_rulelist(text).unwrap()))
    }

    fn m(cg: &CompiledGrammar, rule: &str, input: &[u8]) -> MatchOutcome {
        match_rule(cg, rule, input, DEFAULT_BUDGET)
    }

    #[test]
    fn shared_subderivations_are_memoized() {
        // Both alternatives re-derive `1*ALPHA` over the same span; the
        // memo table must make the second derivation free. With a budget
        // of exactly the distinct (rule, pos) pairs this cannot overflow.
        let cg = compiled("t = a \"!\" / a \"?\"\na = 1*ALPHA\n");
        let input = b"abcdefghij!";
        let budget = cg.rule_count() * (input.len() + 1);
        assert_eq!(match_rule(&cg, "t", input, budget), MatchOutcome::Match);
    }

    #[test]
    fn left_recursion_is_overflow_not_hang() {
        let cg = compiled("a = a \"x\" / \"y\"\n");
        // `y` is reachable without the cycle: a genuine match is found.
        assert_eq!(m(&cg, "a", b"y"), MatchOutcome::Match);
        // `yx` needs the left-recursive arm, which the seed cut off: the
        // matcher must refuse to claim NoMatch.
        assert_eq!(m(&cg, "a", b"yx"), MatchOutcome::Overflow);
    }

    #[test]
    fn first_set_pruning_does_not_reject_valid_inputs() {
        let cg = compiled("t = *\"a\" \"b\"\n");
        assert_eq!(m(&cg, "t", b"b"), MatchOutcome::Match);
        assert_eq!(m(&cg, "t", b"aab"), MatchOutcome::Match);
        assert_eq!(m(&cg, "t", b"c"), MatchOutcome::NoMatch);
        assert_eq!(m(&cg, "t", b""), MatchOutcome::NoMatch);
    }

    #[test]
    fn zero_budget_overflows() {
        // Two-byte literal: not a character class, so the rule needs one
        // budgeted memo computation (single-byte class rules like
        // `t = "x"` answer in O(1) and never consume budget).
        let cg = compiled("t = \"xy\"\n");
        assert_eq!(match_rule(&cg, "t", b"xy", 0), MatchOutcome::Overflow);
    }

    #[test]
    fn character_class_rules_need_no_budget() {
        let cg = compiled("t = ALPHA / DIGIT / \"-\"\n");
        assert_eq!(match_rule(&cg, "t", b"x", 0), MatchOutcome::Match);
        assert_eq!(match_rule(&cg, "t", b"7", 0), MatchOutcome::Match);
        assert_eq!(match_rule(&cg, "t", b"-", 0), MatchOutcome::Match);
        assert_eq!(match_rule(&cg, "t", b"!", 0), MatchOutcome::NoMatch);
        assert_eq!(match_rule(&cg, "t", b"xx", 0), MatchOutcome::NoMatch);
        assert_eq!(match_rule(&cg, "t", b"", 0), MatchOutcome::NoMatch);
    }

    #[test]
    fn undefined_rule_is_no_match() {
        let cg = compiled("t = missing\n");
        assert_eq!(m(&cg, "missing", b"x"), MatchOutcome::NoMatch);
        assert_eq!(m(&cg, "t", b"x"), MatchOutcome::NoMatch);
        assert_eq!(m(&cg, "nowhere", b"x"), MatchOutcome::NoMatch);
    }

    #[test]
    fn memo_hits_and_misses_are_counted() {
        let _ = hdiff_obs::drain();
        let cg = compiled("t = a \"!\" / a \"?\"\na = 1*ALPHA\n");
        // `a` is derived at position 0 by both alternatives: the second
        // derivation must be a memo hit, not a fresh computation.
        assert_eq!(m(&cg, "t", b"abc?"), MatchOutcome::Match);
        let tel = hdiff_obs::drain();
        assert!(tel.counters.get("abnf.memo.miss").is_some_and(|&n| n > 0));
        assert!(tel.counters.get("abnf.memo.hit").is_some_and(|&n| n > 0));
    }

    #[test]
    fn long_input_uses_sparse_table() {
        let cg = compiled("t = *OCTET\n");
        // Force the sparse path: rules × (len+1) must exceed the dense
        // slot limit.
        let len = super::DENSE_SLOT_LIMIT / cg.rule_count() + 1;
        let input = vec![b'a'; len];
        assert_eq!(m(&cg, "t", &input), MatchOutcome::Match);
    }
}
