//! The ABNF Rule Extractor: mines ABNF grammar blocks from RFC text.
//!
//! RFC documents interleave ABNF with prose. The paper's extractor uses
//! "format features" — character cleaning, regular extraction, case
//! escaping, and separating prose rules. This implementation does the same
//! with explicit, testable steps:
//!
//! 1. **Character cleaning** — drop form feeds, page footers/headers
//!    (`[Page N]` lines and the running header repeated after a page
//!    break), and trailing whitespace.
//! 2. **Rule-start detection** — a line is a candidate rule start when it
//!    begins (after indentation) with a `rulename` followed by `=` or `=/`.
//! 3. **Continuation joining** — subsequent lines indented deeper than the
//!    rule's own indentation continue its definition.
//! 4. **Prose separation** — candidate chunks that fail to parse as ABNF
//!    are rejected (they were prose that merely looked rule-like); chunks
//!    that parse but contain prose-vals are kept and flagged for the
//!    adaptor.

use crate::ast::Rule;
use crate::parser::parse_rule;

/// Statistics from one extraction run, reported by the `table0_stats`
/// harness alongside the paper's counts.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExtractStats {
    /// Lines surviving character cleaning.
    pub cleaned_lines: usize,
    /// Candidate rule chunks found by format heuristics.
    pub candidates: usize,
    /// Chunks that parsed as valid ABNF rules.
    pub extracted: usize,
    /// Chunks rejected as prose (failed ABNF parsing).
    pub rejected_prose: usize,
    /// Extracted rules containing prose-vals (need adaptor expansion).
    pub prose_rules: usize,
}

/// Extracts ABNF rules from RFC-style text.
///
/// ```
/// let text = "The version is defined as:\n\n  HTTP-version = HTTP-name \"/\" DIGIT \".\" DIGIT\n  HTTP-name = %x48.54.54.50 ; HTTP\n\nSee above.\n";
/// let (rules, stats) = hdiff_abnf::extract_abnf(text);
/// assert_eq!(rules.len(), 2);
/// assert_eq!(stats.extracted, 2);
/// ```
pub fn extract_abnf(text: &str) -> (Vec<Rule>, ExtractStats) {
    let mut stats = ExtractStats::default();
    let cleaned = clean_lines(text);
    stats.cleaned_lines = cleaned.len();

    let chunks = collect_chunks(&cleaned);
    stats.candidates = chunks.len();

    let mut rules = Vec::new();
    for chunk in chunks {
        match parse_rule(&chunk) {
            Ok(rule) => {
                if rule.has_prose() {
                    stats.prose_rules += 1;
                }
                stats.extracted += 1;
                rules.push(rule);
            }
            Err(_) => stats.rejected_prose += 1,
        }
    }
    (rules, stats)
}

/// Character cleaning: strips page artifacts and normalizes line endings.
fn clean_lines(text: &str) -> Vec<String> {
    text.lines()
        .map(|l| l.trim_end().replace('\u{c}', ""))
        .filter(|l| !is_page_artifact(l))
        .collect()
}

fn is_page_artifact(line: &str) -> bool {
    let t = line.trim();
    // "Fielding & Reschke          Standards Track          [Page 42]"
    if t.ends_with(']') {
        if let Some(i) = t.rfind("[Page") {
            let inner = &t[i + 5..t.len() - 1];
            if inner.trim().chars().all(|c| c.is_ascii_digit()) {
                return true;
            }
        }
    }
    // "RFC 7230        HTTP/1.1 Message Syntax and Routing       June 2014"
    if t.starts_with("RFC ") && t.split_whitespace().count() >= 3 {
        let second = t.split_whitespace().nth(1).unwrap_or("");
        if second.chars().all(|c| c.is_ascii_digit()) && !t.contains('=') {
            return true;
        }
    }
    false
}

/// Groups cleaned lines into candidate rule chunks via indentation.
fn collect_chunks(lines: &[String]) -> Vec<String> {
    let mut chunks: Vec<String> = Vec::new();
    let mut current: Option<(usize, String)> = None; // (indent, text)

    for line in lines {
        if line.trim().is_empty() {
            if let Some((_, chunk)) = current.take() {
                chunks.push(chunk);
            }
            continue;
        }
        let indent = line.len() - line.trim_start().len();
        if let Some(start) = rule_start(line) {
            if let Some((_, chunk)) = current.take() {
                chunks.push(chunk);
            }
            current = Some((indent, start.to_string()));
            continue;
        }
        match &mut current {
            Some((base, chunk)) if indent > *base => {
                chunk.push(' ');
                chunk.push_str(line.trim());
            }
            Some(_) => {
                let (_, chunk) = current.take().expect("matched Some");
                chunks.push(chunk);
            }
            None => {}
        }
    }
    if let Some((_, chunk)) = current.take() {
        chunks.push(chunk);
    }
    chunks
}

/// If the line looks like the start of an ABNF rule, returns the trimmed
/// rule text; otherwise `None`.
fn rule_start(line: &str) -> Option<&str> {
    let t = line.trim_start();
    let bytes = t.as_bytes();
    if bytes.is_empty() || !bytes[0].is_ascii_alphabetic() {
        return None;
    }
    let mut i = 1;
    while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'-') {
        i += 1;
    }
    // Skip whitespace between name and '='.
    let mut j = i;
    while j < bytes.len() && (bytes[j] == b' ' || bytes[j] == b'\t') {
        j += 1;
    }
    if j < bytes.len() && bytes[j] == b'=' {
        // Exclude '==' (prose) and sentences where '=' is mid-word math.
        if j + 1 < bytes.len() && bytes[j + 1] == b'=' {
            return None;
        }
        return Some(t.trim_end());
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
3.1.  Start Line

   An HTTP message can be either a request or a response.

     HTTP-message   = start-line
                      *( header-field CRLF )
                      CRLF
                      [ message-body ]

   The normal procedure for parsing follows.

     HTTP-name     = %x48.54.54.50 ; "HTTP", case-sensitive
     HTTP-version  = HTTP-name "/" DIGIT "." DIGIT

Fielding & Reschke           Standards Track                   [Page 19]

RFC 7230           HTTP/1.1 Message Syntax and Routing         June 2014

     Host = uri-host [ ":" port ]
     uri-host = <host, see [RFC3986], Section 3.2.2>

   A sentence that is prose and also mentions that x = y in passing but
   continues across lines.
"#;

    #[test]
    fn extracts_rules_from_mixed_text() {
        let (rules, stats) = extract_abnf(SAMPLE);
        let names: Vec<_> = rules.iter().map(|r| r.name.as_str()).collect();
        assert!(names.contains(&"HTTP-message"), "{names:?}");
        assert!(names.contains(&"HTTP-name"));
        assert!(names.contains(&"HTTP-version"));
        assert!(names.contains(&"Host"));
        assert!(names.contains(&"uri-host"));
        assert_eq!(stats.prose_rules, 1);
    }

    #[test]
    fn continuation_lines_joined() {
        let (rules, _) = extract_abnf(SAMPLE);
        let msg = rules.iter().find(|r| r.name == "HTTP-message").unwrap();
        let refs = msg.node.references();
        assert!(refs.contains(&"start-line"));
        assert!(refs.contains(&"message-body"));
    }

    #[test]
    fn page_artifacts_removed() {
        assert!(is_page_artifact("Fielding & Reschke   Standards Track   [Page 19]"));
        assert!(is_page_artifact("RFC 7230   HTTP/1.1 Message Syntax and Routing   June 2014"));
        assert!(!is_page_artifact("Host = uri-host"));
        assert!(!is_page_artifact("RFC 7230 defines Host = uri-host"));
    }

    #[test]
    fn prose_with_equals_is_rejected_not_extracted() {
        let text = "   value = y means, in passing prose: not ABNF at all!\n";
        let (rules, stats) = extract_abnf(text);
        assert!(rules.is_empty());
        assert_eq!(stats.rejected_prose, 1);
    }

    #[test]
    fn rule_start_detection() {
        assert!(rule_start("  Host = uri-host").is_some());
        assert!(rule_start("  method =/ \"PATCH\"").is_some());
        assert!(rule_start("  a == b").is_none());
        assert!(rule_start("  9abc = x").is_none());
        assert!(rule_start("   prose without equals").is_none());
    }

    #[test]
    fn empty_input() {
        let (rules, stats) = extract_abnf("");
        assert!(rules.is_empty());
        assert_eq!(stats.candidates, 0);
    }

    #[test]
    fn blank_line_terminates_chunk() {
        let text = "  a = \"x\"\n\n      not-a-continuation sentence here\n";
        let (rules, _) = extract_abnf(text);
        assert_eq!(rules.len(), 1);
        assert_eq!(rules[0].name, "a");
    }
}
