//! Core rules of RFC 5234 appendix B.1, implicitly available to all grammars.

use crate::ast::Rule;
use crate::parser::parse_rulelist;

/// The core rule definitions, as ABNF source text.
pub const CORE_RULES_TEXT: &str = r#"ALPHA = %x41-5A / %x61-7A
BIT = "0" / "1"
CHAR = %x01-7F
CR = %x0D
CRLF = CR LF
CTL = %x00-1F / %x7F
DIGIT = %x30-39
DQUOTE = %x22
HEXDIG = DIGIT / "A" / "B" / "C" / "D" / "E" / "F"
HTAB = %x09
LF = %x0A
LWSP = *(WSP / CRLF WSP)
OCTET = %x00-FF
SP = %x20
VCHAR = %x21-7E
WSP = SP / HTAB
"#;

/// Parses and returns the core rules.
///
/// ```
/// let rules = hdiff_abnf::core_rules::core_rules();
/// assert!(rules.iter().any(|r| r.name == "ALPHA"));
/// ```
pub fn core_rules() -> Vec<Rule> {
    parse_rulelist(CORE_RULES_TEXT).expect("core rules are well-formed")
}

/// Whether `name` is one of the RFC 5234 core rule names
/// (case-insensitive).
pub fn is_core_rule(name: &str) -> bool {
    const NAMES: [&str; 16] = [
        "ALPHA", "BIT", "CHAR", "CR", "CRLF", "CTL", "DIGIT", "DQUOTE", "HEXDIG", "HTAB", "LF",
        "LWSP", "OCTET", "SP", "VCHAR", "WSP",
    ];
    NAMES.iter().any(|n| n.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_sixteen_core_rules_parse() {
        assert_eq!(core_rules().len(), 16);
    }

    #[test]
    fn membership_is_case_insensitive() {
        assert!(is_core_rule("digit"));
        assert!(is_core_rule("CRLF"));
        assert!(!is_core_rule("token"));
    }
}
