//! The ABNF syntax oracle: does a byte string derive from a rule?
//!
//! The generator's inverse. Used to (a) property-test that generated
//! values actually belong to the grammar that produced them, and (b) let
//! detection code ask conformance questions ("is this Host value inside
//! the `Host` production?") directly against the adapted grammar, the way
//! the paper uses ABNF as the syntax oracle.
//!
//! [`matches`]/[`matches_with_budget`] are thin wrappers over the
//! compiled, memoizing matcher ([`crate::memo`]): the grammar is lowered
//! once to the arena IR ([`Grammar::compiled`], cached per grammar) and
//! matched with packrat memoization, so repeated sub-derivations cost
//! O(1) and the expansion budget is effectively never reached on real
//! inputs. The original backtracking recognizer is preserved unchanged in
//! [`reference`] as the differential-testing oracle and benchmark
//! baseline.

use crate::grammar::Grammar;
use crate::memo;

/// Result of a match attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatchOutcome {
    /// The entire input derives from the rule.
    Match,
    /// The input does not derive from the rule.
    NoMatch,
    /// The expansion budget was exhausted or a left-recursive cycle was
    /// detected (the matcher cannot assert a definite `NoMatch`).
    Overflow,
}

impl MatchOutcome {
    /// Whether this is a definite match.
    pub fn is_match(self) -> bool {
        self == MatchOutcome::Match
    }
}

/// Default expansion budget. For the compiled matcher this counts *fresh
/// rule computations* (memo misses), which are bounded by `rules ×
/// positions` — typical matches use well under 1% of it. For
/// [`reference`] it counts node expansions, as before.
pub const DEFAULT_BUDGET: usize = 200_000;

/// Tests whether `input` (in full) derives from `rule` in `grammar`.
///
/// ```
/// use hdiff_abnf::{matcher, parse_rulelist, Grammar};
/// let g = Grammar::from_rules("t", parse_rulelist("token = 1*ALPHA\n").unwrap());
/// assert!(matcher::matches(&g, "token", b"Hello").is_match());
/// assert!(!matcher::matches(&g, "token", b"not a token").is_match());
/// ```
pub fn matches(grammar: &Grammar, rule: &str, input: &[u8]) -> MatchOutcome {
    matches_with_budget(grammar, rule, input, DEFAULT_BUDGET)
}

/// [`matches()`] with an explicit expansion budget.
pub fn matches_with_budget(
    grammar: &Grammar,
    rule: &str,
    input: &[u8],
    budget: usize,
) -> MatchOutcome {
    memo::match_rule(&grammar.compiled(), rule, input, budget)
}

/// The original backtracking recognizer, kept verbatim as the
/// differential-testing oracle for the compiled matcher (see
/// `tests/matcher_equivalence.rs`) and as the benchmark baseline.
///
/// A classic recursive-descent recognizer: every rule reference clones
/// and re-walks the rule's AST, so shared sub-derivations are recomputed
/// and pathological inputs exhaust the expansion budget
/// ([`MatchOutcome::Overflow`]) rather than looping.
pub mod reference {
    use super::MatchOutcome;
    use crate::ast::{Node, Repeat};
    use crate::grammar::Grammar;

    struct Matcher<'g> {
        grammar: &'g Grammar,
        input: &'g [u8],
        budget: usize,
        overflowed: bool,
    }

    impl<'g> Matcher<'g> {
        /// Returns every end offset reachable by matching `node` at `pos`.
        /// Deduplicated and sorted descending so full-input matches are
        /// found fast.
        fn match_node(&mut self, node: &Node, pos: usize) -> Vec<usize> {
            if self.budget == 0 {
                self.overflowed = true;
                return Vec::new();
            }
            self.budget -= 1;
            let mut ends = match node {
                Node::Alternation(alts) => {
                    let mut out = Vec::new();
                    for a in alts {
                        out.extend(self.match_node(a, pos));
                    }
                    out
                }
                Node::Concatenation(seq) => {
                    let mut current = vec![pos];
                    for part in seq {
                        let mut next = Vec::new();
                        for &p in &current {
                            next.extend(self.match_node(part, p));
                        }
                        next.sort_unstable();
                        next.dedup();
                        if next.is_empty() {
                            return Vec::new();
                        }
                        current = next;
                    }
                    current
                }
                Node::Repetition(rep, inner) => self.match_repeat(*rep, inner, pos),
                Node::Group(inner) => self.match_node(inner, pos),
                Node::Optional(inner) => {
                    let mut out = self.match_node(inner, pos);
                    out.push(pos);
                    out
                }
                Node::RuleRef(name) => match self.grammar.get(name) {
                    Some(rule) => {
                        let node = rule.node.clone();
                        self.match_node(&node, pos)
                    }
                    None => Vec::new(),
                },
                Node::CharVal { value, case_sensitive } => {
                    let v = value.as_bytes();
                    let end = pos + v.len();
                    if end <= self.input.len() {
                        let slice = &self.input[pos..end];
                        let ok = if *case_sensitive {
                            slice == v
                        } else {
                            slice.eq_ignore_ascii_case(v)
                        };
                        if ok {
                            return vec![end];
                        }
                    }
                    Vec::new()
                }
                Node::NumVal(v) => self.match_char(*v, pos).into_iter().collect(),
                Node::NumRange(lo, hi) => {
                    if pos < self.input.len() {
                        let b = u32::from(self.input[pos]);
                        if b >= *lo && b <= *hi {
                            return vec![pos + 1];
                        }
                    }
                    Vec::new()
                }
                Node::NumSeq(vs) => {
                    let mut p = pos;
                    for v in vs {
                        match self.match_char(*v, p) {
                            Some(next) => p = next,
                            None => return Vec::new(),
                        }
                    }
                    vec![p]
                }
                Node::ProseVal(_) => Vec::new(), // prose cannot be matched
            };
            ends.sort_unstable_by(|a, b| b.cmp(a));
            ends.dedup();
            ends
        }

        fn match_char(&self, v: u32, pos: usize) -> Option<usize> {
            if v <= 0xff {
                (pos < self.input.len() && self.input[pos] == v as u8).then_some(pos + 1)
            } else {
                let c = char::from_u32(v)?;
                let mut buf = [0u8; 4];
                let enc = c.encode_utf8(&mut buf).as_bytes();
                let end = pos + enc.len();
                (end <= self.input.len() && &self.input[pos..end] == enc).then_some(end)
            }
        }

        fn match_repeat(&mut self, rep: Repeat, inner: &Node, pos: usize) -> Vec<usize> {
            let max = rep.max.unwrap_or(u32::MAX);
            let mut frontier = vec![pos];
            let mut results = Vec::new();
            if rep.min == 0 {
                results.push(pos);
            }
            let mut count = 0u32;
            while count < max && !frontier.is_empty() {
                count += 1;
                let mut next = Vec::new();
                for &p in &frontier {
                    for end in self.match_node(inner, p) {
                        if end > p {
                            next.push(end);
                        } else if count >= rep.min {
                            // Zero-width inner match: accept but do not loop.
                            results.push(end);
                        }
                    }
                }
                next.sort_unstable();
                next.dedup();
                if count >= rep.min {
                    results.extend(next.iter().copied());
                }
                frontier = next;
                if self.overflowed {
                    break;
                }
            }
            results.sort_unstable_by(|a, b| b.cmp(a));
            results.dedup();
            results
        }
    }

    /// Reference-matcher counterpart of [`super::matches`].
    pub fn matches(grammar: &Grammar, rule: &str, input: &[u8]) -> MatchOutcome {
        matches_with_budget(grammar, rule, input, super::DEFAULT_BUDGET)
    }

    /// Reference-matcher counterpart of [`super::matches_with_budget`].
    pub fn matches_with_budget(
        grammar: &Grammar,
        rule: &str,
        input: &[u8],
        budget: usize,
    ) -> MatchOutcome {
        let Some(r) = grammar.get(rule) else {
            return MatchOutcome::NoMatch;
        };
        let node = r.node.clone();
        let mut m = Matcher { grammar, input, budget, overflowed: false };
        let ends = m.match_node(&node, 0);
        if ends.contains(&input.len()) {
            MatchOutcome::Match
        } else if m.overflowed {
            MatchOutcome::Overflow
        } else {
            MatchOutcome::NoMatch
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_rulelist;

    fn grammar(text: &str) -> Grammar {
        Grammar::from_rules("t", parse_rulelist(text).unwrap())
    }

    /// Runs an assertion against both the compiled and the reference
    /// matcher — the suite below documents semantics both must share.
    fn both(g: &Grammar, rule: &str, input: &[u8], want_match: bool) {
        assert_eq!(matches(g, rule, input).is_match(), want_match, "compiled: {rule} {input:?}");
        assert_eq!(
            reference::matches(g, rule, input).is_match(),
            want_match,
            "reference: {rule} {input:?}"
        );
    }

    #[test]
    fn literals_and_case() {
        let g = grammar("a = \"GET\"\nb = %s\"GET\"\n");
        both(&g, "a", b"GET", true);
        both(&g, "a", b"get", true); // char-val is case-insensitive
        both(&g, "b", b"GET", true);
        both(&g, "b", b"get", false); // %s is case-sensitive
        both(&g, "a", b"GETX", false); // must consume all input
    }

    #[test]
    fn repetition_bounds() {
        let g = grammar("x = 2*4\"a\"\ny = *\"b\"\nz = 3DIGIT\n");
        both(&g, "x", b"a", false);
        both(&g, "x", b"aa", true);
        both(&g, "x", b"aaaa", true);
        both(&g, "x", b"aaaaa", false);
        both(&g, "y", b"", true);
        both(&g, "y", b"bbbbbb", true);
        both(&g, "z", b"404", true);
        both(&g, "z", b"40", false);
    }

    #[test]
    fn alternation_and_groups() {
        let g = grammar("m = (\"GET\" / \"POST\") \" \" 1*ALPHA\n");
        both(&g, "m", b"GET abc", true);
        both(&g, "m", b"POST x", true);
        both(&g, "m", b"PUT x", false);
    }

    #[test]
    fn http_version_rule() {
        let g = grammar(
            "HTTP-version = HTTP-name \"/\" DIGIT \".\" DIGIT\nHTTP-name = %x48.54.54.50\n",
        );
        both(&g, "HTTP-version", b"HTTP/1.1", true);
        both(&g, "HTTP-version", b"http/1.1", false); // HTTP-name is a byte sequence
        both(&g, "HTTP-version", b"HTTP/11", false);
        both(&g, "HTTP-version", b"1.1/HTTP", false);
    }

    #[test]
    fn backtracking_across_concatenation() {
        // `1*ALPHA "a"` needs the repetition to give back a character.
        let g = grammar("t = 1*ALPHA \"a\"\n");
        both(&g, "t", b"xya", true);
        both(&g, "t", b"aa", true);
        both(&g, "t", b"a", false);
    }

    #[test]
    fn recursive_rule() {
        let g = grammar("comment = \"(\" *( ctext / comment ) \")\"\nctext = %x61-7A\n");
        both(&g, "comment", b"(abc)", true);
        both(&g, "comment", b"(a(b)c)", true);
        both(&g, "comment", b"(a(b)c", false);
    }

    #[test]
    fn overflow_is_reported_not_hung() {
        let g = grammar("x = *( \"\" )\n"); // zero-width star: pathological
        let out = matches_with_budget(&g, "x", b"a", 50);
        assert!(matches!(out, MatchOutcome::NoMatch | MatchOutcome::Overflow));
        let out = reference::matches_with_budget(&g, "x", b"a", 50);
        assert!(matches!(out, MatchOutcome::NoMatch | MatchOutcome::Overflow));
    }

    #[test]
    fn unknown_rule_is_no_match() {
        let g = grammar("a = \"x\"\n");
        assert_eq!(matches(&g, "nope", b"x"), MatchOutcome::NoMatch);
        assert_eq!(reference::matches(&g, "nope", b"x"), MatchOutcome::NoMatch);
    }

    #[test]
    fn compiled_needs_no_budget_where_reference_overflows() {
        // Nested ambiguous repetition: the reference matcher re-expands
        // `1*ALPHA` per split point and overflows small budgets; the
        // memoized matcher completes in ~rules × positions computations.
        let g = grammar("t = 1*( a ) \"!\"\na = 1*ALPHA\n");
        let input = [b"x".repeat(48), b"!".to_vec()].concat();
        assert_eq!(matches_with_budget(&g, "t", &input, 5_000), MatchOutcome::Match);
        assert_eq!(
            reference::matches_with_budget(&g, "t", &input, 5_000),
            MatchOutcome::Overflow,
            "reference matcher should exhaust this budget (else the test grammar is too easy)"
        );
    }

    #[test]
    fn real_corpus_host_rule_accepts_valid_and_rejects_invalid() {
        let mut adaptor = crate::Adaptor::new();
        for doc in hdiff_corpus::core_documents() {
            let (rules, _) = crate::extract_abnf(&doc.full_text());
            adaptor.add_document(doc.tag.clone(), rules);
        }
        for doc in hdiff_corpus::reference_documents() {
            let (rules, _) = crate::extract_abnf(&doc.full_text());
            adaptor.register_reference(doc.tag.clone(), Grammar::from_rules(&doc.tag, rules));
        }
        let (g, _) = adaptor.adapt(&crate::AdaptOptions::default());
        for ok in [&b"example.com"[..], b"h1.com:8080", b"127.0.0.1", b"h2.com"] {
            both(&g, "Host", ok, true);
        }
        for bad in [&b"h1.com@h2.com"[..], b"h1.com, h2.com", b"h1 h2"] {
            both(&g, "Host", bad, false);
        }
    }
}
