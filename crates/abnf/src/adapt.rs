//! The ABNF Rule Adaptor: merges per-RFC rule sets into one closed grammar.
//!
//! RFC grammars are not self-contained. The adaptor performs the four
//! transformations the paper describes (§III-C *ABNF Rule Adaption*):
//!
//! 1. **Case-insensitive rule names** — handled structurally by
//!    [`Grammar`]'s lowercased keys.
//! 2. **Most-recent-RFC precedence** — when the same rule name appears in
//!    several documents, the definition from the document listed last wins;
//!    the shadowed definition is preserved under a namespaced alias
//!    (`rfc7230-rulename`).
//! 3. **Prose-val expansion** — a rule defined as
//!    `<host, see [RFC3986], Section 3.2.2>` is resolved by importing the
//!    referenced rule (and its closure) from the registered grammar of that
//!    document.
//! 4. **Custom replacements** — references that remain undefined after
//!    expansion are substituted with caller-provided custom rules, or
//!    recorded as still-undefined.

use std::collections::BTreeMap;

use crate::ast::{Node, Rule};
use crate::grammar::Grammar;

/// Options for [`Adaptor::adapt`].
#[derive(Debug, Clone, Default)]
pub struct AdaptOptions {
    /// Replacement rules for names that stay undefined (the paper's
    /// "replacing invalid rule definitions with customized rules").
    pub custom_rules: Vec<Rule>,
}

/// What the adaptor did — surfaced so experiments can report it.
#[derive(Debug, Clone, Default)]
pub struct AdaptReport {
    /// `(rule, shadowing_source, alias)` for same-name rules that were
    /// shadowed and preserved under a namespaced alias.
    pub namespaced: Vec<(String, String, String)>,
    /// `(rule, referenced_document)` prose-vals expanded from another
    /// document's grammar.
    pub expanded_prose: Vec<(String, String)>,
    /// Names substituted from [`AdaptOptions::custom_rules`].
    pub substituted: Vec<String>,
    /// Names still undefined after all transformations.
    pub still_undefined: Vec<String>,
}

/// Merges document grammars into a closed ruleset.
#[derive(Debug, Default)]
pub struct Adaptor {
    /// `(source tag, rules)` in publication order — later entries are "more
    /// recent" and take precedence.
    documents: Vec<(String, Vec<Rule>)>,
    /// Registered reference grammars for prose expansion, keyed by document
    /// tag lowercased (e.g. `rfc3986`).
    references: BTreeMap<String, Grammar>,
}

impl Adaptor {
    /// Creates an empty adaptor.
    pub fn new() -> Adaptor {
        Adaptor::default()
    }

    /// Adds a document's extracted rules. Call in publication order; later
    /// documents take precedence for repeated rule names.
    pub fn add_document(&mut self, source: impl Into<String>, rules: Vec<Rule>) -> &mut Self {
        self.documents.push((source.into(), rules));
        self
    }

    /// Registers a reference grammar that prose-vals may point into (e.g.
    /// the RFC 3986 URI grammar).
    pub fn register_reference(&mut self, doc: impl Into<String>, grammar: Grammar) -> &mut Self {
        self.references.insert(doc.into().to_ascii_lowercase(), grammar);
        self
    }

    /// Runs the adaptation, producing a closed grammar and a report.
    pub fn adapt(&self, opts: &AdaptOptions) -> (Grammar, AdaptReport) {
        let mut report = AdaptReport::default();
        let mut grammar = Grammar::new();

        // Pass 1: merge with most-recent precedence; preserve shadowed
        // definitions under namespaced aliases.
        for (source, rules) in &self.documents {
            for rule in rules {
                if !rule.incremental {
                    if let Some(existing_src) = grammar.source_of(&rule.name) {
                        if existing_src != source {
                            let alias = format!(
                                "{}-{}",
                                existing_src.to_ascii_lowercase(),
                                rule.name.to_ascii_lowercase()
                            );
                            if let Some(old) = grammar.get(&rule.name).cloned() {
                                grammar.insert(
                                    existing_src.to_string().as_str(),
                                    Rule::new(alias.clone(), old.node),
                                );
                            }
                            report.namespaced.push((
                                rule.name.to_ascii_lowercase(),
                                source.clone(),
                                alias,
                            ));
                        }
                    }
                }
                grammar.insert(source, rule.clone());
            }
        }

        // Pass 2: expand prose rules from registered reference grammars.
        let prose: Vec<Rule> = grammar.prose_rules().into_iter().cloned().collect();
        for rule in prose {
            if let Some((target, doc)) = parse_prose_reference(&rule) {
                if let Some(ref_grammar) = self.references.get(&doc) {
                    if ref_grammar.contains(&target) {
                        if target.eq_ignore_ascii_case(&rule.name) {
                            // Self-named reference (`scheme = <scheme, see
                            // [RFC3986]>`): adopt the referenced definition
                            // outright — a rule reference here would be a
                            // self-loop.
                            let adopted = ref_grammar.get(&target).expect("checked").clone();
                            let renames = self.import_closure_refs(
                                &mut grammar,
                                ref_grammar,
                                &doc,
                                &adopted.node.references(),
                                &mut report,
                            );
                            let mut node = adopted.node;
                            for (from, to) in &renames {
                                node.rename_refs(from, to);
                            }
                            grammar.insert(&doc, Rule::new(rule.name.clone(), node));
                        } else {
                            let renames = self.import_closure_refs(
                                &mut grammar,
                                ref_grammar,
                                &doc,
                                &[target.as_str()],
                                &mut report,
                            );
                            let effective_target = renames
                                .iter()
                                .find(|(from, _)| from.eq_ignore_ascii_case(&target))
                                .map(|(_, to)| to.clone())
                                .unwrap_or_else(|| target.clone());
                            let mut node = rule.node.clone();
                            replace_prose(&mut node, &effective_target);
                            grammar.insert(&doc, Rule::new(rule.name.clone(), node));
                        }
                        report.expanded_prose.push((rule.name.to_ascii_lowercase(), doc));
                        continue;
                    }
                }
            }
        }

        // Pass 3: custom substitutions for whatever is still undefined.
        let customs: BTreeMap<String, &Rule> =
            opts.custom_rules.iter().map(|r| (r.name.to_ascii_lowercase(), r)).collect();
        loop {
            let missing = grammar.undefined_references();
            let mut progressed = false;
            for name in &missing {
                if let Some(rule) = customs.get(name) {
                    grammar.insert("custom", (*rule).clone());
                    report.substituted.push(name.clone());
                    progressed = true;
                }
            }
            if !progressed {
                report.still_undefined = missing;
                break;
            }
        }

        (grammar, report)
    }

    /// Imports the closures of `targets` out of `ref_grammar`. Names the
    /// destination already defines with a *different* definition are
    /// imported under a namespaced alias (`rfc3986-host`), and references
    /// inside imported rules are renamed accordingly — so RFC 7230's
    /// `Host` header rule never captures RFC 3986's `host` component
    /// through the case-insensitive key space.
    fn import_closure_refs(
        &self,
        grammar: &mut Grammar,
        ref_grammar: &Grammar,
        doc: &str,
        targets: &[&str],
        report: &mut AdaptReport,
    ) -> Vec<(String, String)> {
        let mut closure: Vec<String> = Vec::new();
        for t in targets {
            for name in ref_grammar.reachable_from(t) {
                if !closure.iter().any(|c| c.eq_ignore_ascii_case(&name)) {
                    closure.push(name);
                }
            }
        }
        // Decide the final name of every closure member.
        let mut renames: Vec<(String, String)> = Vec::new();
        for name in &closure {
            let Some(imported) = ref_grammar.get(name) else { continue };
            if let Some(existing) = grammar.get(name) {
                if existing.node == imported.node {
                    continue; // identical definition: share it
                }
                let alias = format!("{doc}-{}", name.to_ascii_lowercase());
                renames.push((name.clone(), alias.clone()));
                report.namespaced.push((name.to_ascii_lowercase(), doc.to_string(), alias));
            }
        }
        // Import, applying renames to both rule names and references.
        for name in &closure {
            let Some(imported) = ref_grammar.get(name) else { continue };
            let final_name = renames
                .iter()
                .find(|(from, _)| from.eq_ignore_ascii_case(name))
                .map(|(_, to)| to.clone());
            if final_name.is_none() && grammar.contains(name) {
                continue; // identical definition already present
            }
            let mut node = imported.node.clone();
            for (from, to) in &renames {
                node.rename_refs(from, to);
            }
            grammar
                .insert(doc, Rule::new(final_name.unwrap_or_else(|| imported.name.clone()), node));
        }
        renames
    }
}

/// Parses `<host, see [RFC3986], Section 3.2.2>`-style prose into
/// `(target_rule, document_tag)`.
fn parse_prose_reference(rule: &Rule) -> Option<(String, String)> {
    fn find_prose(n: &Node) -> Option<&str> {
        match n {
            Node::ProseVal(t) => Some(t),
            Node::Alternation(v) | Node::Concatenation(v) => v.iter().find_map(find_prose),
            Node::Repetition(_, i) | Node::Group(i) | Node::Optional(i) => find_prose(i),
            _ => None,
        }
    }
    let text = find_prose(&rule.node)?;
    // Target rule name: leading token up to ',' or whitespace.
    let target: String =
        text.chars().take_while(|c| c.is_ascii_alphanumeric() || *c == '-').collect();
    if target.is_empty() {
        return None;
    }
    // Document: `[RFCnnnn]` anywhere in the prose.
    let open = text.find("[RFC")?;
    let close = text[open..].find(']')? + open;
    let doc = text[open + 1..close].replace(' ', "").to_ascii_lowercase();
    Some((target, doc))
}

/// Replaces the first prose-val in `node` with a reference to `target`.
fn replace_prose(node: &mut Node, target: &str) {
    match node {
        Node::ProseVal(_) => *node = Node::RuleRef(target.to_string()),
        Node::Alternation(v) | Node::Concatenation(v) => {
            v.iter_mut().for_each(|n| replace_prose(n, target));
        }
        Node::Repetition(_, i) | Node::Group(i) | Node::Optional(i) => replace_prose(i, target),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_rulelist;

    fn rules(text: &str) -> Vec<Rule> {
        parse_rulelist(text).unwrap()
    }

    #[test]
    fn most_recent_document_wins_with_alias() {
        let mut a = Adaptor::new();
        a.add_document("rfc7230", rules("token = 1*tchar\ntchar = ALPHA\n"));
        a.add_document("rfc7231", rules("token = 1*ALPHA\n"));
        let (g, report) = a.adapt(&AdaptOptions::default());
        // Newest definition wins.
        assert_eq!(g.source_of("token"), Some("rfc7231"));
        // Old definition preserved under alias.
        assert!(g.contains("rfc7230-token"));
        assert_eq!(report.namespaced.len(), 1);
    }

    #[test]
    fn prose_expansion_pulls_closure_from_reference() {
        let ref_g = Grammar::from_rules(
            "rfc3986",
            rules("host = reg-name\nreg-name = *( unreserved )\nunreserved = ALPHA / DIGIT / \"-\" / \".\"\n"),
        );
        let mut a = Adaptor::new();
        a.add_document(
            "rfc7230",
            rules("Host = uri-host\nuri-host = <host, see [RFC3986], Section 3.2.2>\n"),
        );
        a.register_reference("rfc3986", ref_g);
        let (g, report) = a.adapt(&AdaptOptions::default());
        assert!(g.contains("host"));
        assert!(g.contains("reg-name"));
        assert!(g.contains("unreserved"));
        assert_eq!(report.expanded_prose, vec![("uri-host".to_string(), "rfc3986".to_string())]);
        assert!(g.undefined_references().is_empty(), "{:?}", g.undefined_references());
        // The prose node was replaced by a rule reference. Because the
        // document's own `Host` rule shares the case-insensitive key with
        // RFC 3986's `host`, the import was namespaced.
        assert_eq!(g.get("uri-host").unwrap().node, Node::RuleRef("rfc3986-host".into()));
        assert!(g.is_well_founded("uri-host"));
        assert!(g.is_well_founded("Host"));
    }

    #[test]
    fn custom_substitution_for_missing_rules() {
        let mut a = Adaptor::new();
        a.add_document("doc", rules("msg = payload\n"));
        let opts = AdaptOptions { custom_rules: rules("payload = 1*OCTET\n") };
        let (g, report) = a.adapt(&opts);
        assert!(g.contains("payload"));
        assert_eq!(report.substituted, vec!["payload".to_string()]);
        assert!(report.still_undefined.is_empty());
    }

    #[test]
    fn custom_substitution_is_transitive() {
        let mut a = Adaptor::new();
        a.add_document("doc", rules("msg = a\n"));
        let opts = AdaptOptions { custom_rules: rules("a = b\nb = \"x\"\n") };
        let (g, report) = a.adapt(&opts);
        assert!(g.contains("a"));
        assert!(g.contains("b"));
        assert!(report.still_undefined.is_empty());
    }

    #[test]
    fn unresolvable_names_reported() {
        let mut a = Adaptor::new();
        a.add_document("doc", rules("msg = mystery\n"));
        let (_, report) = a.adapt(&AdaptOptions::default());
        assert_eq!(report.still_undefined, vec!["mystery".to_string()]);
    }

    #[test]
    fn prose_reference_parsing() {
        let r = Rule::new("uri-host", Node::ProseVal("host, see [RFC3986], Section 3.2.2".into()));
        assert_eq!(parse_prose_reference(&r), Some(("host".to_string(), "rfc3986".to_string())));
        let bad = Rule::new("x", Node::ProseVal("no citation here".into()));
        assert_eq!(parse_prose_reference(&bad), None);
    }

    #[test]
    fn incremental_rules_across_documents_extend() {
        let mut a = Adaptor::new();
        a.add_document("rfc7230", rules("coding = \"chunked\"\n"));
        a.add_document("rfc7231", rules("coding =/ \"gzip\"\n"));
        let (g, _) = a.adapt(&AdaptOptions::default());
        match &g.get("coding").unwrap().node {
            Node::Alternation(alts) => assert_eq!(alts.len(), 2),
            other => panic!("{other:?}"),
        }
    }
}
