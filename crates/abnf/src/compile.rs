//! Compiled grammar IR: the matcher's and generator's shared hot-path form.
//!
//! [`Grammar`] keeps rules as name-keyed AST trees, which is the right
//! shape for extraction and adaptation but a terrible shape for the two
//! hot loops (recognition and generation): every rule expansion pays a
//! string-keyed `BTreeMap` lookup plus a deep clone of the rule's tree.
//! [`CompiledGrammar`] lowers the whole grammar once into:
//!
//! * an **interning table** — rule names (grammar rules, core rules, and
//!   referenced-but-undefined names) become dense `u32` indices;
//! * a **contiguous op arena** — every AST node becomes one [`Op`] in a
//!   flat `Vec`, children referenced by index (no pointer chasing, no
//!   clones); literal bytes live in one shared pool;
//! * per-rule **nullability** and **first-byte sets** — a rule that cannot
//!   match empty and whose first set excludes the next input byte is
//!   rejected in O(1) without expansion.
//!
//! The lowering is structure-preserving (one op per AST node, groups
//! inlined), so a generator walking the arena makes exactly the decisions
//! the AST walker made — including its RNG draw sequence. The packrat
//! matcher over this IR lives in [`crate::memo`].

use std::collections::HashMap;

use crate::ast::{Node, Repeat};
use crate::core_rules;
use crate::grammar::Grammar;

/// Sentinel repetition maximum meaning "unbounded" (`*`).
pub const UNBOUNDED: u32 = u32::MAX;

/// A `(start, len)` window into the arena's child-index table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KidRange {
    /// First index into [`OpArena::kids`].
    pub start: u32,
    /// Number of children.
    pub len: u32,
}

/// A `(start, len)` window into the arena's literal byte pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolRange {
    /// First byte index into [`OpArena::pool`].
    pub start: u32,
    /// Number of bytes.
    pub len: u32,
}

/// One lowered grammar operation. Child ops are referenced by arena index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// `a / b / c` — ordered choice.
    Alt(KidRange),
    /// `a b c` — sequence.
    Cat(KidRange),
    /// `n*m element`; `max == UNBOUNDED` encodes `*`.
    Repeat {
        /// Minimum repetitions.
        min: u32,
        /// Maximum repetitions ([`UNBOUNDED`] for `*`).
        max: u32,
        /// The repeated op.
        kid: u32,
    },
    /// `[ element ]`.
    Opt {
        /// The optional op.
        kid: u32,
    },
    /// Reference to an interned rule. Indices `>=
    /// CompiledGrammar::rule_count()` address a [`DetachedProgram`]'s
    /// extra (grammar-unknown) names.
    Rule(u32),
    /// A literal byte string from the pool. Covers char-vals (with
    /// `case_insensitive` per RFC 7405) and multi-byte num-vals/num-seqs
    /// (always case-sensitive).
    Lit {
        /// Bytes, as written, in [`OpArena::pool`].
        range: PoolRange,
        /// Whether matching ignores ASCII case.
        case_insensitive: bool,
    },
    /// A single exact byte (`%x41` and friends).
    Byte(u8),
    /// `%x41-5A` — inclusive numeric range. Bounds are kept as written
    /// (generation samples the full range; matching only ever consumes a
    /// single byte, exactly like the AST matcher).
    Range {
        /// Inclusive lower bound.
        lo: u32,
        /// Inclusive upper bound.
        hi: u32,
    },
    /// Matches nothing and generates nothing: prose-vals and num-vals
    /// naming invalid scalar values.
    Fail,
}

/// A 256-bit byte set (first-byte sets).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ByteSet(pub [u64; 4]);

impl ByteSet {
    /// The empty set.
    pub const EMPTY: ByteSet = ByteSet([0; 4]);

    /// Inserts one byte.
    pub fn insert(&mut self, b: u8) {
        self.0[usize::from(b >> 6)] |= 1u64 << (b & 63);
    }

    /// Membership test.
    pub fn contains(self, b: u8) -> bool {
        self.0[usize::from(b >> 6)] & (1u64 << (b & 63)) != 0
    }

    /// In-place union; returns whether `self` grew.
    pub fn union_with(&mut self, other: ByteSet) -> bool {
        let mut grew = false;
        for (s, o) in self.0.iter_mut().zip(other.0) {
            let next = *s | o;
            grew |= next != *s;
            *s = next;
        }
        grew
    }

    /// Number of bytes in the set.
    pub fn len(self) -> usize {
        self.0.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(self) -> bool {
        self.0 == [0; 4]
    }
}

/// Where an interned rule name came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuleOrigin {
    /// Defined by the grammar itself (possibly shadowing a core rule).
    Grammar,
    /// An RFC 5234 core rule reachable through the implicit fallback.
    Core,
    /// Referenced somewhere but defined nowhere: matches nothing.
    Undefined,
}

/// One interned rule with its precomputed matching metadata.
#[derive(Debug, Clone)]
pub struct RuleInfo {
    /// Rule name as written at its first definition or reference.
    pub name: String,
    /// Root op index; `None` for undefined references.
    pub root: Option<u32>,
    /// Provenance of the definition.
    pub origin: RuleOrigin,
    /// Whether the rule can match the empty string (over-approximation).
    pub nullable: bool,
    /// Bytes any non-empty match of this rule can start with
    /// (over-approximation).
    pub first: ByteSet,
    /// `Some(set)` when the rule's entire language is "exactly one byte
    /// from `set`" (character classes like `ALPHA` or `unreserved`) —
    /// the matcher answers these in O(1) without touching the memo
    /// table. This is exact, never an approximation.
    pub single: Option<ByteSet>,
}

/// The flat op storage shared by compiled grammars and detached programs.
#[derive(Debug, Clone, Default)]
pub struct OpArena {
    /// All ops, children before parents.
    pub ops: Vec<Op>,
    /// Child-index pool for [`Op::Alt`]/[`Op::Cat`].
    pub kids: Vec<u32>,
    /// Literal byte pool for [`Op::Lit`].
    pub pool: Vec<u8>,
}

impl OpArena {
    /// The op at `idx`.
    pub fn op(&self, idx: u32) -> Op {
        self.ops[idx as usize]
    }

    /// The children of an [`Op::Alt`]/[`Op::Cat`].
    pub fn kid_slice(&self, range: KidRange) -> &[u32] {
        &self.kids[range.start as usize..(range.start + range.len) as usize]
    }

    /// The bytes of an [`Op::Lit`].
    pub fn lit_bytes(&self, range: PoolRange) -> &[u8] {
        &self.pool[range.start as usize..(range.start + range.len) as usize]
    }
}

/// A grammar lowered to the arena IR, with interned rule names and
/// per-rule match metadata. Built once per [`Grammar`] (see
/// [`Grammar::compiled`]) and shared via `Arc`.
#[derive(Debug, Clone)]
pub struct CompiledGrammar {
    arena: OpArena,
    rules: Vec<RuleInfo>,
    index: HashMap<String, u32>,
}

/// An AST node compiled against an existing [`CompiledGrammar`] — the
/// tree mutator's path: rule references resolve into the shared grammar;
/// names the grammar does not know are kept (so predefined-value lookup
/// by name still works) but expand to nothing.
#[derive(Debug, Clone)]
pub struct DetachedProgram {
    /// The program's own little arena. `Op::Rule` indices below the
    /// grammar's rule count refer into the grammar.
    pub arena: OpArena,
    /// Root op of the compiled node.
    pub root: u32,
    /// Names for rule indices at `rule_count() + i`.
    pub extra_names: Vec<String>,
}

impl CompiledGrammar {
    /// Lowers a grammar: interns every grammar rule (in insertion order),
    /// every core rule, and every referenced-but-undefined name; flattens
    /// all definitions into one arena; computes nullability and first
    /// sets to fixpoint.
    pub fn compile(g: &Grammar) -> CompiledGrammar {
        let mut c =
            Compiler { arena: OpArena::default(), rules: Vec::new(), index: HashMap::new() };
        // Intern grammar rules first (stable, insertion-ordered indices),
        // then the implicit core rules.
        for rule in g.iter() {
            c.intern(&rule.name);
        }
        for rule in core_rules::core_rules() {
            c.intern(&rule.name);
        }
        // Compile definitions; references discovered along the way extend
        // the worklist with new (possibly undefined) indices.
        let mut i = 0usize;
        while i < c.rules.len() {
            let name = c.rules[i].name.clone();
            if let Some(rule) = g.get(&name) {
                let node = rule.node.clone();
                let root = c.lower(&node, &mut Resolver::Intern);
                c.rules[i].root = Some(root);
                c.rules[i].origin = if g.source_of(&name).is_some() {
                    RuleOrigin::Grammar
                } else {
                    RuleOrigin::Core
                };
            }
            i += 1;
        }
        let mut cg = CompiledGrammar { arena: c.arena, rules: c.rules, index: c.index };
        cg.compute_nullability();
        cg.compute_first_sets();
        cg.compute_single_byte_classes();
        cg
    }

    /// Number of interned rules (grammar + core + undefined references).
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    /// Case-insensitive name lookup.
    pub fn rule_index(&self, name: &str) -> Option<u32> {
        self.index.get(&name.to_ascii_lowercase()).copied()
    }

    /// The rule at `idx`.
    pub fn rule(&self, idx: u32) -> &RuleInfo {
        &self.rules[idx as usize]
    }

    /// Whether `name` resolves to a defined rule (grammar or core).
    pub fn has_rule(&self, name: &str) -> bool {
        self.rule_index(name).is_some_and(|i| self.rule(i).root.is_some())
    }

    /// The shared op arena.
    pub fn arena(&self) -> &OpArena {
        &self.arena
    }

    /// Compiles a free-standing AST node (e.g. a mutated rule tree)
    /// against this grammar.
    pub fn compile_detached(&self, node: &Node) -> DetachedProgram {
        let mut c =
            Compiler { arena: OpArena::default(), rules: Vec::new(), index: HashMap::new() };
        let mut resolver =
            Resolver::External { cg: self, extra_names: Vec::new(), extra_index: HashMap::new() };
        let root = c.lower(node, &mut resolver);
        let Resolver::External { extra_names, .. } = resolver else { unreachable!() };
        DetachedProgram { arena: c.arena, root, extra_names }
    }

    fn compute_nullability(&mut self) {
        let mut changed = true;
        while changed {
            changed = false;
            for i in 0..self.rules.len() {
                if self.rules[i].nullable {
                    continue;
                }
                let Some(root) = self.rules[i].root else { continue };
                if self.op_nullable(root) {
                    self.rules[i].nullable = true;
                    changed = true;
                }
            }
        }
    }

    fn op_nullable(&self, op: u32) -> bool {
        match self.arena.op(op) {
            Op::Alt(kids) => self.arena.kid_slice(kids).iter().any(|&k| self.op_nullable(k)),
            Op::Cat(kids) => self.arena.kid_slice(kids).iter().all(|&k| self.op_nullable(k)),
            Op::Repeat { min, kid, .. } => min == 0 || self.op_nullable(kid),
            Op::Opt { .. } => true,
            Op::Rule(r) => self.rules.get(r as usize).is_some_and(|info| info.nullable),
            Op::Lit { range, .. } => range.len == 0,
            Op::Byte(_) | Op::Range { .. } | Op::Fail => false,
        }
    }

    fn compute_first_sets(&mut self) {
        let mut changed = true;
        while changed {
            changed = false;
            for i in 0..self.rules.len() {
                let Some(root) = self.rules[i].root else { continue };
                let first = self.op_first(root);
                if self.rules[i].first.union_with(first) {
                    changed = true;
                }
            }
        }
    }

    fn op_first(&self, op: u32) -> ByteSet {
        let mut set = ByteSet::EMPTY;
        match self.arena.op(op) {
            Op::Alt(kids) => {
                for &k in self.arena.kid_slice(kids) {
                    set.union_with(self.op_first(k));
                }
            }
            Op::Cat(kids) => {
                for &k in self.arena.kid_slice(kids) {
                    set.union_with(self.op_first(k));
                    if !self.op_nullable(k) {
                        break;
                    }
                }
            }
            Op::Repeat { kid, .. } | Op::Opt { kid } => {
                set.union_with(self.op_first(kid));
            }
            Op::Rule(r) => {
                if let Some(info) = self.rules.get(r as usize) {
                    set.union_with(info.first);
                }
            }
            Op::Lit { range, case_insensitive } => {
                if let Some(&b) = self.arena.lit_bytes(range).first() {
                    set.insert(b);
                    if case_insensitive {
                        set.insert(b.to_ascii_lowercase());
                        set.insert(b.to_ascii_uppercase());
                    }
                }
            }
            Op::Byte(b) => set.insert(b),
            Op::Range { lo, hi } => {
                // Matching only ever consumes one byte, so clamp to 0..=255.
                if lo <= 0xff {
                    for b in lo..=hi.min(0xff) {
                        set.insert(b as u8);
                    }
                }
            }
            Op::Fail => {}
        }
        set
    }

    /// Fixpoint over [`RuleInfo::single`]: a rule is a character class
    /// when every derivation consumes exactly one byte. Starts all-`None`
    /// and only promotes rules whose ops fully resolve, so recursive or
    /// structurally unknown rules conservatively stay `None`.
    fn compute_single_byte_classes(&mut self) {
        let mut changed = true;
        while changed {
            changed = false;
            for i in 0..self.rules.len() {
                if self.rules[i].single.is_some() {
                    continue;
                }
                let Some(root) = self.rules[i].root else { continue };
                if let Some(set) = self.op_single(root) {
                    self.rules[i].single = Some(set);
                    changed = true;
                }
            }
        }
    }

    fn op_single(&self, op: u32) -> Option<ByteSet> {
        match self.arena.op(op) {
            Op::Alt(kids) => {
                let mut set = ByteSet::EMPTY;
                for &k in self.arena.kid_slice(kids) {
                    set.union_with(self.op_single(k)?);
                }
                Some(set)
            }
            Op::Repeat { min: 1, max: 1, kid } => self.op_single(kid),
            Op::Rule(r) => self.rules.get(r as usize).and_then(|info| info.single),
            Op::Lit { range, case_insensitive } => {
                let lit = self.arena.lit_bytes(range);
                let [b] = lit else { return None };
                let mut set = ByteSet::EMPTY;
                set.insert(*b);
                if case_insensitive {
                    set.insert(b.to_ascii_lowercase());
                    set.insert(b.to_ascii_uppercase());
                }
                Some(set)
            }
            Op::Byte(b) => {
                let mut set = ByteSet::EMPTY;
                set.insert(b);
                Some(set)
            }
            Op::Range { lo, hi } => {
                let mut set = ByteSet::EMPTY;
                if lo <= 0xff {
                    for b in lo..=hi.min(0xff) {
                        set.insert(b as u8);
                    }
                }
                Some(set)
            }
            // `Fail` matches nothing: the empty class is exact.
            Op::Fail => Some(ByteSet::EMPTY),
            Op::Cat(_) | Op::Repeat { .. } | Op::Opt { .. } => None,
        }
    }
}

/// How `Op::Rule` references resolve during lowering.
enum Resolver<'c> {
    /// Grammar compilation: intern names into the compiler itself.
    Intern,
    /// Detached compilation: resolve against a finished grammar; unknown
    /// names get indices past its rule count.
    External {
        cg: &'c CompiledGrammar,
        extra_names: Vec<String>,
        extra_index: HashMap<String, u32>,
    },
}

struct Compiler {
    arena: OpArena,
    rules: Vec<RuleInfo>,
    index: HashMap<String, u32>,
}

impl Compiler {
    fn intern(&mut self, name: &str) -> u32 {
        let key = name.to_ascii_lowercase();
        if let Some(&idx) = self.index.get(&key) {
            return idx;
        }
        let idx = self.rules.len() as u32;
        self.index.insert(key, idx);
        self.rules.push(RuleInfo {
            name: name.to_string(),
            root: None,
            origin: RuleOrigin::Undefined,
            nullable: false,
            first: ByteSet::EMPTY,
            single: None,
        });
        idx
    }

    fn lower(&mut self, node: &Node, resolver: &mut Resolver<'_>) -> u32 {
        match node {
            Node::Alternation(alts) => {
                let kids: Vec<u32> = alts.iter().map(|n| self.lower(n, resolver)).collect();
                let range = self.push_kids(&kids);
                self.push_op(Op::Alt(range))
            }
            Node::Concatenation(seq) => {
                let kids: Vec<u32> = seq.iter().map(|n| self.lower(n, resolver)).collect();
                let range = self.push_kids(&kids);
                self.push_op(Op::Cat(range))
            }
            Node::Repetition(rep, inner) => {
                let kid = self.lower(inner, resolver);
                let Repeat { min, max } = *rep;
                self.push_op(Op::Repeat { min, max: max.unwrap_or(UNBOUNDED), kid })
            }
            // Groups are pure syntax: lower the inner node directly.
            Node::Group(inner) => self.lower(inner, resolver),
            Node::Optional(inner) => {
                let kid = self.lower(inner, resolver);
                self.push_op(Op::Opt { kid })
            }
            Node::RuleRef(name) => {
                let idx = match resolver {
                    Resolver::Intern => self.intern(name),
                    Resolver::External { cg, extra_names, extra_index } => {
                        match cg.rule_index(name) {
                            Some(idx) => idx,
                            None => {
                                let key = name.to_ascii_lowercase();
                                let base = cg.rule_count() as u32;
                                *extra_index.entry(key).or_insert_with(|| {
                                    extra_names.push(name.to_string());
                                    base + extra_names.len() as u32 - 1
                                })
                            }
                        }
                    }
                };
                self.push_op(Op::Rule(idx))
            }
            Node::CharVal { value, case_sensitive } => {
                let range = self.push_pool(value.as_bytes());
                self.push_op(Op::Lit { range, case_insensitive: !case_sensitive })
            }
            Node::NumVal(v) => self.lower_scalar(*v),
            Node::NumRange(lo, hi) => self.push_op(Op::Range { lo: *lo, hi: *hi }),
            Node::NumSeq(vs) => {
                let mut bytes = Vec::with_capacity(vs.len());
                for &v in vs {
                    if v <= 0xff {
                        bytes.push(v as u8);
                    } else if let Some(c) = char::from_u32(v) {
                        let mut buf = [0u8; 4];
                        bytes.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                    } else {
                        return self.push_op(Op::Fail);
                    }
                }
                let range = self.push_pool(&bytes);
                self.push_op(Op::Lit { range, case_insensitive: false })
            }
            Node::ProseVal(_) => self.push_op(Op::Fail),
        }
    }

    fn lower_scalar(&mut self, v: u32) -> u32 {
        if v <= 0xff {
            self.push_op(Op::Byte(v as u8))
        } else if let Some(c) = char::from_u32(v) {
            let mut buf = [0u8; 4];
            let enc = c.encode_utf8(&mut buf).as_bytes().to_vec();
            let range = self.push_pool(&enc);
            self.push_op(Op::Lit { range, case_insensitive: false })
        } else {
            self.push_op(Op::Fail)
        }
    }

    fn push_op(&mut self, op: Op) -> u32 {
        self.arena.ops.push(op);
        (self.arena.ops.len() - 1) as u32
    }

    fn push_kids(&mut self, kids: &[u32]) -> KidRange {
        let start = self.arena.kids.len() as u32;
        self.arena.kids.extend_from_slice(kids);
        KidRange { start, len: kids.len() as u32 }
    }

    fn push_pool(&mut self, bytes: &[u8]) -> PoolRange {
        let start = self.arena.pool.len() as u32;
        self.arena.pool.extend_from_slice(bytes);
        PoolRange { start, len: bytes.len() as u32 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_rulelist;

    fn grammar(text: &str) -> Grammar {
        Grammar::from_rules("t", parse_rulelist(text).unwrap())
    }

    #[test]
    fn interning_covers_grammar_core_and_undefined() {
        let g = grammar("Host = uri-host [ \":\" port ]\nuri-host = 1*ALPHA\n");
        let cg = CompiledGrammar::compile(&g);
        let host = cg.rule_index("host").unwrap();
        assert_eq!(cg.rule(host).origin, RuleOrigin::Grammar);
        assert!(cg.rule(host).root.is_some());
        let alpha = cg.rule_index("ALPHA").unwrap();
        assert_eq!(cg.rule(alpha).origin, RuleOrigin::Core);
        // `port` is referenced but never defined.
        let port = cg.rule_index("PORT").unwrap();
        assert_eq!(cg.rule(port).origin, RuleOrigin::Undefined);
        assert!(cg.rule(port).root.is_none());
        assert!(cg.has_rule("host"));
        assert!(!cg.has_rule("port"));
    }

    #[test]
    fn nullability_and_first_sets() {
        let g = grammar(
            "a = *\"x\"\nb = \"y\" a\nc = [ \"z\" ]\nd = a b\ncase = \"gEt\"\nr = %x30-39\n",
        );
        let cg = CompiledGrammar::compile(&g);
        let info = |n: &str| cg.rule(cg.rule_index(n).unwrap()).clone();
        assert!(info("a").nullable);
        assert!(!info("b").nullable);
        assert!(info("c").nullable);
        assert!(!info("d").nullable, "d needs b which needs 'y'");
        assert!(info("a").first.contains(b'x'));
        assert!(info("b").first.contains(b'y') && !info("b").first.contains(b'x'));
        // d = a b: a is nullable, so first(d) includes both x and y.
        assert!(info("d").first.contains(b'x') && info("d").first.contains(b'y'));
        // Case-insensitive literals admit both cases of the first byte.
        assert!(info("case").first.contains(b'g') && info("case").first.contains(b'G'));
        for b in b'0'..=b'9' {
            assert!(info("r").first.contains(b));
        }
        assert!(!info("r").first.contains(b'a'));
    }

    #[test]
    fn recursive_rules_compile_with_finite_fixpoints() {
        let g = grammar("comment = \"(\" *( ctext / comment ) \")\"\nctext = %x61-7A\n");
        let cg = CompiledGrammar::compile(&g);
        let comment = cg.rule(cg.rule_index("comment").unwrap());
        assert!(!comment.nullable);
        assert!(comment.first.contains(b'(') && !comment.first.contains(b'a'));
    }

    #[test]
    fn detached_compilation_resolves_known_and_keeps_unknown_names() {
        let g = grammar("x = 1*ALPHA\n");
        let cg = CompiledGrammar::compile(&g);
        let node =
            Node::Concatenation(vec![Node::RuleRef("x".into()), Node::RuleRef("mystery".into())]);
        let p = cg.compile_detached(&node);
        assert_eq!(p.extra_names, vec!["mystery".to_string()]);
        let Op::Cat(kids) = p.arena.op(p.root) else { panic!() };
        let kids = p.arena.kid_slice(kids).to_vec();
        let Op::Rule(known) = p.arena.op(kids[0]) else { panic!() };
        assert_eq!(known, cg.rule_index("x").unwrap());
        let Op::Rule(unknown) = p.arena.op(kids[1]) else { panic!() };
        assert_eq!(unknown as usize, cg.rule_count());
    }

    #[test]
    fn byteset_basics() {
        let mut s = ByteSet::EMPTY;
        assert!(s.is_empty());
        s.insert(0);
        s.insert(255);
        s.insert(b'a');
        assert_eq!(s.len(), 3);
        assert!(s.contains(0) && s.contains(255) && s.contains(b'a'));
        assert!(!s.contains(b'b'));
        let mut t = ByteSet::EMPTY;
        t.insert(b'b');
        assert!(s.union_with(t));
        assert!(!s.union_with(t), "second union is a no-op");
        assert!(s.contains(b'b'));
    }
}
