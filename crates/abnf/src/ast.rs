//! ABNF abstract syntax tree.
//!
//! The paper describes the generator as walking "a tree with seven types of
//! nodes (e.g., alternation, option, concatenation, literal)". [`Node`]
//! enumerates exactly those node kinds.

use std::fmt;

/// Repetition bounds: `min*max` with `max = None` meaning unbounded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Repeat {
    /// Minimum repetitions.
    pub min: u32,
    /// Maximum repetitions; `None` is `*` (unbounded).
    pub max: Option<u32>,
}

impl Repeat {
    /// Exactly once (the implicit repetition of a bare element).
    pub const ONCE: Repeat = Repeat { min: 1, max: Some(1) };

    /// `*element` — zero or more.
    pub const ANY: Repeat = Repeat { min: 0, max: None };

    /// Whether this is the trivial exactly-once repetition.
    pub fn is_once(&self) -> bool {
        *self == Repeat::ONCE
    }
}

impl fmt::Display for Repeat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.min, self.max) {
            (1, Some(1)) => Ok(()),
            (0, None) => write!(f, "*"),
            (min, None) => write!(f, "{min}*"),
            (min, Some(max)) if min == max => write!(f, "{min}"),
            (0, Some(max)) => write!(f, "*{max}"),
            (min, Some(max)) => write!(f, "{min}*{max}"),
        }
    }
}

/// A node of the ABNF syntax tree.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Node {
    /// `a / b / c` — choice between alternatives.
    Alternation(Vec<Node>),
    /// `a b c` — sequence.
    Concatenation(Vec<Node>),
    /// `n*m element` — bounded/unbounded repetition.
    Repetition(Repeat, Box<Node>),
    /// Reference to another rule by name (stored as written; lookup is
    /// case-insensitive).
    RuleRef(String),
    /// `( ... )` — group (kept explicit so printing round-trips).
    Group(Box<Node>),
    /// `[ ... ]` — optional element.
    Optional(Box<Node>),
    /// `"literal"` — string literal. `case_sensitive` reflects the RFC
    /// 7405 `%s` prefix (plain quoted strings are case-insensitive).
    CharVal {
        /// Literal bytes as written.
        value: String,
        /// Whether matching is case-sensitive (`%s"..."`).
        case_sensitive: bool,
    },
    /// `%x41`, `%d65` — a single numeric character value.
    NumVal(u32),
    /// `%x41-5A` — an inclusive numeric range.
    NumRange(u32, u32),
    /// `%x48.54.54.50` — a sequence of numeric character values.
    NumSeq(Vec<u32>),
    /// `<prose description>` — a free-text rule the paper's adaptor must
    /// resolve (often a cross-document reference).
    ProseVal(String),
}

impl Node {
    /// Leaf nodes terminate generator traversal.
    pub fn is_leaf(&self) -> bool {
        matches!(
            self,
            Node::CharVal { .. }
                | Node::NumVal(_)
                | Node::NumRange(..)
                | Node::NumSeq(_)
                | Node::ProseVal(_)
        )
    }

    /// Collects the names of all rules referenced beneath this node.
    pub fn references(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_refs(&mut out);
        out
    }

    fn collect_refs<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Node::Alternation(alts) => alts.iter().for_each(|n| n.collect_refs(out)),
            Node::Concatenation(seq) => seq.iter().for_each(|n| n.collect_refs(out)),
            Node::Repetition(_, inner) | Node::Group(inner) | Node::Optional(inner) => {
                inner.collect_refs(out);
            }
            Node::RuleRef(name) => out.push(name),
            _ => {}
        }
    }

    /// Renames every reference matching `from` (case-insensitively) to `to`.
    pub fn rename_refs(&mut self, from: &str, to: &str) {
        match self {
            Node::Alternation(alts) => alts.iter_mut().for_each(|n| n.rename_refs(from, to)),
            Node::Concatenation(seq) => seq.iter_mut().for_each(|n| n.rename_refs(from, to)),
            Node::Repetition(_, inner) | Node::Group(inner) | Node::Optional(inner) => {
                inner.rename_refs(from, to);
            }
            Node::RuleRef(name) if name.eq_ignore_ascii_case(from) => {
                *name = to.to_string();
            }
            _ => {}
        }
    }
}

impl fmt::Display for Node {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Node::Alternation(alts) => {
                for (i, a) in alts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " / ")?;
                    }
                    write!(f, "{a}")?;
                }
                Ok(())
            }
            Node::Concatenation(seq) => {
                for (i, s) in seq.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "{s}")?;
                }
                Ok(())
            }
            Node::Repetition(rep, inner) => write!(f, "{rep}{inner}"),
            Node::RuleRef(name) => write!(f, "{name}"),
            Node::Group(inner) => write!(f, "( {inner} )"),
            Node::Optional(inner) => write!(f, "[ {inner} ]"),
            Node::CharVal { value, case_sensitive } => {
                if *case_sensitive {
                    write!(f, "%s\"{value}\"")
                } else {
                    write!(f, "\"{value}\"")
                }
            }
            Node::NumVal(v) => write!(f, "%x{v:02X}"),
            Node::NumRange(lo, hi) => write!(f, "%x{lo:02X}-{hi:02X}"),
            Node::NumSeq(vs) => {
                write!(f, "%x")?;
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ".")?;
                    }
                    write!(f, "{v:02X}")?;
                }
                Ok(())
            }
            Node::ProseVal(text) => write!(f, "<{text}>"),
        }
    }
}

/// `Element` is an alias kept for API symmetry with RFC 5234 terminology.
pub type Element = Node;

/// A named ABNF rule: `name = definition`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rule {
    /// Rule name as written (lookup is case-insensitive).
    pub name: String,
    /// The definition tree.
    pub node: Node,
    /// Whether this rule was defined with `=/` (incremental alternative).
    pub incremental: bool,
}

impl Rule {
    /// Builds a plain (non-incremental) rule.
    pub fn new(name: impl Into<String>, node: Node) -> Rule {
        Rule { name: name.into(), node, incremental: false }
    }

    /// Whether the definition contains a prose-val anywhere (needs adaptor
    /// attention).
    pub fn has_prose(&self) -> bool {
        fn walk(n: &Node) -> bool {
            match n {
                Node::ProseVal(_) => true,
                Node::Alternation(v) | Node::Concatenation(v) => v.iter().any(walk),
                Node::Repetition(_, i) | Node::Group(i) | Node::Optional(i) => walk(i),
                _ => false,
            }
        }
        walk(&self.node)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.name, if self.incremental { "=/" } else { "=" }, self.node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeat_display() {
        assert_eq!(Repeat::ONCE.to_string(), "");
        assert_eq!(Repeat::ANY.to_string(), "*");
        assert_eq!(Repeat { min: 1, max: None }.to_string(), "1*");
        assert_eq!(Repeat { min: 0, max: Some(4) }.to_string(), "*4");
        assert_eq!(Repeat { min: 2, max: Some(2) }.to_string(), "2");
        assert_eq!(Repeat { min: 1, max: Some(3) }.to_string(), "1*3");
    }

    #[test]
    fn node_display_round_trips_syntax() {
        let n = Node::Concatenation(vec![
            Node::RuleRef("HTTP-name".into()),
            Node::CharVal { value: "/".into(), case_sensitive: false },
            Node::RuleRef("DIGIT".into()),
        ]);
        assert_eq!(n.to_string(), "HTTP-name \"/\" DIGIT");
    }

    #[test]
    fn references_collects_all() {
        let n = Node::Alternation(vec![
            Node::RuleRef("a".into()),
            Node::Optional(Box::new(Node::Concatenation(vec![
                Node::RuleRef("b".into()),
                Node::Repetition(Repeat::ANY, Box::new(Node::RuleRef("c".into()))),
            ]))),
        ]);
        assert_eq!(n.references(), vec!["a", "b", "c"]);
    }

    #[test]
    fn rename_refs_is_case_insensitive() {
        let mut n = Node::RuleRef("URI-Host".into());
        n.rename_refs("uri-host", "rfc3986:uri-host");
        assert_eq!(n, Node::RuleRef("rfc3986:uri-host".into()));
    }

    #[test]
    fn prose_detection() {
        let r = Rule::new("uri-host", Node::ProseVal("host, see [RFC3986], Section 3.2.2".into()));
        assert!(r.has_prose());
        let plain = Rule::new("x", Node::NumVal(0x41));
        assert!(!plain.has_prose());
    }

    #[test]
    fn leaf_classification() {
        assert!(Node::NumRange(0x41, 0x5a).is_leaf());
        assert!(Node::CharVal { value: "x".into(), case_sensitive: false }.is_leaf());
        assert!(!Node::RuleRef("x".into()).is_leaf());
        assert!(!Node::Group(Box::new(Node::NumVal(1))).is_leaf());
    }
}
