//! A named collection of ABNF rules with case-insensitive lookup.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, OnceLock};

use crate::ast::{Node, Rule};
use crate::compile::CompiledGrammar;
use crate::core_rules;

/// A grammar: rules from one or more sources, keyed case-insensitively.
///
/// Core rules (RFC 5234 appendix B.1) are always resolvable via
/// [`Grammar::get`] even when not explicitly inserted, matching how RFCs
/// use them.
#[derive(Debug, Clone, Default)]
pub struct Grammar {
    /// Lowercased name → (rule, source tag).
    rules: BTreeMap<String, (Rule, String)>,
    /// Insertion order of lowercased names (stable iteration for
    /// deterministic generation).
    order: Vec<String>,
    core: BTreeMap<String, Rule>,
    /// Lazily-built compiled form (see [`Grammar::compiled`]); reset on
    /// every mutation. Cloning a grammar shares the cached compilation.
    compiled: OnceLock<Arc<CompiledGrammar>>,
}

impl Grammar {
    /// Creates an empty grammar (core rules still resolvable).
    pub fn new() -> Grammar {
        let core = core_rules::core_rules()
            .into_iter()
            .map(|r| (r.name.to_ascii_lowercase(), r))
            .collect();
        Grammar { rules: BTreeMap::new(), order: Vec::new(), core, compiled: OnceLock::new() }
    }

    /// The grammar lowered to the arena IR ([`CompiledGrammar`]), built on
    /// first use and cached; [`insert`](Grammar::insert) (and therefore
    /// [`merge`](Grammar::merge)) invalidates the cache. The `Arc` makes
    /// sharing across matchers, generators and threads free.
    pub fn compiled(&self) -> Arc<CompiledGrammar> {
        self.compiled.get_or_init(|| Arc::new(CompiledGrammar::compile(self))).clone()
    }

    /// Builds a grammar from rules attributed to one `source` (e.g.
    /// `"rfc7230"`). Incremental rules (`=/`) are merged into their base
    /// rule as extra alternatives.
    pub fn from_rules(source: &str, rules: Vec<Rule>) -> Grammar {
        let mut g = Grammar::new();
        for r in rules {
            g.insert(source, r);
        }
        g
    }

    /// Number of (non-core) rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether no rules have been inserted.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Inserts a rule. A plain duplicate replaces the existing definition;
    /// an incremental (`=/`) rule appends alternatives to it.
    pub fn insert(&mut self, source: &str, rule: Rule) {
        self.compiled = OnceLock::new();
        let key = rule.name.to_ascii_lowercase();
        if rule.incremental {
            if let Some((existing, _)) = self.rules.get_mut(&key) {
                let old = std::mem::replace(&mut existing.node, Node::Alternation(Vec::new()));
                existing.node = match old {
                    Node::Alternation(mut alts) => {
                        alts.push(rule.node);
                        Node::Alternation(alts)
                    }
                    other => Node::Alternation(vec![other, rule.node]),
                };
                return;
            }
        }
        if !self.rules.contains_key(&key) {
            self.order.push(key.clone());
        }
        self.rules.insert(key, (Rule { incremental: false, ..rule }, source.to_string()));
    }

    /// Looks up a rule by name, case-insensitively; falls back to core
    /// rules.
    pub fn get(&self, name: &str) -> Option<&Rule> {
        let key = name.to_ascii_lowercase();
        self.rules.get(&key).map(|(r, _)| r).or_else(|| self.core.get(&key))
    }

    /// The source tag a rule came from, if it is a non-core rule.
    pub fn source_of(&self, name: &str) -> Option<&str> {
        self.rules.get(&name.to_ascii_lowercase()).map(|(_, s)| s.as_str())
    }

    /// Whether a rule with this name exists (including core rules).
    pub fn contains(&self, name: &str) -> bool {
        self.get(name).is_some()
    }

    /// Iterates over non-core rules in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Rule> {
        self.order.iter().filter_map(|k| self.rules.get(k).map(|(r, _)| r))
    }

    /// Names referenced anywhere in the grammar but defined nowhere
    /// (neither as grammar rules nor core rules). These are the adaptor's
    /// work list.
    pub fn undefined_references(&self) -> Vec<String> {
        let mut missing = Vec::new();
        let mut seen = std::collections::BTreeSet::new();
        for rule in self.iter() {
            for r in rule.node.references() {
                let key = r.to_ascii_lowercase();
                if !self.contains(r) && seen.insert(key.clone()) {
                    missing.push(key);
                }
            }
        }
        missing.sort();
        missing
    }

    /// Rules whose definition contains a prose-val (cross-document or
    /// free-text definitions the adaptor must expand).
    pub fn prose_rules(&self) -> Vec<&Rule> {
        self.iter().filter(|r| r.has_prose()).collect()
    }

    /// Rule names reachable from `start` by following references
    /// (lowercased, including `start` itself; core rules included when
    /// referenced).
    pub fn reachable_from(&self, start: &str) -> Vec<String> {
        let mut stack = vec![start.to_ascii_lowercase()];
        let mut seen = std::collections::BTreeSet::new();
        let mut out = Vec::new();
        while let Some(name) = stack.pop() {
            if !seen.insert(name.clone()) {
                continue;
            }
            out.push(name.clone());
            if let Some(rule) = self.get(&name) {
                for r in rule.node.references() {
                    stack.push(r.to_ascii_lowercase());
                }
            }
        }
        out
    }

    /// Whether every rule reachable from `start` can terminate — i.e. has
    /// a finite expansion that does not require infinite recursion. An
    /// ill-founded cycle (like `uri-host = host` with `host = uri-host …`)
    /// makes generation impossible.
    pub fn is_well_founded(&self, start: &str) -> bool {
        use std::collections::BTreeMap;
        const INF: usize = usize::MAX / 4;
        // Fixpoint min-expansion-depth over the reachable subgrammar.
        let reachable = self.reachable_from(start);
        let mut depth: BTreeMap<String, usize> =
            reachable.iter().map(|n| (n.clone(), INF)).collect();
        fn node_depth(
            g: &Grammar,
            d: &std::collections::BTreeMap<String, usize>,
            n: &Node,
        ) -> usize {
            const INF: usize = usize::MAX / 4;
            match n {
                Node::Alternation(v) => v.iter().map(|x| node_depth(g, d, x)).min().unwrap_or(0),
                Node::Concatenation(v) => v.iter().map(|x| node_depth(g, d, x)).max().unwrap_or(0),
                Node::Repetition(rep, i) => {
                    if rep.min == 0 {
                        0
                    } else {
                        node_depth(g, d, i)
                    }
                }
                Node::Group(i) => node_depth(g, d, i),
                Node::Optional(_) => 0,
                Node::RuleRef(name) => d
                    .get(&name.to_ascii_lowercase())
                    .copied()
                    .unwrap_or(if g.get(name).is_some() { 1 } else { INF }),
                _ => 0,
            }
        }
        let mut changed = true;
        while changed {
            changed = false;
            for name in &reachable {
                let Some(rule) = self.get(name) else { continue };
                let d = node_depth(self, &depth, &rule.node).saturating_add(1);
                let entry = depth.get_mut(name).expect("inserted");
                if d < *entry {
                    *entry = d;
                    changed = true;
                }
            }
        }
        depth.get(&start.to_ascii_lowercase()).copied().unwrap_or(INF) < INF
    }

    /// Merges another grammar into this one. On name clashes, `other` wins
    /// when `other_wins` is true (the adaptor's "most recent RFC"
    /// precedence), otherwise existing rules are kept.
    pub fn merge(&mut self, other: &Grammar, other_wins: bool) {
        for rule in other.iter() {
            let key = rule.name.to_ascii_lowercase();
            let src = other.source_of(&rule.name).unwrap_or("merged").to_string();
            if self.rules.contains_key(&key) && !other_wins {
                continue;
            }
            self.insert(&src, rule.clone());
        }
    }
}

impl fmt::Display for Grammar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for rule in self.iter() {
            writeln!(f, "{rule}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_rulelist;

    fn grammar(text: &str) -> Grammar {
        Grammar::from_rules("test", parse_rulelist(text).unwrap())
    }

    #[test]
    fn lookup_is_case_insensitive() {
        let g = grammar("Host = uri-host\nuri-host = ALPHA\n");
        assert!(g.get("host").is_some());
        assert!(g.get("HOST").is_some());
        assert!(g.get("nothere").is_none());
    }

    #[test]
    fn core_rules_resolve_implicitly() {
        let g = grammar("token = 1*ALPHA\n");
        assert!(g.contains("ALPHA"));
        assert!(g.undefined_references().is_empty());
    }

    #[test]
    fn undefined_references_reported() {
        let g = grammar("Host = uri-host [ \":\" port ]\n");
        let missing = g.undefined_references();
        assert_eq!(missing, vec!["port".to_string(), "uri-host".to_string()]);
    }

    #[test]
    fn incremental_rules_merge() {
        let g = grammar("method = \"GET\"\nmethod =/ \"POST\"\nmethod =/ \"HEAD\"\n");
        let rule = g.get("method").unwrap();
        match &rule.node {
            Node::Alternation(alts) => assert_eq!(alts.len(), 3),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn duplicate_plain_rule_replaces() {
        let mut g = grammar("a = \"1\"\n");
        g.insert("test2", parse_rulelist("a = \"2\"\n").unwrap().remove(0));
        match g.get("a").unwrap().node {
            Node::CharVal { ref value, .. } => assert_eq!(value, "2"),
            ref other => panic!("{other:?}"),
        }
        assert_eq!(g.source_of("a"), Some("test2"));
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn reachability() {
        let g = grammar("a = b c\nb = \"x\"\nc = d\nd = \"y\"\ne = \"z\"\n");
        let mut reach = g.reachable_from("a");
        reach.sort();
        assert_eq!(reach, vec!["a", "b", "c", "d"]);
    }

    #[test]
    fn merge_precedence() {
        let mut g1 = grammar("a = \"old\"\nb = \"keep\"\n");
        let g2 = grammar("a = \"new\"\nc = \"add\"\n");
        g1.merge(&g2, true);
        match g1.get("a").unwrap().node {
            Node::CharVal { ref value, .. } => assert_eq!(value, "new"),
            ref other => panic!("{other:?}"),
        }
        assert!(g1.contains("c"));

        let mut g3 = grammar("a = \"old\"\n");
        g3.merge(&g2, false);
        match g3.get("a").unwrap().node {
            Node::CharVal { ref value, .. } => assert_eq!(value, "old"),
            ref other => panic!("{other:?}"),
        }
    }

    #[test]
    fn prose_rules_listed() {
        let g = grammar("uri-host = <host, see [RFC3986]>\nplain = \"x\"\n");
        let prose = g.prose_rules();
        assert_eq!(prose.len(), 1);
        assert_eq!(prose[0].name, "uri-host");
    }

    #[test]
    fn well_foundedness() {
        let good = grammar("a = b\nb = \"x\" / a\n");
        assert!(good.is_well_founded("a"), "b has a terminating alternative");
        let bad = grammar("a = b\nb = a\n");
        assert!(!bad.is_well_founded("a"));
        assert!(!bad.is_well_founded("b"));
        let self_loop = grammar("x = x\n");
        assert!(!self_loop.is_well_founded("x"));
        let rec_ok = grammar("comment = \"(\" *( ALPHA / comment ) \")\"\n");
        assert!(rec_ok.is_well_founded("comment"), "zero-min repetition terminates");
    }

    #[test]
    fn iteration_order_is_insertion_order() {
        let g = grammar("zzz = \"1\"\naaa = \"2\"\nmmm = \"3\"\n");
        let names: Vec<_> = g.iter().map(|r| r.name.clone()).collect();
        assert_eq!(names, vec!["zzz", "aaa", "mmm"]);
    }
}
