//! Recursive-descent parser for RFC 5234 ABNF grammar text.
//!
//! Supports the full RFC 5234 syntax plus the RFC 7405 `%s`/`%i` string
//! prefixes. Input preprocessing handles comments (`;` to end of line) and
//! continuation lines (a line starting with whitespace continues the
//! previous rule), which is how real RFC ABNF is laid out.

use std::fmt;

use crate::ast::{Node, Repeat, Rule};

/// Error produced while parsing ABNF text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AbnfParseError {
    /// Human-readable reason.
    pub message: String,
    /// Offset into the rule text where the error occurred.
    pub offset: usize,
}

impl AbnfParseError {
    fn new(message: impl Into<String>, offset: usize) -> AbnfParseError {
        AbnfParseError { message: message.into(), offset }
    }
}

impl fmt::Display for AbnfParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at offset {}", self.message, self.offset)
    }
}

impl std::error::Error for AbnfParseError {}

/// Parses a complete rule list: multiple `name = definition` rules with
/// comments and continuation lines.
///
/// # Errors
///
/// Fails on the first rule whose definition cannot be parsed.
///
/// ```
/// let rules = hdiff_abnf::parse_rulelist("a = \"x\" ; comment\nb = a a\n").unwrap();
/// assert_eq!(rules.len(), 2);
/// ```
pub fn parse_rulelist(text: &str) -> Result<Vec<Rule>, AbnfParseError> {
    let mut rules = Vec::new();
    for chunk in split_rule_chunks(text) {
        rules.push(parse_rule(&chunk)?);
    }
    Ok(rules)
}

/// Joins continuation lines and strips comments, yielding one logical line
/// per rule.
fn split_rule_chunks(text: &str) -> Vec<String> {
    let mut chunks: Vec<String> = Vec::new();
    for raw_line in text.lines() {
        let line = strip_comment(raw_line);
        if line.trim().is_empty() {
            continue;
        }
        let continuation = raw_line.starts_with(' ') || raw_line.starts_with('\t');
        if continuation {
            if let Some(last) = chunks.last_mut() {
                last.push(' ');
                last.push_str(line.trim());
                continue;
            }
        }
        chunks.push(line.trim().to_string());
    }
    chunks
}

/// Removes a trailing `;` comment, respecting quoted strings and prose-vals.
fn strip_comment(line: &str) -> &str {
    let bytes = line.as_bytes();
    let mut in_quotes = false;
    let mut in_prose = false;
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'"' if !in_prose => in_quotes = !in_quotes,
            b'<' if !in_quotes => in_prose = true,
            b'>' if !in_quotes => in_prose = false,
            b';' if !in_quotes && !in_prose => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Parses a single logical rule line (`name = definition` or
/// `name =/ definition`).
///
/// # Errors
///
/// Returns [`AbnfParseError`] when the line does not contain `=`, when the
/// name is not a valid rulename, or when the definition is malformed.
pub fn parse_rule(line: &str) -> Result<Rule, AbnfParseError> {
    let line = strip_comment(line);
    let mut p = Parser::new(line);
    p.skip_ws();
    let name = p.rulename()?;
    p.skip_ws();
    let incremental = if p.eat_str("=/") {
        true
    } else if p.eat(b'=') {
        false
    } else {
        return Err(AbnfParseError::new("expected '=' or '=/'", p.pos));
    };
    p.skip_ws();
    let node = p.alternation()?;
    p.skip_ws();
    if !p.at_end() {
        return Err(AbnfParseError::new(format!("trailing input {:?}", &line[p.pos..]), p.pos));
    }
    Ok(Rule { name, node, incremental })
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Parser<'a> {
        Parser { input: s.as_bytes(), pos: 0 }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.input.len()
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_str(&mut self, s: &str) -> bool {
        if self.input[self.pos..].starts_with(s.as_bytes()) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ') | Some(b'\t')) {
            self.pos += 1;
        }
    }

    fn rulename(&mut self) -> Result<String, AbnfParseError> {
        let start = self.pos;
        // Real-world RFC ABNF sometimes wraps rule names in angle brackets.
        let bracketed = self.eat(b'<');
        if !self.peek().is_some_and(|b| b.is_ascii_alphabetic()) {
            return Err(AbnfParseError::new("rulename must start with ALPHA", self.pos));
        }
        let name_start = self.pos;
        while self.peek().is_some_and(|b| b.is_ascii_alphanumeric() || b == b'-') {
            self.pos += 1;
        }
        let name = std::str::from_utf8(&self.input[name_start..self.pos])
            .expect("ascii validated")
            .to_string();
        if bracketed && !self.eat(b'>') {
            return Err(AbnfParseError::new("unterminated bracketed rulename", start));
        }
        Ok(name)
    }

    fn alternation(&mut self) -> Result<Node, AbnfParseError> {
        let mut alts = vec![self.concatenation()?];
        loop {
            let save = self.pos;
            self.skip_ws();
            if self.eat(b'/') {
                self.skip_ws();
                alts.push(self.concatenation()?);
            } else {
                self.pos = save;
                break;
            }
        }
        Ok(if alts.len() == 1 { alts.pop().expect("len checked") } else { Node::Alternation(alts) })
    }

    fn concatenation(&mut self) -> Result<Node, AbnfParseError> {
        let mut seq = vec![self.repetition()?];
        loop {
            let save = self.pos;
            self.skip_ws();
            match self.peek() {
                None | Some(b'/') | Some(b')') | Some(b']') => {
                    self.pos = save;
                    break;
                }
                _ => {
                    if self.pos == save {
                        // No whitespace separator: stop.
                        break;
                    }
                    match self.repetition() {
                        Ok(n) => seq.push(n),
                        Err(_) => {
                            self.pos = save;
                            break;
                        }
                    }
                }
            }
        }
        Ok(if seq.len() == 1 { seq.pop().expect("len checked") } else { Node::Concatenation(seq) })
    }

    fn repetition(&mut self) -> Result<Node, AbnfParseError> {
        let rep = self.repeat();
        let elem = self.element()?;
        Ok(match rep {
            // `1element` is the same as `element`; normalizing here keeps
            // Display→parse round-trips stable.
            Some(r) if !r.is_once() => Node::Repetition(r, Box::new(elem)),
            _ => elem,
        })
    }

    fn repeat(&mut self) -> Option<Repeat> {
        let start = self.pos;
        let min = self.digits();
        if self.eat(b'*') {
            let max = self.digits();
            Some(Repeat { min: min.unwrap_or(0), max })
        } else if let Some(n) = min {
            Some(Repeat { min: n, max: Some(n) })
        } else {
            self.pos = start;
            None
        }
    }

    fn digits(&mut self) -> Option<u32> {
        let start = self.pos;
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == start {
            return None;
        }
        std::str::from_utf8(&self.input[start..self.pos]).ok().and_then(|s| s.parse().ok())
    }

    fn element(&mut self) -> Result<Node, AbnfParseError> {
        match self.peek() {
            Some(b'(') => {
                self.pos += 1;
                self.skip_ws();
                let inner = self.alternation()?;
                self.skip_ws();
                if !self.eat(b')') {
                    return Err(AbnfParseError::new("unterminated group", self.pos));
                }
                Ok(Node::Group(Box::new(inner)))
            }
            Some(b'[') => {
                self.pos += 1;
                self.skip_ws();
                let inner = self.alternation()?;
                self.skip_ws();
                if !self.eat(b']') {
                    return Err(AbnfParseError::new("unterminated option", self.pos));
                }
                Ok(Node::Optional(Box::new(inner)))
            }
            Some(b'"') => self.char_val(false),
            Some(b'%') => self.percent_val(),
            Some(b'<') => self.prose_val(),
            Some(b) if b.is_ascii_alphabetic() => Ok(Node::RuleRef(self.rulename()?)),
            other => {
                Err(AbnfParseError::new(format!("unexpected element start {other:?}"), self.pos))
            }
        }
    }

    fn char_val(&mut self, case_sensitive: bool) -> Result<Node, AbnfParseError> {
        debug_assert_eq!(self.peek(), Some(b'"'));
        self.pos += 1;
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b == b'"' {
                let value = std::str::from_utf8(&self.input[start..self.pos])
                    .map_err(|_| AbnfParseError::new("non-utf8 char-val", start))?
                    .to_string();
                self.pos += 1;
                return Ok(Node::CharVal { value, case_sensitive });
            }
            self.pos += 1;
        }
        Err(AbnfParseError::new("unterminated char-val", start))
    }

    fn percent_val(&mut self) -> Result<Node, AbnfParseError> {
        debug_assert_eq!(self.peek(), Some(b'%'));
        self.pos += 1;
        match self.peek() {
            Some(b's') | Some(b'S') => {
                self.pos += 1;
                if self.peek() != Some(b'"') {
                    return Err(AbnfParseError::new("%s must precede a quoted string", self.pos));
                }
                self.char_val(true)
            }
            Some(b'i') | Some(b'I') => {
                self.pos += 1;
                if self.peek() != Some(b'"') {
                    return Err(AbnfParseError::new("%i must precede a quoted string", self.pos));
                }
                self.char_val(false)
            }
            Some(b'x') | Some(b'X') => {
                self.pos += 1;
                self.num_val(16)
            }
            Some(b'd') | Some(b'D') => {
                self.pos += 1;
                self.num_val(10)
            }
            Some(b'b') | Some(b'B') => {
                self.pos += 1;
                self.num_val(2)
            }
            other => Err(AbnfParseError::new(format!("bad num-val base {other:?}"), self.pos)),
        }
    }

    fn num_digits(&mut self, radix: u32) -> Result<u32, AbnfParseError> {
        let start = self.pos;
        while self.peek().is_some_and(|b| (b as char).is_digit(radix)) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(AbnfParseError::new("expected digits", self.pos));
        }
        u32::from_str_radix(
            std::str::from_utf8(&self.input[start..self.pos]).expect("digits are ascii"),
            radix,
        )
        .map_err(|_| AbnfParseError::new("numeric overflow", start))
    }

    fn num_val(&mut self, radix: u32) -> Result<Node, AbnfParseError> {
        let first = self.num_digits(radix)?;
        if self.eat(b'-') {
            let hi = self.num_digits(radix)?;
            return Ok(Node::NumRange(first, hi));
        }
        if self.peek() == Some(b'.') {
            let mut seq = vec![first];
            while self.eat(b'.') {
                seq.push(self.num_digits(radix)?);
            }
            return Ok(Node::NumSeq(seq));
        }
        Ok(Node::NumVal(first))
    }

    fn prose_val(&mut self) -> Result<Node, AbnfParseError> {
        debug_assert_eq!(self.peek(), Some(b'<'));
        self.pos += 1;
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b == b'>' {
                let text = std::str::from_utf8(&self.input[start..self.pos])
                    .map_err(|_| AbnfParseError::new("non-utf8 prose-val", start))?
                    .to_string();
                self.pos += 1;
                return Ok(Node::ProseVal(text));
            }
            self.pos += 1;
        }
        Err(AbnfParseError::new("unterminated prose-val", start))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rule(s: &str) -> Rule {
        parse_rule(s).unwrap_or_else(|e| panic!("{s}: {e}"))
    }

    #[test]
    fn simple_char_val() {
        let r = rule("greeting = \"hello\"");
        assert_eq!(r.name, "greeting");
        assert_eq!(r.node, Node::CharVal { value: "hello".into(), case_sensitive: false });
        assert!(!r.incremental);
    }

    #[test]
    fn http_version_rule() {
        let r = rule("HTTP-version = HTTP-name \"/\" DIGIT \".\" DIGIT");
        assert_eq!(r.node.references(), vec!["HTTP-name", "DIGIT", "DIGIT"]);
    }

    #[test]
    fn num_seq_http_name() {
        let r = rule("HTTP-name = %x48.54.54.50");
        assert_eq!(r.node, Node::NumSeq(vec![0x48, 0x54, 0x54, 0x50]));
    }

    #[test]
    fn num_range() {
        let r = rule("ALPHA = %x41-5A / %x61-7A");
        assert_eq!(
            r.node,
            Node::Alternation(vec![Node::NumRange(0x41, 0x5a), Node::NumRange(0x61, 0x7a)])
        );
    }

    #[test]
    fn dec_and_bin_values() {
        assert_eq!(rule("a = %d13").node, Node::NumVal(13));
        assert_eq!(rule("b = %b1010").node, Node::NumVal(10));
        assert_eq!(rule("c = %d13.10").node, Node::NumSeq(vec![13, 10]));
    }

    #[test]
    fn repetitions() {
        let r = rule("token = 1*tchar");
        assert_eq!(
            r.node,
            Node::Repetition(Repeat { min: 1, max: None }, Box::new(Node::RuleRef("tchar".into())))
        );
        let r2 = rule("x = 2*4DIGIT");
        assert_eq!(
            r2.node,
            Node::Repetition(
                Repeat { min: 2, max: Some(4) },
                Box::new(Node::RuleRef("DIGIT".into()))
            )
        );
        let r3 = rule("y = 3DIGIT");
        assert_eq!(
            r3.node,
            Node::Repetition(
                Repeat { min: 3, max: Some(3) },
                Box::new(Node::RuleRef("DIGIT".into()))
            )
        );
    }

    #[test]
    fn group_and_option() {
        let r = rule("Host = uri-host [ \":\" port ]");
        match &r.node {
            Node::Concatenation(seq) => {
                assert_eq!(seq.len(), 2);
                assert!(matches!(seq[1], Node::Optional(_)));
            }
            other => panic!("{other:?}"),
        }
        let r2 = rule("x = ( a / b ) c");
        match &r2.node {
            Node::Concatenation(seq) => assert!(matches!(seq[0], Node::Group(_))),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn transfer_encoding_rule_from_rfc7230() {
        let r = rule(
            "Transfer-Encoding = *( \",\" OWS ) transfer-coding *( OWS \",\" [ OWS transfer-coding ] )",
        );
        let refs = r.node.references();
        assert!(refs.contains(&"transfer-coding"));
        assert!(refs.contains(&"OWS"));
    }

    #[test]
    fn prose_val() {
        let r = rule("uri-host = <host, see [RFC3986], Section 3.2.2>");
        assert_eq!(r.node, Node::ProseVal("host, see [RFC3986], Section 3.2.2".into()));
        assert!(r.has_prose());
    }

    #[test]
    fn incremental_alternative() {
        let r = rule("methods =/ \"PATCH\"");
        assert!(r.incremental);
    }

    #[test]
    fn case_sensitive_string() {
        let r = rule("tag = %s\"Hello\"");
        assert_eq!(r.node, Node::CharVal { value: "Hello".into(), case_sensitive: true });
        let r2 = rule("tag = %i\"Hello\"");
        assert_eq!(r2.node, Node::CharVal { value: "Hello".into(), case_sensitive: false });
    }

    #[test]
    fn comments_and_continuations() {
        let text = "HTTP-message = start-line ; the start\n              *( header-field CRLF )\n              CRLF [ message-body ]\nstart-line = request-line / status-line\n";
        let rules = parse_rulelist(text).unwrap();
        assert_eq!(rules.len(), 2);
        assert_eq!(rules[0].name, "HTTP-message");
        let refs = rules[0].node.references();
        assert!(refs.contains(&"message-body"));
    }

    #[test]
    fn comment_inside_prose_not_stripped() {
        let r = rule("x = <see; section 3>");
        assert_eq!(r.node, Node::ProseVal("see; section 3".into()));
    }

    #[test]
    fn comment_inside_quotes_not_stripped() {
        let r = rule("semi = \";\" ; literal semicolon");
        assert_eq!(r.node, Node::CharVal { value: ";".into(), case_sensitive: false });
    }

    #[test]
    fn errors() {
        assert!(parse_rule("= x").is_err());
        assert!(parse_rule("a b").is_err());
        assert!(parse_rule("a = \"unterminated").is_err());
        assert!(parse_rule("a = (b").is_err());
        assert!(parse_rule("a = %q12").is_err());
        assert!(parse_rule("a = <unterminated").is_err());
        assert!(parse_rule("9a = b").is_err());
    }

    #[test]
    fn display_round_trip_parses_again() {
        let sources = [
            "HTTP-version = HTTP-name \"/\" DIGIT \".\" DIGIT",
            "Host = uri-host [ \":\" port ]",
            "ALPHA = %x41-5A / %x61-7A",
            "token = 1*tchar",
            "chunk = chunk-size [ chunk-ext ] CRLF chunk-data CRLF",
        ];
        for src in sources {
            let r1 = rule(src);
            let printed = r1.to_string();
            let r2 = rule(&printed);
            assert_eq!(r1.node, r2.node, "{src}");
        }
    }
}
