//! RFC 5234 ABNF parsing, extraction and adaptation for HDiff.
//!
//! The paper's Documentation Analyzer extracts two kinds of rules from RFC
//! documents; this crate owns the syntactic kind:
//!
//! * [`ast`] — the ABNF abstract syntax tree (the "tree with seven types of
//!   nodes" the paper's generator walks: alternation, concatenation,
//!   repetition, rule reference, group/option, char-val, num-val, plus
//!   prose-val).
//! * [`parser`] — a recursive-descent RFC 5234 grammar parser, including
//!   incremental alternatives (`=/`), comments, continuation lines, and the
//!   RFC 7405 `%s`/`%i` string sensitivity prefixes.
//! * [`core_rules`] — the core rules of RFC 5234 appendix B.1 (`ALPHA`,
//!   `DIGIT`, `CRLF`, …), implicitly available to every grammar.
//! * [`extract`] — the *ABNF Rule Extractor*: mines ABNF blocks out of RFC
//!   prose using format heuristics (character cleaning, rule-start
//!   detection, continuation joining, prose-rule separation).
//! * [`adapt`] — the *ABNF Rule Adaptor*: merges per-RFC rule sets into one
//!   closed grammar (most-recent-RFC precedence, case-insensitive rule
//!   names, prose-val cross-document expansion, custom replacements for
//!   rules that stay undefined).
//!
//! # Example
//!
//! ```
//! use hdiff_abnf::{parser, Grammar};
//!
//! let rules = parser::parse_rulelist(
//!     "HTTP-version = HTTP-name \"/\" DIGIT \".\" DIGIT\nHTTP-name = %x48.54.54.50\n",
//! ).unwrap();
//! let g = Grammar::from_rules("rfc7230", rules);
//! assert!(g.get("http-version").is_some());
//! assert!(g.undefined_references().is_empty());
//! ```

pub mod adapt;
pub mod ast;
pub mod compile;
pub mod core_rules;
pub mod extract;
pub mod grammar;
pub mod matcher;
pub mod memo;
pub mod parser;

pub use adapt::{AdaptOptions, AdaptReport, Adaptor};
pub use ast::{Element, Node, Repeat, Rule};
pub use compile::{CompiledGrammar, DetachedProgram, Op, OpArena};
pub use extract::{extract_abnf, ExtractStats};
pub use grammar::Grammar;
pub use matcher::{matches, MatchOutcome};
pub use parser::{parse_rule, parse_rulelist, AbnfParseError};
