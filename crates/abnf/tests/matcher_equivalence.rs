//! Differential property test: the compiled packrat matcher and the
//! legacy backtracking matcher ([`hdiff_abnf::matcher::reference`]) must
//! agree on `Match`/`NoMatch` for every rule in the real adapted grammar.
//!
//! The reference matcher is the semantic oracle; the compiled matcher is
//! the performance rewrite. Cases where the reference overflows its
//! (generous, 500k-expansion) budget are skipped — there the oracle has
//! no definite verdict to compare against.

use std::sync::OnceLock;

use hdiff_abnf::matcher::{self, MatchOutcome};
use hdiff_abnf::{AdaptOptions, Adaptor, Grammar};
use proptest::collection;
use proptest::prelude::*;

/// Budget for the reference oracle: far above anything the compiled path
/// needs, so "reference overflowed" really means "oracle gave up".
const REFERENCE_BUDGET: usize = 500_000;

fn corpus_grammar() -> &'static Grammar {
    static GRAMMAR: OnceLock<Grammar> = OnceLock::new();
    GRAMMAR.get_or_init(|| {
        let mut adaptor = Adaptor::new();
        for doc in hdiff_corpus::core_documents() {
            let (rules, _) = hdiff_abnf::extract_abnf(&doc.full_text());
            adaptor.add_document(doc.tag.clone(), rules);
        }
        for doc in hdiff_corpus::reference_documents() {
            let (rules, _) = hdiff_abnf::extract_abnf(&doc.full_text());
            adaptor.register_reference(doc.tag.clone(), Grammar::from_rules(&doc.tag, rules));
        }
        adaptor.adapt(&AdaptOptions::default()).0
    })
}

fn rule_names() -> &'static [String] {
    static NAMES: OnceLock<Vec<String>> = OnceLock::new();
    NAMES.get_or_init(|| corpus_grammar().iter().map(|r| r.name.clone()).collect())
}

/// Inputs that hit the shapes HTTP rules care about: valid members of
/// common productions, near-misses, delimiter-laced ambiguity probes.
const POOL: &[&str] = &[
    "",
    " ",
    "*",
    "0",
    "100",
    "8080",
    "example.com",
    "h1.com:8080",
    "h2.com",
    "127.0.0.1",
    "[::1]:80",
    "h1.com@h2.com",
    "h1.com, h2.com",
    "h1 h2",
    "h1..com",
    "h1.com:80:80",
    "GET",
    "POST",
    "HTTP/1.1",
    "close",
    "keep-alive",
    "chunked",
    "gzip, deflate",
    "text/html",
    "bytes=0-499",
    "Mon, 02 Jan 2006 15:04:05 GMT",
    "/index.html",
    "a=b; c=d",
];

fn agree(rule: &str, input: &[u8]) -> Result<(), TestCaseError> {
    let reference =
        matcher::reference::matches_with_budget(corpus_grammar(), rule, input, REFERENCE_BUDGET);
    if reference == MatchOutcome::Overflow {
        return Ok(()); // no oracle verdict for this case
    }
    let compiled = matcher::matches(corpus_grammar(), rule, input);
    prop_assert_eq!(
        compiled,
        reference,
        "rule {} on {:?}: compiled {:?} vs reference {:?}",
        rule,
        String::from_utf8_lossy(input),
        compiled,
        reference
    );
    Ok(())
}

/// Exhaustive sweep: every adapted-grammar rule against every pool input.
#[test]
fn every_rule_agrees_on_the_realistic_pool() {
    let mut checked = 0usize;
    for rule in rule_names() {
        for input in POOL {
            agree(rule, input.as_bytes()).unwrap();
            checked += 1;
        }
    }
    assert!(checked >= rule_names().len() * POOL.len());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(400))]

    /// Random rule × random byte string (arbitrary, printable, or a pool
    /// value with random bytes appended) — the fuzzing arm of the oracle.
    #[test]
    fn compiled_matcher_agrees_with_reference(
        rule_sel in 0usize..1_000_000,
        mode in 0usize..3,
        pool_sel in 0usize..1_000_000,
        raw in collection::vec(any::<u8>(), 0..24),
        printable in "[ -~]{0,24}",
    ) {
        let rules = rule_names();
        let rule = &rules[rule_sel % rules.len()];
        let input: Vec<u8> = match mode {
            0 => raw,
            1 => printable.into_bytes(),
            _ => {
                let mut v = POOL[pool_sel % POOL.len()].as_bytes().to_vec();
                v.extend_from_slice(&raw[..raw.len().min(4)]);
                v
            }
        };
        agree(rule, &input)?;
    }
}
