//! Integration: the ABNF extractor + adaptor over the embedded RFC corpus.
//!
//! This is the syntactic half of the paper's Documentation Analyzer run
//! end-to-end: extract per-document rules, adapt them into one closed
//! grammar, and check the properties the generator depends on.

use hdiff_abnf::{extract_abnf, parse_rulelist, AdaptOptions, Adaptor, Grammar};

fn adapted() -> (Grammar, hdiff_abnf::AdaptReport) {
    let mut adaptor = Adaptor::new();
    for doc in hdiff_corpus::core_documents() {
        let (rules, _) = extract_abnf(&doc.full_text());
        adaptor.add_document(doc.tag.clone(), rules);
    }
    for doc in hdiff_corpus::reference_documents() {
        let (rules, _) = extract_abnf(&doc.full_text());
        adaptor.register_reference(doc.tag.clone(), Grammar::from_rules(&doc.tag, rules));
    }
    // The paper's fourth manual input: predefined/custom rules for names
    // that stay undefined (list-extension leftovers and editorial holes).
    let custom =
        parse_rulelist("obs-date = token\nIMF-fixdate = token\nGMT = %x47.4D.54\n").unwrap();
    adaptor.adapt(&AdaptOptions { custom_rules: custom })
}

#[test]
fn corpus_yields_a_substantial_ruleset() {
    let (grammar, _) = adapted();
    assert!(grammar.len() >= 150, "expected >=150 rules from the corpus, got {}", grammar.len());
}

#[test]
fn http_message_is_fully_resolvable() {
    let (grammar, report) = adapted();
    for name in grammar.reachable_from("HTTP-message") {
        assert!(grammar.contains(&name), "unresolved rule {name} (report: {report:?})");
    }
}

#[test]
fn generator_critical_rules_present() {
    let (grammar, _) = adapted();
    for name in [
        "HTTP-message",
        "HTTP-version",
        "request-line",
        "request-target",
        "Host",
        "uri-host",
        "Content-Length",
        "Transfer-Encoding",
        "transfer-coding",
        "chunked-body",
        "chunk-size",
        "Expect",
        "Connection",
        "field-name",
        "token",
        "absolute-URI",
        "IPv4address",
        "reg-name",
    ] {
        assert!(grammar.contains(name), "missing rule {name}");
    }
}

#[test]
fn prose_references_into_rfc3986_are_expanded() {
    let (grammar, report) = adapted();
    assert!(
        report.expanded_prose.iter().any(|(rule, doc)| rule == "uri-host" && doc == "rfc3986"),
        "{:?}",
        report.expanded_prose
    );
    // After expansion the grammar must define host/reg-name.
    assert!(grammar.contains("host"));
    assert!(grammar.contains("reg-name"));
}

#[test]
fn no_dangling_references_after_adaptation() {
    let (grammar, report) = adapted();
    assert!(
        report.still_undefined.is_empty(),
        "undefined after adaptation: {:?}",
        report.still_undefined
    );
    assert!(grammar.undefined_references().is_empty());
}

#[test]
fn duplicate_names_across_documents_are_namespaced() {
    // `method` is defined in both RFC 7230 and RFC 7231.
    let (grammar, report) = adapted();
    assert!(
        report.namespaced.iter().any(|(name, _, _)| name == "method"),
        "{:?}",
        report.namespaced
    );
    // Most recent (7231) wins.
    assert_eq!(grammar.source_of("method"), Some("rfc7231"));
}

#[test]
fn adapted_grammar_is_well_founded_everywhere() {
    // The uri-host/Host case-collision regression: every rule reachable
    // from the generator's start symbols must have a finite expansion.
    let (grammar, _) = adapted();
    for start in [
        "HTTP-message",
        "Host",
        "uri-host",
        "authority",
        "URI-reference",
        "request-target",
        "Transfer-Encoding",
        "chunked-body",
    ] {
        assert!(grammar.is_well_founded(start), "{start} is not well-founded");
    }
}

#[test]
fn case_colliding_imports_are_namespaced() {
    // RFC 7230's `Host` (header) and RFC 3986's `host` (URI component)
    // collide in the case-insensitive key space; the adaptor must keep
    // both, with the import renamed.
    let (grammar, report) = adapted();
    assert!(grammar.contains("rfc3986-host"), "{report:?}");
    // uri-host points at the URI component, not the header rule.
    let uri_host = grammar.get("uri-host").unwrap();
    assert!(
        uri_host.node.references().iter().any(|r| r.eq_ignore_ascii_case("rfc3986-host")),
        "{uri_host}"
    );
}

#[test]
fn every_adapted_rule_round_trips_through_display_and_parse() {
    // Printing a rule and re-parsing it must preserve the tree — the
    // Display impl is the grammar's serialization format.
    let (grammar, _) = adapted();
    let mut checked = 0;
    for rule in grammar.iter() {
        let printed = rule.to_string();
        let reparsed =
            hdiff_abnf::parse_rule(&printed).unwrap_or_else(|e| panic!("{printed}: {e}"));
        assert_eq!(reparsed.node, rule.node, "{printed}");
        checked += 1;
    }
    assert!(checked >= 150, "only {checked} rules checked");
}
