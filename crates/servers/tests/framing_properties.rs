//! Property-based tests over Content-Length framing decisions.
//!
//! The invariant under test is the list-agreement rule: a comma list in
//! one `Content-Length` field is the RFC recovery case only when the
//! member *bytes* agree. A strict profile must reject any spelling
//! disagreement (`10, 010`) even when every member parses to the same
//! number, and a value-lenient profile that accepts it anyway must leave
//! the disagreement observable as a repair note.

use proptest::prelude::*;

use hdiff_servers::profile::ClValuePolicy;
use hdiff_servers::{interpret, FramingChoice, Outcome, ParserProfile};

/// Builds a POST whose single Content-Length field carries `value` and
/// whose body holds exactly `n` bytes.
fn message(value: &str, n: usize) -> Vec<u8> {
    let mut msg =
        format!("POST / HTTP/1.1\r\nHost: h\r\nContent-Length: {value}\r\n\r\n").into_bytes();
    msg.extend(std::iter::repeat(b'x').take(n));
    msg
}

proptest! {
    /// Over generated member spellings (same number, varying zero
    /// padding, arbitrary OWS): strict accepts iff the member bytes are
    /// identical, and the lenient profile accepts every spelling but
    /// records a repair note exactly when the spellings differ.
    #[test]
    fn cl_list_agreement_is_byte_level_strict_and_noted_lenient(
        n in 0u64..48,
        zeros in proptest::collection::vec(0usize..3, 2..4),
        ows in proptest::collection::vec("[ \t]{0,2}", 8),
    ) {
        let members: Vec<String> =
            zeros.iter().map(|z| format!("{}{}", "0".repeat(*z), n)).collect();
        let value = members
            .iter()
            .enumerate()
            .map(|(i, m)| {
                format!("{}{}{}", ows[(2 * i) % ows.len()], m, ows[(2 * i + 1) % ows.len()])
            })
            .collect::<Vec<_>>()
            .join(",");
        let msg = message(&value, n as usize);
        let differ = members.windows(2).any(|w| w[0] != w[1]);

        let strict = interpret(&ParserProfile::strict("baseline"), &msg);
        if differ {
            prop_assert!(
                matches!(&strict.outcome, Outcome::Reject { reason, .. }
                    if reason.contains("differing content-length list values")),
                "{value:?} -> {:?}",
                strict.outcome
            );
        } else {
            prop_assert!(strict.outcome.is_accept(), "{value:?} -> {:?}", strict.outcome);
            prop_assert_eq!(strict.framing, FramingChoice::ContentLength(n));
        }

        let mut profile = ParserProfile::strict("value-lenient");
        profile.cl_value = ClValuePolicy::Lenient;
        let lenient = interpret(&profile, &msg);
        prop_assert!(lenient.outcome.is_accept(), "{value:?} -> {:?}", lenient.outcome);
        prop_assert_eq!(lenient.framing, FramingChoice::ContentLength(n));
        let noted = lenient.notes.iter().any(|note| note.contains("differ textually"));
        prop_assert_eq!(noted, differ, "{:?} notes {:?}", value, lenient.notes);
    }

    /// A non-numeric member poisons the whole list for the strict
    /// profile regardless of where it sits.
    #[test]
    fn strict_rejects_lists_with_a_nonnumeric_member(
        n in 0u64..30,
        junk in "[a-zA-Z+;_]{1,5}",
        junk_first in 0u8..2,
    ) {
        let value =
            if junk_first == 1 { format!("{junk}, {n}") } else { format!("{n}, {junk}") };
        let msg = message(&value, n as usize);
        let i = interpret(&ParserProfile::strict("baseline"), &msg);
        prop_assert!(
            matches!(&i.outcome, Outcome::Reject { reason, .. }
                if reason.contains("invalid content-length")),
            "{value:?} -> {:?}",
            i.outcome
        );
    }
}
