//! Table-driven behavioral lock: every product's status code on every
//! canonical payload. This is the regression net under the Table I
//! reproduction — if a profile toggle changes any cell, this test names it.

use hdiff_servers::{interpret, product, ProductId};

/// (payload name, request bytes).
fn payloads() -> Vec<(&'static str, Vec<u8>)> {
    vec![
        ("plain-get", b"GET / HTTP/1.1\r\nHost: h1.com\r\n\r\n".to_vec()),
        (
            "ws-colon-cl",
            b"POST / HTTP/1.1\r\nHost: h\r\nContent-Length : 3\r\n\r\nabc".to_vec(),
        ),
        (
            "junk-te-with-cl",
            b"POST / HTTP/1.1\r\nHost: h\r\nContent-Length: 10\r\nTransfer-Encoding:\x0bchunked\r\n\r\n3\r\nabc\r\n0\r\n\r\n".to_vec(),
        ),
        (
            "chunked-10",
            b"POST / HTTP/1.0\r\nHost: h\r\nTransfer-Encoding: chunked\r\n\r\n3\r\nabc\r\n0\r\n\r\n".to_vec(),
        ),
        ("http09", b"GET / HTTP/0.9\r\nHost: h\r\n\r\n".to_vec()),
        ("bad-version", b"GET / 1.1/HTTP\r\nHost: h\r\n\r\n".to_vec()),
        ("multi-host", b"GET / HTTP/1.1\r\nHost: h1.com\r\nHost: h2.com\r\n\r\n".to_vec()),
        ("at-host", b"GET / HTTP/1.1\r\nHost: h1.com@h2.com\r\n\r\n".to_vec()),
        (
            "overflow-chunk",
            b"POST / HTTP/1.1\r\nHost: h\r\nTransfer-Encoding: chunked\r\n\r\n1000000000000000a\r\nabc\r\n0\r\n\r\n".to_vec(),
        ),
        ("expect-get", b"GET / HTTP/1.1\r\nHost: h\r\nExpect: 100-continue\r\n\r\n".to_vec()),
        ("lenient-cl", b"POST / HTTP/1.1\r\nHost: h\r\nContent-Length: +6\r\n\r\nabcdef".to_vec()),
        (
            "cl-plus-te",
            b"POST / HTTP/1.1\r\nHost: h\r\nContent-Length: 3\r\nTransfer-Encoding: chunked\r\n\r\n3\r\nabc\r\n0\r\n\r\n".to_vec(),
        ),
    ]
}

/// Expected status per (product, payload). These cells *are* the model —
/// any change here must be justified against §IV-B / Table II.
fn expected(product: ProductId, payload: &str) -> u16 {
    use ProductId::*;
    match (product, payload) {
        (_, "plain-get") => 200,

        (Iis | Weblogic | Ats, "ws-colon-cl") => 200,
        // Varnish treats the ws-colon line as an unknown header: no CL
        // framing, 200 with the body bytes left in the stream (the HRS
        // front half).
        (Varnish, "ws-colon-cl") => 200,
        (_, "ws-colon-cl") => 400,

        (Tomcat | Ats, "junk-te-with-cl") => 200, // lenient chunked recognition
        // Weblogic's junk-name strip recognizes the TE *strictly*, and a
        // strict TE together with CL is rejected.
        (_, "junk-te-with-cl") => 400,

        (Tomcat, "chunked-10") => 200, // TE ignored under 1.0
        (Weblogic | Haproxy, "chunked-10") => 200, // processed
        (_, "chunked-10") => 400,

        (Weblogic | Haproxy, "http09") => 200,
        (_, "http09") => 400,

        (Nginx | Squid | Ats, "bad-version") => 200, // repair-append proxies
        (_, "bad-version") => 400,

        (Weblogic | Varnish | Haproxy, "multi-host") => 200,
        (_, "multi-host") => 400,

        (Weblogic | Nginx | Varnish | Haproxy, "at-host") => 200,
        (_, "at-host") => 400,

        (Squid | Haproxy, "overflow-chunk") => 200, // wrap repair
        (_, "overflow-chunk") => 400,

        (Lighttpd, "expect-get") => 417,
        (_, "expect-get") => 200,

        (Lighttpd | Ats, "lenient-cl") => 200,
        (_, "lenient-cl") => 400,

        // A *strictly valid* TE next to CL is the classic smuggling shape:
        // every model rejects it (lenient recognition only overrides CL
        // when the TE value itself is malformed).
        (_, "cl-plus-te") => 400,

        (p, other) => panic!("no expectation for {p} x {other}"),
    }
}

#[test]
fn every_cell_of_the_behavior_matrix() {
    let mut failures = Vec::new();
    for id in ProductId::ALL {
        let profile = product(id);
        for (name, bytes) in payloads() {
            let got = interpret(&profile, &bytes).outcome.status();
            let want = expected(id, name);
            if got != want {
                failures.push(format!("{id} x {name}: expected {want}, got {got}"));
            }
        }
    }
    assert!(failures.is_empty(), "behavior matrix drifted:\n{}", failures.join("\n"));
}

#[test]
fn host_views_on_ambiguous_payloads() {
    // Host identities, not just statuses, are part of the behavioral lock.
    let at_host = b"GET / HTTP/1.1\r\nHost: h1.com@h2.com\r\n\r\n";
    let cases: &[(ProductId, &[u8])] = &[
        (ProductId::Weblogic, b"h2.com"),       // RFC-style resolution
        (ProductId::Varnish, b"h1.com@h2.com"), // transparent
        (ProductId::Haproxy, b"h1.com@h2.com"), // transparent
        (ProductId::Nginx, b"h1.com@h2.com"),   // transparent
    ];
    for (id, want) in cases {
        let i = interpret(&product(*id), at_host);
        assert_eq!(i.host.as_deref(), Some(*want), "{id}");
    }

    let multi = b"GET / HTTP/1.1\r\nHost: h1.com\r\nHost: h2.com\r\n\r\n";
    assert_eq!(
        interpret(&product(ProductId::Weblogic), multi).host.as_deref(),
        Some(&b"h2.com"[..])
    );
    assert_eq!(
        interpret(&product(ProductId::Varnish), multi).host.as_deref(),
        Some(&b"h1.com"[..])
    );
    assert_eq!(
        interpret(&product(ProductId::Haproxy), multi).host.as_deref(),
        Some(&b"h1.com"[..])
    );
}
