//! The shared response cache of a proxy — the CPDoS attack surface.

use std::collections::BTreeMap;

use hdiff_wire::{Response, Version};

use crate::profile::CacheBehavior;

/// Cache key: the host identity *as the cache understood it* plus the
/// request target. A disagreement between the cache's host and the origin's
/// host is exactly what lets an attacker poison a victim entry.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CacheKey {
    /// Effective host (lowercased identity).
    pub host: Vec<u8>,
    /// Request target bytes.
    pub target: Vec<u8>,
}

impl CacheKey {
    /// Builds a key.
    pub fn new(host: impl Into<Vec<u8>>, target: impl Into<Vec<u8>>) -> CacheKey {
        CacheKey { host: host.into(), target: target.into() }
    }
}

/// Storage decision plus the policy that made it — kept for reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreDecision {
    /// Stored.
    Stored,
    /// Not stored: cache disabled.
    Disabled,
    /// Not stored: method not cacheable.
    MethodNotCacheable,
    /// Not stored: error status and `store_errors` off.
    ErrorNotStorable,
    /// Not stored: pre-1.1 request and `store_pre11` off.
    Pre11NotStorable,
}

/// Re-export for policy configuration.
pub use crate::profile::CacheBehavior as CachePolicy;

/// An in-memory shared cache with an explicit storability policy.
#[derive(Debug, Clone)]
pub struct Cache {
    policy: CacheBehavior,
    entries: BTreeMap<CacheKey, Response>,
}

impl Cache {
    /// Creates a cache with the given policy.
    pub fn new(policy: CacheBehavior) -> Cache {
        Cache { policy, entries: BTreeMap::new() }
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Attempts to store a response for `(key, method, request version)`.
    pub fn store(
        &mut self,
        key: CacheKey,
        method: &[u8],
        request_version: &Version,
        response: &Response,
    ) -> StoreDecision {
        if !self.policy.enabled {
            return StoreDecision::Disabled;
        }
        if method != b"GET" {
            return StoreDecision::MethodNotCacheable;
        }
        if response.status.is_error() && !self.policy.store_errors {
            return StoreDecision::ErrorNotStorable;
        }
        if request_version.is_pre_1_1() && !self.policy.store_pre11 {
            return StoreDecision::Pre11NotStorable;
        }
        self.entries.insert(key, response.clone());
        StoreDecision::Stored
    }

    /// Looks up a stored response.
    pub fn lookup(&self, key: &CacheKey) -> Option<&Response> {
        self.entries.get(key)
    }

    /// Whether any stored entry is an error response — the CPDoS telltale.
    pub fn poisoned_entries(&self) -> Vec<(&CacheKey, &Response)> {
        self.entries.iter().filter(|(_, r)| r.status.is_error()).collect()
    }

    /// Clears the cache.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdiff_wire::StatusCode;

    fn policy(errors: bool, pre11: bool) -> CacheBehavior {
        CacheBehavior { enabled: true, store_errors: errors, store_pre11: pre11 }
    }

    #[test]
    fn stores_ok_get_responses() {
        let mut c = Cache::new(policy(false, false));
        let d = c.store(
            CacheKey::new("h1.com", "/"),
            b"GET",
            &Version::Http11,
            &Response::with_body(StatusCode::OK, "hi"),
        );
        assert_eq!(d, StoreDecision::Stored);
        assert_eq!(c.lookup(&CacheKey::new("h1.com", "/")).unwrap().status, StatusCode::OK);
        assert!(c.poisoned_entries().is_empty());
    }

    #[test]
    fn error_storability_is_the_cpdos_switch() {
        let err = Response::with_body(StatusCode::BAD_REQUEST, "bad");
        let key = CacheKey::new("victim.com", "/");

        let mut strict = Cache::new(policy(false, false));
        assert_eq!(
            strict.store(key.clone(), b"GET", &Version::Http11, &err),
            StoreDecision::ErrorNotStorable
        );
        assert!(strict.is_empty());

        let mut lax = Cache::new(policy(true, false));
        assert_eq!(lax.store(key.clone(), b"GET", &Version::Http11, &err), StoreDecision::Stored);
        assert_eq!(lax.poisoned_entries().len(), 1);
    }

    #[test]
    fn pre11_policy() {
        let ok = Response::with_body(StatusCode::OK, "x");
        let key = CacheKey::new("h", "/");
        let mut strict = Cache::new(policy(true, false));
        assert_eq!(
            strict.store(key.clone(), b"GET", &Version::Http10, &ok),
            StoreDecision::Pre11NotStorable
        );
        let mut lax = Cache::new(policy(true, true));
        assert_eq!(lax.store(key, b"GET", &Version::Http10, &ok), StoreDecision::Stored);
    }

    #[test]
    fn only_get_is_cacheable() {
        let mut c = Cache::new(policy(true, true));
        let d = c.store(
            CacheKey::new("h", "/"),
            b"POST",
            &Version::Http11,
            &Response::with_body(StatusCode::OK, "x"),
        );
        assert_eq!(d, StoreDecision::MethodNotCacheable);
    }

    #[test]
    fn disabled_cache_stores_nothing() {
        let mut c =
            Cache::new(CacheBehavior { enabled: false, store_errors: true, store_pre11: true });
        let d = c.store(
            CacheKey::new("h", "/"),
            b"GET",
            &Version::Http11,
            &Response::with_body(StatusCode::OK, "x"),
        );
        assert_eq!(d, StoreDecision::Disabled);
    }
}
