//! Deterministic infrastructure-fault injection.
//!
//! Real deployments fail in ways a clean testbed never shows: origins
//! reset connections mid-message, responses arrive truncated, reads
//! stall, forwarded bytes get garbled, transient 5xx errors appear and
//! disappear. A campaign that dies on the first such fault cannot run at
//! scale, and a differential engine that never sees faults misses an
//! entire class of semantic gaps — implementations *react differently to
//! the same broken upstream*, which is itself a detectable divergence.
//!
//! Every fault decision here is a pure function of
//! `(seed, case uuid, hop, stage, attempt)`, so a replayed case sees a
//! byte-identical fault schedule, retries deterministically clear (or
//! deterministically re-hit) transient faults, and an interrupted
//! campaign resumes to the same result.

use std::cell::{Cell, RefCell};
use std::fmt;

/// The kinds of infrastructure fault the injector can produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultKind {
    /// Connection reset mid-message: the peer sees a byte prefix.
    ConnReset,
    /// Origin response cut short (body shorter than its framing claims).
    TruncateResponse,
    /// A read that never completes; modeled as logical step-budget
    /// exhaustion rather than wall-clock time.
    StallRead,
    /// Forwarded bytes corrupted in flight.
    GarbleForward,
    /// A transient 5xx from the origin that clears on retry.
    Transient5xx,
}

impl FaultKind {
    /// Every kind, in a fixed order.
    pub const ALL: [FaultKind; 5] = [
        FaultKind::ConnReset,
        FaultKind::TruncateResponse,
        FaultKind::StallRead,
        FaultKind::GarbleForward,
        FaultKind::Transient5xx,
    ];

    /// Whether a bounded retry may clear the fault (the decision hash
    /// includes the attempt number, so a retry re-rolls it).
    pub fn is_transient(self) -> bool {
        matches!(self, FaultKind::Transient5xx | FaultKind::ConnReset | FaultKind::StallRead)
    }

    /// Stable name used in checkpoints and reports.
    pub fn as_str(self) -> &'static str {
        match self {
            FaultKind::ConnReset => "conn-reset",
            FaultKind::TruncateResponse => "truncate-response",
            FaultKind::StallRead => "stall-read",
            FaultKind::GarbleForward => "garble-forward",
            FaultKind::Transient5xx => "transient-5xx",
        }
    }

    /// Parses [`FaultKind::as_str`] output.
    pub fn parse(s: &str) -> Option<FaultKind> {
        FaultKind::ALL.into_iter().find(|k| k.as_str() == s)
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Where in a hop's processing a fault strikes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultStage {
    /// A proxy forwarding the request downstream.
    Forward,
    /// The origin producing its response.
    OriginRespond,
    /// A hop relaying the response back toward the client.
    Relay,
}

impl FaultStage {
    /// Stable name used in checkpoints and reports.
    pub fn as_str(self) -> &'static str {
        match self {
            FaultStage::Forward => "forward",
            FaultStage::OriginRespond => "origin-respond",
            FaultStage::Relay => "relay",
        }
    }

    /// Parses [`FaultStage::as_str`] output.
    pub fn parse(s: &str) -> Option<FaultStage> {
        [FaultStage::Forward, FaultStage::OriginRespond, FaultStage::Relay]
            .into_iter()
            .find(|st| st.as_str() == s)
    }

    /// The fault kinds that can physically occur at this stage.
    fn applicable(self) -> &'static [FaultKind] {
        match self {
            FaultStage::Forward => {
                &[FaultKind::ConnReset, FaultKind::GarbleForward, FaultKind::StallRead]
            }
            FaultStage::OriginRespond => &[
                FaultKind::ConnReset,
                FaultKind::TruncateResponse,
                FaultKind::Transient5xx,
                FaultKind::StallRead,
            ],
            FaultStage::Relay => {
                &[FaultKind::ConnReset, FaultKind::TruncateResponse, FaultKind::GarbleForward]
            }
        }
    }
}

impl fmt::Display for FaultStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Configuration for a campaign's fault injection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed mixed into every decision hash.
    pub seed: u64,
    /// Percent (0..=100) of decision points that fault.
    pub rate: u8,
    /// Kinds eligible for injection (intersected with the stage's
    /// applicable set).
    pub kinds: Vec<FaultKind>,
}

impl FaultPlan {
    /// A plan injecting all kinds at `rate` percent.
    pub fn new(seed: u64, rate: u8) -> FaultPlan {
        FaultPlan { seed, rate: rate.min(100), kinds: FaultKind::ALL.to_vec() }
    }

    /// A plan that never faults.
    pub fn disabled() -> FaultPlan {
        FaultPlan { seed: 0, rate: 0, kinds: Vec::new() }
    }

    /// Restricts the plan to the given kinds.
    pub fn with_kinds(mut self, kinds: &[FaultKind]) -> FaultPlan {
        self.kinds = kinds.to_vec();
        self
    }
}

/// One decision to inject a fault, with a salt for deterministic
/// byte-level effects (truncation points, garble positions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultDecision {
    /// What to inject.
    pub kind: FaultKind,
    /// Deterministic per-decision entropy.
    pub salt: u64,
}

impl FaultDecision {
    /// The prefix length a reset-mid-message leaves behind: always at
    /// least one byte short, never empty for non-empty input.
    pub fn reset_point(&self, len: usize) -> usize {
        if len <= 1 {
            return 0;
        }
        1 + (self.salt as usize) % (len - 1)
    }

    /// Corrupts one byte of `bytes` in place of clean forwarding.
    pub fn garble(&self, bytes: &[u8]) -> Vec<u8> {
        let mut out = bytes.to_vec();
        if !out.is_empty() {
            let idx = (self.salt as usize) % out.len();
            // Flip a low bit-pattern that keeps the byte printable-ish but
            // changes token identity.
            out[idx] ^= 0x02;
        }
        out
    }
}

fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn hash_str(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// The deterministic fault oracle.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
}

impl FaultInjector {
    /// Wraps a plan.
    pub fn new(plan: FaultPlan) -> FaultInjector {
        FaultInjector { plan }
    }

    /// The plan in force.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Decides whether the decision point `(uuid, hop, stage, attempt)`
    /// faults, and with what. Pure: identical inputs always yield the
    /// identical decision.
    pub fn decide(
        &self,
        uuid: u64,
        hop: &str,
        stage: FaultStage,
        attempt: u32,
    ) -> Option<FaultDecision> {
        if self.plan.rate == 0 || self.plan.kinds.is_empty() {
            return None;
        }
        let eligible: Vec<FaultKind> =
            stage.applicable().iter().copied().filter(|k| self.plan.kinds.contains(k)).collect();
        if eligible.is_empty() {
            return None;
        }
        let h = mix(self
            .plan
            .seed
            .wrapping_add(mix(uuid))
            .wrapping_add(mix(hash_str(hop)))
            .wrapping_add(mix(stage as u64 + 1))
            .wrapping_add(mix(u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15))));
        if h % 100 >= u64::from(self.plan.rate) {
            return None;
        }
        let kind = eligible[((h >> 32) as usize) % eligible.len()];
        Some(FaultDecision { kind, salt: mix(h) })
    }
}

/// A fault that actually fired during a case run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultEvent {
    /// The hop at which it fired (`"origin"` for the origin).
    pub hop: String,
    /// The processing stage.
    pub stage: FaultStage,
    /// What was injected.
    pub kind: FaultKind,
}

/// Per-case-attempt fault context threaded through proxy, server, chain
/// and relay processing. Interior-mutable so the hooks take `&self`; a
/// session belongs to one worker thread for one attempt.
#[derive(Debug)]
pub struct FaultSession<'a> {
    injector: &'a FaultInjector,
    /// The case being run.
    pub uuid: u64,
    /// The retry attempt (0 = first try).
    pub attempt: u32,
    events: RefCell<Vec<FaultEvent>>,
    remaining_steps: Cell<u64>,
}

impl<'a> FaultSession<'a> {
    /// Starts a session with `budget` logical steps.
    pub fn new(injector: &'a FaultInjector, uuid: u64, attempt: u32, budget: u64) -> Self {
        FaultSession {
            injector,
            uuid,
            attempt,
            events: RefCell::new(Vec::new()),
            remaining_steps: Cell::new(budget),
        }
    }

    /// Looks up the decision for `(hop, stage)` *without* recording an
    /// event. The wire transport needs the decision before a hop runs (the
    /// socket thread cannot share this `RefCell`-based session), but the
    /// event must only be recorded if the hop actually reaches the faulted
    /// stage — the caller follows up with [`FaultSession::decide`] then.
    pub fn peek(&self, hop: &str, stage: FaultStage) -> Option<FaultDecision> {
        self.injector.decide(self.uuid, hop, stage, self.attempt)
    }

    /// Decides a fault for `(hop, stage)` and records it. Deterministic,
    /// so repeated calls for the same point record one event.
    pub fn decide(&self, hop: &str, stage: FaultStage) -> Option<FaultDecision> {
        let decision = self.injector.decide(self.uuid, hop, stage, self.attempt)?;
        let event = FaultEvent { hop: hop.to_string(), stage, kind: decision.kind };
        let mut events = self.events.borrow_mut();
        if !events.contains(&event) {
            events.push(event);
        }
        Some(decision)
    }

    /// Charges `steps` against the budget; `false` once exhausted.
    pub fn charge(&self, steps: u64) -> bool {
        let rem = self.remaining_steps.get();
        if rem == 0 {
            return false;
        }
        self.remaining_steps.set(rem.saturating_sub(steps));
        self.remaining_steps.get() > 0
    }

    /// Burns the whole remaining budget (a stalled read never returns).
    pub fn exhaust(&self) {
        self.remaining_steps.set(0);
    }

    /// Whether the step budget ran out.
    pub fn exhausted(&self) -> bool {
        self.remaining_steps.get() == 0
    }

    /// The faults that fired so far.
    pub fn events(&self) -> Vec<FaultEvent> {
        self.events.borrow().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_never_faults() {
        let inj = FaultInjector::new(FaultPlan::disabled());
        for uuid in 0..200 {
            assert!(inj.decide(uuid, "nginx", FaultStage::Forward, 0).is_none());
        }
    }

    #[test]
    fn full_rate_always_faults() {
        let inj = FaultInjector::new(FaultPlan::new(7, 100));
        for uuid in 0..200 {
            assert!(inj.decide(uuid, "nginx", FaultStage::Forward, 0).is_some());
        }
    }

    #[test]
    fn decisions_are_deterministic() {
        let a = FaultInjector::new(FaultPlan::new(42, 35));
        let b = FaultInjector::new(FaultPlan::new(42, 35));
        for uuid in 0..500 {
            for stage in [FaultStage::Forward, FaultStage::OriginRespond, FaultStage::Relay] {
                assert_eq!(a.decide(uuid, "squid", stage, 3), b.decide(uuid, "squid", stage, 3));
            }
        }
    }

    #[test]
    fn decisions_vary_with_every_key_component() {
        let inj = FaultInjector::new(FaultPlan::new(1, 50));
        let base: Vec<_> =
            (0..200).map(|u| inj.decide(u, "nginx", FaultStage::Forward, 0)).collect();
        let by_hop: Vec<_> =
            (0..200).map(|u| inj.decide(u, "squid", FaultStage::Forward, 0)).collect();
        let by_attempt: Vec<_> =
            (0..200).map(|u| inj.decide(u, "nginx", FaultStage::Forward, 1)).collect();
        assert_ne!(base, by_hop);
        assert_ne!(base, by_attempt);
    }

    #[test]
    fn rate_is_roughly_respected() {
        let inj = FaultInjector::new(FaultPlan::new(9, 20));
        let fired = (0..2000)
            .filter(|&u| inj.decide(u, "h", FaultStage::OriginRespond, 0).is_some())
            .count();
        assert!((200..=600).contains(&fired), "20% of 2000 ≈ 400, got {fired}");
    }

    #[test]
    fn stage_filters_kinds() {
        let plan = FaultPlan::new(3, 100).with_kinds(&[FaultKind::Transient5xx]);
        let inj = FaultInjector::new(plan);
        // Transient5xx cannot occur at the Forward stage.
        assert!(inj.decide(1, "nginx", FaultStage::Forward, 0).is_none());
        assert_eq!(
            inj.decide(1, "origin", FaultStage::OriginRespond, 0).map(|d| d.kind),
            Some(FaultKind::Transient5xx)
        );
    }

    #[test]
    fn session_records_unique_events_and_budget() {
        let inj = FaultInjector::new(FaultPlan::new(3, 100));
        let s = FaultSession::new(&inj, 11, 0, 10);
        s.decide("origin", FaultStage::OriginRespond);
        s.decide("origin", FaultStage::OriginRespond);
        assert_eq!(s.events().len(), 1);
        assert!(s.charge(5));
        assert!(!s.charge(5));
        assert!(s.exhausted());
    }

    #[test]
    fn reset_point_is_a_proper_prefix() {
        let d = FaultDecision { kind: FaultKind::ConnReset, salt: 0xDEAD_BEEF };
        for len in [0usize, 1, 2, 10, 1000] {
            let p = d.reset_point(len);
            assert!(p < len.max(1), "len={len} p={p}");
        }
    }

    #[test]
    fn garble_changes_exactly_one_byte() {
        let d = FaultDecision { kind: FaultKind::GarbleForward, salt: 12345 };
        let input = b"GET / HTTP/1.1\r\nHost: h\r\n\r\n";
        let out = d.garble(input);
        assert_eq!(out.len(), input.len());
        let diff = input.iter().zip(&out).filter(|(a, b)| a != b).count();
        assert_eq!(diff, 1);
    }

    #[test]
    fn kind_and_stage_names_round_trip() {
        for k in FaultKind::ALL {
            assert_eq!(FaultKind::parse(k.as_str()), Some(k));
        }
        for st in [FaultStage::Forward, FaultStage::OriginRespond, FaultStage::Relay] {
            assert_eq!(FaultStage::parse(st.as_str()), Some(st));
        }
    }
}
