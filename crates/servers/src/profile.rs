//! The behavior-toggle vocabulary of the simulated products.
//!
//! Every semantic-gap-relevant decision an HTTP implementation makes is an
//! explicit policy enum here. `ParserProfile::strict()` is the
//! RFC 7230-conformant baseline; each product model (see
//! [`mod@crate::products`]) overrides exactly the toggles for which the paper
//! documents deviant behavior.

use hdiff_wire::{ChunkedDecodeOptions, HostParseOptions};

/// Whitespace between field-name and colon (RFC 7230 §3.2.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum WsColonPolicy {
    /// Reject the message with 400 (the MUST).
    Reject,
    /// Trim the whitespace and use the header — the IIS/Weblogic/ATS
    /// leniency (§IV-B *Invalid CL/TE header*).
    AcceptUse,
    /// Keep the line but treat it as an unknown header.
    TreatUnknown,
}

/// Non-tchar bytes inside a header name (`\x0bTransfer-Encoding`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum NamePolicy {
    /// Reject the message.
    Reject,
    /// Treat the field as an unknown header (forwarded verbatim by
    /// proxies — the transparent-forwarding gap).
    TreatUnknown,
    /// Strip the junk bytes and recognize the header (deep leniency).
    Strip,
}

/// Obsolete line folding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum ObsFoldPolicy {
    /// Reject with 400.
    Reject,
    /// Merge continuation into the previous value with a space.
    MergeSp,
}

/// Duplicate `Content-Length` headers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum DuplicateClPolicy {
    /// Reject whenever more than one CL header/value is present.
    Reject,
    /// Reject only if the values differ (RFC's recovery for identical
    /// duplicates).
    RejectIfDiffer,
    /// Use the first value.
    First,
    /// Use the last value.
    Last,
}

/// `Content-Length` value parsing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum ClValuePolicy {
    /// `1*DIGIT` only.
    Strict,
    /// Leading whitespace, `+`, trailing junk tolerated (`+6`, `6,9`).
    Lenient,
}

/// `Transfer-Encoding` value recognition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum TeRecognition {
    /// Token-list parse; final coding must be `chunked`; unknown codings
    /// are errors.
    Strict,
    /// Any value *containing* `chunked` (case-insensitive) counts as the
    /// chunked coding — the Tomcat `\x0bchunked` gap.
    ChunkedSubstring,
    /// Values that fail strict parsing are ignored (header dropped from
    /// framing) instead of rejected.
    IgnoreInvalid,
}

/// Both `Content-Length` and a *strictly valid* `Transfer-Encoding`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum ClTePolicy {
    /// Reject the message (the ought-to-be-handled-as-an-error reading).
    Reject,
    /// Transfer-Encoding wins (RFC §3.3.3 precedence, CL dropped).
    TeWins,
    /// Content-Length wins (a smuggling-prone legacy reading).
    ClWins,
}

/// Chunked framing under HTTP/1.0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Chunked10Policy {
    /// Decode chunked regardless of version.
    Process,
    /// Ignore the TE header: no body framing (the Tomcat 1.0 gap).
    Ignore,
    /// Reject the message.
    Reject,
}

/// Body on GET/HEAD ("fat" requests).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum FatRequestPolicy {
    /// Parse the body per its framing headers.
    AcceptParse,
    /// Ignore the framing headers entirely: body bytes become the next
    /// pipelined message (a smuggling gap).
    IgnoreFraming,
    /// Reject the message.
    Reject,
}

/// Request-line HTTP-version handling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum VersionPolicy {
    /// Reject grammar-invalid versions with 400.
    Strict,
    /// Accept anything in version position, treating it as HTTP/1.1.
    AcceptAny,
    /// Accept, and when forwarding keep the bad token and append the own
    /// version (the Nginx/Squid/ATS repair of §IV-B, producing
    /// `GET /?a=b 1.1/HTTP HTTP/1.0`).
    RepairAppend,
}

/// A literal `HTTP/2.0` (or higher) token on the request line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Http2TokenPolicy {
    /// Treat like 1.1 (token-only reading).
    TreatAs11,
    /// Respond 505.
    Reject505,
}

/// Multiple `Host` headers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum MultiHostPolicy {
    /// Reject with 400 (the MUST).
    Reject,
    /// Use the first.
    First,
    /// Use the last.
    Last,
}

/// Absolute-form request-target versus the `Host` header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum AbsUriPolicy {
    /// The request-target's authority wins (RFC §5.4) — IIS/Tomcat.
    PreferUri,
    /// The `Host` header wins (the Varnish non-http-scheme reading).
    PreferHost,
    /// Reject when both are present and disagree.
    RejectMismatch,
}

/// `Expect` header handling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum ExpectPolicy {
    /// Unknown expectation values get 417; `100-continue` is processed.
    Strict,
    /// The header is ignored entirely.
    Ignore,
    /// Reject `Expect` on bodyless GET/HEAD with 417 — the Lighttpd
    /// behavior of §IV-B.
    RejectOnGet,
}

/// How a proxy rewrites absolute-form targets when forwarding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum RewriteAbsUri {
    /// Always rewrite to origin-form and regenerate Host (RFC §5.4 MUST).
    Always,
    /// Only rewrite `http`/`https` schemes; other schemes are forwarded
    /// transparently, Host header untouched — the Varnish HoT gap.
    OnlyHttpScheme,
    /// Never rewrite (fully transparent).
    Never,
}

/// Which version token a proxy puts on forwarded request lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum ForwardVersion {
    /// Its own version (RFC §2.6 MUST for non-tunnels).
    Own,
    /// The client's token verbatim — blind forwarding (the Haproxy
    /// HTTP/0.9 gap).
    Blind,
}

/// Proxy-specific behavior.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ProxyBehavior {
    /// Absolute-URI rewriting.
    pub rewrite_abs_uri: RewriteAbsUri,
    /// Generate a Host header from the request-target when rewriting or
    /// when the request has none.
    pub add_host_from_uri: bool,
    /// Forward the protocol version as own or blind.
    pub forward_version: ForwardVersion,
    /// Parse Connection and strip nominated + hop-by-hop fields.
    pub strip_hop_by_hop: bool,
    /// Forward `Expect` on bodyless GET/HEAD instead of stripping it —
    /// the ATS gap.
    pub forward_expect_on_get: bool,
    /// Re-encode a chunked body the engine had to *repair* (re-framing
    /// the body as the proxy understood it — how the Haproxy/Squid
    /// chunk-size bug becomes an exploit).
    pub reencode_repaired_chunked: bool,
    /// Remove whitespace-before-colon from forwarded headers (RFC MUST
    /// for responses; good proxies do it for requests too). When false,
    /// such lines are forwarded verbatim.
    pub normalize_ws_colon: bool,
    /// Add a Via header.
    pub add_via: bool,
    /// Response cache policy.
    pub cache: CacheBehavior,
}

/// What a proxy's cache will store (CPDoS surface).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CacheBehavior {
    /// Cache GET responses at all.
    pub enabled: bool,
    /// Store non-200 (error) responses — the CPDoS precondition.
    pub store_errors: bool,
    /// Store responses to requests with protocol version below 1.1.
    pub store_pre11: bool,
}

impl ProxyBehavior {
    /// RFC-conformant forwarding behavior.
    pub fn strict() -> ProxyBehavior {
        ProxyBehavior {
            rewrite_abs_uri: RewriteAbsUri::Always,
            add_host_from_uri: true,
            forward_version: ForwardVersion::Own,
            strip_hop_by_hop: true,
            forward_expect_on_get: false,
            reencode_repaired_chunked: false,
            normalize_ws_colon: true,
            add_via: true,
            cache: CacheBehavior { enabled: true, store_errors: false, store_pre11: false },
        }
    }
}

/// A complete behavioral profile for one HTTP implementation.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ParserProfile {
    /// Display name (`"varnish"`).
    pub name: String,
    /// Modeled product version string (Table I).
    pub version: String,

    // -- header-line parsing ------------------------------------------------
    /// Whitespace between name and colon.
    pub ws_colon: WsColonPolicy,
    /// Junk bytes in header names.
    pub name_policy: NamePolicy,
    /// Obsolete line folding.
    pub obs_fold: ObsFoldPolicy,
    /// Total header-section byte limit (431/413 beyond).
    pub max_header_bytes: usize,

    // -- framing -------------------------------------------------------------
    /// Duplicate Content-Length handling.
    pub duplicate_cl: DuplicateClPolicy,
    /// Content-Length value leniency.
    pub cl_value: ClValuePolicy,
    /// Transfer-Encoding recognition.
    pub te_recognition: TeRecognition,
    /// CL together with strictly valid TE.
    pub cl_with_te: ClTePolicy,
    /// Whether a leniently recognized TE silently overrides a CL.
    pub lenient_te_overrides_cl: bool,
    /// Chunked under HTTP/1.0.
    pub chunked_in_10: Chunked10Policy,
    /// Chunked decoding options (repair semantics).
    pub chunk_opts: ChunkedDecodeOptions,
    /// Body on GET/HEAD.
    pub fat_request: FatRequestPolicy,

    // -- request line ----------------------------------------------------------
    /// HTTP-version handling.
    pub version_policy: VersionPolicy,
    /// HTTP/2.0-token handling.
    pub http2_token: Http2TokenPolicy,
    /// Whether HTTP/0.9 simple/with-header requests get a 200.
    pub supports_09: bool,
    /// Tolerate multiple spaces between request-line parts.
    pub multi_space_request_line: bool,

    // -- host -------------------------------------------------------------------
    /// Reject HTTP/1.1 requests without Host.
    pub host_required_11: bool,
    /// Multiple Host headers.
    pub multi_host: MultiHostPolicy,
    /// Host value interpretation.
    pub host_parse: HostParseOptions,
    /// Validate the interpreted host against the URI grammar.
    pub validate_host: bool,
    /// Absolute-URI vs Host precedence.
    pub abs_uri: AbsUriPolicy,

    // -- misc ----------------------------------------------------------------------
    /// Expect handling.
    pub expect: ExpectPolicy,
    /// Proxy behavior (None when the product has no proxy mode).
    pub proxy: Option<ProxyBehavior>,
    /// Whether the product works as an origin server (Table I).
    pub server_mode: bool,
    /// Test knob: panic on every parse, to exercise the campaign
    /// runner's quarantine path. Never set on product profiles.
    pub always_panic: bool,
}

impl ParserProfile {
    /// The RFC 7230-strict baseline.
    pub fn strict(name: &str) -> ParserProfile {
        ParserProfile {
            name: name.to_string(),
            version: "1.0".to_string(),
            ws_colon: WsColonPolicy::Reject,
            name_policy: NamePolicy::Reject,
            obs_fold: ObsFoldPolicy::Reject,
            max_header_bytes: 64 * 1024,
            duplicate_cl: DuplicateClPolicy::RejectIfDiffer,
            cl_value: ClValuePolicy::Strict,
            te_recognition: TeRecognition::Strict,
            cl_with_te: ClTePolicy::Reject,
            lenient_te_overrides_cl: true,
            chunked_in_10: Chunked10Policy::Reject,
            chunk_opts: ChunkedDecodeOptions::strict(),
            fat_request: FatRequestPolicy::AcceptParse,
            version_policy: VersionPolicy::Strict,
            http2_token: Http2TokenPolicy::Reject505,
            supports_09: false,
            multi_space_request_line: false,
            host_required_11: true,
            multi_host: MultiHostPolicy::Reject,
            host_parse: HostParseOptions::strict(),
            validate_host: true,
            abs_uri: AbsUriPolicy::PreferUri,
            expect: ExpectPolicy::Strict,
            proxy: None,
            server_mode: true,
            always_panic: false,
        }
    }

    /// Whether the product has a proxy mode.
    pub fn is_proxy(&self) -> bool {
        self.proxy.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strict_profile_is_rfc_conformant() {
        let p = ParserProfile::strict("baseline");
        assert_eq!(p.ws_colon, WsColonPolicy::Reject);
        assert_eq!(p.duplicate_cl, DuplicateClPolicy::RejectIfDiffer);
        assert_eq!(p.cl_with_te, ClTePolicy::Reject);
        assert_eq!(p.multi_host, MultiHostPolicy::Reject);
        assert!(p.host_required_11);
        assert!(!p.is_proxy());
    }

    #[test]
    fn strict_proxy_behavior() {
        let b = ProxyBehavior::strict();
        assert_eq!(b.rewrite_abs_uri, RewriteAbsUri::Always);
        assert_eq!(b.forward_version, ForwardVersion::Own);
        assert!(b.strip_hop_by_hop);
        assert!(!b.cache.store_errors);
    }
}
