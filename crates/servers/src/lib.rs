//! Simulated HTTP implementations — the substrate of HDiff's testbed.
//!
//! The paper tests ten real products in VMs. This crate substitutes
//! *behavioral models*: one configurable HTTP/1.1 engine
//! ([`profile::ParserProfile`], ~40 toggles) instantiated ten times with
//! the parsing/forwarding quirks the paper documents per product
//! ([`mod@products`]). The differential engine only observes wire behavior
//! (status codes, forwarded bytes, parsed host, body framing, cache
//! state), which these models reproduce faithfully — see `DESIGN.md` §2
//! for the substitution argument and §7 for the per-product quirk
//! inventory.
//!
//! * [`profile`] — the behavior-toggle vocabulary (every policy enum) and
//!   the RFC-strict default profile.
//! * [`engine`] — `interpret()`: one request parsed under a profile into
//!   an [`Interpretation`] (outcome, effective host, framing, consumed
//!   bytes, notes).
//! * [`server`] — origin-server wrapper: pipelined stream handling and
//!   echo-style responses describing the interpretation.
//! * [`proxy`] — forwarding wrapper: request-line rewriting, hop-by-hop
//!   stripping, version repair, message repair, transparent forwarding.
//! * [`cache`] — the shared response cache used by CPDoS detection.
//! * [`downgrade`] — HTTP/2 front-end models: pseudo-headers back into
//!   request-line/`Host`, `Content-Length` reconstruction, forbidden
//!   header handling — the h2→h1 translation gap surface.
//! * [`echo`] — the recording echo origin of Fig. 6.
//! * [`mod@products`] — the ten product profiles.

pub mod cache;
pub mod chain;
pub mod downgrade;
pub mod echo;
pub mod engine;
pub mod fault;
pub mod products;
pub mod profile;
pub mod proxy;
pub mod response_path;
pub mod server;

pub use cache::{Cache, CacheKey, CachePolicy};
pub use chain::{run_multihop, run_multihop_faulted, HopRecord, MultiHopResult};
pub use downgrade::{
    fronts, AuthorityPolicy, ClPolicy, DowngradeOutcome, DowngradeProfile, PathPolicy,
    SanitizePolicy, TePolicy,
};
pub use echo::EchoServer;
pub use engine::{interpret, FramingChoice, Interpretation, Outcome};
pub use fault::{
    FaultDecision, FaultEvent, FaultInjector, FaultKind, FaultPlan, FaultSession, FaultStage,
};
pub use products::{backends, product, products, proxies, ProductId};
pub use profile::ParserProfile;
pub use proxy::{ForwardAction, Proxy, ProxyResult};
pub use response_path::{relay_response, RelayAction};
pub use server::{Server, ServerReply, ORIGIN_HOP};
