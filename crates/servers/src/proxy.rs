//! Forwarding wrapper: how a proxy rebuilds the downstream message.
//!
//! The exploitability of most semantic gaps hinges on what a proxy
//! *forwards*: transparent pass-through of fields it did not recognize,
//! request-line "repair", hop-by-hop stripping, host rewriting, and
//! re-framing of bodies it repaired. Every one of those decisions is a
//! [`crate::profile::ProxyBehavior`] toggle.

use hdiff_wire::ascii;
use hdiff_wire::uri::{Authority, RequestTarget};
use hdiff_wire::version::Version;
use hdiff_wire::{encode_chunked, Response, StatusCode};

use crate::cache::Cache;
use crate::engine::{interpret, FramingChoice, Interpretation, Outcome};
use crate::fault::{FaultKind, FaultSession, FaultStage};
use crate::profile::{ForwardVersion, ParserProfile, RewriteAbsUri, VersionPolicy};

/// What the proxy did with one parsed message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ForwardAction {
    /// Forwarded downstream as these bytes.
    Forwarded(Vec<u8>),
    /// Rejected at the proxy with this response.
    Rejected(Response),
}

impl ForwardAction {
    /// The forwarded bytes, if any.
    pub fn forwarded(&self) -> Option<&[u8]> {
        match self {
            ForwardAction::Forwarded(b) => Some(b),
            ForwardAction::Rejected(_) => None,
        }
    }
}

/// One client message processed by the proxy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProxyResult {
    /// How the proxy interpreted the message.
    pub interpretation: Interpretation,
    /// What it did.
    pub action: ForwardAction,
}

/// A simulated forwarding proxy with its response cache.
#[derive(Debug, Clone)]
pub struct Proxy {
    /// The behavioral profile (must have `proxy: Some(..)`).
    pub profile: ParserProfile,
    /// The proxy's shared response cache.
    pub cache: Cache,
}

impl Proxy {
    /// Wraps a profile as a proxy.
    ///
    /// # Panics
    ///
    /// Panics if the profile has no proxy behavior configured.
    pub fn new(profile: ParserProfile) -> Proxy {
        let behavior = profile.proxy.clone().expect("profile must have proxy behavior");
        Proxy { cache: Cache::new(behavior.cache), profile }
    }

    /// The product name.
    pub fn name(&self) -> &str {
        &self.profile.name
    }

    /// Processes one client message (first on the stream).
    pub fn forward(&self, input: &[u8]) -> ProxyResult {
        let interpretation = interpret(&self.profile, input);
        match &interpretation.outcome {
            Outcome::Reject { status, reason } => {
                let mut r = Response::with_body(StatusCode(*status), reason.clone());
                r.headers.push("Server", self.profile.name.clone());
                ProxyResult { action: ForwardAction::Rejected(r), interpretation }
            }
            Outcome::Accept => {
                let (bytes, rewritten_host) = self.rebuild(input, &interpretation);
                let mut interpretation = interpretation;
                if let Some(h) = rewritten_host {
                    // The proxy rewrote the Host header; its routing view
                    // is the host it actually forwards.
                    interpretation.host = Some(h);
                }
                ProxyResult { action: ForwardAction::Forwarded(bytes), interpretation }
            }
        }
    }

    /// Processes a whole connection: consecutive messages, each forwarded
    /// or rejected. Smuggled payloads surface as extra messages here.
    pub fn forward_stream(&self, input: &[u8]) -> Vec<ProxyResult> {
        self.forward_stream_faulted(input, None)
    }

    /// [`Proxy::forward_stream`] with a fault hook: each message's
    /// forwarding consults the session for a Forward-stage fault at this
    /// hop, which can reset the connection mid-message (prefix forwarded,
    /// stream dropped), garble the forwarded bytes, or stall the read
    /// (budget exhaustion, nothing further forwarded).
    pub fn forward_stream_faulted(
        &self,
        input: &[u8],
        faults: Option<&FaultSession<'_>>,
    ) -> Vec<ProxyResult> {
        let mut out = Vec::new();
        let mut pos = 0usize;
        for _ in 0..16 {
            if pos >= input.len() {
                break;
            }
            if let Some(session) = faults {
                if !session.charge(1) {
                    break; // budget already exhausted upstream
                }
            }
            let mut r = self.forward(&input[pos..]);
            let consumed = r.interpretation.consumed;
            let rejected = matches!(r.action, ForwardAction::Rejected(_));
            let mut drop_rest = false;
            if let (Some(session), ForwardAction::Forwarded(bytes)) = (faults, &r.action) {
                if let Some(decision) = session.decide(&self.profile.name, FaultStage::Forward) {
                    match decision.kind {
                        FaultKind::ConnReset => {
                            let cut = decision.reset_point(bytes.len());
                            r.action = ForwardAction::Forwarded(bytes[..cut].to_vec());
                            drop_rest = true;
                        }
                        FaultKind::GarbleForward => {
                            r.action = ForwardAction::Forwarded(decision.garble(bytes));
                        }
                        FaultKind::StallRead => {
                            session.exhaust();
                            r.action = ForwardAction::Forwarded(Vec::new());
                            drop_rest = true;
                        }
                        _ => {}
                    }
                }
            }
            out.push(r);
            if rejected || consumed == 0 || drop_rest {
                break;
            }
            pos += consumed;
        }
        out
    }

    /// Rebuilds the downstream message per the proxy behavior toggles.
    /// Returns the bytes and the rewritten Host identity, if any.
    fn rebuild(&self, input: &[u8], i: &Interpretation) -> (Vec<u8>, Option<Vec<u8>>) {
        let behavior = self.profile.proxy.as_ref().expect("proxy behavior checked in new");
        let mut out = Vec::new();

        // ---- request line -------------------------------------------------
        let target = RequestTarget::classify(&i.target);
        let (target_bytes, rewritten_host): (Vec<u8>, Option<Vec<u8>>) =
            match (&target, behavior.rewrite_abs_uri) {
                (RequestTarget::Absolute { .. }, RewriteAbsUri::Always) => {
                    let origin = target.to_origin_form().expect("absolute form");
                    let host =
                        target.authority().map(|a| Authority::parse(a).host.to_ascii_lowercase());
                    (origin, host)
                }
                (RequestTarget::Absolute { .. }, RewriteAbsUri::OnlyHttpScheme) => {
                    if target.is_http_absolute() {
                        let origin = target.to_origin_form().expect("absolute form");
                        let host = target
                            .authority()
                            .map(|a| Authority::parse(a).host.to_ascii_lowercase());
                        (origin, host)
                    } else {
                        // Non-http scheme: forwarded transparently — the
                        // Varnish HoT gap.
                        (i.target.clone(), None)
                    }
                }
                _ => (i.target.clone(), None),
            };

        out.extend_from_slice(&i.method);
        out.push(b' ');
        out.extend_from_slice(&target_bytes);
        match (&i.version, self.profile.version_policy, behavior.forward_version) {
            (Version::Invalid(raw), VersionPolicy::RepairAppend, _) => {
                // Keep the bad token and append the own version — the
                // Nginx/Squid/ATS repair (`GET /?a=b 1.1/HTTP HTTP/1.1`).
                out.push(b' ');
                out.extend_from_slice(raw);
                out.extend_from_slice(b" HTTP/1.1");
            }
            (v, _, ForwardVersion::Blind) => {
                if *v != Version::Http09 {
                    out.push(b' ');
                    out.extend_from_slice(&v.to_bytes());
                } else {
                    // Blind 0.9 forwarding keeps the two-token line.
                    out.push(b' ');
                    out.extend_from_slice(b"HTTP/0.9");
                }
            }
            (_, _, ForwardVersion::Own) => {
                out.push(b' ');
                out.extend_from_slice(b"HTTP/1.1");
            }
        }
        out.extend_from_slice(b"\r\n");

        // ---- headers -------------------------------------------------------
        // Hop-by-hop removal set from Connection headers.
        let mut hop_names: Vec<Vec<u8>> = Vec::new();
        if behavior.strip_hop_by_hop {
            for h in i.recognized("connection") {
                for part in h.field.value().split(|&b| b == b',') {
                    let name = ascii::trim_ows(part).to_ascii_lowercase();
                    if !name.is_empty() {
                        hop_names.push(name);
                    }
                }
            }
            hop_names.push(b"connection".to_vec());
            hop_names.push(b"keep-alive".to_vec());
            hop_names.push(b"proxy-authorization".to_vec());
            hop_names.push(b"proxy-authenticate".to_vec());
            hop_names.push(b"te".to_vec());
        }

        let is_bodyless = i.method == b"GET" || i.method == b"HEAD";
        let mut wrote_host = false;
        for h in &i.headers {
            let canon = h.canon.as_deref();
            // Hop-by-hop stripping (by canonical name).
            if let Some(c) = canon {
                if hop_names.iter().any(|n| n.as_slice() == c.as_bytes()) {
                    continue;
                }
                if c == "host" {
                    if let Some(new_host) = &rewritten_host {
                        if !wrote_host {
                            out.extend_from_slice(b"Host: ");
                            out.extend_from_slice(new_host);
                            out.extend_from_slice(b"\r\n");
                            wrote_host = true;
                        }
                        continue;
                    }
                }
                if c == "expect" && is_bodyless && !behavior.forward_expect_on_get {
                    continue; // strict proxies answer/strip the expectation
                }
            }
            // Whitespace-before-colon normalization.
            if h.field.has_ws_before_colon() && behavior.normalize_ws_colon {
                out.extend_from_slice(h.field.name_trimmed());
                out.extend_from_slice(b": ");
                out.extend_from_slice(h.field.value());
                out.extend_from_slice(b"\r\n");
                continue;
            }
            // Everything else — including fields the proxy did not
            // recognize — is forwarded verbatim (transparent forwarding).
            out.extend_from_slice(h.field.raw());
            out.extend_from_slice(b"\r\n");
        }
        if !wrote_host {
            if let Some(new_host) = &rewritten_host {
                out.extend_from_slice(b"Host: ");
                out.extend_from_slice(new_host);
                out.extend_from_slice(b"\r\n");
            } else if behavior.add_host_from_uri && i.recognized("host").next().is_none() {
                if let Some(auth) = target.authority() {
                    out.extend_from_slice(b"Host: ");
                    out.extend_from_slice(&Authority::parse(auth).host.to_ascii_lowercase());
                    out.extend_from_slice(b"\r\n");
                }
            }
        }
        if behavior.add_via {
            out.extend_from_slice(b"Via: 1.1 ");
            out.extend_from_slice(self.profile.name.as_bytes());
            out.extend_from_slice(b"\r\n");
        }
        out.extend_from_slice(b"\r\n");

        // ---- body ------------------------------------------------------------
        match i.framing {
            FramingChoice::None => {}
            FramingChoice::Chunked if i.repaired_chunked && behavior.reencode_repaired_chunked => {
                // Re-frame the body as the proxy (mis)understood it.
                out.extend_from_slice(&encode_chunked(&i.body));
            }
            _ => {
                // Transparent: forward exactly the raw body bytes consumed.
                out.extend_from_slice(&input[i.body_start..i.consumed]);
            }
        }
        (out, rewritten_host)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{NamePolicy, ParserProfile, ProxyBehavior};

    fn strict_proxy() -> Proxy {
        let mut p = ParserProfile::strict("strictproxy");
        p.proxy = Some(ProxyBehavior::strict());
        Proxy::new(p)
    }

    #[test]
    fn forwards_simple_get_with_via_and_own_version() {
        let pr = strict_proxy();
        let r = pr.forward(b"GET / HTTP/1.1\r\nHost: h1.com\r\n\r\n");
        let bytes = r.action.forwarded().unwrap();
        let s = String::from_utf8_lossy(bytes);
        assert!(s.starts_with("GET / HTTP/1.1\r\n"), "{s}");
        assert!(s.contains("Via: 1.1 strictproxy"));
        assert!(s.contains("Host: h1.com"));
    }

    #[test]
    fn rejects_bubble_up() {
        let pr = strict_proxy();
        let r = pr.forward(b"GET / HTTP/1.1\r\nHost : h1.com\r\n\r\n");
        assert!(
            matches!(r.action, ForwardAction::Rejected(ref resp) if resp.status == StatusCode::BAD_REQUEST)
        );
    }

    #[test]
    fn absolute_uri_rewritten_to_origin_form() {
        let pr = strict_proxy();
        let r = pr.forward(b"GET http://h2.com/a?b=1 HTTP/1.1\r\nHost: h1.com\r\n\r\n");
        let s = String::from_utf8_lossy(r.action.forwarded().unwrap());
        assert!(s.starts_with("GET /a?b=1 HTTP/1.1\r\n"), "{s}");
        assert!(s.contains("Host: h2.com"), "{s}");
        assert!(!s.contains("h1.com"), "original Host must be replaced: {s}");
    }

    #[test]
    fn non_http_scheme_forwarded_transparently_under_varnish_policy() {
        let mut p = ParserProfile::strict("varnishish");
        p.abs_uri = crate::profile::AbsUriPolicy::PreferHost;
        let mut b = ProxyBehavior::strict();
        b.rewrite_abs_uri = RewriteAbsUri::OnlyHttpScheme;
        p.proxy = Some(b);
        let pr = Proxy::new(p);
        let r = pr.forward(b"GET test://h2.com/?a=1 HTTP/1.1\r\nHost: h1.com\r\n\r\n");
        let s = String::from_utf8_lossy(r.action.forwarded().unwrap());
        assert!(s.starts_with("GET test://h2.com/?a=1 HTTP/1.1\r\n"), "{s}");
        assert!(s.contains("Host: h1.com"), "Host untouched: {s}");
        // Proxy itself believes the host is h1.com (PreferHost).
        assert_eq!(r.interpretation.host.as_deref(), Some(&b"h1.com"[..]));
    }

    #[test]
    fn hop_by_hop_nomination_removes_host() {
        // Table II: `Connection: close, Host` strips Host downstream.
        let pr = strict_proxy();
        let r = pr.forward(b"GET / HTTP/1.1\r\nHost: h1.com\r\nConnection: close, Host\r\n\r\n");
        let s = String::from_utf8_lossy(r.action.forwarded().unwrap());
        assert!(!s.contains("Host:"), "{s}");
        assert!(!s.contains("Connection:"), "{s}");
    }

    #[test]
    fn expect_stripped_on_get_by_strict_but_forwarded_by_ats_policy() {
        let input = b"GET / HTTP/1.1\r\nHost: h1.com\r\nExpect: 100-continue\r\n\r\n";
        let strict = strict_proxy();
        let s1 =
            String::from_utf8_lossy(strict.forward(input).action.forwarded().unwrap()).to_string();
        assert!(!s1.contains("Expect"), "{s1}");

        let mut p = ParserProfile::strict("atsish");
        let mut b = ProxyBehavior::strict();
        b.forward_expect_on_get = true;
        p.proxy = Some(b);
        let ats = Proxy::new(p);
        let s2 =
            String::from_utf8_lossy(ats.forward(input).action.forwarded().unwrap()).to_string();
        assert!(s2.contains("Expect: 100-continue"), "{s2}");
    }

    #[test]
    fn repair_append_keeps_bad_version_token() {
        let mut p = ParserProfile::strict("nginxish");
        p.version_policy = VersionPolicy::RepairAppend;
        p.proxy = Some(ProxyBehavior::strict());
        let pr = Proxy::new(p);
        let r = pr.forward(b"GET /?a=b 1.1/HTTP\r\nHost: h1.com\r\n\r\n");
        let s = String::from_utf8_lossy(r.action.forwarded().unwrap());
        assert!(s.starts_with("GET /?a=b 1.1/HTTP HTTP/1.1\r\n"), "{s}");
    }

    #[test]
    fn blind_forwarding_keeps_old_version() {
        let mut p = ParserProfile::strict("haproxyish");
        p.supports_09 = true;
        let mut b = ProxyBehavior::strict();
        b.forward_version = ForwardVersion::Blind;
        p.proxy = Some(b);
        let pr = Proxy::new(p);
        let r = pr.forward(b"GET / HTTP/0.9\r\nHost: h1.com\r\n\r\n");
        let s = String::from_utf8_lossy(r.action.forwarded().unwrap());
        assert!(s.starts_with("GET / HTTP/0.9\r\n"), "{s}");
    }

    #[test]
    fn unknown_headers_forwarded_verbatim() {
        let mut p = ParserProfile::strict("transparentish");
        p.name_policy = NamePolicy::TreatUnknown;
        p.proxy = Some(ProxyBehavior::strict());
        let pr = Proxy::new(p);
        let r = pr.forward(b"GET / HTTP/1.1\r\nHost: h1.com\r\n\x0bHost: h2.com\r\n\r\n");
        let bytes = r.action.forwarded().unwrap();
        assert!(
            bytes.windows(14).any(|w| w == b"\x0bHost: h2.com\r"),
            "{:?}",
            String::from_utf8_lossy(bytes)
        );
    }

    #[test]
    fn ws_colon_normalization_toggle() {
        let mut p = ParserProfile::strict("lenient");
        p.ws_colon = crate::profile::WsColonPolicy::AcceptUse;
        p.proxy = Some(ProxyBehavior::strict());
        let pr = Proxy::new(p);
        let input = b"POST / HTTP/1.1\r\nHost: h1.com\r\nContent-Length : 3\r\n\r\nabc";
        let s = String::from_utf8_lossy(pr.forward(input).action.forwarded().unwrap()).to_string();
        assert!(s.contains("Content-Length: 3"), "{s}");
        assert!(!s.contains("Content-Length :"), "{s}");

        let mut p2 = ParserProfile::strict("transparent");
        p2.ws_colon = crate::profile::WsColonPolicy::TreatUnknown;
        let mut b2 = ProxyBehavior::strict();
        b2.normalize_ws_colon = false;
        p2.proxy = Some(b2);
        let pr2 = Proxy::new(p2);
        let s2 =
            String::from_utf8_lossy(pr2.forward(input).action.forwarded().unwrap()).to_string();
        assert!(s2.contains("Content-Length : 3"), "{s2}");
    }

    #[test]
    fn repaired_chunked_is_reframed() {
        let mut p = ParserProfile::strict("squidish");
        p.chunk_opts = hdiff_wire::ChunkedDecodeOptions {
            overflow: hdiff_wire::OverflowBehavior::Wrap,
            truncate_short_final_chunk: true,
            ..hdiff_wire::ChunkedDecodeOptions::strict()
        };
        let mut b = ProxyBehavior::strict();
        b.reencode_repaired_chunked = true;
        p.proxy = Some(b);
        let pr = Proxy::new(p);
        let input = b"POST / HTTP/1.1\r\nHost: h\r\nTransfer-Encoding: chunked\r\n\r\n1000000000000000a\r\nabc\r\n0\r\n\r\n";
        let r = pr.forward(input);
        let bytes = r.action.forwarded().unwrap();
        let s = String::from_utf8_lossy(bytes);
        // The proxy re-encodes its (wrong) 10-byte payload: "a\r\n".
        assert!(s.contains("\r\n\r\na\r\nabc"), "{s}");
        assert!(r.interpretation.repaired_chunked);
    }

    #[test]
    fn pipelined_messages_forward_separately() {
        let pr = strict_proxy();
        let rs = pr.forward_stream(
            b"GET /a HTTP/1.1\r\nHost: h\r\n\r\nGET /b HTTP/1.1\r\nHost: h\r\n\r\n",
        );
        assert_eq!(rs.len(), 2);
        assert!(rs[1].action.forwarded().unwrap().starts_with(b"GET /b"));
    }
}
