//! Multi-hop deployment chains.
//!
//! The paper's test environment chains one proxy in front of one back-end,
//! and notes (§IV-B) that pairs which look unexploitable in that topology
//! "may lead to exploitable attacks when chained with other HTTP
//! implementations, such as using CDN as a front-end server". This module
//! runs a request through an arbitrary chain of proxies before the origin,
//! recording every hop's interpretation.

use crate::fault::{FaultEvent, FaultSession};
use crate::proxy::{ForwardAction, Proxy, ProxyResult};
use crate::response_path::{relay_response_faulted, RelayAction};
use crate::server::{Server, ServerReply};
use crate::ParserProfile;
use hdiff_wire::Response;

/// One hop's processing record.
#[derive(Debug, Clone)]
pub struct HopRecord {
    /// The proxy's product name.
    pub name: String,
    /// Per-message results at this hop.
    pub results: Vec<ProxyResult>,
}

/// Outcome of a multi-hop run.
#[derive(Debug, Clone)]
pub struct MultiHopResult {
    /// Records for every proxy hop reached.
    pub hops: Vec<HopRecord>,
    /// Index of the hop that rejected the message, if any.
    pub rejected_at: Option<usize>,
    /// The origin's replies (empty when a hop rejected everything).
    pub origin_replies: Vec<ServerReply>,
    /// The bytes that finally reached the origin.
    pub origin_bytes: Vec<u8>,
    /// The response the client finally receives, after the origin's first
    /// reply is relayed back through the proxy chain (hop order reversed).
    /// `None` when no hop forwarded anything.
    pub client_response: Option<Response>,
    /// Faults injected during the run (empty without a fault session).
    pub faults: Vec<FaultEvent>,
}

impl MultiHopResult {
    /// The host identity each party resolved, front to back (`None` for
    /// rejected/hostless messages) — the quickest way to spot a
    /// HoT-through-CDN gap.
    pub fn host_views(&self) -> Vec<(String, Option<Vec<u8>>)> {
        let mut out: Vec<(String, Option<Vec<u8>>)> = self
            .hops
            .iter()
            .map(|h| {
                (h.name.clone(), h.results.first().and_then(|r| r.interpretation.host.clone()))
            })
            .collect();
        if let Some(reply) = self.origin_replies.first() {
            out.push(("origin".to_string(), reply.interpretation.host.clone()));
        }
        out
    }
}

/// Runs `bytes` through `proxies` (front to back) and then the `origin`.
pub fn run_multihop(
    proxies: &[ParserProfile],
    origin: &ParserProfile,
    bytes: &[u8],
) -> MultiHopResult {
    run_multihop_faulted(proxies, origin, bytes, None)
}

/// [`run_multihop`] with a fault session threaded through every hop:
/// request forwarding, the origin's response, and the relay path back to
/// the client all consult the injector, and every fault that fired is
/// recorded in [`MultiHopResult::faults`].
pub fn run_multihop_faulted(
    proxies: &[ParserProfile],
    origin: &ParserProfile,
    bytes: &[u8],
    faults: Option<&FaultSession<'_>>,
) -> MultiHopResult {
    let mut hops = Vec::new();
    let mut current = bytes.to_vec();
    let mut rejected_at = None;

    for (i, profile) in proxies.iter().enumerate() {
        let proxy = Proxy::new(profile.clone());
        let results = proxy.forward_stream_faulted(&current, faults);
        let mut next = Vec::new();
        for r in &results {
            if let ForwardAction::Forwarded(f) = &r.action {
                next.extend_from_slice(f);
            }
        }
        hops.push(HopRecord { name: profile.name.clone(), results });
        if next.is_empty() {
            rejected_at = Some(i);
            current.clear();
            break;
        }
        current = next;
    }

    let origin_replies = if current.is_empty() {
        Vec::new()
    } else {
        Server::new(origin.clone()).handle_stream_faulted(&current, faults)
    };

    // Relay the first response back through the chain, innermost proxy
    // first; any hop may replace a malformed upstream reply with its own
    // 502 per RFC 7230 §3.2.4.
    let reached = if rejected_at.is_some() { rejected_at.unwrap_or(0) } else { proxies.len() };
    let client_response = origin_replies.first().map(|first| {
        let mut bytes = first.response.to_bytes();
        let mut response = first.response.clone();
        for profile in proxies[..reached].iter().rev() {
            match relay_response_faulted(profile, &bytes, faults) {
                RelayAction::Relayed(b) => {
                    if let Ok(parsed) = hdiff_wire::parse_response(&b) {
                        response = parsed.into();
                    }
                    bytes = b;
                }
                RelayAction::Replaced(r) => {
                    bytes = r.to_bytes();
                    response = r;
                }
            }
        }
        response
    });

    MultiHopResult {
        hops,
        rejected_at,
        origin_replies,
        origin_bytes: current,
        client_response,
        faults: faults.map(|s| s.events()).unwrap_or_default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::products::{product, ProductId};
    use hdiff_wire::{Method, Request, Version};

    #[test]
    fn two_hop_chain_reaches_the_origin() {
        let r = run_multihop(
            &[product(ProductId::Nginx), product(ProductId::Varnish)],
            &product(ProductId::Apache),
            &Request::get("h1.com").to_bytes(),
        );
        assert_eq!(r.hops.len(), 2);
        assert!(r.rejected_at.is_none());
        assert_eq!(r.origin_replies.len(), 1);
        assert!(r.origin_replies[0].interpretation.outcome.is_accept());
        let views = r.host_views();
        assert_eq!(views.len(), 3);
        assert!(views.iter().all(|(_, h)| h.as_deref() == Some(b"h1.com")));
    }

    #[test]
    fn strict_middle_hop_stops_the_attack() {
        // Varnish forwards the ambiguous host, but a strict Apache hop in
        // the middle rejects it before it reaches the origin.
        let mut req = Request::builder();
        req.method(Method::Get)
            .target("/")
            .version(Version::Http11)
            .header("Host", "h1.com@h2.com");
        let bytes = req.build().to_bytes();

        let direct =
            run_multihop(&[product(ProductId::Varnish)], &product(ProductId::Weblogic), &bytes);
        assert!(direct.rejected_at.is_none());
        assert_eq!(
            direct.origin_replies[0].interpretation.host.as_deref(),
            Some(&b"h2.com"[..]),
            "the HoT gap exists on the direct chain"
        );

        let hardened = run_multihop(
            &[product(ProductId::Varnish), product(ProductId::Apache)],
            &product(ProductId::Weblogic),
            &bytes,
        );
        assert_eq!(hardened.rejected_at, Some(1), "apache blocks the ambiguous host");
        assert!(hardened.origin_replies.is_empty());
    }

    #[test]
    fn lenient_front_launders_ambiguity_for_a_strict_backend() {
        // §IV-B: a pair that looks safe can become exploitable when
        // chained. A ws-colon TE header is rejected by apache directly…
        let mut req = Request::builder();
        req.method(Method::Post)
            .target("/")
            .version(Version::Http11)
            .header("Host", "h1.com")
            .header_raw(b"Content-Length : 3".to_vec())
            .body(b"abc".to_vec());
        let bytes = req.build().to_bytes();
        let direct = Server::new(product(ProductId::Apache)).handle(&bytes);
        assert_eq!(direct.response.status.as_u16(), 400);

        // …but an IIS-style AcceptUse front would normalize-and-use while
        // an ATS front forwards it raw; chained ats→apache the origin still
        // rejects what the front accepted: a CPDoS-grade disagreement.
        let chained = run_multihop(&[product(ProductId::Ats)], &product(ProductId::Apache), &bytes);
        assert!(chained.rejected_at.is_none(), "ats accepts and forwards");
        assert_eq!(chained.origin_replies[0].response.status.as_u16(), 400);
    }

    #[test]
    fn client_response_carries_via_headers_from_every_hop() {
        let r = run_multihop(
            &[product(ProductId::Nginx), product(ProductId::Varnish)],
            &product(ProductId::Apache),
            &Request::get("h1.com").to_bytes(),
        );
        let resp = r.client_response.expect("round trip completes");
        assert_eq!(resp.status.as_u16(), 200);
        let vias: Vec<String> = resp
            .headers
            .all(b"Via")
            .map(|f| String::from_utf8_lossy(f.value()).into_owned())
            .collect();
        assert!(vias.iter().any(|v| v.contains("nginx")), "{vias:?}");
        assert!(vias.iter().any(|v| v.contains("varnish")), "{vias:?}");
    }

    #[test]
    fn origin_error_reaches_the_client_through_the_chain() {
        let mut req = Request::get("h1.com");
        req.set_version(b"1.1/HTTP"); // nginx repairs; apache rejects
        let r = run_multihop(
            &[product(ProductId::Nginx)],
            &product(ProductId::Apache),
            &req.to_bytes(),
        );
        let resp = r.client_response.expect("relayed");
        assert_eq!(resp.status.as_u16(), 400, "the CPDoS payload the client sees");
    }

    #[test]
    fn three_hop_chain_is_supported() {
        let r = run_multihop(
            &[product(ProductId::Haproxy), product(ProductId::Nginx), product(ProductId::Squid)],
            &product(ProductId::Iis),
            &Request::get("example.com").to_bytes(),
        );
        assert_eq!(r.hops.len(), 3);
        assert!(r.rejected_at.is_none());
        assert!(r.origin_replies[0].interpretation.outcome.is_accept());
    }
}
