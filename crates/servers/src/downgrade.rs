//! HTTP/2 → HTTP/1.1 downgrade front-end models.
//!
//! Production chains terminate HTTP/2 at the edge and speak HTTP/1.1 to
//! the origin. The translation — pseudo-headers back into a request
//! line and `Host`, `Content-Length` reconstructed from DATA frames,
//! connection-specific headers stripped (or not) — is itself a parser
//! with semantic gaps, and it sits *in front of* every h1 gap this
//! crate already models. A front end that forwards `:authority` but
//! also the h2 `host` header verbatim manufactures a duplicate-Host h1
//! request no h1 client could have sent past a strict edge.
//!
//! Like [`crate::profile::ParserProfile`], a [`DowngradeProfile`] is a
//! bundle of policy enums; three named profiles span the
//! strict-edge / pragmatic-relay / legacy-bridge space observed in real
//! deployments. `downgrade()` is a pure function of (profile, request):
//! its bytes are the determinism anchor for the sim-vs-tcp gate and for
//! replay.

use hdiff_h2::H2Request;

/// Which source wins the h1 `Host` header when `:authority` and an h2
/// `host` header disagree (RFC 9113 §8.3.1 makes `host` redundant; real
/// translators differ on what to do when both arrive).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum AuthorityPolicy {
    /// `Host` is synthesized from `:authority`; any h2 `host` header is
    /// dropped (nginx-style).
    AuthorityWins,
    /// An explicit h2 `host` header wins; `:authority` is used only as
    /// the fallback (legacy CGI-gateway reading).
    HostWins,
    /// `Host` is synthesized from `:authority` *and* the h2 `host`
    /// header is forwarded in place — the h1 stream carries two `Host`
    /// lines (the duplicate-Host downgrade gap).
    ForwardBoth,
}

/// How the h1 `Content-Length` is produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum ClPolicy {
    /// Recompute from the actual DATA-frame byte count; any client
    /// `content-length` header is dropped. The h1 header can never lie
    /// about the body this front saw.
    FromData,
    /// Forward the client's `content-length` header(s) verbatim and
    /// trust them; compute only when absent. A declared length that
    /// disagrees with the DATA bytes survives into the h1 stream — the
    /// core downgrade-smuggling reconstruction.
    ForwardHeader,
}

/// `transfer-encoding` in an h2 request (forbidden by RFC 9113 §8.2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum TePolicy {
    /// Reject the request with 400 (the MUST).
    Reject,
    /// Drop the header and forward the rest.
    Strip,
    /// Forward it verbatim — the h1 side now sees `Transfer-Encoding`
    /// it will honor, against a body the front framed by DATA length.
    Forward,
}

/// CR/LF/NUL in header values (and names/path) being translated onto a
/// line-delimited h1 wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum SanitizePolicy {
    /// Reject the request with 400.
    Reject,
    /// Strip the CR/LF/NUL bytes and forward the remainder.
    Strip,
    /// Forward verbatim: a header *value* becomes extra h1 header
    /// *lines* (CRLF injection through the downgrade).
    Forward,
}

/// `:path` handling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum PathPolicy {
    /// Emit the pseudo-header byte-for-byte.
    Verbatim,
    /// Resolve `.` / `..` segments before emitting (edge normalization;
    /// hides traversal from the back end — or disagrees with it).
    NormalizeDotSegments,
}

/// One downgrade front end: a named bundle of translation policies.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct DowngradeProfile {
    /// Stable identifier (used in findings, replay bundles, telemetry).
    pub name: String,
    pub authority: AuthorityPolicy,
    pub cl: ClPolicy,
    pub te: TePolicy,
    pub sanitize: SanitizePolicy,
    pub path: PathPolicy,
    /// Strip connection-specific headers (`connection`, `keep-alive`,
    /// `proxy-connection`, `upgrade`, `te`) per RFC 9113 §8.2.2. When
    /// false they ride through onto the h1 wire.
    pub strip_connection_headers: bool,
    /// `Via` token appended by this hop, if it advertises itself.
    pub via: Option<String>,
}

/// Result of translating one h2 request.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct DowngradeOutcome {
    /// The reconstructed HTTP/1.1 byte stream; `None` when the front
    /// rejected the request instead of forwarding.
    pub h1: Option<Vec<u8>>,
    /// `(status, reason)` when the front rejected.
    pub reject: Option<(u16, String)>,
    /// Translation decisions in processing order — stable strings the
    /// downgrade detection model keys on (`cl-mismatch …`,
    /// `authority-host-disagree …`, `te-forwarded`, `crlf-forwarded:…`).
    pub notes: Vec<String>,
}

impl DowngradeOutcome {
    pub fn is_forwarded(&self) -> bool {
        self.h1.is_some()
    }

    fn rejected(status: u16, reason: impl Into<String>, notes: Vec<String>) -> DowngradeOutcome {
        DowngradeOutcome { h1: None, reject: Some((status, reason.into())), notes }
    }
}

const CONNECTION_SPECIFIC: &[&[u8]] =
    &[b"connection", b"keep-alive", b"proxy-connection", b"upgrade", b"te"];

fn eq_ignore_case(a: &[u8], b: &[u8]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_ascii_lowercase() == *y)
}

fn has_ctl(bytes: &[u8]) -> bool {
    bytes.iter().any(|&b| b == b'\r' || b == b'\n' || b == 0)
}

fn strip_ctl(bytes: &[u8]) -> Vec<u8> {
    bytes.iter().copied().filter(|&b| b != b'\r' && b != b'\n' && b != 0).collect()
}

/// Resolves `.` and `..` segments of an origin-form path; the query
/// component is preserved untouched.
fn normalize_dot_segments(path: &[u8]) -> Vec<u8> {
    if !path.starts_with(b"/") {
        return path.to_vec();
    }
    let (p, query) = match path.iter().position(|&b| b == b'?') {
        Some(i) => (&path[..i], &path[i..]),
        None => (path, &b""[..]),
    };
    let mut segs: Vec<&[u8]> = Vec::new();
    for seg in p[1..].split(|&b| b == b'/') {
        match seg {
            b"." => {}
            b".." => {
                segs.pop();
            }
            s => segs.push(s),
        }
    }
    let mut out = Vec::with_capacity(path.len());
    if segs.is_empty() {
        out.push(b'/');
    } else {
        for s in &segs {
            out.push(b'/');
            out.extend_from_slice(s);
        }
    }
    // A trailing `.`/`..` segment resolves to a directory: keep the
    // trailing slash it implies.
    if (p.ends_with(b"/.") || p.ends_with(b"/..")) && !out.ends_with(b"/") {
        out.push(b'/');
    }
    out.extend_from_slice(query);
    out
}

impl DowngradeProfile {
    /// Strict RFC 9113 edge: authority wins, `Content-Length` recomputed
    /// from DATA, forbidden headers rejected or stripped, values
    /// sanitized by rejection, dot-segments normalized.
    pub fn edge() -> DowngradeProfile {
        DowngradeProfile {
            name: "h2-edge".into(),
            authority: AuthorityPolicy::AuthorityWins,
            cl: ClPolicy::FromData,
            te: TePolicy::Reject,
            sanitize: SanitizePolicy::Reject,
            path: PathPolicy::NormalizeDotSegments,
            strip_connection_headers: true,
            via: Some("1.1 h2-edge".into()),
        }
    }

    /// Pragmatic relay: trusts the client's `content-length`, prefers an
    /// explicit `host` header, strips rather than rejects.
    pub fn relay() -> DowngradeProfile {
        DowngradeProfile {
            name: "h2-relay".into(),
            authority: AuthorityPolicy::HostWins,
            cl: ClPolicy::ForwardHeader,
            te: TePolicy::Strip,
            sanitize: SanitizePolicy::Strip,
            path: PathPolicy::Verbatim,
            strip_connection_headers: true,
            via: Some("1.1 h2-relay".into()),
        }
    }

    /// Legacy bridge: forwards everything it can representation-convert,
    /// verbatim — duplicate Host, client CL, `transfer-encoding`, raw
    /// CR/LF in values all reach the h1 wire.
    pub fn legacy() -> DowngradeProfile {
        DowngradeProfile {
            name: "h2-legacy".into(),
            authority: AuthorityPolicy::ForwardBoth,
            cl: ClPolicy::ForwardHeader,
            te: TePolicy::Forward,
            sanitize: SanitizePolicy::Forward,
            path: PathPolicy::Verbatim,
            strip_connection_headers: false,
            via: None,
        }
    }

    /// Translates one parsed h2 request into an HTTP/1.1 byte stream
    /// (or a front-end rejection). Pure and deterministic.
    pub fn downgrade(&self, req: &H2Request) -> DowngradeOutcome {
        let mut notes: Vec<String> = Vec::new();

        // --- pseudo-headers -------------------------------------------------
        let mut method: Option<&[u8]> = None;
        let mut path: Option<&[u8]> = None;
        let mut authority: Option<&[u8]> = None;
        let mut seen_regular = false;
        for h in &req.headers {
            if h.name.starts_with(b":") {
                if seen_regular {
                    notes.push("pseudo-after-regular".into());
                    if self.sanitize == SanitizePolicy::Reject {
                        return DowngradeOutcome::rejected(
                            400,
                            "pseudo-header after regular header",
                            notes,
                        );
                    }
                }
                match h.name.as_slice() {
                    b":method" => method = Some(&h.value),
                    b":path" => path = Some(&h.value),
                    b":authority" => authority = Some(&h.value),
                    b":scheme" => {}
                    other => {
                        notes.push(format!("unknown-pseudo:{}", String::from_utf8_lossy(other)));
                        if self.sanitize == SanitizePolicy::Reject {
                            return DowngradeOutcome::rejected(400, "unknown pseudo-header", notes);
                        }
                    }
                }
            } else {
                seen_regular = true;
            }
        }
        let method = match method {
            Some(m) if !m.is_empty() => m,
            _ => return DowngradeOutcome::rejected(400, "missing :method", notes),
        };
        let path = match path {
            Some(p) if !p.is_empty() => p.to_vec(),
            _ => {
                if self.sanitize == SanitizePolicy::Reject {
                    return DowngradeOutcome::rejected(400, "missing :path", notes);
                }
                notes.push("path-defaulted".into());
                b"/".to_vec()
            }
        };

        // --- request target -------------------------------------------------
        let path = if has_ctl(&path) || path.contains(&b' ') {
            notes.push("path-unsafe".into());
            match self.sanitize {
                SanitizePolicy::Reject => {
                    return DowngradeOutcome::rejected(400, "unsafe byte in :path", notes)
                }
                SanitizePolicy::Strip => strip_ctl(&path),
                SanitizePolicy::Forward => path,
            }
        } else {
            path
        };
        let path = match self.path {
            PathPolicy::Verbatim => path,
            PathPolicy::NormalizeDotSegments => {
                let n = normalize_dot_segments(&path);
                if n != path {
                    notes.push("path-normalized".into());
                }
                n
            }
        };

        // --- Host -----------------------------------------------------------
        let host_headers = req.header_all("host");
        let effective_host: Vec<u8> = match self.authority {
            AuthorityPolicy::AuthorityWins | AuthorityPolicy::ForwardBoth => {
                match (authority, host_headers.first()) {
                    (Some(a), h) => {
                        if let Some(h) = h {
                            if !eq_ignore_case(h, &a.to_ascii_lowercase()) {
                                notes.push(format!(
                                    "authority-host-disagree host={}",
                                    String::from_utf8_lossy(h)
                                ));
                            }
                        }
                        a.to_vec()
                    }
                    (None, Some(h)) => h.to_vec(),
                    (None, None) => {
                        return DowngradeOutcome::rejected(400, "no :authority and no host", notes)
                    }
                }
            }
            AuthorityPolicy::HostWins => match (host_headers.first(), authority) {
                (Some(h), a) => {
                    if let Some(a) = a {
                        if !eq_ignore_case(h, &a.to_ascii_lowercase()) {
                            notes.push(format!(
                                "authority-host-disagree host={}",
                                String::from_utf8_lossy(h)
                            ));
                        }
                    }
                    h.to_vec()
                }
                (None, Some(a)) => a.to_vec(),
                (None, None) => {
                    return DowngradeOutcome::rejected(400, "no :authority and no host", notes)
                }
            },
        };
        let effective_host = if has_ctl(&effective_host) {
            notes.push("host-unsafe".into());
            match self.sanitize {
                SanitizePolicy::Reject => {
                    return DowngradeOutcome::rejected(400, "unsafe byte in host", notes)
                }
                SanitizePolicy::Strip => strip_ctl(&effective_host),
                SanitizePolicy::Forward => effective_host,
            }
        } else {
            effective_host
        };
        if self.authority == AuthorityPolicy::ForwardBoth
            && authority.is_some()
            && !host_headers.is_empty()
        {
            notes.push("host-duplicated".into());
        }

        // --- header translation --------------------------------------------
        let mut head: Vec<u8> = Vec::with_capacity(256 + req.body.len());
        head.extend_from_slice(method);
        head.push(b' ');
        head.extend_from_slice(&path);
        head.extend_from_slice(b" HTTP/1.1\r\nhost: ");
        head.extend_from_slice(&effective_host);
        head.extend_from_slice(b"\r\n");

        let declared_cl: Vec<&[u8]> = req.header_all("content-length");
        let mut cl_emitted = false;
        for h in &req.headers {
            if h.name.starts_with(b":") {
                continue;
            }
            let name = h.name.as_slice();
            if eq_ignore_case(name, b"host") && self.authority != AuthorityPolicy::ForwardBoth {
                continue; // folded into the synthesized Host line
            }
            if eq_ignore_case(name, b"transfer-encoding") {
                match self.te {
                    TePolicy::Reject => {
                        notes.push("te-rejected".into());
                        return DowngradeOutcome::rejected(
                            400,
                            "transfer-encoding in h2 request",
                            notes,
                        );
                    }
                    TePolicy::Strip => {
                        notes.push("te-stripped".into());
                        continue;
                    }
                    TePolicy::Forward => {
                        notes.push("te-forwarded".into());
                    }
                }
            } else if eq_ignore_case(name, b"content-length") {
                match self.cl {
                    ClPolicy::FromData => continue, // recomputed below
                    ClPolicy::ForwardHeader => {
                        if cl_emitted {
                            notes.push("cl-duplicated".into());
                        }
                        cl_emitted = true;
                    }
                }
            } else if self.strip_connection_headers
                && CONNECTION_SPECIFIC.iter().any(|c| eq_ignore_case(name, c))
            {
                notes.push(format!("conn-stripped:{}", String::from_utf8_lossy(name)));
                continue;
            }

            let mut value = h.value.clone();
            if has_ctl(&h.name) || has_ctl(&value) {
                match self.sanitize {
                    SanitizePolicy::Reject => {
                        notes.push(format!(
                            "field-rejected:{}",
                            String::from_utf8_lossy(&strip_ctl(&h.name))
                        ));
                        return DowngradeOutcome::rejected(400, "unsafe byte in field", notes);
                    }
                    SanitizePolicy::Strip => {
                        notes.push(format!(
                            "field-sanitized:{}",
                            String::from_utf8_lossy(&strip_ctl(&h.name))
                        ));
                        value = strip_ctl(&value);
                        if has_ctl(&h.name) {
                            continue; // a name with CR/LF cannot be repaired safely
                        }
                    }
                    SanitizePolicy::Forward => {
                        notes.push(format!(
                            "crlf-forwarded:{}",
                            String::from_utf8_lossy(&strip_ctl(&h.name))
                        ));
                    }
                }
            }
            head.extend_from_slice(&h.name);
            head.extend_from_slice(b": ");
            head.extend_from_slice(&value);
            head.extend_from_slice(b"\r\n");
        }

        // --- Content-Length reconstruction ----------------------------------
        let data_len = req.body.len();
        match self.cl {
            ClPolicy::FromData => {
                if !declared_cl.is_empty() {
                    let declared = String::from_utf8_lossy(declared_cl[0]).into_owned();
                    if declared != data_len.to_string() {
                        notes.push(format!("cl-recomputed declared={declared} data={data_len}"));
                    }
                }
                if data_len > 0 || !declared_cl.is_empty() {
                    head.extend_from_slice(format!("content-length: {data_len}\r\n").as_bytes());
                }
            }
            ClPolicy::ForwardHeader => {
                if let Some(first) = declared_cl.first() {
                    let declared = String::from_utf8_lossy(first).into_owned();
                    if declared != data_len.to_string() {
                        notes.push(format!("cl-mismatch declared={declared} data={data_len}"));
                    }
                } else if data_len > 0 {
                    head.extend_from_slice(format!("content-length: {data_len}\r\n").as_bytes());
                }
            }
        }

        if let Some(via) = &self.via {
            head.extend_from_slice(b"via: ");
            head.extend_from_slice(via.as_bytes());
            head.extend_from_slice(b"\r\n");
        }
        head.extend_from_slice(b"\r\n");
        head.extend_from_slice(&req.body);

        DowngradeOutcome { h1: Some(head), reject: None, notes }
    }
}

/// The downgrade front ends a campaign runs, in canonical order.
pub fn fronts() -> Vec<DowngradeProfile> {
    vec![DowngradeProfile::edge(), DowngradeProfile::relay(), DowngradeProfile::legacy()]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(bytes: &Option<Vec<u8>>) -> String {
        String::from_utf8_lossy(bytes.as_ref().unwrap()).into_owned()
    }

    #[test]
    fn plain_get_translates_cleanly_everywhere() {
        let req = H2Request::get("/index.html", "example.com");
        for f in fronts() {
            let out = f.downgrade(&req);
            assert!(out.is_forwarded(), "{} rejected a plain GET", f.name);
            let h1 = s(&out.h1);
            assert!(h1.starts_with("GET /index.html HTTP/1.1\r\nhost: example.com\r\n"), "{h1}");
            assert!(h1.ends_with("\r\n\r\n"));
        }
    }

    #[test]
    fn downgrade_is_deterministic() {
        let req = H2Request::post("/submit", "example.com", "abc")
            .with_header("x-a", "1")
            .with_header("x-b", "2");
        for f in fronts() {
            assert_eq!(f.downgrade(&req), f.downgrade(&req), "{}", f.name);
        }
    }

    #[test]
    fn authority_host_disagreement_splits_the_fronts() {
        let req = H2Request::get("/", "front.example").with_header("host", "back.example");
        let edge = DowngradeProfile::edge().downgrade(&req);
        let relay = DowngradeProfile::relay().downgrade(&req);
        let legacy = DowngradeProfile::legacy().downgrade(&req);
        assert!(s(&edge.h1).contains("host: front.example\r\n"));
        assert!(!s(&edge.h1).contains("back.example"));
        assert!(s(&relay.h1).contains("host: back.example\r\n"));
        let l = s(&legacy.h1);
        assert!(l.contains("host: front.example\r\n") && l.contains("host: back.example\r\n"));
        for out in [&edge, &relay, &legacy] {
            assert!(out.notes.iter().any(|n| n.starts_with("authority-host-disagree")));
        }
        assert!(legacy.notes.iter().any(|n| n == "host-duplicated"));
    }

    #[test]
    fn content_length_lie_survives_only_forwarding_fronts() {
        let req = H2Request::post("/up", "example.com", "AAAAAAAAAAA") // 11 bytes
            .with_header("content-length", "3");
        let edge = DowngradeProfile::edge().downgrade(&req);
        assert!(s(&edge.h1).contains("content-length: 11\r\n"));
        assert!(!s(&edge.h1).contains("content-length: 3"));
        assert!(edge.notes.iter().any(|n| n.starts_with("cl-recomputed")));

        let relay = DowngradeProfile::relay().downgrade(&req);
        assert!(s(&relay.h1).contains("content-length: 3\r\n"));
        assert!(relay.notes.iter().any(|n| n == "cl-mismatch declared=3 data=11"));
        // The full DATA bytes still follow the lying header.
        assert!(s(&relay.h1).ends_with("AAAAAAAAAAA"));
    }

    #[test]
    fn transfer_encoding_policy_split() {
        let req = H2Request::post("/up", "example.com", "0\r\n\r\n")
            .with_header("transfer-encoding", "chunked");
        let edge = DowngradeProfile::edge().downgrade(&req);
        assert_eq!(edge.reject.as_ref().unwrap().0, 400);
        assert!(edge.notes.iter().any(|n| n == "te-rejected"));

        let relay = DowngradeProfile::relay().downgrade(&req);
        assert!(relay.is_forwarded());
        assert!(!s(&relay.h1).contains("transfer-encoding"));
        assert!(relay.notes.iter().any(|n| n == "te-stripped"));

        let legacy = DowngradeProfile::legacy().downgrade(&req);
        assert!(s(&legacy.h1).contains("transfer-encoding: chunked\r\n"));
        assert!(legacy.notes.iter().any(|n| n == "te-forwarded"));
    }

    #[test]
    fn crlf_in_value_injects_only_through_legacy() {
        let req = H2Request::get("/", "example.com").with_header("x-note", "a\r\nx-smuggled: 1");
        let edge = DowngradeProfile::edge().downgrade(&req);
        assert_eq!(edge.reject.as_ref().unwrap().0, 400);

        let relay = DowngradeProfile::relay().downgrade(&req);
        assert!(s(&relay.h1).contains("x-note: ax-smuggled: 1\r\n"));
        assert!(relay.notes.iter().any(|n| n == "field-sanitized:x-note"));

        let legacy = DowngradeProfile::legacy().downgrade(&req);
        assert!(s(&legacy.h1).contains("x-note: a\r\nx-smuggled: 1\r\n"));
        assert!(legacy.notes.iter().any(|n| n == "crlf-forwarded:x-note"));
    }

    #[test]
    fn dot_segments_normalize_only_at_the_edge() {
        let req = H2Request::get("/static/../admin/panel", "example.com");
        let edge = DowngradeProfile::edge().downgrade(&req);
        assert!(s(&edge.h1).starts_with("GET /admin/panel HTTP/1.1\r\n"));
        assert!(edge.notes.iter().any(|n| n == "path-normalized"));
        let legacy = DowngradeProfile::legacy().downgrade(&req);
        assert!(s(&legacy.h1).starts_with("GET /static/../admin/panel HTTP/1.1\r\n"));
    }

    #[test]
    fn connection_specific_headers_strip_per_profile() {
        let req = H2Request::get("/", "example.com")
            .with_header("connection", "keep-alive")
            .with_header("upgrade", "websocket");
        let relay = DowngradeProfile::relay().downgrade(&req);
        let r = s(&relay.h1);
        assert!(!r.contains("connection:") && !r.contains("upgrade:"));
        assert!(relay.notes.iter().any(|n| n == "conn-stripped:connection"));
        let legacy = DowngradeProfile::legacy().downgrade(&req);
        let l = s(&legacy.h1);
        assert!(l.contains("connection: keep-alive\r\n") && l.contains("upgrade: websocket\r\n"));
    }

    #[test]
    fn missing_pseudo_headers_reject() {
        let req = H2Request { headers: vec![], body: Vec::new() };
        for f in fronts() {
            let out = f.downgrade(&req);
            assert_eq!(out.reject.as_ref().unwrap().0, 400, "{}", f.name);
        }
    }

    #[test]
    fn normalize_dot_segments_cases() {
        let cases: &[(&[u8], &[u8])] = &[
            (b"/a/b/c", b"/a/b/c"),
            (b"/a/./b", b"/a/b"),
            (b"/a/../b", b"/b"),
            (b"/../../x", b"/x"),
            (b"/a/b/..", b"/a/"),
            (b"/a/../../", b"/"),
            (b"/a/..?q=/../x", b"/?q=/../x"),
            (b"*", b"*"),
        ];
        for (input, want) in cases {
            assert_eq!(
                normalize_dot_segments(input),
                want.to_vec(),
                "{}",
                String::from_utf8_lossy(input)
            );
        }
    }
}
