//! The response path: how an implementation interprets and a proxy relays
//! an origin response.
//!
//! RFC 7230 places response-side MUSTs on intermediaries that mirror the
//! request-side ones — most prominently §3.2.4: *"A proxy or gateway that
//! receives an obs-fold in a response message … MUST either discard the
//! message and replace it with a 502 (Bad Gateway) response, or replace
//! each received obs-fold with one or more SP octets"*. This module
//! interprets raw response bytes under a [`ParserProfile`] and rebuilds
//! the upstream response a proxy would relay.

use hdiff_wire::ascii;
use hdiff_wire::chunked::decode_chunked;
use hdiff_wire::header::HeaderField;
use hdiff_wire::{Response, StatusCode};

use crate::engine::{ClassifiedHeader, FramingChoice};
use crate::fault::{FaultKind, FaultSession, FaultStage};
use crate::profile::{NamePolicy, ObsFoldPolicy, ParserProfile, WsColonPolicy};

/// How a response was handled on the relay path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelayAction {
    /// Relayed downstream as these bytes.
    Relayed(Vec<u8>),
    /// Discarded and replaced with a generated response (502 for malformed
    /// upstream messages, per RFC 7230 §3.2.4).
    Replaced(Response),
}

impl RelayAction {
    /// The relayed bytes, if any.
    pub fn relayed(&self) -> Option<&[u8]> {
        match self {
            RelayAction::Relayed(b) => Some(b),
            RelayAction::Replaced(_) => None,
        }
    }
}

fn find_crlf(s: &[u8]) -> Option<usize> {
    s.windows(2).position(|w| w == b"\r\n")
}

/// [`relay_response`] with a fault hook: a Relay-stage fault at this hop
/// corrupts what the hop sends downstream — the relayed bytes get reset
/// mid-stream (prefix only), truncated, or garbled. A `Replaced` action
/// is the hop's own locally-generated response and is not subject to
/// forwarding faults.
pub fn relay_response_faulted(
    profile: &ParserProfile,
    input: &[u8],
    faults: Option<&FaultSession<'_>>,
) -> RelayAction {
    if let Some(session) = faults {
        session.charge(1);
    }
    let action = relay_response(profile, input);
    let Some(decision) = faults.and_then(|s| s.decide(&profile.name, FaultStage::Relay)) else {
        return action;
    };
    match action {
        RelayAction::Relayed(bytes) => {
            let damaged = match decision.kind {
                FaultKind::ConnReset => bytes[..decision.reset_point(bytes.len())].to_vec(),
                FaultKind::TruncateResponse => {
                    // Cut half of the body, keeping the header section so
                    // the next hop sees a framing-vs-payload mismatch.
                    let body_start = bytes
                        .windows(4)
                        .position(|w| w == b"\r\n\r\n")
                        .map_or(bytes.len(), |p| p + 4);
                    let body_len = bytes.len() - body_start;
                    bytes[..body_start + body_len / 2].to_vec()
                }
                FaultKind::GarbleForward => decision.garble(&bytes),
                _ => bytes,
            };
            RelayAction::Relayed(damaged)
        }
        replaced => replaced,
    }
}

/// Interprets a raw response under `profile` and decides the relay action
/// a proxy with that profile would take.
pub fn relay_response(profile: &ParserProfile, input: &[u8]) -> RelayAction {
    let bad_gateway = |reason: &str| {
        let mut r = Response::with_body(StatusCode::BAD_GATEWAY, reason.to_string());
        r.headers.push("Server", profile.name.clone());
        RelayAction::Replaced(r)
    };

    let Some(line_end) = find_crlf(input) else {
        return bad_gateway("upstream response without status line");
    };
    let line = &input[..line_end];
    let mut pos = line_end + 2;

    let mut parts = line.splitn(3, |&b| b == b' ');
    let version = parts.next().unwrap_or_default();
    let status_b = parts.next().unwrap_or_default();
    let _reason = parts.next().unwrap_or_default();
    if !version.starts_with(b"HTTP/")
        || status_b.len() != 3
        || !status_b.iter().all(u8::is_ascii_digit)
    {
        return bad_gateway("malformed upstream status line");
    }

    // Header section with response-side policies.
    let mut headers: Vec<ClassifiedHeader> = Vec::new();
    let mut notes = Vec::new();
    loop {
        let Some(h_end) = find_crlf(&input[pos..]) else {
            return bad_gateway("upstream header section not terminated");
        };
        let raw = &input[pos..pos + h_end];
        pos += h_end + 2;
        if raw.is_empty() {
            break;
        }
        if raw[0] == b' ' || raw[0] == b'\t' {
            match profile.obs_fold {
                ObsFoldPolicy::Reject => {
                    // The RFC MUST: discard and replace with 502.
                    return bad_gateway("obs-fold in upstream response");
                }
                ObsFoldPolicy::MergeSp => {
                    if let Some(last) = headers.pop() {
                        let mut merged = last.field.into_raw();
                        merged.push(b' ');
                        merged.extend_from_slice(ascii::trim_ows(raw));
                        headers.push(ClassifiedHeader {
                            field: HeaderField::from_raw(merged),
                            canon: last.canon,
                        });
                        notes.push("merged response obs-fold".to_string());
                        continue;
                    }
                    return bad_gateway("leading whitespace before first response header");
                }
            }
        }
        let field = HeaderField::from_raw(raw.to_vec());
        let canon = if field.has_ws_before_colon() {
            match profile.ws_colon {
                // §3.2.4: a proxy MUST remove such whitespace from a
                // response before forwarding — every policy normalizes.
                WsColonPolicy::Reject | WsColonPolicy::AcceptUse | WsColonPolicy::TreatUnknown => {
                    notes.push("normalized ws-colon response header".to_string());
                    Some(String::from_utf8_lossy(field.name_trimmed()).to_ascii_lowercase())
                }
            }
        } else if ascii::is_token(field.name_raw()) {
            Some(String::from_utf8_lossy(field.name_raw()).to_ascii_lowercase())
        } else {
            match profile.name_policy {
                NamePolicy::Reject => return bad_gateway("invalid upstream header name"),
                NamePolicy::TreatUnknown => None,
                NamePolicy::Strip => Some(
                    String::from_utf8_lossy(
                        &field
                            .name_raw()
                            .iter()
                            .copied()
                            .filter(|&b| ascii::is_tchar(b))
                            .collect::<Vec<u8>>(),
                    )
                    .to_ascii_lowercase(),
                ),
            }
        };
        headers.push(ClassifiedHeader { field, canon });
    }

    // Framing: CL wins when present; otherwise chunked; otherwise to-EOF.
    let framing = response_framing(&headers);
    let body: Vec<u8> = match framing {
        FramingChoice::None => input[pos..].to_vec(),
        FramingChoice::ContentLength(n) => {
            let n = usize::try_from(n).unwrap_or(usize::MAX);
            if input.len() - pos < n {
                return bad_gateway("upstream body shorter than content-length");
            }
            input[pos..pos + n].to_vec()
        }
        FramingChoice::Chunked => match decode_chunked(&input[pos..], &profile.chunk_opts) {
            Ok(dec) => dec.payload,
            Err(e) => return bad_gateway(&format!("upstream chunked error: {e}")),
        },
    };

    // Rebuild: normalized headers minus hop-by-hop, body re-framed by CL.
    let status = StatusCode(status_b.iter().fold(0u16, |a, &b| a * 10 + u16::from(b - b'0')));
    let mut out = Vec::new();
    out.extend_from_slice(b"HTTP/1.1 ");
    out.extend_from_slice(status_b);
    out.extend_from_slice(b" ");
    out.extend_from_slice(status.reason().as_bytes());
    out.extend_from_slice(b"\r\n");
    for h in &headers {
        let skip = matches!(
            h.canon.as_deref(),
            Some("connection")
                | Some("keep-alive")
                | Some("transfer-encoding")
                | Some("content-length")
                | Some("proxy-authenticate")
        );
        if skip {
            continue;
        }
        match &h.canon {
            Some(name) if h.field.has_ws_before_colon() => {
                // Normalized spelling.
                out.extend_from_slice(name.as_bytes());
                out.extend_from_slice(b": ");
                out.extend_from_slice(h.field.value());
            }
            _ => out.extend_from_slice(h.field.raw()),
        }
        out.extend_from_slice(b"\r\n");
    }
    out.extend_from_slice(format!("Content-Length: {}\r\n", body.len()).as_bytes());
    out.extend_from_slice(b"Via: 1.1 ");
    out.extend_from_slice(profile.name.as_bytes());
    out.extend_from_slice(b"\r\n\r\n");
    out.extend_from_slice(&body);
    RelayAction::Relayed(out)
}

fn response_framing(headers: &[ClassifiedHeader]) -> FramingChoice {
    let te_chunked = headers.iter().any(|h| {
        h.canon.as_deref() == Some("transfer-encoding")
            && h.field.value().to_ascii_lowercase().windows(7).any(|w| w == b"chunked")
    });
    if te_chunked {
        return FramingChoice::Chunked;
    }
    for h in headers {
        if h.canon.as_deref() == Some("content-length") {
            if let Some(n) = ascii::parse_dec_strict(h.field.value()) {
                return FramingChoice::ContentLength(n);
            }
        }
    }
    FramingChoice::None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::products::{product, ProductId};
    use crate::profile::ParserProfile;

    #[test]
    fn clean_response_is_relayed_with_via() {
        let p = product(ProductId::Apache);
        let action = relay_response(
            &p,
            b"HTTP/1.1 200 OK\r\nContent-Type: text/plain\r\nContent-Length: 2\r\n\r\nhi",
        );
        let bytes = action.relayed().expect("relayed");
        let s = String::from_utf8_lossy(bytes);
        assert!(s.starts_with("HTTP/1.1 200 OK\r\n"), "{s}");
        assert!(s.contains("Via: 1.1 apache"));
        assert!(s.ends_with("hi"));
    }

    #[test]
    fn obs_fold_response_becomes_502_under_the_rfc_must() {
        // "MUST either discard the message and replace it with a 502 …"
        let p = ParserProfile::strict("strictproxy");
        let action =
            relay_response(&p, b"HTTP/1.1 200 OK\r\nX-Meta: a\r\n b\r\nContent-Length: 0\r\n\r\n");
        match action {
            RelayAction::Replaced(r) => assert_eq!(r.status, StatusCode::BAD_GATEWAY),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn obs_fold_response_merged_under_the_alternative() {
        // "… or replace each received obs-fold with one or more SP octets".
        let mut p = ParserProfile::strict("lenientproxy");
        p.obs_fold = ObsFoldPolicy::MergeSp;
        let action =
            relay_response(&p, b"HTTP/1.1 200 OK\r\nX-Meta: a\r\n b\r\nContent-Length: 0\r\n\r\n");
        let bytes = action.relayed().expect("relayed");
        assert!(
            String::from_utf8_lossy(bytes).contains("X-Meta: a b"),
            "{}",
            String::from_utf8_lossy(bytes)
        );
    }

    #[test]
    fn ws_colon_response_header_is_normalized() {
        // §3.2.4: "A proxy MUST remove any such whitespace from a response
        // message before forwarding the message downstream."
        let p = product(ProductId::Apache);
        let action =
            relay_response(&p, b"HTTP/1.1 200 OK\r\nX-Info : v\r\nContent-Length: 0\r\n\r\n");
        let bytes = action.relayed().expect("relayed");
        let s = String::from_utf8_lossy(bytes);
        assert!(s.contains("x-info: v"), "{s}");
        assert!(!s.contains("X-Info :"), "{s}");
    }

    #[test]
    fn chunked_upstream_body_is_reframed_with_content_length() {
        let p = product(ProductId::Nginx);
        let action = relay_response(
            &p,
            b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n5\r\nhello\r\n0\r\n\r\n",
        );
        let bytes = action.relayed().expect("relayed");
        let s = String::from_utf8_lossy(bytes);
        assert!(s.contains("Content-Length: 5"), "{s}");
        assert!(!s.to_lowercase().contains("transfer-encoding"), "{s}");
        assert!(s.ends_with("hello"));
    }

    #[test]
    fn malformed_upstream_status_line_becomes_502() {
        let p = product(ProductId::Squid);
        for bad in [&b"garbage\r\n\r\n"[..], b"HTTP/1.1 2x0 OK\r\n\r\n", b"no crlf at all"] {
            let action = relay_response(&p, bad);
            assert!(
                matches!(action, RelayAction::Replaced(ref r) if r.status == StatusCode::BAD_GATEWAY)
            );
        }
    }

    #[test]
    fn hop_by_hop_response_fields_are_stripped() {
        let p = product(ProductId::Haproxy);
        let action = relay_response(
            &p,
            b"HTTP/1.1 200 OK\r\nConnection: close\r\nKeep-Alive: timeout=5\r\nContent-Length: 0\r\n\r\n",
        );
        let bytes = action.relayed().expect("relayed");
        let s = String::from_utf8_lossy(bytes).to_lowercase();
        assert!(!s.contains("keep-alive"), "{s}");
    }
}
