//! The recording echo origin of Fig. 6.
//!
//! All proxies in the test workflow forward to this origin; it records the
//! exact bytes each forwarded message consisted of, for subsequent replay
//! against the real back-end profiles (workflow step 2).

use hdiff_wire::{Response, StatusCode};

/// A recording echo server.
#[derive(Debug, Clone, Default)]
pub struct EchoServer {
    records: Vec<Vec<u8>>,
}

impl EchoServer {
    /// Creates an empty echo server.
    pub fn new() -> EchoServer {
        EchoServer::default()
    }

    /// Receives one forwarded message, records it, and echoes it back in
    /// the response body.
    pub fn receive(&mut self, forwarded: &[u8]) -> Response {
        self.records.push(forwarded.to_vec());
        let mut r = Response::with_body(StatusCode::OK, forwarded.to_vec());
        r.headers.push("Server", "hdiff-echo");
        r
    }

    /// All recorded messages, in arrival order.
    pub fn records(&self) -> &[Vec<u8>] {
        &self.records
    }

    /// Number of recorded messages.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Clears the recording.
    pub fn clear(&mut self) {
        self.records.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_echoes() {
        let mut e = EchoServer::new();
        let r = e.receive(b"GET / HTTP/1.1\r\nHost: h\r\n\r\n");
        assert_eq!(r.status, StatusCode::OK);
        assert_eq!(r.body, b"GET / HTTP/1.1\r\nHost: h\r\n\r\n");
        assert_eq!(e.len(), 1);
        e.clear();
        assert!(e.is_empty());
    }
}
