//! Origin-server wrapper: pipelined stream handling plus echo-style
//! responses describing the interpretation (the paper's back-end feedback
//! "through application scripting languages, such as PHP, and ASPX").

use hdiff_wire::{Response, StatusCode};

use crate::engine::{interpret, Interpretation, Outcome};
use crate::fault::{FaultKind, FaultSession, FaultStage};
use crate::profile::ParserProfile;

/// The hop name under which origin-side faults are decided. One constant
/// for every back-end, so every proxy chain of the same case sees the
/// *same* injected origin fault — the precondition for comparing their
/// reactions.
pub const ORIGIN_HOP: &str = "origin";

/// One request's worth of server output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerReply {
    /// The interpretation that produced the response.
    pub interpretation: Interpretation,
    /// The response the server sends.
    pub response: Response,
}

/// A simulated origin server.
#[derive(Debug, Clone)]
pub struct Server {
    /// The behavioral profile.
    pub profile: ParserProfile,
}

impl Server {
    /// Wraps a profile as an origin server.
    pub fn new(profile: ParserProfile) -> Server {
        Server { profile }
    }

    /// The product name.
    pub fn name(&self) -> &str {
        &self.profile.name
    }

    /// Handles a single request (first message on the stream).
    pub fn handle(&self, input: &[u8]) -> ServerReply {
        let interpretation = interpret(&self.profile, input);
        let response = self.respond(&interpretation);
        ServerReply { interpretation, response }
    }

    /// Handles a full connection's bytes: consecutive (pipelined)
    /// messages until a reject, exhaustion, or the safety cap. This is
    /// where a smuggled second request becomes visible.
    pub fn handle_stream(&self, input: &[u8]) -> Vec<ServerReply> {
        self.handle_stream_faulted(input, None)
    }

    /// [`Server::handle_stream`] with a fault hook. An origin-stage fault
    /// (decided once per case under the [`ORIGIN_HOP`] key, so it is
    /// identical for every back-end and every proxy chain of the case)
    /// can reset the connection before any reply, stall the read, answer
    /// with a transient 503, or truncate the response body.
    pub fn handle_stream_faulted(
        &self,
        input: &[u8],
        faults: Option<&FaultSession<'_>>,
    ) -> Vec<ServerReply> {
        let fault = faults.and_then(|s| s.decide(ORIGIN_HOP, FaultStage::OriginRespond));
        match fault.map(|d| d.kind) {
            Some(FaultKind::ConnReset) => return Vec::new(),
            Some(FaultKind::StallRead) => {
                faults.expect("decision implies session").exhaust();
                return Vec::new();
            }
            _ => {}
        }
        let mut replies = Vec::new();
        let mut pos = 0usize;
        for _ in 0..16 {
            if pos >= input.len() {
                break;
            }
            if let Some(session) = faults {
                if !session.charge(1) {
                    break;
                }
            }
            let mut reply = self.handle(&input[pos..]);
            let consumed = reply.interpretation.consumed;
            let rejected = !reply.interpretation.outcome.is_accept();
            match fault.map(|d| d.kind) {
                Some(FaultKind::Transient5xx) => {
                    let mut r = Response::with_body(
                        StatusCode(503),
                        "injected transient upstream error".to_string(),
                    );
                    r.headers.push("Server", self.profile.name.clone());
                    reply.response = r;
                }
                Some(FaultKind::TruncateResponse) => {
                    let keep = reply.response.body.len() / 2;
                    reply.response.body.truncate(keep);
                }
                _ => {}
            }
            replies.push(reply);
            if rejected || consumed == 0 {
                break; // connection closes on error
            }
            pos += consumed;
        }
        replies
    }

    /// Builds the echo-style response: status from the outcome; on accept,
    /// a body reporting what the server understood (host, method, body
    /// length and payload) so the differential engine can read the
    /// back-end's perception (Fig. 6, step 3).
    fn respond(&self, i: &Interpretation) -> Response {
        match &i.outcome {
            Outcome::Accept => {
                let host = i.host.as_deref().unwrap_or(b"-");
                let mut body = Vec::new();
                body.extend_from_slice(b"host=");
                body.extend_from_slice(host);
                body.extend_from_slice(b";method=");
                body.extend_from_slice(&i.method);
                body.extend_from_slice(b";target=");
                body.extend_from_slice(&i.target);
                body.extend_from_slice(format!(";len={};data=", i.body.len()).as_bytes());
                body.extend_from_slice(&i.body);
                let mut r = Response::with_body(StatusCode::OK, body);
                r.headers.push("Server", self.profile.name.clone());
                r
            }
            Outcome::Reject { status, reason } => {
                let mut r = Response::with_body(StatusCode(*status), reason.clone());
                r.headers.push("Server", self.profile.name.clone());
                r
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{DuplicateClPolicy, ParserProfile};

    #[test]
    fn echoes_interpretation() {
        let s = Server::new(ParserProfile::strict("base"));
        let reply = s.handle(b"POST / HTTP/1.1\r\nHost: h1.com\r\nContent-Length: 3\r\n\r\nabc");
        assert_eq!(reply.response.status, StatusCode::OK);
        let body = String::from_utf8_lossy(&reply.response.body);
        assert!(body.contains("host=h1.com"), "{body}");
        assert!(body.contains("len=3"));
        assert!(body.contains("data=abc"));
    }

    #[test]
    fn rejections_carry_status_and_reason() {
        let s = Server::new(ParserProfile::strict("base"));
        let reply = s.handle(b"GET / HTTP/1.1\r\n\r\n");
        assert_eq!(reply.response.status, StatusCode::BAD_REQUEST);
        assert!(String::from_utf8_lossy(&reply.response.body).contains("host"));
    }

    #[test]
    fn pipelined_stream_splits_messages() {
        let s = Server::new(ParserProfile::strict("base"));
        let replies = s
            .handle_stream(b"GET /a HTTP/1.1\r\nHost: h\r\n\r\nGET /b HTTP/1.1\r\nHost: h\r\n\r\n");
        assert_eq!(replies.len(), 2);
        assert_eq!(replies[0].interpretation.target, b"/a");
        assert_eq!(replies[1].interpretation.target, b"/b");
    }

    #[test]
    fn smuggled_request_appears_as_second_message() {
        // A server that takes the LAST of two CLs (0) leaves the 10-byte
        // body in the stream; it must then be parsed as a second request.
        let mut p = ParserProfile::strict("lastcl");
        p.duplicate_cl = DuplicateClPolicy::Last;
        let s = Server::new(p);
        let replies = s.handle_stream(
            b"POST / HTTP/1.1\r\nHost: h\r\nContent-Length: 10\r\nContent-Length: 0\r\n\r\nGET /smuggled HTTP/1.1\r\nHost: h\r\n\r\n",
        );
        assert_eq!(replies.len(), 2, "{replies:?}");
        assert_eq!(replies[1].interpretation.target, b"/smuggled");
    }

    #[test]
    fn stream_stops_on_reject() {
        let s = Server::new(ParserProfile::strict("base"));
        let replies = s.handle_stream(
            b"GET / HTTP/1.1\r\nBad Header\r\n\r\nGET /b HTTP/1.1\r\nHost: h\r\n\r\n",
        );
        assert_eq!(replies.len(), 1);
        assert_eq!(replies[0].response.status, StatusCode::BAD_REQUEST);
    }
}
