//! The configurable interpretation engine: one request, one profile, one
//! [`Interpretation`].
//!
//! This function is the shared implementation of all ten product models.
//! Every branch that differs between real products is routed through a
//! [`ParserProfile`] policy, so a product's behavior is exactly its
//! profile — auditable data, not code.

use hdiff_wire::ascii;
use hdiff_wire::chunked::decode_chunked;
use hdiff_wire::header::HeaderField;
use hdiff_wire::uri::{interpret_host, Authority, RequestTarget};
use hdiff_wire::version::Version;

use crate::profile::{
    AbsUriPolicy, Chunked10Policy, ClTePolicy, ClValuePolicy, DuplicateClPolicy, ExpectPolicy,
    FatRequestPolicy, Http2TokenPolicy, MultiHostPolicy, NamePolicy, ObsFoldPolicy, ParserProfile,
    TeRecognition, VersionPolicy, WsColonPolicy,
};

/// Whether the implementation accepted the request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// Parsed and would be processed.
    Accept,
    /// Rejected with a status code and a reason (the log line).
    Reject {
        /// Response status code.
        status: u16,
        /// Human-readable reason.
        reason: String,
    },
}

impl Outcome {
    /// Convenience: is this an accept?
    pub fn is_accept(&self) -> bool {
        matches!(self, Outcome::Accept)
    }

    /// The response status this outcome produces (200 for accepts).
    pub fn status(&self) -> u16 {
        match self {
            Outcome::Accept => 200,
            Outcome::Reject { status, .. } => *status,
        }
    }
}

/// The body framing the implementation chose.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FramingChoice {
    /// No body.
    None,
    /// Content-Length framing with the effective value.
    ContentLength(u64),
    /// Chunked framing.
    Chunked,
}

/// One header field as the implementation classified it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassifiedHeader {
    /// The raw field.
    pub field: HeaderField,
    /// Canonical lowercase name if the implementation recognized the
    /// field; `None` for unknown/opaque fields it would pass through.
    pub canon: Option<String>,
}

/// The complete interpretation of one request under one profile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Interpretation {
    /// Accept or reject (+status).
    pub outcome: Outcome,
    /// Method token.
    pub method: Vec<u8>,
    /// Request-target bytes as received.
    pub target: Vec<u8>,
    /// Version as received.
    pub version: Version,
    /// The host identity the implementation acts on (cache key, vhost).
    pub host: Option<Vec<u8>>,
    /// The body payload as understood (chunked-decoded).
    pub body: Vec<u8>,
    /// The framing decision.
    pub framing: FramingChoice,
    /// Bytes of input consumed by this message (disagreement here is
    /// request smuggling).
    pub consumed: usize,
    /// Offset where the body starts (end of the header section); the raw
    /// body slice a transparent proxy forwards is
    /// `input[body_start..consumed]`.
    pub body_start: usize,
    /// Classified header fields in wire order.
    pub headers: Vec<ClassifiedHeader>,
    /// Whether chunked decoding needed repair (lenient options fired).
    pub repaired_chunked: bool,
    /// Diagnostic notes (the "logs" of Fig. 6).
    pub notes: Vec<String>,
}

impl Interpretation {
    fn reject(status: u16, reason: impl Into<String>) -> Interpretation {
        let reason = reason.into();
        Interpretation {
            outcome: Outcome::Reject { status, reason: reason.clone() },
            method: Vec::new(),
            target: Vec::new(),
            version: Version::Http11,
            host: None,
            body: Vec::new(),
            framing: FramingChoice::None,
            consumed: 0,
            body_start: 0,
            headers: Vec::new(),
            repaired_chunked: false,
            notes: vec![reason],
        }
    }

    /// All classified headers matching a canonical name.
    pub fn recognized<'a>(&'a self, canon: &'a str) -> impl Iterator<Item = &'a ClassifiedHeader> {
        self.headers.iter().filter(move |h| h.canon.as_deref() == Some(canon))
    }
}

fn find_crlf(s: &[u8]) -> Option<usize> {
    s.windows(2).position(|w| w == b"\r\n")
}

/// Interprets one request from `input` under `profile`.
pub fn interpret(profile: &ParserProfile, input: &[u8]) -> Interpretation {
    // Fault hook: a profile marked `always_panic` models an
    // implementation that crashes on input — the campaign runner must
    // catch, quarantine and keep going.
    assert!(
        !profile.always_panic,
        "injected parser panic in {} ({} input bytes)",
        profile.name,
        input.len()
    );
    let Some(line_end) = find_crlf(input) else {
        // HTTP/0.9 simple request: `GET /path\n`? Model strictly: no CRLF
        // at all means an incomplete message.
        return Interpretation::reject(400, "no request line terminator");
    };
    let line = &input[..line_end];
    let mut pos = line_end + 2;
    let mut notes = Vec::new();

    // ---- request line -------------------------------------------------
    let parts: Vec<&[u8]> = if profile.multi_space_request_line {
        line.split(|&b| b == b' ').filter(|p| !p.is_empty()).collect()
    } else {
        line.split(|&b| b == b' ').collect()
    };
    let (method, target_b, version_b): (&[u8], &[u8], &[u8]) = match parts.len() {
        2 => (parts[0], parts[1], b"HTTP/0.9"),
        3 => (parts[0], parts[1], parts[2]),
        _ => return Interpretation::reject(400, "malformed request line"),
    };
    if !ascii::is_token(method) {
        return Interpretation::reject(400, "invalid method token");
    }
    let version = Version::from_bytes(version_b);
    match &version {
        Version::Invalid(_) => match profile.version_policy {
            VersionPolicy::Strict => {
                return Interpretation::reject(400, "invalid http version");
            }
            VersionPolicy::AcceptAny | VersionPolicy::RepairAppend => {
                notes.push("accepted invalid version token".to_string());
            }
        },
        Version::Http09 => {
            if !profile.supports_09 {
                return Interpretation::reject(400, "http/0.9 not supported");
            }
            notes.push("http/0.9 request".to_string());
        }
        v if v.is_post_1_1() => match profile.http2_token {
            Http2TokenPolicy::Reject505 => {
                return Interpretation::reject(505, "major version not supported");
            }
            Http2TokenPolicy::TreatAs11 => notes.push("http/2 token treated as 1.1".to_string()),
        },
        _ => {}
    }

    // ---- header section -------------------------------------------------
    let mut headers: Vec<ClassifiedHeader> = Vec::new();
    let mut header_bytes = 0usize;
    loop {
        let Some(h_end) = find_crlf(&input[pos..]) else {
            return Interpretation::reject(400, "header section not terminated");
        };
        let raw = &input[pos..pos + h_end];
        pos += h_end + 2;
        if raw.is_empty() {
            break;
        }
        header_bytes += raw.len() + 2;
        if header_bytes > profile.max_header_bytes {
            return Interpretation::reject(431, "header section too large");
        }
        if raw[0] == b' ' || raw[0] == b'\t' {
            // obs-fold continuation.
            match profile.obs_fold {
                ObsFoldPolicy::Reject => {
                    return Interpretation::reject(400, "obsolete line folding");
                }
                ObsFoldPolicy::MergeSp => {
                    if let Some(last) = headers.pop() {
                        let mut merged = last.field.into_raw();
                        merged.push(b' ');
                        merged.extend_from_slice(ascii::trim_ows(raw));
                        let field = HeaderField::from_raw(merged);
                        let canon = last.canon.clone();
                        headers.push(ClassifiedHeader { field, canon });
                        notes.push("merged obs-fold".to_string());
                        continue;
                    }
                    return Interpretation::reject(400, "leading whitespace before first header");
                }
            }
        }
        let field = HeaderField::from_raw(raw.to_vec());
        let canon = classify_header(profile, &field, &mut notes);
        let canon = match canon {
            Ok(c) => c,
            Err(r) => return Interpretation::reject(400, r),
        };
        headers.push(ClassifiedHeader { field, canon });
    }

    // ---- host -------------------------------------------------------------
    let target = RequestTarget::classify(target_b);
    let host_fields: Vec<&ClassifiedHeader> =
        headers.iter().filter(|h| h.canon.as_deref() == Some("host")).collect();
    let header_host: Option<Vec<u8>> = match host_fields.len() {
        0 => None,
        1 => Some(host_fields[0].field.value().to_vec()),
        _ => match profile.multi_host {
            MultiHostPolicy::Reject => {
                return Interpretation::reject(400, "multiple host headers");
            }
            MultiHostPolicy::First => {
                notes.push("multiple host: using first".to_string());
                Some(host_fields[0].field.value().to_vec())
            }
            MultiHostPolicy::Last => {
                notes.push("multiple host: using last".to_string());
                Some(host_fields[host_fields.len() - 1].field.value().to_vec())
            }
        },
    };
    if header_host.is_none()
        && profile.host_required_11
        && version == Version::Http11
        && target.authority().is_none()
    {
        return Interpretation::reject(400, "missing host header");
    }
    let host = match (&target, &header_host) {
        (t, hh) if t.authority().is_some() => {
            let uri_host =
                Authority::parse(t.authority().expect("checked")).host.to_ascii_lowercase();
            match profile.abs_uri {
                AbsUriPolicy::PreferUri => Some(uri_host),
                AbsUriPolicy::PreferHost => match hh {
                    Some(v) => match interpret_host(v, &profile.host_parse) {
                        Ok(h) => Some(h),
                        Err(e) => return Interpretation::reject(400, format!("bad host: {e}")),
                    },
                    None => Some(uri_host),
                },
                AbsUriPolicy::RejectMismatch => match hh {
                    Some(v) => {
                        let h = match interpret_host(v, &profile.host_parse) {
                            Ok(h) => h,
                            Err(e) => return Interpretation::reject(400, format!("bad host: {e}")),
                        };
                        if h != uri_host {
                            return Interpretation::reject(400, "host mismatch with absolute-uri");
                        }
                        Some(h)
                    }
                    None => Some(uri_host),
                },
            }
        }
        (_, Some(v)) => match interpret_host(v, &profile.host_parse) {
            Ok(h) => {
                if profile.validate_host && !hdiff_wire::uri::is_strict_uri_host(&h) {
                    return Interpretation::reject(400, "invalid host value");
                }
                Some(h)
            }
            Err(e) => return Interpretation::reject(400, format!("bad host: {e}")),
        },
        _ => None,
    };

    // ---- framing -------------------------------------------------------------
    let framing = match decide_framing(profile, &headers, &version, &mut notes) {
        Ok(f) => f,
        Err((status, reason)) => return Interpretation::reject(status, reason),
    };

    // Fat GET/HEAD handling.
    let is_bodyless_method = method == b"GET" || method == b"HEAD";
    let framing = if is_bodyless_method && framing != FramingChoice::None {
        match profile.fat_request {
            FatRequestPolicy::AcceptParse => framing,
            FatRequestPolicy::IgnoreFraming => {
                notes.push("ignored body framing on GET/HEAD".to_string());
                FramingChoice::None
            }
            FatRequestPolicy::Reject => {
                return Interpretation::reject(400, "body on GET/HEAD not allowed");
            }
        }
    } else {
        framing
    };

    // ---- Expect ----------------------------------------------------------------
    if let Some(expect) = headers.iter().find(|h| h.canon.as_deref() == Some("expect")) {
        let value = expect.field.value().to_ascii_lowercase();
        let known = value == b"100-continue";
        if version != Version::Http10 {
            match profile.expect {
                ExpectPolicy::Strict => {
                    if !known {
                        return Interpretation::reject(417, "unknown expectation");
                    }
                }
                ExpectPolicy::Ignore => notes.push("expect ignored".to_string()),
                ExpectPolicy::RejectOnGet => {
                    if is_bodyless_method && framing == FramingChoice::None {
                        return Interpretation::reject(417, "expect on bodyless request");
                    }
                    if !known {
                        return Interpretation::reject(417, "unknown expectation");
                    }
                }
            }
        } else {
            notes.push("expect ignored under http/1.0".to_string());
        }
    }

    // ---- body -------------------------------------------------------------------
    let body_start = pos;
    let mut repaired = false;
    let (body, consumed) = match framing {
        FramingChoice::None => (Vec::new(), pos),
        FramingChoice::ContentLength(n) => {
            let n_usize = usize::try_from(n).unwrap_or(usize::MAX);
            if input.len() - pos < n_usize {
                return Interpretation::reject(408, "body shorter than content-length");
            }
            (input[pos..pos + n_usize].to_vec(), pos + n_usize)
        }
        FramingChoice::Chunked => match decode_chunked(&input[pos..], &profile.chunk_opts) {
            Ok(dec) => {
                repaired = dec.repaired;
                if dec.repaired {
                    notes.push("repaired malformed chunked body".to_string());
                }
                (dec.payload, pos + dec.consumed)
            }
            Err(e) => return Interpretation::reject(400, format!("chunked error: {e}")),
        },
    };

    Interpretation {
        outcome: Outcome::Accept,
        method: method.to_vec(),
        target: target_b.to_vec(),
        version,
        host,
        body,
        framing,
        consumed,
        body_start,
        headers,
        repaired_chunked: repaired,
        notes,
    }
}

/// Classifies one header line under the profile's name policies.
/// Returns `Ok(Some(lowercase_name))` when recognized, `Ok(None)` for
/// unknown/opaque fields, `Err(reason)` for rejections.
fn classify_header(
    profile: &ParserProfile,
    field: &HeaderField,
    notes: &mut Vec<String>,
) -> Result<Option<String>, String> {
    if field.raw().iter().all(|&b| b != b':') {
        return match profile.name_policy {
            NamePolicy::Reject => Err("header line without colon".to_string()),
            _ => Ok(None),
        };
    }
    if field.has_ws_before_colon() {
        match profile.ws_colon {
            WsColonPolicy::Reject => {
                return Err("whitespace before colon".to_string());
            }
            WsColonPolicy::AcceptUse => {
                notes.push(format!(
                    "trimmed whitespace before colon in {:?}",
                    String::from_utf8_lossy(field.name_trimmed())
                ));
                return Ok(Some(
                    String::from_utf8_lossy(field.name_trimmed()).to_ascii_lowercase(),
                ));
            }
            WsColonPolicy::TreatUnknown => return Ok(None),
        }
    }
    let name = field.name_raw();
    if ascii::is_token(name) {
        return Ok(Some(String::from_utf8_lossy(name).to_ascii_lowercase()));
    }
    match profile.name_policy {
        NamePolicy::Reject => Err("invalid header name".to_string()),
        NamePolicy::TreatUnknown => Ok(None),
        NamePolicy::Strip => {
            let stripped: Vec<u8> = name.iter().copied().filter(|&b| ascii::is_tchar(b)).collect();
            if stripped.is_empty() {
                Ok(None)
            } else {
                notes.push(format!(
                    "stripped junk from header name {:?}",
                    String::from_utf8_lossy(name)
                ));
                Ok(Some(String::from_utf8_lossy(&stripped).to_ascii_lowercase()))
            }
        }
    }
}

/// Recognizes a strictly valid TE list ending in chunked.
fn strict_te(values: &[Vec<u8>]) -> Result<bool, String> {
    let mut codings = Vec::new();
    for v in values {
        for part in v.split(|&b| b == b',') {
            let part = ascii::trim_ows(part).to_ascii_lowercase();
            if !part.is_empty() {
                codings.push(part);
            }
        }
    }
    if codings.is_empty() {
        return Err("empty transfer-encoding".to_string());
    }
    for c in &codings {
        if !matches!(c.as_slice(), b"chunked" | b"gzip" | b"deflate" | b"compress") {
            return Err(format!("unknown transfer coding {:?}", String::from_utf8_lossy(c)));
        }
    }
    if codings.last().map(Vec::as_slice) != Some(b"chunked") {
        return Err("final transfer coding is not chunked".to_string());
    }
    // RFC 7230 §4.1.1: chunked must not be applied more than once.
    if codings.iter().filter(|c| c.as_slice() == b"chunked").count() > 1 {
        return Err("chunked transfer coding applied twice".to_string());
    }
    Ok(true)
}

fn decide_framing(
    profile: &ParserProfile,
    headers: &[ClassifiedHeader],
    version: &Version,
    notes: &mut Vec<String>,
) -> Result<FramingChoice, (u16, String)> {
    let cl_fields: Vec<&ClassifiedHeader> =
        headers.iter().filter(|h| h.canon.as_deref() == Some("content-length")).collect();
    let te_fields: Vec<&ClassifiedHeader> =
        headers.iter().filter(|h| h.canon.as_deref() == Some("transfer-encoding")).collect();

    // Content-Length value(s).
    let mut cl_values: Vec<u64> = Vec::new();
    for f in &cl_fields {
        let raw = f.field.value();
        let parsed = match profile.cl_value {
            ClValuePolicy::Strict => {
                // A comma list of identical values is the RFC recovery
                // case — identical meaning identical *member bytes*, not
                // merely equal parsed numbers: `10, 010` is a byte-level
                // disagreement some real servers reject, and comparing
                // parsed values here would silently collapse it.
                let mut vals = Vec::new();
                let mut members: Vec<&[u8]> = Vec::new();
                for part in raw.split(|&b| b == b',') {
                    let member = ascii::trim_ows(part);
                    match ascii::parse_dec_strict(member) {
                        Some(v) => {
                            vals.push(v);
                            members.push(member);
                        }
                        None => {
                            return Err((
                                400,
                                format!(
                                    "invalid content-length {:?}",
                                    String::from_utf8_lossy(raw)
                                ),
                            ));
                        }
                    }
                }
                if members.windows(2).any(|w| w[0] != w[1]) {
                    return Err((400, "differing content-length list values".to_string()));
                }
                vals[0]
            }
            ClValuePolicy::Lenient => match ascii::parse_dec_lenient(raw) {
                Some(v) => {
                    if ascii::parse_dec_strict(raw).is_none() {
                        notes.push(format!(
                            "leniently parsed content-length {:?} as {v}",
                            String::from_utf8_lossy(raw)
                        ));
                    }
                    // List members that agree numerically but differ in
                    // spelling (`10, 010`): accepted, but the repair is
                    // recorded so the divergence stays observable.
                    let members: Vec<&[u8]> =
                        raw.split(|&b| b == b',').map(ascii::trim_ows).collect();
                    if members.len() > 1
                        && members.iter().all(|m| ascii::parse_dec_lenient(m) == Some(v))
                        && members.windows(2).any(|w| w[0] != w[1])
                    {
                        notes.push(format!(
                            "content-length list members differ textually {:?}",
                            String::from_utf8_lossy(raw)
                        ));
                    }
                    v
                }
                None => {
                    return Err((
                        400,
                        format!("unparseable content-length {:?}", String::from_utf8_lossy(raw)),
                    ));
                }
            },
        };
        cl_values.push(parsed);
    }
    let cl = if cl_values.is_empty() {
        None
    } else if cl_values.len() == 1 {
        Some(cl_values[0])
    } else {
        match profile.duplicate_cl {
            DuplicateClPolicy::Reject => {
                return Err((400, "multiple content-length headers".to_string()));
            }
            DuplicateClPolicy::RejectIfDiffer => {
                if cl_values.windows(2).any(|w| w[0] != w[1]) {
                    return Err((400, "differing content-length headers".to_string()));
                }
                Some(cl_values[0])
            }
            DuplicateClPolicy::First => {
                notes.push("multiple content-length: using first".to_string());
                Some(cl_values[0])
            }
            DuplicateClPolicy::Last => {
                notes.push("multiple content-length: using last".to_string());
                Some(*cl_values.last().expect("nonempty"))
            }
        }
    };

    // Transfer-Encoding recognition.
    let te_values: Vec<Vec<u8>> = te_fields.iter().map(|f| f.field.value().to_vec()).collect();
    let (te_chunked, te_strictly_valid) = if te_values.is_empty() {
        (false, false)
    } else {
        match strict_te(&te_values) {
            Ok(_) => (true, true),
            Err(reason) => match profile.te_recognition {
                TeRecognition::Strict => return Err((400, reason)),
                TeRecognition::ChunkedSubstring => {
                    let has = te_values
                        .iter()
                        .any(|v| v.to_ascii_lowercase().windows(7).any(|w| w == b"chunked"));
                    if has {
                        notes.push("leniently recognized chunked in malformed TE".to_string());
                    }
                    (has, false)
                }
                TeRecognition::IgnoreInvalid => {
                    notes.push("ignored malformed transfer-encoding".to_string());
                    (false, false)
                }
            },
        }
    };

    // HTTP/1.0 + chunked.
    let te_chunked = if te_chunked && version.is_pre_1_1() {
        match profile.chunked_in_10 {
            Chunked10Policy::Process => true,
            Chunked10Policy::Ignore => {
                notes.push("ignored chunked under http/1.0".to_string());
                false
            }
            Chunked10Policy::Reject => {
                return Err((400, "chunked not allowed under http/1.0".to_string()));
            }
        }
    } else {
        te_chunked
    };

    match (te_chunked, cl) {
        (true, Some(_)) => {
            if te_strictly_valid {
                match profile.cl_with_te {
                    ClTePolicy::Reject => {
                        Err((400, "content-length with transfer-encoding".to_string()))
                    }
                    ClTePolicy::TeWins => {
                        notes.push("te overrides cl".to_string());
                        Ok(FramingChoice::Chunked)
                    }
                    ClTePolicy::ClWins => {
                        notes.push("cl overrides te".to_string());
                        Ok(FramingChoice::ContentLength(cl.expect("checked")))
                    }
                }
            } else if profile.lenient_te_overrides_cl {
                notes.push("lenient te overrides cl".to_string());
                Ok(FramingChoice::Chunked)
            } else {
                Ok(FramingChoice::ContentLength(cl.expect("checked")))
            }
        }
        (true, None) => Ok(FramingChoice::Chunked),
        (false, Some(n)) => Ok(FramingChoice::ContentLength(n)),
        (false, None) => Ok(FramingChoice::None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::ParserProfile;

    fn strict() -> ParserProfile {
        ParserProfile::strict("baseline")
    }

    #[test]
    fn accepts_plain_get() {
        let i = interpret(&strict(), b"GET / HTTP/1.1\r\nHost: h1.com\r\n\r\n");
        assert!(i.outcome.is_accept());
        assert_eq!(i.host.as_deref(), Some(&b"h1.com"[..]));
        assert_eq!(i.framing, FramingChoice::None);
    }

    #[test]
    fn strict_rejects_ws_colon_but_lenient_uses_it() {
        let msg = b"POST / HTTP/1.1\r\nHost: h\r\nContent-Length : 3\r\n\r\nabc";
        let i = interpret(&strict(), msg);
        assert_eq!(i.outcome.status(), 400);

        let mut lenient = strict();
        lenient.ws_colon = WsColonPolicy::AcceptUse;
        let i = interpret(&lenient, msg);
        assert!(i.outcome.is_accept(), "{:?}", i.outcome);
        assert_eq!(i.body, b"abc");
        assert_eq!(i.framing, FramingChoice::ContentLength(3));
    }

    #[test]
    fn ws_colon_treat_unknown_leaves_body_unread() {
        let msg = b"POST / HTTP/1.1\r\nHost: h\r\nContent-Length : 3\r\n\r\nabc";
        let mut p = strict();
        p.ws_colon = WsColonPolicy::TreatUnknown;
        let i = interpret(&p, msg);
        assert!(i.outcome.is_accept());
        assert_eq!(i.framing, FramingChoice::None);
        // The 3 body bytes are left in the stream: the smuggling gap.
        assert_eq!(&msg[i.consumed..], b"abc");
    }

    #[test]
    fn junk_name_policies() {
        let msg = b"POST / HTTP/1.1\r\nHost: h\r\n\x0bTransfer-Encoding: chunked\r\n\r\n3\r\nabc\r\n0\r\n\r\n";
        let i = interpret(&strict(), msg);
        assert_eq!(i.outcome.status(), 400);

        let mut unknown = strict();
        unknown.name_policy = NamePolicy::TreatUnknown;
        let i = interpret(&unknown, msg);
        assert!(i.outcome.is_accept());
        assert_eq!(i.framing, FramingChoice::None, "junk TE must not frame");

        let mut strip = strict();
        strip.name_policy = NamePolicy::Strip;
        let i = interpret(&strip, msg);
        assert!(i.outcome.is_accept());
        assert_eq!(i.framing, FramingChoice::Chunked, "stripped name recognizes TE");
        assert_eq!(i.body, b"abc");
    }

    #[test]
    fn duplicate_cl_policies() {
        let msg = b"POST / HTTP/1.1\r\nHost: h\r\nContent-Length: 10\r\nContent-Length: 0\r\n\r\n0123456789";
        assert_eq!(interpret(&strict(), msg).outcome.status(), 400);

        let mut first = strict();
        first.duplicate_cl = DuplicateClPolicy::First;
        let i = interpret(&first, msg);
        assert_eq!(i.framing, FramingChoice::ContentLength(10));
        assert_eq!(i.body, b"0123456789");

        let mut last = strict();
        last.duplicate_cl = DuplicateClPolicy::Last;
        let i = interpret(&last, msg);
        assert_eq!(i.framing, FramingChoice::ContentLength(0));
        assert_eq!(&msg[i.consumed..], b"0123456789", "ten smuggled bytes");
    }

    #[test]
    fn lenient_cl_values() {
        let msg = b"POST / HTTP/1.1\r\nHost: h\r\nContent-Length: +6\r\n\r\nabcdef";
        assert_eq!(interpret(&strict(), msg).outcome.status(), 400);
        let mut lenient = strict();
        lenient.cl_value = ClValuePolicy::Lenient;
        let i = interpret(&lenient, msg);
        assert!(i.outcome.is_accept());
        assert_eq!(i.body, b"abcdef");
    }

    #[test]
    fn strict_cl_list_compares_member_bytes_not_values() {
        // Both members parse to 10, but the bytes disagree: strict must
        // reject rather than collapse the disagreement.
        let differ = b"POST / HTTP/1.1\r\nHost: h\r\nContent-Length: 10, 010\r\n\r\n0123456789";
        let i = interpret(&strict(), differ);
        assert_eq!(i.outcome.status(), 400);
        assert!(
            matches!(&i.outcome, Outcome::Reject { reason, .. }
                if reason.contains("differing content-length list values")),
            "{:?}",
            i.outcome
        );

        // Byte-identical members remain the accepted RFC recovery case.
        let same = b"POST / HTTP/1.1\r\nHost: h\r\nContent-Length: 10, 10\r\n\r\n0123456789";
        let i = interpret(&strict(), same);
        assert!(i.outcome.is_accept(), "{:?}", i.outcome);
        assert_eq!(i.framing, FramingChoice::ContentLength(10));
        assert!(i.notes.iter().all(|n| !n.contains("differ textually")), "{:?}", i.notes);
    }

    #[test]
    fn lenient_cl_list_records_textual_disagreement() {
        let differ = b"POST / HTTP/1.1\r\nHost: h\r\nContent-Length: 10, 010\r\n\r\n0123456789";
        let mut lenient = strict();
        lenient.cl_value = ClValuePolicy::Lenient;
        let i = interpret(&lenient, differ);
        assert!(i.outcome.is_accept(), "{:?}", i.outcome);
        assert_eq!(i.framing, FramingChoice::ContentLength(10));
        assert!(
            i.notes.iter().any(|n| n.contains("differ textually")),
            "expected a repair note, got {:?}",
            i.notes
        );

        // Identical spellings carry no such note.
        let same = b"POST / HTTP/1.1\r\nHost: h\r\nContent-Length: 10, 10\r\n\r\n0123456789";
        let i = interpret(&lenient, same);
        assert!(i.outcome.is_accept());
        assert!(i.notes.iter().all(|n| !n.contains("differ textually")), "{:?}", i.notes);
    }

    #[test]
    fn cl_plus_valid_te_policies() {
        let msg = b"POST / HTTP/1.1\r\nHost: h\r\nContent-Length: 3\r\nTransfer-Encoding: chunked\r\n\r\n3\r\nabc\r\n0\r\n\r\n";
        assert_eq!(interpret(&strict(), msg).outcome.status(), 400);

        let mut tewins = strict();
        tewins.cl_with_te = ClTePolicy::TeWins;
        let i = interpret(&tewins, msg);
        assert_eq!(i.framing, FramingChoice::Chunked);
        assert_eq!(i.body, b"abc");

        let mut clwins = strict();
        clwins.cl_with_te = ClTePolicy::ClWins;
        let i = interpret(&clwins, msg);
        assert_eq!(i.framing, FramingChoice::ContentLength(3));
        assert_eq!(i.body, b"3\r\n", "reads 3 bytes of the chunked framing");
    }

    #[test]
    fn tomcat_style_lenient_te_with_cl() {
        // CL + malformed TE (\x0bchunked): strict rejects the TE value;
        // substring recognition frames chunked and silently drops CL.
        let msg = b"POST / HTTP/1.1\r\nHost: h\r\nContent-Length: 10\r\nTransfer-Encoding:\x0bchunked\r\n\r\n3\r\nabc\r\n0\r\n\r\n";
        assert_eq!(interpret(&strict(), msg).outcome.status(), 400);

        let mut tomcatish = strict();
        tomcatish.te_recognition = TeRecognition::ChunkedSubstring;
        let i = interpret(&tomcatish, msg);
        assert!(i.outcome.is_accept(), "{:?}", i.outcome);
        assert_eq!(i.framing, FramingChoice::Chunked);
        assert_eq!(i.body, b"abc");
    }

    #[test]
    fn ignore_invalid_te_uses_cl() {
        let msg = b"POST / HTTP/1.1\r\nHost: h\r\nContent-Length: 3\r\nTransfer-Encoding: xchunked\r\n\r\nabcdef";
        let mut p = strict();
        p.te_recognition = TeRecognition::IgnoreInvalid;
        let i = interpret(&p, msg);
        assert!(i.outcome.is_accept());
        assert_eq!(i.framing, FramingChoice::ContentLength(3));
        assert_eq!(i.body, b"abc");
    }

    #[test]
    fn chunked_under_http10_policies() {
        let msg = b"POST / HTTP/1.0\r\nHost: h\r\nTransfer-Encoding: chunked\r\n\r\n3\r\nabc\r\n0\r\n\r\n";
        let mut process = strict();
        process.chunked_in_10 = Chunked10Policy::Process;
        assert_eq!(interpret(&process, msg).framing, FramingChoice::Chunked);

        let mut ignore = strict();
        ignore.chunked_in_10 = Chunked10Policy::Ignore;
        let i = interpret(&ignore, msg);
        assert_eq!(i.framing, FramingChoice::None);
        assert!(msg[i.consumed..].starts_with(b"3\r\n"), "chunked bytes smuggled");

        assert_eq!(interpret(&strict(), msg).outcome.status(), 400);
    }

    #[test]
    fn multiple_host_policies() {
        let msg = b"GET / HTTP/1.1\r\nHost: h1.com\r\nHost: h2.com\r\n\r\n";
        assert_eq!(interpret(&strict(), msg).outcome.status(), 400);

        let mut first = strict();
        first.multi_host = MultiHostPolicy::First;
        assert_eq!(interpret(&first, msg).host.as_deref(), Some(&b"h1.com"[..]));

        let mut last = strict();
        last.multi_host = MultiHostPolicy::Last;
        assert_eq!(interpret(&last, msg).host.as_deref(), Some(&b"h2.com"[..]));
    }

    #[test]
    fn missing_host_on_11() {
        assert_eq!(interpret(&strict(), b"GET / HTTP/1.1\r\n\r\n").outcome.status(), 400);
        assert!(interpret(&strict(), b"GET / HTTP/1.0\r\n\r\n").outcome.is_accept());
    }

    #[test]
    fn absolute_uri_policies() {
        let msg = b"GET http://h2.com/ HTTP/1.1\r\nHost: h1.com\r\n\r\n";
        let i = interpret(&strict(), msg); // strict prefers URI
        assert_eq!(i.host.as_deref(), Some(&b"h2.com"[..]));

        let mut prefer_host = strict();
        prefer_host.abs_uri = AbsUriPolicy::PreferHost;
        assert_eq!(interpret(&prefer_host, msg).host.as_deref(), Some(&b"h1.com"[..]));

        let mut reject = strict();
        reject.abs_uri = AbsUriPolicy::RejectMismatch;
        assert_eq!(interpret(&reject, msg).outcome.status(), 400);
    }

    #[test]
    fn invalid_host_values_and_transparent_parsing() {
        let msg = b"GET / HTTP/1.1\r\nHost: h1.com@h2.com\r\n\r\n";
        assert_eq!(interpret(&strict(), msg).outcome.status(), 400);

        let mut transparent = strict();
        transparent.host_parse = hdiff_wire::HostParseOptions::transparent();
        transparent.validate_host = false;
        let i = interpret(&transparent, msg);
        assert!(i.outcome.is_accept());
        assert_eq!(i.host.as_deref(), Some(&b"h1.com@h2.com"[..]));
    }

    #[test]
    fn invalid_version_policies() {
        let msg = b"GET / 1.1/HTTP\r\nHost: h\r\n\r\n";
        assert_eq!(interpret(&strict(), msg).outcome.status(), 400);
        let mut acc = strict();
        acc.version_policy = VersionPolicy::AcceptAny;
        assert!(interpret(&acc, msg).outcome.is_accept());
    }

    #[test]
    fn http09_support() {
        let msg = b"GET / HTTP/0.9\r\nHost: h\r\n\r\n";
        assert_eq!(interpret(&strict(), msg).outcome.status(), 400);
        let mut p = strict();
        p.supports_09 = true;
        assert!(interpret(&p, msg).outcome.is_accept());
    }

    #[test]
    fn http2_token_policies() {
        let msg = b"GET / HTTP/2.0\r\nHost: h\r\n\r\n";
        assert_eq!(interpret(&strict(), msg).outcome.status(), 505);
        let mut p = strict();
        p.http2_token = Http2TokenPolicy::TreatAs11;
        assert!(interpret(&p, msg).outcome.is_accept());
    }

    #[test]
    fn fat_get_policies() {
        let msg = b"GET / HTTP/1.1\r\nHost: h\r\nContent-Length: 17\r\n\r\nGET /x HTTP/1.1\r\n";
        let i = interpret(&strict(), msg);
        assert!(i.outcome.is_accept());
        assert_eq!(i.body.len(), 17);

        let mut ignore = strict();
        ignore.fat_request = FatRequestPolicy::IgnoreFraming;
        let i = interpret(&ignore, msg);
        assert_eq!(i.framing, FramingChoice::None);
        assert!(msg[i.consumed..].starts_with(b"GET /x"), "inner request smuggled");

        let mut reject = strict();
        reject.fat_request = FatRequestPolicy::Reject;
        assert_eq!(interpret(&reject, msg).outcome.status(), 400);
    }

    #[test]
    fn expect_policies() {
        let get = b"GET / HTTP/1.1\r\nHost: h\r\nExpect: 100-continue\r\n\r\n";
        assert!(interpret(&strict(), get).outcome.is_accept());

        let mut lighttpdish = strict();
        lighttpdish.expect = ExpectPolicy::RejectOnGet;
        assert_eq!(interpret(&lighttpdish, get).outcome.status(), 417);

        let unknown = b"GET / HTTP/1.1\r\nHost: h\r\nExpect: 100-continuce\r\n\r\n";
        assert_eq!(interpret(&strict(), unknown).outcome.status(), 417);
        let mut ignore = strict();
        ignore.expect = ExpectPolicy::Ignore;
        assert!(interpret(&ignore, unknown).outcome.is_accept());

        // HTTP/1.0: the expectation MUST be ignored.
        let old = b"GET / HTTP/1.0\r\nHost: h\r\nExpect: 100-continuce\r\n\r\n";
        assert!(interpret(&strict(), old).outcome.is_accept());
    }

    #[test]
    fn chunk_repair_flag_propagates() {
        let msg = b"POST / HTTP/1.1\r\nHost: h\r\nTransfer-Encoding: chunked\r\n\r\n1000000000000000a\r\nabc\r\n0\r\n\r\nxx";
        assert_eq!(interpret(&strict(), msg).outcome.status(), 400);
        let mut p = strict();
        p.chunk_opts = hdiff_wire::ChunkedDecodeOptions {
            overflow: hdiff_wire::OverflowBehavior::Wrap,
            truncate_short_final_chunk: true,
            ..hdiff_wire::ChunkedDecodeOptions::strict()
        };
        let i = interpret(&p, msg);
        assert!(i.outcome.is_accept());
        assert!(i.repaired_chunked);
        assert_eq!(i.body, b"abc\r\n0\r\n\r\n", "wrapped size 10 swallows framing");
    }

    #[test]
    fn obs_fold_policies() {
        let msg = b"GET / HTTP/1.1\r\nHost: h1.com\r\n\th2.com\r\n\r\n";
        assert_eq!(interpret(&strict(), msg).outcome.status(), 400);
        let mut merge = strict();
        merge.obs_fold = ObsFoldPolicy::MergeSp;
        merge.validate_host = false;
        merge.host_parse = hdiff_wire::HostParseOptions::transparent();
        let i = interpret(&merge, msg);
        assert!(i.outcome.is_accept());
        assert_eq!(i.host.as_deref(), Some(&b"h1.com h2.com"[..]));
    }

    #[test]
    fn oversized_headers_rejected() {
        let mut p = strict();
        p.max_header_bytes = 64;
        let big = vec![b'a'; 100];
        let mut msg = b"GET / HTTP/1.1\r\nHost: h\r\nX-Big: ".to_vec();
        msg.extend_from_slice(&big);
        msg.extend_from_slice(b"\r\n\r\n");
        assert_eq!(interpret(&p, &msg).outcome.status(), 431);
    }

    #[test]
    fn duplicated_chunked_te_rejected_strictly_but_recognized_by_substring() {
        // CVE-2020-1944 flavor: `Transfer-Encoding: chunked` twice.
        let msg = b"POST / HTTP/1.1\r\nHost: h\r\nTransfer-Encoding: chunked\r\nTransfer-Encoding: chunked\r\n\r\n3\r\nabc\r\n0\r\n\r\n";
        assert_eq!(interpret(&strict(), msg).outcome.status(), 400);
        let mut lenient = strict();
        lenient.te_recognition = TeRecognition::ChunkedSubstring;
        let i = interpret(&lenient, msg);
        assert!(i.outcome.is_accept());
        assert_eq!(i.framing, FramingChoice::Chunked);
        assert_eq!(i.body, b"abc");
    }

    #[test]
    fn consumed_marks_pipelined_boundary() {
        let msg = b"POST / HTTP/1.1\r\nHost: h\r\nContent-Length: 3\r\n\r\nabcGET /next HTTP/1.1\r\nHost: h\r\n\r\n";
        let i = interpret(&strict(), msg);
        assert!(i.outcome.is_accept());
        assert!(msg[i.consumed..].starts_with(b"GET /next"));
    }
}
