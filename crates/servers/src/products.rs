//! The ten product behavioral models (Table I).
//!
//! Each profile starts from the RFC-strict baseline and overrides exactly
//! the toggles for which the paper documents deviant behavior (§IV-B,
//! Table II, and the vendor-response section). The quirk inventory is
//! mirrored in `DESIGN.md` §7.

use hdiff_wire::uri::{AtSignPolicy, CommaPolicy, SlashPolicy};
use hdiff_wire::{ChunkedDecodeOptions, HostParseOptions, OverflowBehavior};

use crate::profile::{
    AbsUriPolicy, Chunked10Policy, ClValuePolicy, ExpectPolicy, ForwardVersion, Http2TokenPolicy,
    MultiHostPolicy, NamePolicy, ParserProfile, ProxyBehavior, RewriteAbsUri, TeRecognition,
    VersionPolicy, WsColonPolicy,
};

/// The ten modeled products.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ProductId {
    /// Microsoft IIS 10 (server).
    Iis,
    /// Apache Tomcat 9.0.29 (server).
    Tomcat,
    /// Oracle Weblogic 12.2.1.4.0 (server).
    Weblogic,
    /// Lighttpd 1.4.58 (server).
    Lighttpd,
    /// Apache httpd 2.4.47 (server + proxy).
    Apache,
    /// Nginx 1.21.0 (server + proxy).
    Nginx,
    /// Varnish 6.5.1 (proxy).
    Varnish,
    /// Squid 5.0.6 (proxy).
    Squid,
    /// Haproxy 2.4.0 (proxy).
    Haproxy,
    /// Apache Traffic Server 8.0.5 (proxy).
    Ats,
}

impl ProductId {
    /// All ten products, Table I order.
    pub const ALL: [ProductId; 10] = [
        ProductId::Iis,
        ProductId::Tomcat,
        ProductId::Weblogic,
        ProductId::Lighttpd,
        ProductId::Apache,
        ProductId::Nginx,
        ProductId::Varnish,
        ProductId::Squid,
        ProductId::Haproxy,
        ProductId::Ats,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            ProductId::Iis => "iis",
            ProductId::Tomcat => "tomcat",
            ProductId::Weblogic => "weblogic",
            ProductId::Lighttpd => "lighttpd",
            ProductId::Apache => "apache",
            ProductId::Nginx => "nginx",
            ProductId::Varnish => "varnish",
            ProductId::Squid => "squid",
            ProductId::Haproxy => "haproxy",
            ProductId::Ats => "ats",
        }
    }

    /// Looks an id up by name (case-insensitive).
    pub fn from_name(name: &str) -> Option<ProductId> {
        ProductId::ALL.into_iter().find(|p| p.name().eq_ignore_ascii_case(name))
    }
}

impl std::fmt::Display for ProductId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

fn lenient_rfc_host() -> HostParseOptions {
    // RFC-shaped resolution without rejection: userinfo split per RFC 3986,
    // last list element, truncate path junk.
    HostParseOptions {
        at_sign: AtSignPolicy::UseAfter,
        comma: CommaPolicy::TakeLast,
        slash: SlashPolicy::Truncate,
        allow_empty: true,
    }
}

/// Builds the behavioral profile for one product.
pub fn product(id: ProductId) -> ParserProfile {
    let mut p = ParserProfile::strict(id.name());
    match id {
        ProductId::Iis => {
            p.version = "10".into();
            // §IV-B: accepts whitespace between field-name and colon and
            // *uses* the header (CVE-2020-0645 class).
            p.ws_colon = WsColonPolicy::AcceptUse;
            p.name_policy = NamePolicy::TreatUnknown;
            // Absolute-URI authority wins over Host (the Varnish→IIS HoT
            // backend half).
            p.abs_uri = AbsUriPolicy::PreferUri;
            p.multi_space_request_line = true;
            p.max_header_bytes = 16 * 1024;
        }
        ProductId::Tomcat => {
            p.version = "9.0.29".into();
            // CVE-2019-17569/CVE-2020-1935 class: a malformed TE value
            // containing "chunked" is honored, silently overriding CL.
            p.te_recognition = TeRecognition::ChunkedSubstring;
            p.lenient_te_overrides_cl = true;
            // §IV-B: does not support chunked under HTTP/1.0 while others
            // do — the version-downgrade smuggling gap.
            p.chunked_in_10 = Chunked10Policy::Ignore;
            p.name_policy = NamePolicy::TreatUnknown;
            p.abs_uri = AbsUriPolicy::PreferUri;
            p.max_header_bytes = 8 * 1024;
        }
        ProductId::Weblogic => {
            p.version = "12.2.1.4.0".into();
            // CVE-2020-2867/14588/14589 class lenient parsing.
            p.ws_colon = WsColonPolicy::AcceptUse;
            p.name_policy = NamePolicy::Strip;
            p.obs_fold = crate::profile::ObsFoldPolicy::MergeSp;
            p.multi_host = MultiHostPolicy::Last;
            p.host_parse = lenient_rfc_host();
            p.validate_host = false;
            p.abs_uri = AbsUriPolicy::PreferHost;
            // §IV-B: the only server that answers HTTP/0.9-with-headers 200.
            p.supports_09 = true;
            p.chunked_in_10 = Chunked10Policy::Process;
            // Treats NUL bytes inside chunk-data as a framing error
            // (Table II, *NULL in chunk-data*).
            p.chunk_opts =
                ChunkedDecodeOptions { reject_nul_in_data: true, ..ChunkedDecodeOptions::strict() };
            p.max_header_bytes = 16 * 1024;
        }
        ProductId::Lighttpd => {
            p.version = "1.4.58".into();
            // Lenient Content-Length value parsing (HRS potential).
            p.cl_value = ClValuePolicy::Lenient;
            // §IV-B: directly rejects Expect on a bodyless GET (the
            // ATS→Lighttpd CPDoS pair half).
            p.expect = ExpectPolicy::RejectOnGet;
            p.fat_request = crate::profile::FatRequestPolicy::Reject;
            p.abs_uri = AbsUriPolicy::RejectMismatch;
            p.max_header_bytes = 8 * 1024;
        }
        ProductId::Apache => {
            p.version = "2.4.47".into();
            // RFC-strict parser in both roles; the CPDoS exposure is the
            // error-caching proxy below.
            p.abs_uri = AbsUriPolicy::RejectMismatch;
            p.max_header_bytes = 8 * 1024;
            let mut b = ProxyBehavior::strict();
            b.cache.store_errors = true;
            p.proxy = Some(b);
        }
        ProductId::Nginx => {
            p.version = "1.21.0".into();
            // §IV-B: repairs invalid HTTP-version by appending its own
            // version after the bad token (CPDoS).
            p.version_policy = VersionPolicy::RepairAppend;
            // Forwards unvalidated Host spellings verbatim (HoT front half
            // of the Nginx→Weblogic pair).
            p.host_parse = HostParseOptions::transparent();
            p.validate_host = false;
            p.abs_uri = AbsUriPolicy::RejectMismatch;
            p.max_header_bytes = 8 * 1024;
            let mut b = ProxyBehavior::strict();
            b.cache.store_errors = true;
            p.proxy = Some(b);
        }
        ProductId::Varnish => {
            p.version = "6.5.1".into();
            p.server_mode = false;
            // §IV-B: does not rewrite non-http-scheme absolute-URIs and
            // routes by the Host header (HoT front half).
            p.abs_uri = AbsUriPolicy::PreferHost;
            p.host_parse = HostParseOptions::transparent();
            p.validate_host = false;
            p.multi_host = MultiHostPolicy::First;
            // Whitespace-before-colon fields pass through unrecognized and
            // unnormalized (HRS front half).
            p.ws_colon = WsColonPolicy::TreatUnknown;
            p.name_policy = NamePolicy::TreatUnknown;
            p.expect = ExpectPolicy::Ignore;
            p.max_header_bytes = 32 * 1024;
            let mut b = ProxyBehavior::strict();
            b.rewrite_abs_uri = RewriteAbsUri::OnlyHttpScheme;
            b.normalize_ws_colon = false;
            b.cache.store_errors = true;
            p.proxy = Some(b);
        }
        ProductId::Squid => {
            p.version = "5.0.6".into();
            // §IV-B: repairs an overflowing chunk-size by wrapping (HRS).
            p.chunk_opts = ChunkedDecodeOptions {
                overflow: OverflowBehavior::Wrap,
                truncate_short_final_chunk: true,
                stop_at_invalid_digit: true,
                ..ChunkedDecodeOptions::strict()
            };
            p.version_policy = VersionPolicy::RepairAppend;
            // Squid is strict about Host and header names (Table I: no
            // HoT verdict): it rejects ambiguous spellings instead of
            // forwarding them.
            p.multi_host = MultiHostPolicy::Reject;
            p.name_policy = NamePolicy::Reject;
            p.server_mode = false;
            p.max_header_bytes = 64 * 1024;
            let mut b = ProxyBehavior::strict();
            b.reencode_repaired_chunked = true;
            b.cache.store_errors = true;
            p.proxy = Some(b);
        }
        ProductId::Haproxy => {
            p.version = "2.4.0".into();
            // §IV-B: chunk-size overflow repair (HRS), blind forwarding of
            // HTTP/0.9 (CPDoS), transparent absolute-URI and Host handling
            // (HoT).
            p.chunk_opts = ChunkedDecodeOptions {
                overflow: OverflowBehavior::Wrap,
                truncate_short_final_chunk: true,
                ..ChunkedDecodeOptions::strict()
            };
            p.supports_09 = true;
            p.http2_token = Http2TokenPolicy::TreatAs11;
            p.abs_uri = AbsUriPolicy::PreferHost;
            p.host_parse = HostParseOptions::transparent();
            p.validate_host = false;
            p.multi_host = MultiHostPolicy::First;
            p.name_policy = NamePolicy::TreatUnknown;
            p.chunked_in_10 = Chunked10Policy::Process;
            p.server_mode = false;
            p.max_header_bytes = 16 * 1024;
            let mut b = ProxyBehavior::strict();
            b.rewrite_abs_uri = RewriteAbsUri::Never;
            b.add_host_from_uri = false;
            b.forward_version = ForwardVersion::Blind;
            b.reencode_repaired_chunked = true;
            b.cache.store_errors = true;
            b.cache.store_pre11 = true;
            p.proxy = Some(b);
        }
        ProductId::Ats => {
            p.version = "8.0.5".into();
            // CVE-2020-1944 class: whitespace-before-colon fields are
            // *used*, and repeated/malformed Transfer-Encoding values that
            // still contain `chunked` are honored and forwarded.
            p.ws_colon = WsColonPolicy::AcceptUse;
            p.te_recognition = TeRecognition::ChunkedSubstring;
            p.cl_value = ClValuePolicy::Lenient;
            p.version_policy = VersionPolicy::RepairAppend;
            p.expect = ExpectPolicy::Ignore;
            p.server_mode = false;
            p.max_header_bytes = 64 * 1024;
            let mut b = ProxyBehavior::strict();
            b.forward_expect_on_get = true;
            b.normalize_ws_colon = false;
            b.cache.store_errors = true;
            p.proxy = Some(b);
        }
    }
    p
}

/// All ten profiles.
pub fn products() -> Vec<ParserProfile> {
    ProductId::ALL.into_iter().map(product).collect()
}

/// The six proxy (front-end) profiles of Fig. 6.
pub fn proxies() -> Vec<ParserProfile> {
    products().into_iter().filter(ParserProfile::is_proxy).collect()
}

/// The six back-end server profiles of Fig. 6.
pub fn backends() -> Vec<ParserProfile> {
    products().into_iter().filter(|p| p.server_mode).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{interpret, FramingChoice};

    #[test]
    fn table1_modes() {
        let proxies: Vec<_> = proxies().iter().map(|p| p.name.clone()).collect();
        assert_eq!(proxies, vec!["apache", "nginx", "varnish", "squid", "haproxy", "ats"]);
        let backends: Vec<_> = backends().iter().map(|p| p.name.clone()).collect();
        assert_eq!(backends, vec!["iis", "tomcat", "weblogic", "lighttpd", "apache", "nginx"]);
        assert_eq!(products().len(), 10);
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(ProductId::from_name("VARNISH"), Some(ProductId::Varnish));
        assert_eq!(ProductId::from_name("caddy"), None);
    }

    #[test]
    fn iis_uses_ws_colon_content_length() {
        let msg = b"POST / HTTP/1.1\r\nHost: h\r\nContent-Length : 3\r\n\r\nabc";
        let i = interpret(&product(ProductId::Iis), msg);
        assert!(i.outcome.is_accept());
        assert_eq!(i.framing, FramingChoice::ContentLength(3));
        // Strict apache rejects the same message.
        assert_eq!(interpret(&product(ProductId::Apache), msg).outcome.status(), 400);
    }

    #[test]
    fn tomcat_honors_malformed_te_over_cl() {
        let msg = b"POST / HTTP/1.1\r\nHost: h\r\nContent-Length: 10\r\nTransfer-Encoding:\x0bchunked\r\n\r\n3\r\nabc\r\n0\r\n\r\n";
        let i = interpret(&product(ProductId::Tomcat), msg);
        assert!(i.outcome.is_accept(), "{:?}", i.outcome);
        assert_eq!(i.framing, FramingChoice::Chunked);
        assert_eq!(interpret(&product(ProductId::Apache), msg).outcome.status(), 400);
    }

    #[test]
    fn tomcat_ignores_chunked_under_10_while_weblogic_processes() {
        let msg = b"POST / HTTP/1.0\r\nHost: h\r\nTransfer-Encoding: chunked\r\n\r\n3\r\nabc\r\n0\r\n\r\n";
        let t = interpret(&product(ProductId::Tomcat), msg);
        assert_eq!(t.framing, FramingChoice::None);
        let w = interpret(&product(ProductId::Weblogic), msg);
        assert_eq!(w.framing, FramingChoice::Chunked);
    }

    #[test]
    fn weblogic_answers_http09() {
        let msg = b"GET / HTTP/0.9\r\nHost: h\r\n\r\n";
        assert!(interpret(&product(ProductId::Weblogic), msg).outcome.is_accept());
        for other in [
            ProductId::Iis,
            ProductId::Tomcat,
            ProductId::Lighttpd,
            ProductId::Apache,
            ProductId::Nginx,
        ] {
            assert!(
                !interpret(&product(other), msg).outcome.is_accept(),
                "{other} should reject 0.9"
            );
        }
    }

    #[test]
    fn weblogic_strips_junk_names_and_takes_last_host() {
        let msg = b"GET / HTTP/1.1\r\n\x0bHost: h1.com\r\nHost: h2.com\r\n\r\n";
        let i = interpret(&product(ProductId::Weblogic), msg);
        assert!(i.outcome.is_accept());
        assert_eq!(i.host.as_deref(), Some(&b"h2.com"[..]));
    }

    #[test]
    fn lighttpd_lenient_cl_and_expect_on_get() {
        let msg = b"POST / HTTP/1.1\r\nHost: h\r\nContent-Length: +6\r\n\r\nabcdef";
        assert!(interpret(&product(ProductId::Lighttpd), msg).outcome.is_accept());
        let expect = b"GET / HTTP/1.1\r\nHost: h\r\nExpect: 100-continue\r\n\r\n";
        assert_eq!(interpret(&product(ProductId::Lighttpd), expect).outcome.status(), 417);
        assert!(interpret(&product(ProductId::Apache), expect).outcome.is_accept());
    }

    #[test]
    fn varnish_prefers_host_header_on_foreign_scheme() {
        let msg = b"GET test://h2.com/?a=1 HTTP/1.1\r\nHost: h1.com\r\n\r\n";
        let v = interpret(&product(ProductId::Varnish), msg);
        assert_eq!(v.host.as_deref(), Some(&b"h1.com"[..]));
        let iis = interpret(&product(ProductId::Iis), msg);
        assert_eq!(iis.host.as_deref(), Some(&b"h2.com"[..]), "the HoT gap");
    }

    #[test]
    fn squid_and_haproxy_repair_overflowing_chunks() {
        let msg = b"POST / HTTP/1.1\r\nHost: h\r\nTransfer-Encoding: chunked\r\n\r\n1000000000000000a\r\nabc\r\n0\r\n\r\n";
        for id in [ProductId::Squid, ProductId::Haproxy] {
            let i = interpret(&product(id), msg);
            assert!(i.outcome.is_accept(), "{id}");
            assert!(i.repaired_chunked, "{id}");
        }
        assert_eq!(interpret(&product(ProductId::Apache), msg).outcome.status(), 400);
    }

    #[test]
    fn nginx_accepts_invalid_version_for_repair() {
        let msg = b"GET /?a=b 1.1/HTTP\r\nHost: h\r\n\r\n";
        assert!(interpret(&product(ProductId::Nginx), msg).outcome.is_accept());
        assert_eq!(interpret(&product(ProductId::Apache), msg).outcome.status(), 400);
    }

    #[test]
    fn every_product_accepts_a_plain_request() {
        let msg = b"GET / HTTP/1.1\r\nHost: example.com\r\n\r\n";
        for p in products() {
            let i = interpret(&p, msg);
            assert!(i.outcome.is_accept(), "{}: {:?}", p.name, i.outcome);
            assert_eq!(i.host.as_deref(), Some(&b"example.com"[..]), "{}", p.name);
        }
    }
}
