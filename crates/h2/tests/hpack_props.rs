//! Property tests for the HPACK layer (RFC 7541).
//!
//! Round-trip: any header list, under any encoder configuration
//! (Huffman on/off, incremental indexing on/off, sensitive fields,
//! table resizes, multi-block encoder/decoder state continuity),
//! decodes back to the exact (name, value) sequence. Rejection: the
//! decoder never panics on arbitrary bytes and reports every failure
//! as a typed [`HpackError`].

use hdiff_h2::hpack::{
    decode_int, decode_str, encode_int, encode_str, Decoder, Encoder, Header, HpackError,
};
use proptest::prelude::*;
use proptest::TestRng;

/// Strategy over header lists of up to `max` entries. Names mix
/// static-table hits, lowercase tokens, and raw printable bytes — each
/// exercises a different wire representation; values are arbitrary
/// octets (Huffman must carry all 256); a quarter of the fields are
/// marked sensitive (never-indexed literals).
#[derive(Debug, Clone, Copy)]
struct HeaderLists {
    max: usize,
}

impl Strategy for HeaderLists {
    type Value = Vec<Header>;

    fn generate(&self, rng: &mut TestRng) -> Vec<Header> {
        let n = rng.in_range(0, self.max);
        (0..n)
            .map(|_| {
                let name: Vec<u8> = match rng.below(5) {
                    0 => b":method".to_vec(),
                    1 => b"content-length".to_vec(),
                    2 => b"accept-encoding".to_vec(),
                    3 => (0..rng.in_range(1, 12))
                        .map(|i| {
                            if i == 0 {
                                b'a' + rng.below(26) as u8
                            } else {
                                b"abcdefghijklmnopqrstuvwxyz0123456789-"[rng.below(37) as usize]
                            }
                        })
                        .collect(),
                    _ => (0..rng.in_range(1, 12)).map(|_| 0x21 + rng.below(0x5e) as u8).collect(),
                };
                let value: Vec<u8> =
                    (0..rng.in_range(0, 40)).map(|_| rng.below(256) as u8).collect();
                if rng.below(4) == 0 {
                    Header::sensitive(name, value)
                } else {
                    Header::new(name, value)
                }
            })
            .collect()
    }
}

fn pairs(headers: &[Header]) -> Vec<(Vec<u8>, Vec<u8>)> {
    headers.iter().map(|h| (h.name.clone(), h.value.clone())).collect()
}

proptest! {
    /// Any block, any encoder configuration: decode returns the exact
    /// header sequence.
    #[test]
    fn blocks_round_trip(
        headers in HeaderLists { max: 24 },
        use_huffman in any::<bool>(),
        index_literals in any::<bool>(),
    ) {
        let mut enc = Encoder::default();
        enc.use_huffman = use_huffman;
        enc.index_literals = index_literals;
        let mut block = Vec::new();
        enc.encode_block(&headers, &mut block);
        let decoded = Decoder::default().decode_block(&block).expect("round-trip decodes");
        prop_assert_eq!(pairs(&decoded), pairs(&headers));
    }

    /// Encoder and decoder dynamic tables stay in lockstep across many
    /// blocks on one connection, including a mid-stream table resize.
    #[test]
    fn connection_state_stays_synchronized(
        block_lists in proptest::collection::vec(HeaderLists { max: 8 }, 1..6),
        resize_at in 0usize..6,
        new_size in 0usize..512,
    ) {
        let mut enc = Encoder::default();
        let mut dec = Decoder::default();
        for (i, headers) in block_lists.iter().enumerate() {
            let mut block = Vec::new();
            if i == resize_at {
                enc.resize(new_size, &mut block);
            }
            enc.encode_block(headers, &mut block);
            let decoded = dec.decode_block(&block).expect("stateful decode");
            prop_assert_eq!(pairs(&decoded), pairs(headers));
            prop_assert_eq!(enc.table().size(), dec.table().size(), "table size skew");
            prop_assert_eq!(enc.table().len(), dec.table().len(), "table entry skew");
        }
    }

    /// The §5.1 integer primitive round-trips at every legal prefix.
    #[test]
    fn integers_round_trip(value in any::<u64>(), prefix in 1u8..=8) {
        let mut buf = Vec::new();
        encode_int(value, prefix, 0, &mut buf);
        let (decoded, consumed) = decode_int(&buf, 0, prefix).expect("integer decodes");
        prop_assert_eq!(decoded, value);
        prop_assert_eq!(consumed, buf.len());
    }

    /// The §5.2 string primitive round-trips, Huffman or plain.
    #[test]
    fn strings_round_trip(
        bytes in proptest::collection::vec(any::<u8>(), 0..128),
        huffman in any::<bool>(),
    ) {
        let mut buf = Vec::new();
        encode_str(&bytes, huffman, &mut buf);
        let (decoded, consumed) = decode_str(&buf, 0, 64 * 1024).expect("string decodes");
        prop_assert_eq!(decoded, bytes);
        prop_assert_eq!(consumed, buf.len());
    }

    /// Arbitrary bytes never panic the decoder; failures are typed.
    #[test]
    fn garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = Decoder::default().decode_block(&bytes);
    }

    /// Any prefix of a valid block either decodes (a field boundary) or
    /// fails cleanly — never panics, never fabricates headers that were
    /// not in the original list.
    #[test]
    fn truncated_blocks_fail_cleanly(
        headers in HeaderLists { max: 12 },
        cut_ppm in 0u32..1_000_000,
    ) {
        let mut block = Vec::new();
        Encoder::default().encode_block(&headers, &mut block);
        let cut = (block.len() as u64 * u64::from(cut_ppm) / 1_000_000) as usize;
        if let Ok(decoded) = Decoder::default().decode_block(&block[..cut]) {
            prop_assert!(decoded.len() <= headers.len());
            prop_assert_eq!(pairs(&decoded), pairs(&headers[..decoded.len()]));
        }
    }
}

#[test]
fn rejections_are_typed() {
    // Indexed field whose integer needs continuation octets that never
    // arrive.
    assert_eq!(Decoder::default().decode_block(&[0xff]), Err(HpackError::TruncatedInteger));
    // Eleven continuation octets exceed what any u64 needs.
    let mut runaway = vec![0xff];
    runaway.extend(std::iter::repeat_n(0x80, 11));
    runaway.push(0x00);
    assert_eq!(Decoder::default().decode_block(&runaway), Err(HpackError::IntegerOverflow));
    // Index 0 is a protocol error.
    assert_eq!(Decoder::default().decode_block(&[0x80]), Err(HpackError::InvalidIndex(0)));
    // An index far past static + dynamic space.
    assert!(matches!(
        Decoder::default().decode_block(&[0xc5]), // index 69, empty dynamic table
        Err(HpackError::InvalidIndex(69))
    ));
    // Literal whose declared value length runs past the block.
    let mut truncated = Vec::new();
    truncated.push(0x00); // literal with incremental indexing, new name
    encode_str(b"x", false, &mut truncated);
    truncated.push(0x7e); // value declares 126 plain bytes, none follow
    assert_eq!(
        Decoder::default().decode_block(&truncated),
        Err(HpackError::TruncatedString { declared: 126, available: 0 })
    );
    // Oversized string against a configured cap.
    let mut block = Vec::new();
    Encoder::default().encode_block(&[Header::new("x-long", vec![b'a'; 64])], &mut block);
    assert!(matches!(
        Decoder::default().with_max_string(8).decode_block(&block),
        Err(HpackError::StringTooLong { max: 8, .. })
    ));
    // Dynamic-table size update above the advertised maximum.
    let mut update = Vec::new();
    encode_int(4097, 5, 0x20, &mut update);
    assert_eq!(
        Decoder::new(4096).decode_block(&update),
        Err(HpackError::TableSizeOverflow { requested: 4097, max: 4096 })
    );
}
