//! HTTP/2 framing and HPACK for HDiff's downgrade-desync campaigns.
//!
//! Real production chains terminate HTTP/2 at the edge and *downgrade*
//! to HTTP/1.1 upstream; the translation is a semantic-gap surface the
//! paper's pure-h1 catalog predates. This crate supplies the protocol
//! substrate for interrogating it, zero-dependency like the rest of the
//! workspace:
//!
//! * [`frame`] — the 9-octet frame header codec, the frame-type subset a
//!   request/response exchange needs (DATA, HEADERS, CONTINUATION,
//!   SETTINGS, RST_STREAM, GOAWAY, WINDOW_UPDATE), and the client
//!   connection preface.
//! * [`huffman`] — RFC 7541 Appendix B coding, derived canonically from
//!   the length table with a completeness self-check and pinned to the
//!   RFC's Appendix C vectors.
//! * [`hpack`] — prefix integers, string literals, the 61-entry static
//!   table, the size-bounded dynamic table, and hardened
//!   encoder/decoder (truncation, overflow, index and table-size abuse
//!   are typed errors).
//! * [`conn`] — whole client connections as deterministic byte buffers
//!   ([`conn::encode_client_connection`]) and the front-end view that
//!   parses them back under stream-state rules
//!   ([`conn::parse_client_connection`]), plus the response direction
//!   for the TCP front end and `hdiff probe --frontend h2`.
//!
//! The downgrade *policy* layer — how a front end translates a parsed
//! [`conn::H2Request`] into HTTP/1.1 bytes — deliberately lives in
//! `hdiff-servers` with the other behavioral models; this crate only
//! says what was on the wire.

pub mod conn;
pub mod error;
pub mod frame;
pub mod hpack;
pub mod huffman;

pub use conn::{
    encode_client_connection, encode_server_connection, parse_client_connection,
    parse_server_connection, ClientConnection, EncodeOptions, H2Request, H2Response, ParsedRequest,
    StreamMachine, StreamState,
};
pub use error::{H2Error, H2ErrorKind};
pub use frame::{
    split_frame, Frame, FrameHeader, FrameType, Setting, DEFAULT_MAX_FRAME_SIZE, FRAME_HEADER_LEN,
    PREFACE,
};
pub use hpack::{Decoder, DynamicTable, Encoder, Header, HpackError};
