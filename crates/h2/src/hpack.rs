//! HPACK header compression (RFC 7541): prefix-integer and string
//! primitives, the 61-entry static table, a size-bounded dynamic table
//! with eviction, and the encoder/decoder over them.
//!
//! Decoding is hardened the way a front end must be: truncated
//! integers, integers with over-long continuation, strings running past
//! the block, strings exceeding a caller-set cap, bad indexes, and
//! dynamic-table size updates above the protocol maximum are all typed
//! errors rather than panics. Both directions are deterministic —
//! identical inputs and table states produce identical bytes — which
//! the downgrade campaign's byte-stability gate relies on.

use std::collections::VecDeque;

use crate::huffman::{self, HuffmanError};

/// Per-entry overhead charged against the dynamic-table size
/// (RFC 7541 §4.1).
pub const ENTRY_OVERHEAD: usize = 32;

/// Default dynamic-table capacity (SETTINGS_HEADER_TABLE_SIZE default).
pub const DEFAULT_TABLE_SIZE: usize = 4096;

/// Default cap on one decoded string; a lying length cannot balloon
/// memory past this.
pub const DEFAULT_MAX_STRING: usize = 64 * 1024;

/// One header field. `never_indexed` marks the literal-never-indexed
/// representation (RFC 7541 §6.2.3) — a hop must forward it with the
/// same representation, and an encoder must not put it in any table.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Header {
    pub name: Vec<u8>,
    pub value: Vec<u8>,
    pub never_indexed: bool,
}

impl Header {
    /// A plain (indexable) header field.
    pub fn new(name: impl Into<Vec<u8>>, value: impl Into<Vec<u8>>) -> Header {
        Header { name: name.into(), value: value.into(), never_indexed: false }
    }

    /// A sensitive field carried as literal-never-indexed.
    pub fn sensitive(name: impl Into<Vec<u8>>, value: impl Into<Vec<u8>>) -> Header {
        Header { name: name.into(), value: value.into(), never_indexed: true }
    }

    /// Size charged against the dynamic table (RFC 7541 §4.1).
    pub fn table_size(&self) -> usize {
        self.name.len() + self.value.len() + ENTRY_OVERHEAD
    }

    /// Whether the name starts with `:` (pseudo-header).
    pub fn is_pseudo(&self) -> bool {
        self.name.first() == Some(&b':')
    }
}

/// Typed HPACK decoding failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HpackError {
    /// An integer's continuation octets ran off the end of the block.
    TruncatedInteger,
    /// An integer used more continuation octets than any legal value
    /// needs (guards against unbounded shifts).
    IntegerOverflow,
    /// A string's declared length ran past the end of the block.
    TruncatedString { declared: usize, available: usize },
    /// A string exceeded the decoder's configured cap.
    StringTooLong { declared: usize, max: usize },
    /// An indexed representation referenced index 0 or past the end of
    /// the address space.
    InvalidIndex(u64),
    /// A dynamic-table size update exceeded the protocol maximum.
    TableSizeOverflow { requested: usize, max: usize },
    /// Huffman-coded string failed to decode.
    Huffman(HuffmanError),
}

impl std::fmt::Display for HpackError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HpackError::TruncatedInteger => write!(f, "truncated integer"),
            HpackError::IntegerOverflow => write!(f, "integer continuation overflow"),
            HpackError::TruncatedString { declared, available } => {
                write!(f, "string declares {declared} bytes, {available} available")
            }
            HpackError::StringTooLong { declared, max } => {
                write!(f, "string of {declared} bytes exceeds cap {max}")
            }
            HpackError::InvalidIndex(i) => write!(f, "invalid table index {i}"),
            HpackError::TableSizeOverflow { requested, max } => {
                write!(f, "table size update {requested} exceeds maximum {max}")
            }
            HpackError::Huffman(e) => write!(f, "huffman: {e}"),
        }
    }
}

impl std::error::Error for HpackError {}

impl From<HuffmanError> for HpackError {
    fn from(e: HuffmanError) -> HpackError {
        HpackError::Huffman(e)
    }
}

// --- integer primitive (RFC 7541 §5.1) ---------------------------------

/// Encodes `value` with an N-bit prefix; `high` carries the pattern
/// bits above the prefix in the first octet.
pub fn encode_int(value: u64, prefix_bits: u8, high: u8, out: &mut Vec<u8>) {
    debug_assert!((1..=8).contains(&prefix_bits));
    let limit = (1u64 << prefix_bits) - 1;
    if value < limit {
        out.push(high | value as u8);
        return;
    }
    out.push(high | limit as u8);
    let mut rest = value - limit;
    while rest >= 128 {
        out.push((rest & 0x7f) as u8 | 0x80);
        rest >>= 7;
    }
    out.push(rest as u8);
}

/// Decodes an N-bit-prefix integer starting at `buf[pos]`. Returns the
/// value and the new position. At most ten continuation octets are
/// accepted (enough for any `u64`), so a malicious run of `0x80` octets
/// terminates with [`HpackError::IntegerOverflow`].
pub fn decode_int(buf: &[u8], pos: usize, prefix_bits: u8) -> Result<(u64, usize), HpackError> {
    debug_assert!((1..=8).contains(&prefix_bits));
    let first = *buf.get(pos).ok_or(HpackError::TruncatedInteger)?;
    let limit = (1u64 << prefix_bits) - 1;
    let mut value = u64::from(first) & limit;
    if value < limit {
        return Ok((value, pos + 1));
    }
    let mut shift = 0u32;
    let mut at = pos + 1;
    loop {
        let octet = *buf.get(at).ok_or(HpackError::TruncatedInteger)?;
        at += 1;
        if shift > 63 || (shift == 63 && (octet & 0x7f) > 1) {
            return Err(HpackError::IntegerOverflow);
        }
        value = value
            .checked_add(u64::from(octet & 0x7f) << shift)
            .ok_or(HpackError::IntegerOverflow)?;
        if octet & 0x80 == 0 {
            return Ok((value, at));
        }
        shift += 7;
    }
}

// --- string primitive (RFC 7541 §5.2) ----------------------------------

/// Encodes a string literal, Huffman-coding when it saves bytes (or
/// always plain when `huffman` is false).
pub fn encode_str(bytes: &[u8], huffman: bool, out: &mut Vec<u8>) {
    if huffman {
        let hlen = huffman::encoded_len(bytes);
        if hlen < bytes.len() {
            encode_int(hlen as u64, 7, 0x80, out);
            huffman::encode(bytes, out);
            return;
        }
    }
    encode_int(bytes.len() as u64, 7, 0x00, out);
    out.extend_from_slice(bytes);
}

/// Decodes a string literal at `buf[pos]`, enforcing `max_len` on the
/// *declared* length before touching the payload.
pub fn decode_str(buf: &[u8], pos: usize, max_len: usize) -> Result<(Vec<u8>, usize), HpackError> {
    let huff = buf.get(pos).map(|b| b & 0x80 != 0).ok_or(HpackError::TruncatedInteger)?;
    let (len, at) = decode_int(buf, pos, 7)?;
    let len = usize::try_from(len).map_err(|_| HpackError::IntegerOverflow)?;
    if len > max_len {
        return Err(HpackError::StringTooLong { declared: len, max: max_len });
    }
    let end = at.checked_add(len).ok_or(HpackError::IntegerOverflow)?;
    if end > buf.len() {
        return Err(HpackError::TruncatedString { declared: len, available: buf.len() - at });
    }
    let raw = &buf[at..end];
    let bytes = if huff { huffman::decode(raw)? } else { raw.to_vec() };
    Ok((bytes, end))
}

// --- static table (RFC 7541 Appendix A) --------------------------------

/// The 61 static entries, index 1-based on the wire.
#[rustfmt::skip]
pub const STATIC_TABLE: [(&str, &str); 61] = [
    (":authority", ""),
    (":method", "GET"),
    (":method", "POST"),
    (":path", "/"),
    (":path", "/index.html"),
    (":scheme", "http"),
    (":scheme", "https"),
    (":status", "200"),
    (":status", "204"),
    (":status", "206"),
    (":status", "304"),
    (":status", "400"),
    (":status", "404"),
    (":status", "500"),
    ("accept-charset", ""),
    ("accept-encoding", "gzip, deflate"),
    ("accept-language", ""),
    ("accept-ranges", ""),
    ("accept", ""),
    ("access-control-allow-origin", ""),
    ("age", ""),
    ("allow", ""),
    ("authorization", ""),
    ("cache-control", ""),
    ("content-disposition", ""),
    ("content-encoding", ""),
    ("content-language", ""),
    ("content-length", ""),
    ("content-location", ""),
    ("content-range", ""),
    ("content-type", ""),
    ("cookie", ""),
    ("date", ""),
    ("etag", ""),
    ("expect", ""),
    ("expires", ""),
    ("from", ""),
    ("host", ""),
    ("if-match", ""),
    ("if-modified-since", ""),
    ("if-none-match", ""),
    ("if-range", ""),
    ("if-unmodified-since", ""),
    ("last-modified", ""),
    ("link", ""),
    ("location", ""),
    ("max-forwards", ""),
    ("proxy-authenticate", ""),
    ("proxy-authorization", ""),
    ("range", ""),
    ("referer", ""),
    ("refresh", ""),
    ("retry-after", ""),
    ("server", ""),
    ("set-cookie", ""),
    ("strict-transport-security", ""),
    ("transfer-encoding", ""),
    ("user-agent", ""),
    ("vary", ""),
    ("via", ""),
    ("www-authenticate", ""),
];

// --- dynamic table (RFC 7541 §4) ---------------------------------------

/// The size-bounded FIFO dynamic table. Entry 0 is the most recently
/// inserted (wire index 62).
#[derive(Debug, Clone, Default)]
pub struct DynamicTable {
    entries: VecDeque<(Vec<u8>, Vec<u8>)>,
    size: usize,
    max_size: usize,
}

impl DynamicTable {
    /// A table with the given capacity.
    pub fn with_capacity(max_size: usize) -> DynamicTable {
        DynamicTable { entries: VecDeque::new(), size: 0, max_size }
    }

    /// Current byte size (including per-entry overhead).
    pub fn size(&self) -> usize {
        self.size
    }

    /// Current capacity.
    pub fn max_size(&self) -> usize {
        self.max_size
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entry by position (0 = most recent).
    pub fn get(&self, pos: usize) -> Option<(&[u8], &[u8])> {
        self.entries.get(pos).map(|(n, v)| (n.as_slice(), v.as_slice()))
    }

    /// Changes the capacity, evicting from the oldest end as needed.
    pub fn set_max_size(&mut self, max_size: usize) {
        self.max_size = max_size;
        self.evict_to(max_size);
    }

    /// Inserts an entry, evicting as needed. An entry larger than the
    /// whole capacity empties the table (RFC 7541 §4.4).
    pub fn insert(&mut self, name: &[u8], value: &[u8]) {
        let needed = name.len() + value.len() + ENTRY_OVERHEAD;
        if needed > self.max_size {
            self.entries.clear();
            self.size = 0;
            return;
        }
        self.evict_to(self.max_size - needed);
        self.entries.push_front((name.to_vec(), value.to_vec()));
        self.size += needed;
    }

    /// Position of an exact (name, value) match, if present.
    pub fn find(&self, name: &[u8], value: &[u8]) -> Option<usize> {
        self.entries.iter().position(|(n, v)| n == name && v == value)
    }

    /// Position of a name-only match, if present.
    pub fn find_name(&self, name: &[u8]) -> Option<usize> {
        self.entries.iter().position(|(n, _)| n == name)
    }

    fn evict_to(&mut self, budget: usize) {
        while self.size > budget {
            let (n, v) = self.entries.pop_back().expect("size > 0 implies entries");
            self.size -= n.len() + v.len() + ENTRY_OVERHEAD;
        }
    }
}

// --- decoder -----------------------------------------------------------

/// HPACK block decoder with its own dynamic table.
#[derive(Debug, Clone)]
pub struct Decoder {
    table: DynamicTable,
    /// Hard ceiling for dynamic-table size updates — the value the
    /// "protocol" advertised via SETTINGS_HEADER_TABLE_SIZE.
    protocol_max_table: usize,
    /// Cap on any single decoded string.
    max_string: usize,
}

impl Default for Decoder {
    fn default() -> Decoder {
        Decoder::new(DEFAULT_TABLE_SIZE)
    }
}

impl Decoder {
    /// A decoder whose table size updates may go up to `max_table`.
    pub fn new(max_table: usize) -> Decoder {
        Decoder {
            table: DynamicTable::with_capacity(max_table),
            protocol_max_table: max_table,
            max_string: DEFAULT_MAX_STRING,
        }
    }

    /// Overrides the per-string cap.
    pub fn with_max_string(mut self, max_string: usize) -> Decoder {
        self.max_string = max_string;
        self
    }

    /// The dynamic table (for inspection in tests).
    pub fn table(&self) -> &DynamicTable {
        &self.table
    }

    /// Resolves a wire index into owned (name, value).
    fn lookup(&self, index: u64) -> Result<(Vec<u8>, Vec<u8>), HpackError> {
        if index == 0 {
            return Err(HpackError::InvalidIndex(0));
        }
        let i = index as usize;
        if i <= STATIC_TABLE.len() {
            let (n, v) = STATIC_TABLE[i - 1];
            return Ok((n.as_bytes().to_vec(), v.as_bytes().to_vec()));
        }
        match self.table.get(i - STATIC_TABLE.len() - 1) {
            Some((n, v)) => Ok((n.to_vec(), v.to_vec())),
            None => Err(HpackError::InvalidIndex(index)),
        }
    }

    /// Decodes one whole header block.
    pub fn decode_block(&mut self, block: &[u8]) -> Result<Vec<Header>, HpackError> {
        let mut out = Vec::new();
        let mut pos = 0usize;
        while pos < block.len() {
            let first = block[pos];
            if first & 0x80 != 0 {
                // Indexed field.
                let (index, at) = decode_int(block, pos, 7)?;
                let (name, value) = self.lookup(index)?;
                out.push(Header { name, value, never_indexed: false });
                pos = at;
            } else if first & 0xc0 == 0x40 {
                // Literal with incremental indexing.
                let (header, at) = self.decode_literal(block, pos, 6, false)?;
                self.table.insert(&header.name, &header.value);
                out.push(header);
                pos = at;
            } else if first & 0xe0 == 0x20 {
                // Dynamic table size update.
                let (size, at) = decode_int(block, pos, 5)?;
                let size = usize::try_from(size).map_err(|_| HpackError::IntegerOverflow)?;
                if size > self.protocol_max_table {
                    return Err(HpackError::TableSizeOverflow {
                        requested: size,
                        max: self.protocol_max_table,
                    });
                }
                self.table.set_max_size(size);
                pos = at;
            } else {
                // Literal without indexing (0000) or never indexed (0001).
                let never = first & 0x10 != 0;
                let (header, at) = self.decode_literal(block, pos, 4, never)?;
                out.push(header);
                pos = at;
            }
        }
        Ok(out)
    }

    fn decode_literal(
        &self,
        block: &[u8],
        pos: usize,
        prefix_bits: u8,
        never_indexed: bool,
    ) -> Result<(Header, usize), HpackError> {
        let (name_index, mut at) = decode_int(block, pos, prefix_bits)?;
        let name = if name_index == 0 {
            let (n, next) = decode_str(block, at, self.max_string)?;
            at = next;
            n
        } else {
            self.lookup(name_index)?.0
        };
        let (value, next) = decode_str(block, at, self.max_string)?;
        Ok((Header { name, value, never_indexed }, next))
    }
}

// --- encoder -----------------------------------------------------------

/// HPACK block encoder with its own dynamic table.
#[derive(Debug, Clone)]
pub struct Encoder {
    table: DynamicTable,
    /// Huffman-code strings when it saves bytes.
    pub use_huffman: bool,
    /// Add plain literals to the dynamic table (incremental indexing).
    /// When false, everything not already indexed goes out as
    /// literal-without-indexing.
    pub index_literals: bool,
}

impl Default for Encoder {
    fn default() -> Encoder {
        Encoder::new(DEFAULT_TABLE_SIZE)
    }
}

impl Encoder {
    /// An encoder with the given dynamic-table capacity.
    pub fn new(max_table: usize) -> Encoder {
        Encoder {
            table: DynamicTable::with_capacity(max_table),
            use_huffman: true,
            index_literals: true,
        }
    }

    /// The dynamic table (for inspection in tests).
    pub fn table(&self) -> &DynamicTable {
        &self.table
    }

    /// Emits a dynamic-table size update and resizes the local table.
    pub fn resize(&mut self, new_size: usize, out: &mut Vec<u8>) {
        self.table.set_max_size(new_size);
        encode_int(new_size as u64, 5, 0x20, out);
    }

    /// Static-table exact match (1-based index).
    fn static_find(name: &[u8], value: &[u8]) -> Option<u64> {
        STATIC_TABLE
            .iter()
            .position(|(n, v)| n.as_bytes() == name && v.as_bytes() == value)
            .map(|p| p as u64 + 1)
    }

    /// Static-table name match (1-based index of first entry).
    fn static_find_name(name: &[u8]) -> Option<u64> {
        STATIC_TABLE.iter().position(|(n, _)| n.as_bytes() == name).map(|p| p as u64 + 1)
    }

    /// Encodes one header block.
    pub fn encode_block(&mut self, headers: &[Header], out: &mut Vec<u8>) {
        for h in headers {
            self.encode_field(h, out);
        }
    }

    fn encode_field(&mut self, h: &Header, out: &mut Vec<u8>) {
        if h.never_indexed {
            let name_index = Self::static_find_name(&h.name)
                .or_else(|| self.table.find_name(&h.name).map(|p| (p + 62) as u64))
                .unwrap_or(0);
            encode_int(name_index, 4, 0x10, out);
            if name_index == 0 {
                encode_str(&h.name, self.use_huffman, out);
            }
            encode_str(&h.value, self.use_huffman, out);
            return;
        }
        if let Some(i) = Self::static_find(&h.name, &h.value) {
            encode_int(i, 7, 0x80, out);
            return;
        }
        if let Some(p) = self.table.find(&h.name, &h.value) {
            encode_int((p + 62) as u64, 7, 0x80, out);
            return;
        }
        let name_index = Self::static_find_name(&h.name)
            .or_else(|| self.table.find_name(&h.name).map(|p| (p + 62) as u64))
            .unwrap_or(0);
        if self.index_literals {
            encode_int(name_index, 6, 0x40, out);
        } else {
            encode_int(name_index, 4, 0x00, out);
        }
        if name_index == 0 {
            encode_str(&h.name, self.use_huffman, out);
        }
        encode_str(&h.value, self.use_huffman, out);
        if self.index_literals {
            self.table.insert(&h.name, &h.value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt(headers: &[Header]) -> Vec<Header> {
        let mut enc = Encoder::default();
        let mut block = Vec::new();
        enc.encode_block(headers, &mut block);
        Decoder::default().decode_block(&block).unwrap()
    }

    #[test]
    fn integer_primitive_round_trips() {
        for prefix in 1..=8u8 {
            for value in [0u64, 1, 9, 30, 31, 127, 128, 255, 16_383, 1 << 20, u64::MAX] {
                let mut out = Vec::new();
                encode_int(value, prefix, 0, &mut out);
                let (got, used) = decode_int(&out, 0, prefix).unwrap();
                assert_eq!((got, used), (value, out.len()), "prefix {prefix} value {value}");
            }
        }
    }

    #[test]
    fn rfc7541_c1_integer_examples() {
        // C.1.1: 10 with 5-bit prefix -> 0x0a.
        let mut out = Vec::new();
        encode_int(10, 5, 0, &mut out);
        assert_eq!(out, [0x0a]);
        // C.1.2: 1337 with 5-bit prefix -> 1f 9a 0a.
        out.clear();
        encode_int(1337, 5, 0, &mut out);
        assert_eq!(out, [0x1f, 0x9a, 0x0a]);
        // C.1.3: 42 with 8-bit prefix -> 0x2a.
        out.clear();
        encode_int(42, 8, 0, &mut out);
        assert_eq!(out, [0x2a]);
    }

    #[test]
    fn truncated_and_overlong_integers_are_rejected() {
        assert_eq!(decode_int(&[], 0, 7), Err(HpackError::TruncatedInteger));
        assert_eq!(decode_int(&[0x7f, 0x80, 0x80], 0, 7), Err(HpackError::TruncatedInteger));
        let mut evil = vec![0x7f];
        evil.extend(std::iter::repeat_n(0x80, 12));
        evil.push(0x01);
        assert_eq!(decode_int(&evil, 0, 7), Err(HpackError::IntegerOverflow));
    }

    #[test]
    fn string_caps_and_truncation() {
        let mut out = Vec::new();
        encode_str(b"hello world", false, &mut out);
        assert_eq!(decode_str(&out, 0, 1024).unwrap().0, b"hello world");
        assert_eq!(decode_str(&out, 0, 4), Err(HpackError::StringTooLong { declared: 11, max: 4 }));
        assert_eq!(
            decode_str(&out[..6], 0, 1024),
            Err(HpackError::TruncatedString { declared: 11, available: 5 })
        );
    }

    #[test]
    fn rfc7541_c3_requests_plain() {
        // C.3.1 first request: :method GET, :scheme http, :path /,
        // :authority www.example.com (literal w/ indexing, plain).
        let headers = [
            Header::new(":method", "GET"),
            Header::new(":scheme", "http"),
            Header::new(":path", "/"),
            Header::new(":authority", "www.example.com"),
        ];
        let mut enc = Encoder { use_huffman: false, ..Encoder::default() };
        let mut block = Vec::new();
        enc.encode_block(&headers, &mut block);
        let expected: Vec<u8> = {
            let mut v = vec![0x82, 0x86, 0x84, 0x41, 0x0f];
            v.extend_from_slice(b"www.example.com");
            v
        };
        assert_eq!(block, expected);
        assert_eq!(enc.table().len(), 1);
        assert_eq!(enc.table().size(), 57);
        let mut dec = Decoder::default();
        assert_eq!(dec.decode_block(&block).unwrap(), headers);
        assert_eq!(dec.table().size(), 57);
    }

    #[test]
    fn rfc7541_c4_requests_huffman() {
        let headers = [
            Header::new(":method", "GET"),
            Header::new(":scheme", "http"),
            Header::new(":path", "/"),
            Header::new(":authority", "www.example.com"),
        ];
        let mut enc = Encoder::default();
        let mut block = Vec::new();
        enc.encode_block(&headers, &mut block);
        assert_eq!(
            block,
            [
                0x82, 0x86, 0x84, 0x41, 0x8c, 0xf1, 0xe3, 0xc2, 0xe5, 0xf2, 0x3a, 0x6b, 0xa0, 0xab,
                0x90, 0xf4, 0xff
            ]
        );
        // Second request on the same connection reuses the table.
        let second = [
            Header::new(":method", "GET"),
            Header::new(":scheme", "http"),
            Header::new(":path", "/"),
            Header::new(":authority", "www.example.com"),
            Header::new("cache-control", "no-cache"),
        ];
        block.clear();
        enc.encode_block(&second, &mut block);
        assert_eq!(block, [0x82, 0x86, 0x84, 0xbe, 0x58, 0x86, 0xa8, 0xeb, 0x10, 0x64, 0x9c, 0xbf]);
    }

    #[test]
    fn never_indexed_survives_round_trip_and_stays_out_of_tables() {
        let headers = [
            Header::new(":method", "POST"),
            Header::sensitive("authorization", "Bearer s3cr3t"),
            Header::new("x-custom", "v"),
        ];
        let got = rt(&headers);
        assert_eq!(got, headers);
        let mut enc = Encoder::default();
        let mut block = Vec::new();
        enc.encode_block(&headers, &mut block);
        assert!(enc.table().find_name(b"authorization").is_none());
        assert!(enc.table().find_name(b"x-custom").is_some());
    }

    #[test]
    fn dynamic_table_evicts_in_fifo_order() {
        let mut t = DynamicTable::with_capacity(100);
        t.insert(b"aa", b"bb"); // 36
        t.insert(b"cc", b"dd"); // 36 (72 total)
        t.insert(b"ee", b"ff"); // 36 -> evicts (aa, bb)
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(0), Some((&b"ee"[..], &b"ff"[..])));
        assert!(t.find(b"aa", b"bb").is_none());
        t.insert(b"x", &[b'y'; 200]); // larger than capacity: clears
        assert!(t.is_empty());
        assert_eq!(t.size(), 0);
    }

    #[test]
    fn table_size_update_is_bounded() {
        let mut block = Vec::new();
        encode_int(8192, 5, 0x20, &mut block);
        let err = Decoder::new(4096).decode_block(&block).unwrap_err();
        assert_eq!(err, HpackError::TableSizeOverflow { requested: 8192, max: 4096 });
        let mut ok = Vec::new();
        encode_int(0, 5, 0x20, &mut ok);
        let mut dec = Decoder::new(4096);
        dec.decode_block(&ok).unwrap();
        assert_eq!(dec.table().max_size(), 0);
    }

    #[test]
    fn invalid_indexes_are_rejected() {
        assert_eq!(Decoder::default().decode_block(&[0x80]), Err(HpackError::InvalidIndex(0)));
        let mut block = Vec::new();
        encode_int(99, 7, 0x80, &mut block);
        assert_eq!(Decoder::default().decode_block(&block), Err(HpackError::InvalidIndex(99)));
    }

    #[test]
    fn crlf_bytes_in_values_round_trip_unmolested() {
        // HPACK has no wire-level CRLF constraint — the downgrade layer
        // is what decides whether to reject these. The codec must carry
        // them faithfully.
        let headers = [Header::new("x-evil", "a\r\nx-injected: 1")];
        assert_eq!(rt(&headers), headers);
    }
}
