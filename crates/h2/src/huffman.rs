//! HPACK Huffman coding (RFC 7541 §5.2 / Appendix B).
//!
//! The RFC's code is *canonical*: within one code length, codes are
//! assigned in symbol order, and each length's first code is
//! `(previous length's last code + 1) << (length delta)`. So the table
//! is stored here as one 257-entry array of code *lengths* and the
//! `(code, length)` pairs are derived at first use. Construction
//! self-checks completeness: the last canonical code must come out as
//! the all-ones 30-bit EOS code (`0x3fffffff`), i.e. the Kraft sum of
//! the length array is exactly 1 — a corrupted length table cannot
//! build silently.

use std::sync::OnceLock;

/// Number of symbols: 256 octets plus EOS.
const SYMBOLS: usize = 257;

/// EOS symbol index.
const EOS: usize = 256;

/// Code length in bits for every symbol (RFC 7541 Appendix B).
#[rustfmt::skip]
const NBITS: [u8; SYMBOLS] = [
    // 0-31: control octets
    13, 23, 28, 28, 28, 28, 28, 28, 28, 24, 30, 28, 28, 30, 28, 28,
    28, 28, 28, 28, 28, 28, 30, 28, 28, 28, 28, 28, 28, 28, 28, 28,
    // 32-63: ' '..'?'
     6, 10, 10, 12, 13,  6,  8, 11, 10, 10,  8, 11,  8,  6,  6,  6,
     5,  5,  5,  6,  6,  6,  6,  6,  6,  6,  7,  8, 15,  6, 12, 10,
    // 64-95: '@'..'_'
    13,  6,  7,  7,  7,  7,  7,  7,  7,  7,  7,  7,  7,  7,  7,  7,
     7,  7,  7,  7,  7,  7,  7,  7,  8,  7,  8, 13, 19, 13, 14,  6,
    // 96-127: '`'..DEL
    15,  5,  6,  5,  6,  5,  6,  6,  6,  5,  7,  7,  6,  6,  6,  5,
     6,  7,  6,  5,  5,  6,  7,  7,  7,  7,  7, 15, 11, 13, 14, 28,
    // 128-159
    20, 22, 20, 20, 22, 22, 22, 23, 22, 23, 23, 23, 23, 23, 24, 23,
    24, 24, 22, 23, 24, 23, 23, 23, 23, 21, 22, 23, 22, 23, 23, 24,
    // 160-191
    22, 21, 20, 22, 22, 23, 23, 21, 23, 22, 22, 24, 21, 22, 23, 23,
    21, 21, 22, 21, 23, 22, 23, 23, 20, 22, 22, 22, 23, 22, 22, 23,
    // 192-223
    26, 26, 20, 19, 22, 23, 22, 25, 26, 26, 26, 27, 27, 26, 24, 25,
    19, 21, 26, 27, 27, 26, 27, 24, 21, 21, 26, 26, 28, 27, 27, 27,
    // 224-255
    20, 24, 20, 21, 22, 21, 21, 23, 22, 22, 25, 25, 24, 24, 26, 23,
    26, 27, 26, 26, 27, 27, 27, 27, 27, 28, 27, 27, 27, 27, 27, 26,
    // 256: EOS
    30,
];

/// A decoding-tree node: children indexed by the next bit. Positive
/// values are internal node indexes; `-1 - sym` encodes a leaf.
type Node = [i32; 2];

struct Tables {
    /// `(code, nbits)` per symbol.
    codes: [(u32, u8); SYMBOLS],
    /// Binary decode tree; node 0 is the root.
    tree: Vec<Node>,
}

fn tables() -> &'static Tables {
    static TABLES: OnceLock<Tables> = OnceLock::new();
    TABLES.get_or_init(|| {
        // Canonical code assignment: symbols ordered by (length, symbol).
        let mut order: Vec<usize> = (0..SYMBOLS).collect();
        order.sort_by_key(|&s| (NBITS[s], s));
        let mut codes = [(0u32, 0u8); SYMBOLS];
        let mut code: u32 = 0;
        let mut prev_len: u8 = 0;
        for &sym in &order {
            let len = NBITS[sym];
            if prev_len != 0 {
                code = (code + 1) << (len - prev_len);
            }
            codes[sym] = (code, len);
            prev_len = len;
        }
        // Completeness check: the last (longest, largest) code must be
        // the all-ones EOS code, or the length table is corrupt.
        assert_eq!(prev_len, 30, "huffman length table: longest code must be 30 bits");
        assert_eq!(code, 0x3fff_ffff, "huffman length table is not a complete canonical code");
        assert_eq!(codes[EOS], (0x3fff_ffff, 30));

        // Decode tree.
        let mut tree: Vec<Node> = vec![[0, 0]];
        for (sym, &(code, len)) in codes.iter().enumerate() {
            let mut node = 0usize;
            for depth in (0..len).rev() {
                let bit = ((code >> depth) & 1) as usize;
                if depth == 0 {
                    debug_assert_eq!(tree[node][bit], 0, "prefix collision in huffman tree");
                    tree[node][bit] = -1 - sym as i32;
                } else {
                    if tree[node][bit] == 0 {
                        tree.push([0, 0]);
                        let fresh = (tree.len() - 1) as i32;
                        tree[node][bit] = fresh;
                    }
                    node = tree[node][bit] as usize;
                }
            }
        }
        Tables { codes, tree }
    })
}

/// Why Huffman decoding failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HuffmanError {
    /// The 30-bit EOS code appeared inside the string (RFC 7541 §5.2
    /// requires treating it as a decoding error).
    EosInString,
    /// The final partial code was not a prefix of EOS (padding must be
    /// the most significant bits of EOS, i.e. all ones) or was 8 bits
    /// or longer.
    BadPadding,
}

impl std::fmt::Display for HuffmanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HuffmanError::EosInString => write!(f, "EOS symbol inside huffman string"),
            HuffmanError::BadPadding => write!(f, "invalid huffman padding"),
        }
    }
}

/// Huffman-encodes `input`, appending to `out`. Returns the number of
/// bytes appended. The final partial byte is padded with the EOS
/// prefix (all ones) per RFC 7541 §5.2.
pub fn encode(input: &[u8], out: &mut Vec<u8>) -> usize {
    let t = tables();
    let start = out.len();
    let mut acc: u64 = 0;
    let mut nbits: u32 = 0;
    for &b in input {
        let (code, len) = t.codes[b as usize];
        acc = (acc << len) | u64::from(code);
        nbits += u32::from(len);
        while nbits >= 8 {
            nbits -= 8;
            out.push((acc >> nbits) as u8);
        }
    }
    if nbits > 0 {
        // Pad with the most significant bits of EOS (all ones).
        let pad = 8 - nbits;
        out.push(((acc << pad) as u8) | ((1u8 << pad) - 1));
    }
    out.len() - start
}

/// The exact encoded length of `input` in bytes, without encoding.
pub fn encoded_len(input: &[u8]) -> usize {
    let t = tables();
    let bits: u64 = input.iter().map(|&b| u64::from(t.codes[b as usize].1)).sum();
    (bits as usize).div_ceil(8)
}

/// Decodes a Huffman-coded string.
pub fn decode(input: &[u8]) -> Result<Vec<u8>, HuffmanError> {
    let t = tables();
    let mut out = Vec::with_capacity(input.len() * 8 / 5);
    let mut node = 0usize;
    // Bits consumed since the last emitted symbol, and whether they
    // were all ones — the only legal shape for trailing padding.
    let mut partial_bits = 0u32;
    let mut all_ones = true;
    for &byte in input {
        for shift in (0..8).rev() {
            let bit = ((byte >> shift) & 1) as usize;
            partial_bits += 1;
            all_ones &= bit == 1;
            let next = t.tree[node][bit];
            if next < 0 {
                let sym = (-1 - next) as usize;
                if sym == EOS {
                    return Err(HuffmanError::EosInString);
                }
                out.push(sym as u8);
                node = 0;
                partial_bits = 0;
                all_ones = true;
            } else {
                node = next as usize;
            }
        }
    }
    if partial_bits >= 8 || !all_ones {
        return Err(HuffmanError::BadPadding);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len()).step_by(2).map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap()).collect()
    }

    /// RFC 7541 Appendix C test vectors pin the table to the spec, not
    /// just to itself.
    #[test]
    fn rfc7541_appendix_c_vectors() {
        let cases: &[(&[u8], &str)] = &[
            (b"www.example.com", "f1e3c2e5f23a6ba0ab90f4ff"),
            (b"no-cache", "a8eb10649cbf"),
            (b"custom-key", "25a849e95ba97d7f"),
            (b"custom-value", "25a849e95bb8e8b4bf"),
            (b"private", "aec3771a4b"),
            (b"Mon, 21 Oct 2013 20:13:21 GMT", "d07abe941054d444a8200595040b8166e082a62d1bff"),
            (b"https://www.example.com", "9d29ad171863c78f0b97c8e9ae82ae43d3"),
            (b"302", "6402"),
        ];
        for (plain, encoded) in cases {
            let mut out = Vec::new();
            encode(plain, &mut out);
            assert_eq!(out, hex(encoded), "encode {:?}", String::from_utf8_lossy(plain));
            assert_eq!(decode(&hex(encoded)).unwrap(), plain.to_vec());
            assert_eq!(encoded_len(plain), out.len());
        }
    }

    #[test]
    fn all_octets_round_trip() {
        let every: Vec<u8> = (0..=255).collect();
        let mut out = Vec::new();
        encode(&every, &mut out);
        assert_eq!(decode(&out).unwrap(), every);
    }

    #[test]
    fn empty_string_round_trips() {
        let mut out = Vec::new();
        assert_eq!(encode(&[], &mut out), 0);
        assert_eq!(decode(&[]).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn bad_padding_is_rejected() {
        // 'w' = 7 bits; one encoded byte ends with a single 0 padding
        // bit, which is not an EOS prefix.
        let mut out = Vec::new();
        encode(b"w", &mut out);
        assert_eq!(out.len(), 1);
        let mut bad = out.clone();
        bad[0] &= 0xfe; // force the pad bit to zero
        assert_eq!(decode(&bad), Err(HuffmanError::BadPadding));
        // A whole byte of padding is also illegal.
        let mut long = Vec::new();
        encode(b"www", &mut long); // 21 bits -> 3 bytes, 3 pad bits
        long.push(0xff);
        assert_eq!(decode(&long), Err(HuffmanError::BadPadding));
    }

    #[test]
    fn eos_in_string_is_rejected() {
        // 30 EOS bits followed by 2 padding ones: four 0xff bytes.
        assert_eq!(decode(&[0xff, 0xff, 0xff, 0xff]), Err(HuffmanError::EosInString));
    }
}
