//! Typed errors for the h2 layer.
//!
//! Every parse failure carries a machine-matchable kind plus a
//! human-readable detail string; the downgrade campaign records the
//! rendered form in case outcomes, so `Display` output is part of the
//! deterministic surface (no addresses, no hash-ordered content).

use std::fmt;

/// What went wrong.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum H2ErrorKind {
    /// More bytes were required than were available.
    Truncated,
    /// A frame declared a payload longer than the negotiated maximum.
    FrameTooLarge,
    /// Structurally invalid bytes (bad preface, bad SETTINGS length,
    /// CONTINUATION out of order, DATA on an idle stream, ...).
    Malformed,
    /// A stream-state rule was violated (frame on a closed stream,
    /// HEADERS after END_STREAM, non-monotonic client stream ids).
    StreamState,
    /// HPACK decoding failed; see [`crate::hpack::HpackError`] for the
    /// precise cause folded into the detail string.
    Compression,
}

impl fmt::Display for H2ErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            H2ErrorKind::Truncated => write!(f, "truncated"),
            H2ErrorKind::FrameTooLarge => write!(f, "frame-too-large"),
            H2ErrorKind::Malformed => write!(f, "malformed"),
            H2ErrorKind::StreamState => write!(f, "stream-state"),
            H2ErrorKind::Compression => write!(f, "compression"),
        }
    }
}

/// An h2 parse/protocol error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct H2Error {
    pub kind: H2ErrorKind,
    pub detail: String,
}

impl H2Error {
    /// Builds an error.
    pub fn new(kind: H2ErrorKind, detail: impl Into<String>) -> H2Error {
        H2Error { kind, detail: detail.into() }
    }
}

impl fmt::Display for H2Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h2 {}: {}", self.kind, self.detail)
    }
}

impl std::error::Error for H2Error {}
