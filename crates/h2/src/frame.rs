//! HTTP/2 frame layer (RFC 9113 §4): the 9-octet frame header codec,
//! the frame types the downgrade campaign exchanges, and the client
//! connection preface.
//!
//! Only the subset of the protocol a request/response exchange needs is
//! modeled — no priority tree, no server push, no flow-control
//! accounting beyond parsing WINDOW_UPDATE. Unknown frame types are
//! carried through (RFC 9113 §4.1 requires ignoring them), so a parser
//! built on this layer discards rather than rejects them.

use crate::error::{H2Error, H2ErrorKind};

/// The client connection preface (RFC 9113 §3.4).
pub const PREFACE: &[u8] = b"PRI * HTTP/2.0\r\n\r\nSM\r\n\r\n";

/// Length of the fixed frame header.
pub const FRAME_HEADER_LEN: usize = 9;

/// Default SETTINGS_MAX_FRAME_SIZE (RFC 9113 §6.5.2). Frames longer
/// than this are rejected with `FRAME_SIZE_ERROR` semantics.
pub const DEFAULT_MAX_FRAME_SIZE: usize = 16_384;

/// Frame flags used by this subset.
pub mod flags {
    /// DATA / HEADERS: last frame of the stream.
    pub const END_STREAM: u8 = 0x01;
    /// SETTINGS / PING: acknowledgement.
    pub const ACK: u8 = 0x01;
    /// HEADERS / CONTINUATION: last header-block fragment.
    pub const END_HEADERS: u8 = 0x04;
    /// DATA / HEADERS: payload carries a pad-length prefix.
    pub const PADDED: u8 = 0x08;
    /// HEADERS: payload carries priority fields.
    pub const PRIORITY: u8 = 0x20;
}

/// The frame types of RFC 9113 §6. `Unknown` carries anything else.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FrameType {
    Data,
    Headers,
    Priority,
    RstStream,
    Settings,
    PushPromise,
    Ping,
    Goaway,
    WindowUpdate,
    Continuation,
    /// A type this subset does not model; receivers must ignore it.
    Unknown(u8),
}

impl FrameType {
    /// The wire code.
    pub fn code(self) -> u8 {
        match self {
            FrameType::Data => 0x0,
            FrameType::Headers => 0x1,
            FrameType::Priority => 0x2,
            FrameType::RstStream => 0x3,
            FrameType::Settings => 0x4,
            FrameType::PushPromise => 0x5,
            FrameType::Ping => 0x6,
            FrameType::Goaway => 0x7,
            FrameType::WindowUpdate => 0x8,
            FrameType::Continuation => 0x9,
            FrameType::Unknown(code) => code,
        }
    }

    /// Decodes a wire code.
    pub fn from_code(code: u8) -> FrameType {
        match code {
            0x0 => FrameType::Data,
            0x1 => FrameType::Headers,
            0x2 => FrameType::Priority,
            0x3 => FrameType::RstStream,
            0x4 => FrameType::Settings,
            0x5 => FrameType::PushPromise,
            0x6 => FrameType::Ping,
            0x7 => FrameType::Goaway,
            0x8 => FrameType::WindowUpdate,
            0x9 => FrameType::Continuation,
            other => FrameType::Unknown(other),
        }
    }
}

impl std::fmt::Display for FrameType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameType::Data => write!(f, "DATA"),
            FrameType::Headers => write!(f, "HEADERS"),
            FrameType::Priority => write!(f, "PRIORITY"),
            FrameType::RstStream => write!(f, "RST_STREAM"),
            FrameType::Settings => write!(f, "SETTINGS"),
            FrameType::PushPromise => write!(f, "PUSH_PROMISE"),
            FrameType::Ping => write!(f, "PING"),
            FrameType::Goaway => write!(f, "GOAWAY"),
            FrameType::WindowUpdate => write!(f, "WINDOW_UPDATE"),
            FrameType::Continuation => write!(f, "CONTINUATION"),
            FrameType::Unknown(code) => write!(f, "UNKNOWN({code:#x})"),
        }
    }
}

/// The fixed 9-octet frame header: 24-bit payload length, 8-bit type,
/// 8-bit flags, reserved bit + 31-bit stream identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// Payload length (24 bits on the wire).
    pub length: u32,
    /// Frame type.
    pub kind: FrameType,
    /// Type-specific flags.
    pub flags: u8,
    /// Stream identifier (31 bits; the reserved bit is dropped on
    /// decode and sent as zero on encode).
    pub stream_id: u32,
}

impl FrameHeader {
    /// Appends the 9 header octets to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.push((self.length >> 16) as u8);
        out.push((self.length >> 8) as u8);
        out.push(self.length as u8);
        out.push(self.kind.code());
        out.push(self.flags);
        let sid = self.stream_id & 0x7fff_ffff;
        out.extend_from_slice(&sid.to_be_bytes());
    }

    /// Decodes 9 octets. Only fails when fewer than 9 bytes are given.
    pub fn decode(bytes: &[u8]) -> Result<FrameHeader, H2Error> {
        if bytes.len() < FRAME_HEADER_LEN {
            return Err(H2Error::new(
                H2ErrorKind::Truncated,
                format!("frame header needs 9 octets, got {}", bytes.len()),
            ));
        }
        let length = (u32::from(bytes[0]) << 16) | (u32::from(bytes[1]) << 8) | u32::from(bytes[2]);
        let kind = FrameType::from_code(bytes[3]);
        let flags = bytes[4];
        let stream_id = u32::from_be_bytes([bytes[5], bytes[6], bytes[7], bytes[8]]) & 0x7fff_ffff;
        Ok(FrameHeader { length, kind, flags, stream_id })
    }

    /// Whether `flag` is set.
    pub fn has_flag(&self, flag: u8) -> bool {
        self.flags & flag != 0
    }
}

/// A whole frame: header plus owned payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    pub header: FrameHeader,
    pub payload: Vec<u8>,
}

impl Frame {
    /// Builds a frame, filling in the payload length.
    pub fn new(kind: FrameType, flags: u8, stream_id: u32, payload: Vec<u8>) -> Frame {
        Frame {
            header: FrameHeader { length: payload.len() as u32, kind, flags, stream_id },
            payload,
        }
    }

    /// Appends the wire form (header + payload) to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        debug_assert_eq!(self.header.length as usize, self.payload.len());
        self.header.encode(out);
        out.extend_from_slice(&self.payload);
    }

    /// The wire form as a fresh buffer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(FRAME_HEADER_LEN + self.payload.len());
        self.encode(&mut out);
        out
    }
}

/// One SETTINGS parameter (identifier, value).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Setting {
    pub id: u16,
    pub value: u32,
}

/// SETTINGS identifiers this subset knows by name.
pub mod settings {
    pub const HEADER_TABLE_SIZE: u16 = 0x1;
    pub const ENABLE_PUSH: u16 = 0x2;
    pub const MAX_CONCURRENT_STREAMS: u16 = 0x3;
    pub const INITIAL_WINDOW_SIZE: u16 = 0x4;
    pub const MAX_FRAME_SIZE: u16 = 0x5;
    pub const MAX_HEADER_LIST_SIZE: u16 = 0x6;
}

/// Encodes a SETTINGS frame from parameter pairs.
pub fn settings_frame(params: &[Setting], ack: bool) -> Frame {
    let mut payload = Vec::with_capacity(params.len() * 6);
    for p in params {
        payload.extend_from_slice(&p.id.to_be_bytes());
        payload.extend_from_slice(&p.value.to_be_bytes());
    }
    let flags = if ack { flags::ACK } else { 0 };
    Frame::new(FrameType::Settings, flags, 0, payload)
}

/// Decodes a SETTINGS payload into parameter pairs. The payload length
/// must be a multiple of six (RFC 9113 §6.5).
pub fn parse_settings(payload: &[u8]) -> Result<Vec<Setting>, H2Error> {
    if !payload.len().is_multiple_of(6) {
        return Err(H2Error::new(
            H2ErrorKind::Malformed,
            format!("SETTINGS payload length {} not a multiple of 6", payload.len()),
        ));
    }
    Ok(payload
        .chunks_exact(6)
        .map(|c| Setting {
            id: u16::from_be_bytes([c[0], c[1]]),
            value: u32::from_be_bytes([c[2], c[3], c[4], c[5]]),
        })
        .collect())
}

/// Encodes a GOAWAY frame (last stream id + error code + debug data).
pub fn goaway_frame(last_stream_id: u32, error_code: u32, debug: &[u8]) -> Frame {
    let mut payload = Vec::with_capacity(8 + debug.len());
    payload.extend_from_slice(&(last_stream_id & 0x7fff_ffff).to_be_bytes());
    payload.extend_from_slice(&error_code.to_be_bytes());
    payload.extend_from_slice(debug);
    Frame::new(FrameType::Goaway, 0, 0, payload)
}

/// Encodes an RST_STREAM frame.
pub fn rst_stream_frame(stream_id: u32, error_code: u32) -> Frame {
    Frame::new(FrameType::RstStream, 0, stream_id, error_code.to_be_bytes().to_vec())
}

/// Encodes a WINDOW_UPDATE frame.
pub fn window_update_frame(stream_id: u32, increment: u32) -> Frame {
    Frame::new(
        FrameType::WindowUpdate,
        0,
        stream_id,
        (increment & 0x7fff_ffff).to_be_bytes().to_vec(),
    )
}

/// Error codes (RFC 9113 §7) used by this subset.
pub mod error_code {
    pub const NO_ERROR: u32 = 0x0;
    pub const PROTOCOL_ERROR: u32 = 0x1;
    pub const FRAME_SIZE_ERROR: u32 = 0x6;
    pub const COMPRESSION_ERROR: u32 = 0x9;
}

/// Splits the next whole frame off the front of `buf`.
///
/// Returns `Ok(None)` when the buffer holds only a partial frame;
/// `Ok(Some((frame, consumed)))` on success. A frame whose declared
/// length exceeds `max_frame_size` is rejected before waiting for its
/// payload, so a lying length cannot stall the parser.
pub fn split_frame(buf: &[u8], max_frame_size: usize) -> Result<Option<(Frame, usize)>, H2Error> {
    if buf.len() < FRAME_HEADER_LEN {
        return Ok(None);
    }
    let header = FrameHeader::decode(buf)?;
    let len = header.length as usize;
    if len > max_frame_size {
        return Err(H2Error::new(
            H2ErrorKind::FrameTooLarge,
            format!("{} frame of {len} bytes exceeds max frame size {max_frame_size}", header.kind),
        ));
    }
    let total = FRAME_HEADER_LEN + len;
    if buf.len() < total {
        return Ok(None);
    }
    let payload = buf[FRAME_HEADER_LEN..total].to_vec();
    Ok(Some((Frame { header, payload }, total)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_round_trips() {
        let h = FrameHeader {
            length: 0x01_02_03,
            kind: FrameType::Headers,
            flags: flags::END_HEADERS | flags::END_STREAM,
            stream_id: 0x7fff_fffe,
        };
        let mut wire = Vec::new();
        h.encode(&mut wire);
        assert_eq!(wire.len(), FRAME_HEADER_LEN);
        assert_eq!(FrameHeader::decode(&wire).unwrap(), h);
    }

    #[test]
    fn reserved_bit_is_dropped() {
        let mut wire = Vec::new();
        FrameHeader { length: 0, kind: FrameType::Ping, flags: 0, stream_id: 5 }.encode(&mut wire);
        wire[5] |= 0x80; // set the reserved bit on the wire
        assert_eq!(FrameHeader::decode(&wire).unwrap().stream_id, 5);
    }

    #[test]
    fn split_frame_handles_partials_and_oversize() {
        let frame = Frame::new(FrameType::Data, flags::END_STREAM, 1, b"hello".to_vec());
        let wire = frame.to_bytes();
        for cut in 0..wire.len() {
            assert!(split_frame(&wire[..cut], DEFAULT_MAX_FRAME_SIZE).unwrap().is_none());
        }
        let (parsed, used) = split_frame(&wire, DEFAULT_MAX_FRAME_SIZE).unwrap().unwrap();
        assert_eq!(used, wire.len());
        assert_eq!(parsed, frame);
        let err = split_frame(&wire, 3).unwrap_err();
        assert_eq!(err.kind, H2ErrorKind::FrameTooLarge);
    }

    #[test]
    fn settings_round_trip() {
        let params = [
            Setting { id: settings::MAX_FRAME_SIZE, value: 16_384 },
            Setting { id: settings::ENABLE_PUSH, value: 0 },
        ];
        let frame = settings_frame(&params, false);
        assert_eq!(parse_settings(&frame.payload).unwrap(), params);
        assert!(parse_settings(&frame.payload[..5]).is_err());
    }

    #[test]
    fn unknown_frame_types_round_trip() {
        assert_eq!(FrameType::from_code(0xbe), FrameType::Unknown(0xbe));
        assert_eq!(FrameType::from_code(0xbe).code(), 0xbe);
        for code in 0..=9u8 {
            assert_eq!(FrameType::from_code(code).code(), code);
        }
    }
}
