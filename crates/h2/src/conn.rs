//! Connection-level codec: whole h2 client connections as byte
//! buffers, and the stream-state machine that validates them.
//!
//! The downgrade campaign treats an h2 *case* as the full cleartext
//! (prior-knowledge h2c) client connection: preface, SETTINGS, then one
//! or more request exchanges. [`encode_client_connection`] renders a
//! request list into those bytes deterministically — same requests and
//! options, same bytes, always — and [`parse_client_connection`] is the
//! front end's view: it validates framing and stream-state rules,
//! decodes HPACK, and yields the received requests in stream order.
//!
//! The response direction ([`encode_server_connection`] /
//! [`parse_server_connection`]) carries enough of the exchange for the
//! TCP front end and `hdiff probe --frontend h2` to complete a real
//! round trip.

use std::collections::BTreeMap;

use crate::error::{H2Error, H2ErrorKind};
use crate::frame::{
    self, flags, settings_frame, split_frame, Frame, FrameType, Setting, DEFAULT_MAX_FRAME_SIZE,
    PREFACE,
};
use crate::hpack::{Decoder, Encoder, Header};

/// One h2 request: the header list exactly as it appears in the header
/// block (pseudo-headers included, order preserved) plus the
/// concatenated DATA payload.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct H2Request {
    pub headers: Vec<Header>,
    pub body: Vec<u8>,
}

impl H2Request {
    /// A GET-shaped request with the usual pseudo-header quartet.
    pub fn get(path: &str, authority: &str) -> H2Request {
        H2Request {
            headers: vec![
                Header::new(":method", "GET"),
                Header::new(":scheme", "http"),
                Header::new(":path", path),
                Header::new(":authority", authority),
            ],
            body: Vec::new(),
        }
    }

    /// A POST-shaped request carrying `body`.
    pub fn post(path: &str, authority: &str, body: impl Into<Vec<u8>>) -> H2Request {
        H2Request {
            headers: vec![
                Header::new(":method", "POST"),
                Header::new(":scheme", "http"),
                Header::new(":path", path),
                Header::new(":authority", authority),
            ],
            body: body.into(),
        }
    }

    /// Appends a regular header field.
    pub fn with_header(mut self, name: &str, value: &str) -> H2Request {
        self.headers.push(Header::new(name, value));
        self
    }

    /// First header with the given name (byte-exact match).
    pub fn header(&self, name: &str) -> Option<&[u8]> {
        self.headers.iter().find(|h| h.name == name.as_bytes()).map(|h| h.value.as_slice())
    }

    /// All values carried under the given name, in order.
    pub fn header_all(&self, name: &str) -> Vec<&[u8]> {
        self.headers
            .iter()
            .filter(|h| h.name == name.as_bytes())
            .map(|h| h.value.as_slice())
            .collect()
    }

    /// `:method`, defaulting to GET when absent.
    pub fn method(&self) -> &[u8] {
        self.header(":method").unwrap_or(b"GET")
    }

    /// `:path`, defaulting to `/` when absent.
    pub fn path(&self) -> &[u8] {
        self.header(":path").unwrap_or(b"/")
    }

    /// `:authority`, when present.
    pub fn authority(&self) -> Option<&[u8]> {
        self.header(":authority")
    }
}

/// How stream ids and frame boundaries are chosen when rendering a
/// connection. All fields have deterministic defaults; two encodes of
/// the same `(requests, options)` are byte-identical.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodeOptions {
    /// Huffman-code HPACK strings when it saves bytes.
    pub use_huffman: bool,
    /// Split DATA into frames of at most this many bytes.
    pub data_chunk: usize,
    /// When nonzero, split the header block into HEADERS +
    /// CONTINUATION fragments of at most this many bytes.
    pub header_chunk: usize,
    /// Client SETTINGS parameters sent after the preface.
    pub settings: Vec<Setting>,
}

impl Default for EncodeOptions {
    fn default() -> EncodeOptions {
        EncodeOptions { use_huffman: true, data_chunk: 1024, header_chunk: 0, settings: Vec::new() }
    }
}

/// Renders whole client connection bytes: preface, SETTINGS, then each
/// request on streams 1, 3, 5, … . One shared HPACK encoder spans the
/// connection, exactly like a real client.
pub fn encode_client_connection(requests: &[H2Request], opts: &EncodeOptions) -> Vec<u8> {
    let mut out = Vec::with_capacity(256);
    out.extend_from_slice(PREFACE);
    settings_frame(&opts.settings, false).encode(&mut out);
    let mut hpack = Encoder::default();
    hpack.use_huffman = opts.use_huffman;
    for (i, req) in requests.iter().enumerate() {
        let stream_id = (2 * i + 1) as u32;
        let mut block = Vec::new();
        hpack.encode_block(&req.headers, &mut block);
        let end_stream = if req.body.is_empty() { flags::END_STREAM } else { 0 };
        if opts.header_chunk > 0 && block.len() > opts.header_chunk {
            let mut chunks = block.chunks(opts.header_chunk).peekable();
            let first = chunks.next().expect("block is non-empty");
            Frame::new(FrameType::Headers, end_stream, stream_id, first.to_vec()).encode(&mut out);
            while let Some(chunk) = chunks.next() {
                let f = if chunks.peek().is_none() { flags::END_HEADERS } else { 0 };
                Frame::new(FrameType::Continuation, f, stream_id, chunk.to_vec()).encode(&mut out);
            }
        } else {
            Frame::new(FrameType::Headers, flags::END_HEADERS | end_stream, stream_id, block)
                .encode(&mut out);
        }
        if !req.body.is_empty() {
            let chunk = opts.data_chunk.max(1);
            let n = req.body.len().div_ceil(chunk);
            for (j, data) in req.body.chunks(chunk).enumerate() {
                let f = if j + 1 == n { flags::END_STREAM } else { 0 };
                Frame::new(FrameType::Data, f, stream_id, data.to_vec()).encode(&mut out);
            }
        }
    }
    out
}

/// Stream states (the request-relevant subset of RFC 9113 §5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamState {
    Idle,
    Open,
    /// Client sent END_STREAM; request complete.
    HalfClosedRemote,
    /// Reset or finished.
    Closed,
}

/// Server-side stream-state bookkeeping for a client connection.
#[derive(Debug, Default)]
pub struct StreamMachine {
    states: BTreeMap<u32, StreamState>,
    highest: u32,
}

impl StreamMachine {
    /// Current state of a stream.
    pub fn state(&self, id: u32) -> StreamState {
        *self.states.get(&id).unwrap_or(&StreamState::Idle)
    }

    /// A HEADERS block arrived (first or trailers).
    pub fn recv_headers(&mut self, id: u32, end_stream: bool) -> Result<(), H2Error> {
        if id == 0 || id.is_multiple_of(2) {
            return Err(H2Error::new(
                H2ErrorKind::Malformed,
                format!("HEADERS on invalid client stream id {id}"),
            ));
        }
        match self.state(id) {
            StreamState::Idle => {
                if id <= self.highest {
                    return Err(H2Error::new(
                        H2ErrorKind::StreamState,
                        format!("stream id {id} not above highest opened {}", self.highest),
                    ));
                }
                self.highest = id;
                let next =
                    if end_stream { StreamState::HalfClosedRemote } else { StreamState::Open };
                self.states.insert(id, next);
                Ok(())
            }
            StreamState::Open => {
                // Trailers: legal only when they end the stream.
                if !end_stream {
                    return Err(H2Error::new(
                        H2ErrorKind::StreamState,
                        format!("trailers without END_STREAM on stream {id}"),
                    ));
                }
                self.states.insert(id, StreamState::HalfClosedRemote);
                Ok(())
            }
            s => Err(H2Error::new(
                H2ErrorKind::StreamState,
                format!("HEADERS on stream {id} in state {s:?}"),
            )),
        }
    }

    /// A DATA frame arrived.
    pub fn recv_data(&mut self, id: u32, end_stream: bool) -> Result<(), H2Error> {
        match self.state(id) {
            StreamState::Open => {
                if end_stream {
                    self.states.insert(id, StreamState::HalfClosedRemote);
                }
                Ok(())
            }
            s => Err(H2Error::new(
                H2ErrorKind::StreamState,
                format!("DATA on stream {id} in state {s:?}"),
            )),
        }
    }

    /// An RST_STREAM arrived.
    pub fn recv_rst(&mut self, id: u32) -> Result<(), H2Error> {
        if self.state(id) == StreamState::Idle {
            return Err(H2Error::new(
                H2ErrorKind::StreamState,
                format!("RST_STREAM on idle stream {id}"),
            ));
        }
        self.states.insert(id, StreamState::Closed);
        Ok(())
    }
}

/// One received request with its stream id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedRequest {
    pub stream_id: u32,
    pub request: H2Request,
    /// Whether a trailer HEADERS block contributed fields.
    pub had_trailers: bool,
}

/// Everything a front end learns from one client connection.
#[derive(Debug, Clone, Default)]
pub struct ClientConnection {
    /// Client SETTINGS parameters (first frame).
    pub settings: Vec<Setting>,
    /// Completed requests in stream order.
    pub requests: Vec<ParsedRequest>,
    /// Streams reset by the client before completing.
    pub resets: Vec<u32>,
    /// Total frames parsed.
    pub frames: usize,
    /// Whether the client sent GOAWAY.
    pub goaway: bool,
}

/// Strips DATA/HEADERS padding and the optional HEADERS priority
/// fields, returning the real fragment.
fn strip_padding_and_priority(
    header: &frame::FrameHeader,
    payload: &[u8],
) -> Result<Vec<u8>, H2Error> {
    let mut start = 0usize;
    let mut end = payload.len();
    if header.has_flag(flags::PADDED) {
        let pad = *payload.first().ok_or_else(|| {
            H2Error::new(H2ErrorKind::Malformed, "PADDED frame with empty payload")
        })? as usize;
        start = 1;
        if pad >= payload.len() {
            return Err(H2Error::new(
                H2ErrorKind::Malformed,
                format!("pad length {pad} >= payload length {}", payload.len()),
            ));
        }
        end = payload.len() - pad;
    }
    if header.kind == FrameType::Headers && header.has_flag(flags::PRIORITY) {
        if end - start < 5 {
            return Err(H2Error::new(H2ErrorKind::Malformed, "HEADERS priority fields truncated"));
        }
        start += 5;
    }
    if start > end {
        return Err(H2Error::new(H2ErrorKind::Malformed, "padding overlaps priority fields"));
    }
    Ok(payload[start..end].to_vec())
}

/// Parses whole client connection bytes as a front end would: preface,
/// SETTINGS, frames, HPACK, stream states. Fails with a typed error at
/// the first protocol violation — the downgrade profiles translate that
/// into their HTTP/1.1-facing behavior.
pub fn parse_client_connection(bytes: &[u8]) -> Result<ClientConnection, H2Error> {
    let rest = bytes
        .strip_prefix(PREFACE)
        .ok_or_else(|| H2Error::new(H2ErrorKind::Malformed, "missing or corrupt client preface"))?;
    let mut conn = ClientConnection::default();
    let mut machine = StreamMachine::default();
    let mut hpack = Decoder::default();
    // (stream id, end_stream flag, accumulated fragments)
    let mut pending_block: Option<(u32, bool, Vec<u8>)> = None;
    // Streams with headers decoded but END_STREAM not yet seen.
    let mut in_flight: BTreeMap<u32, ParsedRequest> = BTreeMap::new();
    let mut completed: Vec<ParsedRequest> = Vec::new();
    let mut pos = 0usize;
    let mut saw_settings = false;

    while pos < rest.len() {
        let (frame, used) = match split_frame(&rest[pos..], DEFAULT_MAX_FRAME_SIZE)? {
            Some(x) => x,
            None => {
                return Err(H2Error::new(
                    H2ErrorKind::Truncated,
                    format!("partial frame at offset {}", PREFACE.len() + pos),
                ))
            }
        };
        pos += used;
        conn.frames += 1;
        let h = frame.header;

        if !saw_settings && h.kind != FrameType::Settings {
            return Err(H2Error::new(
                H2ErrorKind::Malformed,
                format!("first frame after preface is {} not SETTINGS", h.kind),
            ));
        }
        if let Some((cont_id, _, _)) = pending_block {
            if h.kind != FrameType::Continuation || h.stream_id != cont_id {
                return Err(H2Error::new(
                    H2ErrorKind::Malformed,
                    format!(
                        "expected CONTINUATION on stream {cont_id}, got {} on stream {}",
                        h.kind, h.stream_id
                    ),
                ));
            }
        }

        match h.kind {
            FrameType::Settings => {
                if h.stream_id != 0 {
                    return Err(H2Error::new(
                        H2ErrorKind::Malformed,
                        format!("SETTINGS on stream {}", h.stream_id),
                    ));
                }
                if !h.has_flag(flags::ACK) {
                    let params = frame::parse_settings(&frame.payload)?;
                    if !saw_settings {
                        conn.settings = params;
                    }
                }
                saw_settings = true;
            }
            FrameType::Headers => {
                let fragment = strip_padding_and_priority(&h, &frame.payload)?;
                let end_stream = h.has_flag(flags::END_STREAM);
                if h.has_flag(flags::END_HEADERS) {
                    finish_block(
                        h.stream_id,
                        end_stream,
                        &fragment,
                        &mut machine,
                        &mut hpack,
                        &mut in_flight,
                        &mut completed,
                    )?;
                } else {
                    pending_block = Some((h.stream_id, end_stream, fragment));
                }
            }
            FrameType::Continuation => {
                let (id, end_stream, mut buf) = pending_block.take().expect("checked above");
                buf.extend_from_slice(&frame.payload);
                if h.has_flag(flags::END_HEADERS) {
                    finish_block(
                        id,
                        end_stream,
                        &buf,
                        &mut machine,
                        &mut hpack,
                        &mut in_flight,
                        &mut completed,
                    )?;
                } else {
                    pending_block = Some((id, end_stream, buf));
                }
            }
            FrameType::Data => {
                let end_stream = h.has_flag(flags::END_STREAM);
                machine.recv_data(h.stream_id, end_stream)?;
                let data = strip_padding_and_priority(&h, &frame.payload)?;
                let req = in_flight.get_mut(&h.stream_id).ok_or_else(|| {
                    H2Error::new(
                        H2ErrorKind::StreamState,
                        format!("DATA on stream {} with no open request", h.stream_id),
                    )
                })?;
                req.request.body.extend_from_slice(&data);
                if end_stream {
                    let req = in_flight.remove(&h.stream_id).expect("present above");
                    completed.push(req);
                }
            }
            FrameType::RstStream => {
                machine.recv_rst(h.stream_id)?;
                in_flight.remove(&h.stream_id);
                conn.resets.push(h.stream_id);
            }
            FrameType::Goaway => {
                conn.goaway = true;
                break;
            }
            // Flow control, pings, priority and unknown extension
            // frames do not affect request reconstruction.
            FrameType::WindowUpdate
            | FrameType::Ping
            | FrameType::Priority
            | FrameType::PushPromise
            | FrameType::Unknown(_) => {}
        }
    }

    if let Some((id, _, _)) = pending_block {
        return Err(H2Error::new(
            H2ErrorKind::Truncated,
            format!("header block on stream {id} never finished (END_HEADERS missing)"),
        ));
    }
    if let Some((&id, _)) = in_flight.iter().next() {
        return Err(H2Error::new(
            H2ErrorKind::Truncated,
            format!("stream {id} still open at end of connection (no END_STREAM)"),
        ));
    }
    completed.sort_by_key(|r| r.stream_id);
    conn.requests = completed;
    hdiff_obs::count("h2.conn.parsed", 1);
    hdiff_obs::count("h2.frames.parsed", conn.frames as u64);
    Ok(conn)
}

/// Decodes a finished header block and attributes it to its stream as
/// either the request headers or trailers.
fn finish_block(
    stream_id: u32,
    end_stream: bool,
    block: &[u8],
    machine: &mut StreamMachine,
    hpack: &mut Decoder,
    in_flight: &mut BTreeMap<u32, ParsedRequest>,
    completed: &mut Vec<ParsedRequest>,
) -> Result<(), H2Error> {
    let trailers = machine.state(stream_id) == StreamState::Open;
    machine.recv_headers(stream_id, end_stream)?;
    let headers = hpack
        .decode_block(block)
        .map_err(|e| H2Error::new(H2ErrorKind::Compression, e.to_string()))?;
    if trailers {
        let req = in_flight.get_mut(&stream_id).ok_or_else(|| {
            H2Error::new(
                H2ErrorKind::StreamState,
                format!("trailers on stream {stream_id} with no open request"),
            )
        })?;
        req.request.headers.extend(headers);
        req.had_trailers = true;
        if end_stream {
            let req = in_flight.remove(&stream_id).expect("present above");
            completed.push(req);
        }
        return Ok(());
    }
    let parsed = ParsedRequest {
        stream_id,
        request: H2Request { headers, body: Vec::new() },
        had_trailers: false,
    };
    if end_stream {
        completed.push(parsed);
    } else {
        in_flight.insert(stream_id, parsed);
    }
    Ok(())
}

/// One h2 response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct H2Response {
    pub status: u16,
    pub headers: Vec<Header>,
    pub body: Vec<u8>,
}

impl H2Response {
    /// A response with a body and no extra headers.
    pub fn new(status: u16, body: impl Into<Vec<u8>>) -> H2Response {
        H2Response { status, headers: Vec::new(), body: body.into() }
    }
}

/// Renders the server side of a connection: server SETTINGS, a SETTINGS
/// ACK, then per-stream HEADERS(+DATA) responses in the given order.
pub fn encode_server_connection(responses: &[(u32, H2Response)]) -> Vec<u8> {
    let mut out = Vec::with_capacity(128);
    settings_frame(&[], false).encode(&mut out);
    settings_frame(&[], true).encode(&mut out);
    let mut hpack = Encoder::default();
    for (stream_id, resp) in responses {
        let mut fields = vec![Header::new(":status", resp.status.to_string())];
        fields.extend(resp.headers.iter().cloned());
        let mut block = Vec::new();
        hpack.encode_block(&fields, &mut block);
        let end = if resp.body.is_empty() { flags::END_STREAM } else { 0 };
        Frame::new(FrameType::Headers, flags::END_HEADERS | end, *stream_id, block)
            .encode(&mut out);
        if !resp.body.is_empty() {
            Frame::new(FrameType::Data, flags::END_STREAM, *stream_id, resp.body.clone())
                .encode(&mut out);
        }
    }
    out
}

/// Parses the server side of a connection (what a client or probe
/// reads back): responses per stream, tolerating SETTINGS/ACK/GOAWAY
/// around them. Incomplete trailing bytes are an error.
pub fn parse_server_connection(bytes: &[u8]) -> Result<Vec<(u32, H2Response)>, H2Error> {
    let mut hpack = Decoder::default();
    let mut pos = 0usize;
    let mut open: BTreeMap<u32, H2Response> = BTreeMap::new();
    let mut done: Vec<(u32, H2Response)> = Vec::new();
    while pos < bytes.len() {
        let (frame, used) = match split_frame(&bytes[pos..], DEFAULT_MAX_FRAME_SIZE)? {
            Some(x) => x,
            None => {
                return Err(H2Error::new(
                    H2ErrorKind::Truncated,
                    format!("partial frame at offset {pos}"),
                ))
            }
        };
        pos += used;
        let h = frame.header;
        match h.kind {
            FrameType::Headers => {
                let fragment = strip_padding_and_priority(&h, &frame.payload)?;
                if !h.has_flag(flags::END_HEADERS) {
                    return Err(H2Error::new(
                        H2ErrorKind::Malformed,
                        "fragmented response header blocks are not modeled",
                    ));
                }
                let fields = hpack
                    .decode_block(&fragment)
                    .map_err(|e| H2Error::new(H2ErrorKind::Compression, e.to_string()))?;
                let status = fields
                    .iter()
                    .find(|f| f.name == b":status")
                    .and_then(|f| std::str::from_utf8(&f.value).ok())
                    .and_then(|s| s.parse::<u16>().ok())
                    .ok_or_else(|| {
                        H2Error::new(H2ErrorKind::Malformed, "response without :status")
                    })?;
                let resp = H2Response {
                    status,
                    headers: fields.into_iter().filter(|f| !f.is_pseudo()).collect(),
                    body: Vec::new(),
                };
                if h.has_flag(flags::END_STREAM) {
                    done.push((h.stream_id, resp));
                } else {
                    open.insert(h.stream_id, resp);
                }
            }
            FrameType::Data => {
                let data = strip_padding_and_priority(&h, &frame.payload)?;
                if let Some(resp) = open.get_mut(&h.stream_id) {
                    resp.body.extend_from_slice(&data);
                    if h.has_flag(flags::END_STREAM) {
                        let resp = open.remove(&h.stream_id).expect("present above");
                        done.push((h.stream_id, resp));
                    }
                }
            }
            FrameType::Goaway => break,
            _ => {}
        }
    }
    done.extend(open);
    done.sort_by_key(|(id, _)| *id);
    Ok(done)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_request_round_trips() {
        let req = H2Request::post("/submit", "example.com", b"hello".to_vec())
            .with_header("content-type", "text/plain");
        let bytes = encode_client_connection(std::slice::from_ref(&req), &EncodeOptions::default());
        assert!(bytes.starts_with(PREFACE));
        let conn = parse_client_connection(&bytes).unwrap();
        assert_eq!(conn.requests.len(), 1);
        assert_eq!(conn.requests[0].stream_id, 1);
        assert_eq!(conn.requests[0].request, req);
    }

    #[test]
    fn multiple_requests_share_the_hpack_connection_state() {
        let reqs = vec![
            H2Request::get("/a", "example.com").with_header("x-shared", "same-value"),
            H2Request::get("/b", "example.com").with_header("x-shared", "same-value"),
        ];
        let bytes = encode_client_connection(&reqs, &EncodeOptions::default());
        let conn = parse_client_connection(&bytes).unwrap();
        assert_eq!(conn.requests.len(), 2);
        assert_eq!(conn.requests[0].stream_id, 1);
        assert_eq!(conn.requests[1].stream_id, 3);
        assert_eq!(conn.requests[0].request.headers, reqs[0].headers);
        assert_eq!(conn.requests[1].request.headers, reqs[1].headers);
    }

    #[test]
    fn continuation_split_produces_identical_requests() {
        let req = H2Request::get("/long", "example.com")
            .with_header("x-padding", &"v".repeat(200))
            .with_header("x-more", &"w".repeat(200));
        let whole = encode_client_connection(std::slice::from_ref(&req), &EncodeOptions::default());
        let split = encode_client_connection(
            std::slice::from_ref(&req),
            &EncodeOptions { header_chunk: 32, ..EncodeOptions::default() },
        );
        assert_ne!(whole, split);
        let a = parse_client_connection(&whole).unwrap();
        let b = parse_client_connection(&split).unwrap();
        assert_eq!(a.requests[0].request, b.requests[0].request);
    }

    #[test]
    fn data_chunking_is_reassembled() {
        let body: Vec<u8> = (0..=255u8).cycle().take(5000).collect();
        let req = H2Request::post("/up", "example.com", body.clone());
        let bytes = encode_client_connection(
            std::slice::from_ref(&req),
            &EncodeOptions { data_chunk: 100, ..EncodeOptions::default() },
        );
        let conn = parse_client_connection(&bytes).unwrap();
        assert_eq!(conn.requests[0].request.body, body);
    }

    #[test]
    fn encoding_is_deterministic() {
        let reqs = vec![
            H2Request::get("/a", "h").with_header("k", "v"),
            H2Request::post("/b", "h", b"body".to_vec()),
        ];
        let opts = EncodeOptions::default();
        assert_eq!(encode_client_connection(&reqs, &opts), encode_client_connection(&reqs, &opts));
    }

    #[test]
    fn bad_preface_is_rejected() {
        let err = parse_client_connection(b"GET / HTTP/1.1\r\n\r\n").unwrap_err();
        assert_eq!(err.kind, H2ErrorKind::Malformed);
        assert!(err.detail.contains("preface"));
    }

    #[test]
    fn first_frame_must_be_settings() {
        let mut bytes = PREFACE.to_vec();
        Frame::new(FrameType::Ping, 0, 0, vec![0; 8]).encode(&mut bytes);
        let err = parse_client_connection(&bytes).unwrap_err();
        assert!(err.detail.contains("SETTINGS"), "{err}");
    }

    #[test]
    fn unfinished_stream_is_truncated() {
        let req = H2Request::post("/x", "h", b"body".to_vec());
        let bytes = encode_client_connection(std::slice::from_ref(&req), &EncodeOptions::default());
        // Drop the final DATA frame.
        let cut = bytes.len() - (frame::FRAME_HEADER_LEN + 4);
        let err = parse_client_connection(&bytes[..cut]).unwrap_err();
        assert_eq!(err.kind, H2ErrorKind::Truncated);
    }

    #[test]
    fn stream_machine_enforces_monotonic_ids() {
        let mut m = StreamMachine::default();
        m.recv_headers(5, true).unwrap();
        let err = m.recv_headers(3, true).unwrap_err();
        assert_eq!(err.kind, H2ErrorKind::StreamState);
        assert!(m.recv_headers(4, true).is_err(), "even ids rejected");
        assert!(m.recv_headers(0, true).is_err(), "stream 0 rejected");
    }

    #[test]
    fn data_before_headers_is_a_stream_error() {
        let mut bytes = PREFACE.to_vec();
        settings_frame(&[], false).encode(&mut bytes);
        Frame::new(FrameType::Data, flags::END_STREAM, 1, b"x".to_vec()).encode(&mut bytes);
        let err = parse_client_connection(&bytes).unwrap_err();
        assert_eq!(err.kind, H2ErrorKind::StreamState);
    }

    #[test]
    fn trailers_are_appended_to_the_header_list() {
        let req = H2Request::post("/t", "h", b"hello".to_vec());
        let mut bytes =
            encode_client_connection(std::slice::from_ref(&req), &{ EncodeOptions::default() });
        // Rewrite: build manually to add trailers after DATA without
        // END_STREAM on the data frame.
        bytes.clear();
        bytes.extend_from_slice(PREFACE);
        settings_frame(&[], false).encode(&mut bytes);
        let mut enc = Encoder::default();
        let mut block = Vec::new();
        enc.encode_block(&req.headers, &mut block);
        Frame::new(FrameType::Headers, flags::END_HEADERS, 1, block).encode(&mut bytes);
        Frame::new(FrameType::Data, 0, 1, b"hello".to_vec()).encode(&mut bytes);
        let mut trailer_block = Vec::new();
        enc.encode_block(&[Header::new("x-checksum", "abc")], &mut trailer_block);
        Frame::new(FrameType::Headers, flags::END_HEADERS | flags::END_STREAM, 1, trailer_block)
            .encode(&mut bytes);
        let conn = parse_client_connection(&bytes).unwrap();
        assert_eq!(conn.requests.len(), 1);
        assert!(conn.requests[0].had_trailers);
        assert_eq!(conn.requests[0].request.header("x-checksum"), Some(&b"abc"[..]));
        assert_eq!(conn.requests[0].request.body, b"hello");
    }

    #[test]
    fn rst_stream_discards_the_request() {
        let mut bytes = PREFACE.to_vec();
        settings_frame(&[], false).encode(&mut bytes);
        let mut enc = Encoder::default();
        let mut block = Vec::new();
        enc.encode_block(&H2Request::post("/x", "h", b"b".to_vec()).headers, &mut block);
        Frame::new(FrameType::Headers, flags::END_HEADERS, 1, block).encode(&mut bytes);
        frame::rst_stream_frame(1, frame::error_code::PROTOCOL_ERROR).encode(&mut bytes);
        let conn = parse_client_connection(&bytes).unwrap();
        assert!(conn.requests.is_empty());
        assert_eq!(conn.resets, vec![1]);
    }

    #[test]
    fn response_connection_round_trips() {
        let responses = vec![
            (1u32, H2Response::new(200, b"ok".to_vec())),
            (3u32, H2Response::new(404, Vec::new())),
        ];
        let bytes = encode_server_connection(&responses);
        assert_eq!(parse_server_connection(&bytes).unwrap(), responses);
    }

    #[test]
    fn padded_frames_are_stripped() {
        let mut bytes = PREFACE.to_vec();
        settings_frame(&[], false).encode(&mut bytes);
        let mut enc = Encoder::default();
        let mut block = Vec::new();
        enc.encode_block(&H2Request::post("/p", "h", Vec::new()).headers, &mut block);
        Frame::new(FrameType::Headers, flags::END_HEADERS, 1, block).encode(&mut bytes);
        // Hand-build a padded DATA frame: padlen 3, "abc", 3 pad bytes.
        let mut payload = vec![3u8];
        payload.extend_from_slice(b"abc");
        payload.extend_from_slice(&[0, 0, 0]);
        Frame::new(FrameType::Data, flags::END_STREAM | flags::PADDED, 1, payload)
            .encode(&mut bytes);
        let conn = parse_client_connection(&bytes).unwrap();
        assert_eq!(conn.requests[0].request.body, b"abc");
    }
}
