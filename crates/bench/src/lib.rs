//! Benchmark and table/figure regeneration harness for HDiff.
//!
//! Binaries (one per paper artifact — see `DESIGN.md` §4):
//!
//! * `table0_stats` — the §IV-B corpus/extraction/generation statistics.
//! * `table1_vulnerabilities` — Table I (implementations × verdicts).
//! * `table2_attack_examples` — Table II (attack-vector inventory).
//! * `figure7_server_pairs` — Figure 7 (pair grids per attack class).
//! * `ablations` — the DESIGN.md §5 ablation studies (replay reduction,
//!   predefined leaf rules, depth cap, mutation rounds, SR finder recall).
//!
//! Criterion benches (`cargo bench`) measure pipeline-stage cost.

use hdiff_core::{HDiff, HdiffConfig, PipelineReport};

/// Runs the full-configuration pipeline once (shared by harness binaries).
pub fn full_run() -> PipelineReport {
    HDiff::new(HdiffConfig::full()).run()
}

/// Runs the quick-configuration pipeline once.
pub fn quick_run() -> PipelineReport {
    HDiff::new(HdiffConfig::quick()).run()
}
