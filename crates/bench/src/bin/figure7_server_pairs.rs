//! Regenerates Figure 7: server pairs affected by the three attacks.

use hdiff_gen::AttackClass;

fn main() {
    let report = hdiff_bench::full_run();
    println!("{}", hdiff_core::report::render_figure7(&report.summary));

    for class in AttackClass::ALL {
        let pairs = report.summary.pairs.pairs(class);
        println!("[{class}] pairs:");
        for (front, back) in pairs {
            println!("  {front} -> {back}");
        }
    }
    println!(
        "\nCPDoS-affected proxies: {} of 6 (paper: all proxies affected)",
        report.summary.pairs.fronts(AttackClass::Cpdos).len()
    );
}
