//! The DESIGN.md §5 ablation studies, printed as a report:
//!
//! 1. replay reduction — candidate-set reduction factor;
//! 2. predefined leaf rules — server rejection rate with vs. without;
//! 3. recursion depth cap — output size/acceptance sweep;
//! 4. mutation rounds — strict-parse survival per round count;
//! 5. sentiment SR finder vs. RFC 2119 keyword grep — recall comparison;
//! 6. ABNF-tree mutation — how often mutated-tree generation leaves the
//!    grammar, and how the lenient products treat the escapees.

use hdiff_analyzer::{sentences, DocumentAnalyzer, SentimentClassifier};
use hdiff_diff::workflow::is_ambiguous;
use hdiff_gen::{AbnfGenerator, GenOptions, MutationEngine, PredefinedRules, TreeMutator};
use hdiff_servers::{interpret, ParserProfile};
use hdiff_wire::{Method, Request, Version};

fn main() {
    let analysis = DocumentAnalyzer::with_default_inputs().analyze(&hdiff_corpus::core_documents());
    let strict = ParserProfile::strict("baseline");

    // ---- 1. replay reduction -------------------------------------------------
    println!("== ablation 1: replay reduction (§IV-A step 2) ==");
    let hdiff = hdiff_core::HDiff::new(hdiff_core::HdiffConfig::full());
    let cases = hdiff.generate_cases(&analysis);
    let ambiguous = cases.iter().filter(|c| is_ambiguous(&c.request.to_bytes())).count();
    println!(
        "  {} of {} generated cases are ambiguous -> replay workload reduced by {:.1}x",
        ambiguous,
        cases.len(),
        cases.len() as f64 / ambiguous.max(1) as f64
    );

    // ---- 2. predefined leaf rules ---------------------------------------------
    println!("\n== ablation 2: predefined leaf rules (§III-D) ==");
    for (label, predefined) in [
        ("with predefined", PredefinedRules::standard()),
        ("without predefined", PredefinedRules::empty()),
    ] {
        let mut gen = AbnfGenerator::new(
            analysis.grammar.clone(),
            GenOptions { predefined, ..GenOptions::default() },
        );
        let hosts = gen.generate_many("Host", 200);
        let accepted = hosts
            .iter()
            .filter(|h| {
                let mut b = Request::builder();
                b.method(Method::Get).target("/").version(Version::Http11).header("Host", h);
                interpret(&strict, &b.build().to_bytes()).outcome.is_accept()
            })
            .count();
        println!(
            "  {label:<20}: {}/{} generated Host values accepted by the strict server ({:.0}%)",
            accepted,
            hosts.len(),
            100.0 * accepted as f64 / hosts.len().max(1) as f64
        );
    }

    // ---- 3. recursion depth cap ------------------------------------------------
    println!("\n== ablation 3: recursion depth cap sweep ==");
    for depth in [2usize, 4, 7, 10] {
        let mut gen = AbnfGenerator::new(
            analysis.grammar.clone(),
            GenOptions { max_depth: depth, ..GenOptions::default() },
        );
        let msgs = gen.generate_many("HTTP-message", 50);
        let avg: f64 = msgs.iter().map(|m| m.len() as f64).sum::<f64>() / msgs.len().max(1) as f64;
        println!("  depth {depth:>2}: {} distinct messages, average {avg:.0} bytes", msgs.len());
    }

    // ---- 4. mutation rounds ------------------------------------------------------
    println!("\n== ablation 4: mutation rounds vs strict-parse survival ==");
    for rounds in [1usize, 2, 4, 8] {
        let mut mutator = MutationEngine::new(7);
        mutator.rounds = rounds;
        let mut survived = 0usize;
        const N: usize = 200;
        for i in 0..N {
            let mut req = Request::builder()
                .method(Method::Get)
                .target("/")
                .version(Version::Http11)
                .header("Host", format!("h{i}.com"))
                .build();
            mutator.mutate(&mut req);
            if interpret(&strict, &req.to_bytes()).outcome.is_accept() {
                survived += 1;
            }
        }
        println!(
            "  {rounds} round(s): {survived}/{N} mutants still accepted by the strict parser ({:.0}%)",
            100.0 * survived as f64 / N as f64
        );
    }

    // ---- 5. SR finder recall -------------------------------------------------------
    println!("\n== ablation 5: sentiment SR finder vs RFC 2119 keyword grep ==");
    let classifier = SentimentClassifier::new();
    let mut sentiment_total = 0usize;
    let mut grep_total = 0usize;
    let mut sentiment_only = 0usize;
    for doc in hdiff_corpus::core_documents() {
        for s in sentences(&doc.full_text()) {
            let by_sentiment = classifier.is_requirement(&s.text);
            let by_grep = SentimentClassifier::keyword_grep(&s.text);
            sentiment_total += usize::from(by_sentiment);
            grep_total += usize::from(by_grep);
            sentiment_only += usize::from(by_sentiment && !by_grep);
        }
    }
    println!("  sentiment finder : {sentiment_total} candidate sentences");
    println!("  keyword grep     : {grep_total} candidate sentences");
    println!("  found only by the sentiment finder (keyword-less SRs): {sentiment_only}");

    // ---- 6. tree mutation ---------------------------------------------------
    println!("\n== ablation 6: ABNF-tree mutation (§III-D malformed host data) ==");
    let mut tm = TreeMutator::new(0xab1a7e);
    let values = tm.malformed_values(&analysis.grammar, "Host", 200);
    let escaped = values
        .iter()
        .filter(|(v, _)| {
            // Default budget: the memoizing matcher decides every
            // tree-mutated value without overflowing.
            let outcome = hdiff_abnf::matcher::matches(&analysis.grammar, "Host", v);
            assert_ne!(outcome, hdiff_abnf::MatchOutcome::Overflow, "matcher overflowed on {v:?}");
            !outcome.is_match()
        })
        .count();
    println!(
        "  {} of {} mutated-tree host values leave the Host grammar ({:.0}%)",
        escaped,
        values.len(),
        100.0 * escaped as f64 / values.len().max(1) as f64
    );
    let mut lenient_accepts = 0usize;
    let mut strict_accepts = 0usize;
    let varnish = hdiff_servers::product(hdiff_servers::ProductId::Varnish);
    for (v, _) in &values {
        let mut b = Request::builder();
        b.method(Method::Get).target("/").version(Version::Http11).header("Host", v);
        let bytes = b.build().to_bytes();
        if interpret(&varnish, &bytes).outcome.is_accept() {
            lenient_accepts += 1;
        }
        if interpret(&strict, &bytes).outcome.is_accept() {
            strict_accepts += 1;
        }
    }
    println!(
        "  acceptance of the mutants: varnish (transparent) {}/{}, strict baseline {}/{}",
        lenient_accepts,
        values.len(),
        strict_accepts,
        values.len()
    );
}
