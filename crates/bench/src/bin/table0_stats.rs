//! Regenerates the §IV-B statistics paragraph ("Table 0").

fn main() {
    let report = hdiff_bench::full_run();
    println!("{}", hdiff_core::report::render_stats(&report));
    println!(
        "conversion: {} candidates -> {} sentences converted, {} dropped, {} anaphora merges",
        report.analysis.stats.convert.candidates,
        report.analysis.stats.convert.converted,
        report.analysis.stats.convert.dropped,
        report.analysis.stats.convert.anaphora_merges,
    );
    println!(
        "adaptation: {} namespaced, {} prose expanded, {} custom substitutions, {} unresolved",
        report.analysis.adapt_report.namespaced.len(),
        report.analysis.adapt_report.expanded_prose.len(),
        report.analysis.adapt_report.substituted.len(),
        report.analysis.adapt_report.still_undefined.len(),
    );
}
