//! Regenerates Table II: the attack-vector inventory with example payloads
//! and the findings each produced.

use hdiff_gen::catalog;
use hdiff_wire::ascii;

fn main() {
    let report = hdiff_bench::full_run();
    println!("{}", hdiff_core::report::render_table2(&report.summary));

    println!("== example payloads per vector ==");
    for entry in catalog::catalog() {
        println!("\n[{}] {} ({})", entry.group, entry.description, entry.id);
        for (req, note) in entry.requests.iter().take(2) {
            println!("  {note}:");
            for line in ascii::escape_bytes(&req.to_bytes()).split("\\r\\n") {
                if !line.is_empty() {
                    println!("    {line}");
                }
            }
        }
    }
}
