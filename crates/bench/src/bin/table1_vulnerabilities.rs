//! Regenerates Table I: tested implementations and vulnerability verdicts.

fn main() {
    let report = hdiff_bench::full_run();
    println!("{}", hdiff_core::report::render_table1(&report.summary));
    println!("{}", hdiff_core::report::render_sr_violations(&report.summary));

    // The paper's final step: re-run every candidate exploit and confirm.
    let verified =
        hdiff_diff::verify_all(&hdiff_servers::products(), &report.summary.findings, &report.cases);
    let confirmed = verified.iter().filter(|v| v.confirmed).count();
    println!(
        "findings: {} total over {} test cases; verification confirmed {} ({:.0}%)",
        report.summary.findings.len(),
        report.summary.cases,
        confirmed,
        100.0 * confirmed as f64 / verified.len().max(1) as f64,
    );
}
