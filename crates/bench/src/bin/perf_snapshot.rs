//! Writes `BENCH_matcher.json`: median ns/op for the compiled matcher,
//! the legacy reference matcher, ABNF generation, and a full
//! workflow+detection case — the perf numbers the compiled-IR rewrite
//! is accountable for. Also writes `BENCH_minimize.json`: aggregate
//! shrink ratio and wall time for delta-debugging the noise-padded
//! Table II catalog down to minimal reproducers.
//!
//! Also writes `BENCH_net.json`: throughput and round-trip latency of
//! the loopback TCP transport against the same profiles called
//! in-process, over the Table II catalog payloads.
//!
//! Also writes `BENCH_obs.json`: quick-campaign wall time with telemetry
//! collecting versus disabled — the overhead budget for the
//! instrumentation layer.
//!
//! Also writes `BENCH_fleet.json`: quick-campaign wall time single-process
//! versus a four-shard worker fleet, and whether the merged summary
//! converged to the single-process one. Skipped (with a note) when the
//! `hdiff` binary is not built next to this snapshot binary.
//!
//! Also writes `BENCH_h2.json` (h2 framing/HPACK costs and downgrade
//! campaign throughput) and `BENCH_cookie.json` (the eight-profile
//! cookie matrix per-case cost and the protocol-generic campaign
//! throughput).
//!
//! Usage: `cargo run --release -p hdiff-bench --bin perf_snapshot`
//! (`-- --smoke` for a fast CI-sized run).

use std::time::Instant;

use hdiff_abnf::matcher;
use hdiff_analyzer::DocumentAnalyzer;
use hdiff_diff::workflow::Workflow;
use hdiff_diff::{detect_case, FindingContext, MinimizeOptions};
use hdiff_gen::{catalog, AbnfGenerator, GenOptions, TestCase};
use hdiff_wire::Request;

/// Budget the old call sites granted the backtracking matcher.
const REFERENCE_BUDGET: usize = 500_000;

/// The matching workload (same shapes as `benches/matcher.rs`).
const WORKLOAD: &[(&str, &str)] = &[
    ("Host", "example.com:8080"),
    ("Host", "a.b.c.d.e.f.g.example.com:80"),
    ("Host", "mutated.host.with.many.labels.and.a.long.tail.example.com:8080"),
    ("Host", "h1.com@h2.com"),
    ("uri-host", "127.0.0.1"),
    ("origin-form", "/a/b/c/d/e/index.html?q=1&r=2"),
    ("transfer-coding", "chunked"),
];

/// Runs `f` (`reps` ops per sample, `samples` samples) and returns the
/// median per-op nanoseconds.
fn median_ns(samples: usize, reps: usize, mut f: impl FnMut()) -> f64 {
    let mut per_op = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        for _ in 0..reps {
            f();
        }
        per_op.push(start.elapsed().as_nanos() as f64 / reps as f64);
    }
    per_op.sort_by(|a, b| a.total_cmp(b));
    per_op[per_op.len() / 2]
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (samples, reps) = if smoke { (5, 10) } else { (21, 200) };

    let analysis = DocumentAnalyzer::with_default_inputs().analyze(&hdiff_corpus::core_documents());
    let grammar = &analysis.grammar;
    let _ = grammar.compiled(); // compile once, outside the timing loops

    // One matching "op" sweeps the whole workload, so both matchers pay
    // for the same mix of accepts and rejects.
    let compiled_ns = median_ns(samples, reps, || {
        for (rule, input) in WORKLOAD {
            std::hint::black_box(matcher::matches(grammar, rule, input.as_bytes()));
        }
    }) / WORKLOAD.len() as f64;
    let reference_ns = median_ns(samples, reps.div_ceil(10), || {
        for (rule, input) in WORKLOAD {
            std::hint::black_box(matcher::reference::matches_with_budget(
                grammar,
                rule,
                input.as_bytes(),
                REFERENCE_BUDGET,
            ));
        }
    }) / WORKLOAD.len() as f64;
    let speedup = reference_ns / compiled_ns;

    let mut generator = AbnfGenerator::new(grammar.clone(), GenOptions::default());
    let generate_ns = median_ns(samples, reps, || {
        std::hint::black_box(generator.generate("Host"));
    });

    let workflow = Workflow::standard();
    let products = hdiff_servers::products();
    let case = TestCase::generated(1, Request::get("h1.com@h2.com"), "perf snapshot case");
    let full_case_ns = median_ns(samples, reps.div_ceil(10), || {
        let outcome = workflow.run_case(&case);
        std::hint::black_box(detect_case(&products, &outcome));
    });

    let json = format!(
        "{{\n  \"schema\": \"hdiff-bench-matcher-v1\",\n  \"smoke\": {smoke},\n  \"samples\": {samples},\n  \"workload_inputs\": {},\n  \"match_compiled_ns\": {compiled_ns:.1},\n  \"match_reference_ns\": {reference_ns:.1},\n  \"speedup\": {speedup:.1},\n  \"generate_host_ns\": {generate_ns:.1},\n  \"full_case_ns\": {full_case_ns:.1}\n}}\n",
        WORKLOAD.len()
    );
    std::fs::write("BENCH_matcher.json", &json).expect("write BENCH_matcher.json");
    print!("{json}");
    eprintln!(
        "compiled {compiled_ns:.0} ns/op vs reference {reference_ns:.0} ns/op -> {speedup:.1}x"
    );

    minimize_snapshot(smoke, &workflow, &products);
    let net_gate_ok = net_snapshot(smoke);
    obs_snapshot(smoke);
    fleet_snapshot(smoke);
    h2_snapshot(smoke);
    cookie_snapshot(smoke);
    if !net_gate_ok {
        eprintln!("perf_snapshot: BENCH_net regression gate FAILED (see above)");
        std::process::exit(1);
    }
}

/// Pulls a bare numeric value out of the flat snapshot JSON (the files
/// this binary writes never nest, so a key scan is enough).
fn json_number(doc: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = doc.find(&needle)? + needle.len();
    let rest = doc[at..].trim_start();
    let end =
        rest.find(|c: char| c != '-' && c != '.' && !c.is_ascii_digit()).unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Writes `BENCH_fleet.json`: quick-campaign wall time in-process versus
/// a four-shard worker fleet, plus a convergence bit (merged summary ==
/// single-process summary). The fleet pays per-worker corpus preparation,
/// so on the quick campaign the interesting number is the overhead, not a
/// speedup.
fn fleet_snapshot(smoke: bool) {
    use hdiff_core::{HDiff, HdiffConfig};
    use hdiff_fleet::{run_fleet, FleetConfig};

    let worker_exe = std::env::current_exe()
        .ok()
        .and_then(|p| Some(p.parent()?.join(format!("hdiff{}", std::env::consts::EXE_SUFFIX))))
        .filter(|p| p.is_file());
    let Some(worker_exe) = worker_exe else {
        eprintln!(
            "BENCH_fleet: no hdiff binary next to perf_snapshot \
             (build it with `cargo build --release` first); skipping"
        );
        return;
    };

    let rounds = if smoke { 1 } else { 3 };
    let shards = 4u32;
    let config = HdiffConfig::quick();

    let mut single_ms = f64::INFINITY;
    let mut single_summary = None;
    for _ in 0..rounds {
        let start = Instant::now();
        let report = HDiff::new(config.clone()).run();
        single_ms = single_ms.min(start.elapsed().as_secs_f64() * 1e3);
        single_summary = Some(report.summary);
    }

    let mut fleet_ms = f64::INFINITY;
    let mut converged = false;
    for round in 0..rounds {
        let dir =
            std::env::temp_dir().join(format!("hdiff-bench-fleet-{}-{round}", std::process::id()));
        let mut fleet = FleetConfig::new(shards, dir);
        fleet.worker_exe = worker_exe.clone();
        let start = Instant::now();
        match run_fleet(&config, &fleet) {
            Ok(report) => {
                fleet_ms = fleet_ms.min(start.elapsed().as_secs_f64() * 1e3);
                converged = Some(&report.summary) == single_summary.as_ref();
            }
            Err(err) => {
                eprintln!("BENCH_fleet: fleet round failed: {err}");
                return;
            }
        }
    }
    let overhead = fleet_ms / single_ms.max(1e-9) - 1.0;

    let json = format!(
        "{{\n  \"schema\": \"hdiff-bench-fleet-v1\",\n  \"smoke\": {smoke},\n  \"rounds\": {rounds},\n  \"shards\": {shards},\n  \"single_ms\": {single_ms:.1},\n  \"fleet_ms\": {fleet_ms:.1},\n  \"overhead_pct\": {:.1},\n  \"converged\": {converged}\n}}\n",
        overhead * 100.0
    );
    std::fs::write("BENCH_fleet.json", &json).expect("write BENCH_fleet.json");
    print!("{json}");
    eprintln!(
        "single {single_ms:.0} ms vs {shards}-shard fleet {fleet_ms:.0} ms \
         -> {:.1}% overhead, converged: {converged}",
        overhead * 100.0
    );
}

/// Writes `BENCH_obs.json`: wall time of the quick campaign with
/// telemetry collecting versus fully disabled, and the overhead the
/// instrumentation layer is accountable for (budget: <= 5%).
fn obs_snapshot(smoke: bool) {
    use hdiff_core::{HDiff, HdiffConfig};

    let rounds = if smoke { 2 } else { 7 };
    let campaign = |telemetry: bool| -> f64 {
        let mut config = HdiffConfig::quick();
        config.telemetry = telemetry;
        let start = Instant::now();
        let report = HDiff::new(config).run();
        let wall = start.elapsed().as_secs_f64() * 1e3;
        std::hint::black_box(&report.summary);
        wall
    };
    // Warm-up pass so neither arm pays one-time lazy-init costs, then
    // interleave the arms so clock drift and cache state hit both
    // equally; the minimum is the least-noisy estimate of each.
    let _ = campaign(false);
    let mut instrumented_ms = f64::INFINITY;
    let mut disabled_ms = f64::INFINITY;
    for _ in 0..rounds {
        instrumented_ms = instrumented_ms.min(campaign(true));
        disabled_ms = disabled_ms.min(campaign(false));
    }
    hdiff_obs::set_enabled(true);
    let overhead = instrumented_ms / disabled_ms.max(1e-9) - 1.0;

    let json = format!(
        "{{\n  \"schema\": \"hdiff-bench-obs-v1\",\n  \"smoke\": {smoke},\n  \"rounds\": {rounds},\n  \"instrumented_ms\": {instrumented_ms:.1},\n  \"disabled_ms\": {disabled_ms:.1},\n  \"overhead_pct\": {:.1}\n}}\n",
        overhead * 100.0
    );
    std::fs::write("BENCH_obs.json", &json).expect("write BENCH_obs.json");
    print!("{json}");
    eprintln!(
        "telemetry on {instrumented_ms:.0} ms vs off {disabled_ms:.0} ms \
         -> {:.1}% overhead",
        overhead * 100.0
    );
}

/// Writes `BENCH_net.json`: requests/second and p50/p99 round-trip time
/// for the Table II catalog served over loopback TCP, next to the same
/// profile invoked as an in-process function on identical bytes — plus a
/// reactor concurrency sweep (1/64/512 driven connections, pipelined 32
/// deep) for the async transport.
///
/// Returns the regression-gate verdict against the *committed*
/// `BENCH_net.json` read before overwriting: in full mode the async
/// 512-connection throughput must stay within 20% of the baseline; in
/// smoke mode (CI hardware varies) the speedup-over-blocking ratio is
/// compared instead, with the 10x acceptance target as an alternate
/// floor. A baseline without async keys skips the gate with a note.
fn net_snapshot(smoke: bool) -> bool {
    use hdiff_net::{DriveSpec, Job, NetServer, NetServerConfig, Reactor, SendMode, WireClient};
    use std::time::Duration;

    let previous = std::fs::read_to_string("BENCH_net.json").ok();
    let rounds = if smoke { 2 } else { 10 };
    let payloads: Vec<Vec<u8>> = catalog::catalog()
        .iter()
        .flat_map(|e| e.requests.iter().map(|(req, _)| req.to_bytes()))
        .collect();
    let profile = hdiff_servers::backends().into_iter().next().expect("at least one backend");

    // In-process baseline: the same engine as a function call.
    let server = hdiff_servers::Server::new(profile.clone());
    let mut sim_rtts_ns = Vec::new();
    for _ in 0..rounds {
        for bytes in &payloads {
            let start = Instant::now();
            std::hint::black_box(server.handle_stream(bytes));
            sim_rtts_ns.push(start.elapsed().as_nanos() as f64);
        }
    }

    // Wire: one exchange (connect, send, FIN, read to EOF) per payload.
    let net =
        NetServer::spawn(profile.clone(), NetServerConfig::default()).expect("spawn net server");
    let client = WireClient::new(net.addr());
    let mut tcp_rtts_ns = Vec::new();
    let wall = Instant::now();
    for _ in 0..rounds {
        for bytes in &payloads {
            let start = Instant::now();
            let exchange = client.exchange(bytes, &SendMode::Whole).expect("wire exchange");
            std::hint::black_box(&exchange.response);
            tcp_rtts_ns.push(start.elapsed().as_nanos() as f64);
        }
    }
    let tcp_wall_s = wall.elapsed().as_secs_f64();
    let req_per_s = tcp_rtts_ns.len() as f64 / tcp_wall_s.max(1e-9);
    drop(net);

    let percentile = |samples: &mut Vec<f64>, p: f64| -> f64 {
        samples.sort_by(|a, b| a.total_cmp(b));
        let idx = ((samples.len() - 1) as f64 * p).round() as usize;
        samples[idx]
    };
    let tcp_p50_us = percentile(&mut tcp_rtts_ns, 0.50) / 1e3;
    let tcp_p99_us = percentile(&mut tcp_rtts_ns, 0.99) / 1e3;
    let sim_p50_us = percentile(&mut sim_rtts_ns, 0.50) / 1e3;
    let sim_p99_us = percentile(&mut sim_rtts_ns, 0.99) / 1e3;

    // Async sweep: N pipelined connections driven by the epoll reactor
    // against one strict origin (reply retention off, so the numbers
    // measure the loop, not Vec growth).
    const PIPELINE: usize = 32;
    const SWEEP: [usize; 3] = [1, 64, 512];
    let async_points: Option<Vec<f64>> = match Reactor::spawn() {
        Err(err) => {
            eprintln!("BENCH_net: async sweep skipped (no reactor backend: {err})");
            None
        }
        Ok(reactor) => {
            let config = NetServerConfig { max_messages: usize::MAX, ..NetServerConfig::default() };
            let origin = reactor.add_origin(profile, config, false).expect("add sweep origin");
            let payload = b"GET / HTTP/1.1\r\nHost: h\r\n\r\n".to_vec();
            let sweep_rounds = if smoke { 1 } else { 3 };
            let mut points = Vec::new();
            for conns in SWEEP {
                let per_conn = if smoke {
                    (20_000 / conns as u64).max(100)
                } else {
                    (150_000 / conns as u64).max(1_000)
                };
                let mut best = 0f64;
                for _ in 0..sweep_rounds {
                    let jobs: Vec<Job> = (0..conns)
                        .map(|_| {
                            Job::Drive(DriveSpec {
                                addr: origin.addr,
                                payload: payload.clone(),
                                requests: per_conn,
                                pipeline: PIPELINE,
                                read_timeout: Duration::from_secs(5),
                            })
                        })
                        .collect();
                    let start = Instant::now();
                    let outs = reactor.run(jobs);
                    let wall = start.elapsed().as_secs_f64();
                    let completed: u64 =
                        outs.iter().filter_map(|o| o.as_drive()).map(|d| d.completed).sum();
                    assert_eq!(
                        completed,
                        per_conn * conns as u64,
                        "async sweep dropped requests at {conns} conns"
                    );
                    best = best.max(completed as f64 / wall.max(1e-9));
                }
                eprintln!("async sweep: {conns} conns x {per_conn} reqs -> {best:.0} req/s");
                points.push(best);
            }
            Some(points)
        }
    };

    let async_block = match &async_points {
        Some(points) => {
            let speedup = points[2] / req_per_s.max(1e-9);
            format!(
                ",\n  \"async_pipeline_depth\": {PIPELINE},\n  \"async_1_req_per_s\": {:.0},\n  \"async_64_req_per_s\": {:.0},\n  \"async_512_req_per_s\": {:.0},\n  \"speedup_vs_blocking\": {speedup:.1}",
                points[0], points[1], points[2]
            )
        }
        None => ",\n  \"async_supported\": false".to_string(),
    };
    let json = format!(
        "{{\n  \"schema\": \"hdiff-bench-net-v2\",\n  \"smoke\": {smoke},\n  \"payloads\": {},\n  \"requests\": {},\n  \"tcp_req_per_s\": {req_per_s:.0},\n  \"tcp_rtt_p50_us\": {tcp_p50_us:.1},\n  \"tcp_rtt_p99_us\": {tcp_p99_us:.1},\n  \"inprocess_p50_us\": {sim_p50_us:.1},\n  \"inprocess_p99_us\": {sim_p99_us:.1}{async_block}\n}}\n",
        payloads.len(),
        tcp_rtts_ns.len(),
    );
    std::fs::write("BENCH_net.json", &json).expect("write BENCH_net.json");
    print!("{json}");
    eprintln!(
        "wire {req_per_s:.0} req/s (p50 {tcp_p50_us:.0} us, p99 {tcp_p99_us:.0} us) \
         vs in-process p50 {sim_p50_us:.1} us"
    );

    net_gate(smoke, previous.as_deref(), &async_points, req_per_s)
}

/// The BENCH_net regression gate (see [`net_snapshot`]).
fn net_gate(smoke: bool, previous: Option<&str>, points: &Option<Vec<f64>>, blocking: f64) -> bool {
    let (Some(points), Some(previous)) = (points, previous) else {
        eprintln!("BENCH_net gate: no async sweep or no committed baseline; skipped");
        return true;
    };
    let async_512 = points[2];
    let speedup = async_512 / blocking.max(1e-9);
    let baseline = json_number(previous, "async_512_req_per_s")
        .zip(json_number(previous, "speedup_vs_blocking"));
    let Some((prev_rps, prev_speedup)) = baseline else {
        eprintln!("BENCH_net gate: committed baseline predates the async sweep; skipped");
        return true;
    };
    if smoke {
        // CI hardware varies, so compare the hardware-relative speedup
        // ratio; the 10x acceptance target is an alternate floor so a
        // faster committed baseline can't make the gate flaky.
        let ok = speedup >= 0.8 * prev_speedup || speedup >= 10.0;
        if !ok {
            eprintln!(
                "BENCH_net gate: speedup regressed to {speedup:.1}x \
                 (baseline {prev_speedup:.1}x, floor {:.1}x)",
                0.8 * prev_speedup
            );
        }
        ok
    } else {
        let ok = async_512 >= 0.8 * prev_rps;
        if !ok {
            eprintln!(
                "BENCH_net gate: async 512-conn throughput regressed to {async_512:.0} req/s \
                 (baseline {prev_rps:.0}, floor {:.0})",
                0.8 * prev_rps
            );
        }
        ok
    }
}

/// Writes `BENCH_h2.json`: HTTP/2 framing and HPACK layer throughput
/// (encode + parse of the downgrade seed-vector connections, HPACK
/// block round-trips), plus end-to-end downgrade-campaign cases/s over
/// the in-process fronts.
fn h2_snapshot(smoke: bool) {
    use hdiff_diff::{run_downgrade_campaign, seed_vectors, DowngradeCampaignOptions};
    use hdiff_h2::hpack::{Decoder, Encoder, Header};
    use hdiff_h2::{encode_client_connection, parse_client_connection, EncodeOptions};

    let (samples, reps) = if smoke { (5, 20) } else { (21, 200) };

    // Framing: one op encodes and re-parses every seed vector's whole
    // client connection (preface, SETTINGS, HEADERS + DATA per stream).
    let vectors = seed_vectors();
    let encoded: Vec<Vec<u8>> = vectors
        .iter()
        .map(|v| encode_client_connection(&v.requests, &EncodeOptions::default()))
        .collect();
    let conn_bytes: usize = encoded.iter().map(Vec::len).sum();
    let encode_ns = median_ns(samples, reps, || {
        for v in &vectors {
            std::hint::black_box(encode_client_connection(&v.requests, &EncodeOptions::default()));
        }
    }) / vectors.len() as f64;
    let parse_ns = median_ns(samples, reps, || {
        for bytes in &encoded {
            std::hint::black_box(parse_client_connection(bytes).expect("seed vectors parse"));
        }
    }) / vectors.len() as f64;
    let parse_mb_per_s =
        (conn_bytes as f64 / vectors.len() as f64) / (parse_ns / 1e9) / (1024.0 * 1024.0);

    // HPACK: block encode + decode of a realistic request header list.
    let headers = vec![
        Header::new(":method", "POST"),
        Header::new(":path", "/submit/form?id=12345"),
        Header::new(":scheme", "https"),
        Header::new(":authority", "origin.example.com"),
        Header::new("content-length", "512"),
        Header::new("accept-encoding", "gzip, deflate, br"),
        Header::new("user-agent", "bench/1.0 (perf snapshot)"),
        Header::sensitive("authorization", "Bearer 0123456789abcdef"),
    ];
    let hpack_ns = median_ns(samples, reps, || {
        let mut enc = Encoder::default();
        let mut dec = Decoder::default();
        let mut block = Vec::new();
        enc.encode_block(&headers, &mut block);
        std::hint::black_box(dec.decode_block(&block).expect("block decodes"));
    });

    // End to end: the seeded downgrade campaign (sim fronts), cases/s.
    let campaign_rounds = if smoke { 2 } else { 7 };
    let mut campaign_ms = f64::INFINITY;
    let mut cases = 0usize;
    for _ in 0..campaign_rounds {
        let start = Instant::now();
        let summary = run_downgrade_campaign(&DowngradeCampaignOptions {
            threads: 0,
            tcp: false,
            promote_dir: None,
        })
        .expect("downgrade campaign runs");
        campaign_ms = campaign_ms.min(start.elapsed().as_secs_f64() * 1e3);
        cases = summary.cases;
    }
    let cases_per_s = cases as f64 / (campaign_ms / 1e3).max(1e-9);

    let json = format!(
        "{{\n  \"schema\": \"hdiff-bench-h2-v1\",\n  \"smoke\": {smoke},\n  \"samples\": {samples},\n  \"vectors\": {},\n  \"encode_conn_ns\": {encode_ns:.1},\n  \"parse_conn_ns\": {parse_ns:.1},\n  \"parse_mb_per_s\": {parse_mb_per_s:.1},\n  \"hpack_roundtrip_ns\": {hpack_ns:.1},\n  \"campaign_cases\": {cases},\n  \"campaign_ms\": {campaign_ms:.1},\n  \"campaign_cases_per_s\": {cases_per_s:.0}\n}}\n",
        vectors.len()
    );
    std::fs::write("BENCH_h2.json", &json).expect("write BENCH_h2.json");
    print!("{json}");
    eprintln!(
        "h2 framing parse {parse_ns:.0} ns/conn ({parse_mb_per_s:.0} MB/s), \
         hpack round-trip {hpack_ns:.0} ns/block, \
         downgrade campaign {cases_per_s:.0} cases/s"
    );
}

/// Writes `BENCH_cookie.json`: per-case cost of the eight-profile
/// cookie interpretation matrix plus end-to-end campaign throughput of
/// the protocol-generic driver.
fn cookie_snapshot(smoke: bool) {
    use hdiff_cookie::{seed_vectors, CookieProtocol, COOKIE_UUID_BASE};
    use hdiff_diff::{run_protocol_campaign, Protocol, ProtocolCampaignOptions};

    let (samples, reps) = if smoke { (5, 20) } else { (21, 200) };
    let protocol = CookieProtocol::standard();
    let seeds = seed_vectors();
    let cases: Vec<Vec<u8>> = seeds.iter().map(|s| s.case.to_bytes()).collect();

    // One op executes every seed case through the full profile matrix
    // (parse -> 8 interpretations -> pairwise detection -> digests).
    let execute_ns = median_ns(samples, reps, || {
        for (i, bytes) in cases.iter().enumerate() {
            std::hint::black_box(protocol.execute(
                COOKIE_UUID_BASE + i as u64,
                "bench:cookie",
                bytes,
            ));
        }
    }) / cases.len() as f64;

    // End to end: the seeded cookie campaign via the generic driver.
    let campaign_rounds = if smoke { 2 } else { 7 };
    let mut campaign_ms = f64::INFINITY;
    let mut campaign_cases = 0usize;
    let mut classes = 0usize;
    for _ in 0..campaign_rounds {
        let start = Instant::now();
        let summary = run_protocol_campaign(&protocol, &ProtocolCampaignOptions::default())
            .expect("cookie campaign runs");
        campaign_ms = campaign_ms.min(start.elapsed().as_secs_f64() * 1e3);
        campaign_cases = summary.cases;
        classes = summary.classes.len();
    }
    let cases_per_s = campaign_cases as f64 / (campaign_ms / 1e3).max(1e-9);

    let json = format!(
        "{{\n  \"schema\": \"hdiff-bench-cookie-v1\",\n  \"smoke\": {smoke},\n  \"samples\": {samples},\n  \"seed_cases\": {},\n  \"execute_case_ns\": {execute_ns:.1},\n  \"campaign_cases\": {campaign_cases},\n  \"campaign_classes\": {classes},\n  \"campaign_ms\": {campaign_ms:.1},\n  \"campaign_cases_per_s\": {cases_per_s:.0}\n}}\n",
        cases.len()
    );
    std::fs::write("BENCH_cookie.json", &json).expect("write BENCH_cookie.json");
    print!("{json}");
    eprintln!(
        "cookie matrix execute {execute_ns:.0} ns/case, \
         campaign {cases_per_s:.0} cases/s ({classes} divergence classes)"
    );
}

/// Campaign-style padding: inert noise headers inserted before the blank
/// line, tripling the request size (same shape `regen_golden` uses).
fn pad_with_noise(bytes: &[u8]) -> Vec<u8> {
    let Some(head_end) = bytes.windows(4).position(|w| w == b"\r\n\r\n") else {
        return bytes.to_vec();
    };
    let mut out = bytes[..head_end + 2].to_vec();
    let mut i = 0usize;
    while out.len() + (bytes.len() - head_end - 2) < bytes.len() * 3 {
        out.extend_from_slice(format!("X-Pad-{i}: {:a>40}\r\n", "").as_bytes());
        i += 1;
    }
    out.extend_from_slice(&bytes[head_end + 2..]);
    out
}

/// Writes `BENCH_minimize.json`: the delta-debugging minimizer run over
/// every noise-padded Table II vector that flags a finding — aggregate
/// shrink ratio, probe counts, and wall time.
fn minimize_snapshot(smoke: bool, workflow: &Workflow, products: &[hdiff_servers::ParserProfile]) {
    let ctx = FindingContext::new(workflow, products);
    let opts = MinimizeOptions::default();

    // The workload: one (padded bytes, finding) seed per catalog vector.
    let mut seeds = Vec::new();
    for (idx, entry) in catalog::catalog().iter().enumerate() {
        let uuid = 9000 + idx as u64;
        let origin = format!("catalog:{}", entry.id);
        let seed = entry.requests.iter().find_map(|(req, _)| {
            let padded = pad_with_noise(&req.to_bytes());
            let findings = ctx.findings_for(uuid, &origin, &padded);
            let of_class = |f: &&hdiff_diff::Finding| entry.classes.contains(&f.class);
            findings
                .iter()
                .filter(of_class)
                .find(|f| f.is_pair())
                .or_else(|| findings.iter().find(of_class))
                .cloned()
                .map(|f| (padded, f))
        });
        if let Some(s) = seed {
            seeds.push(s);
        }
        if smoke && seeds.len() >= 3 {
            break;
        }
    }

    let start = Instant::now();
    let mut padded_bytes = 0usize;
    let mut minimized_bytes = 0usize;
    let mut attempts = 0usize;
    let mut accepted = 0usize;
    for (padded, finding) in &seeds {
        let out = ctx.minimize_finding(finding, padded, &opts);
        padded_bytes += out.stats.original_len;
        minimized_bytes += out.stats.minimized_len;
        attempts += out.stats.attempts;
        accepted += out.stats.accepted;
    }
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let shrink_ratio = minimized_bytes as f64 / padded_bytes.max(1) as f64;

    let json = format!(
        "{{\n  \"schema\": \"hdiff-bench-minimize-v1\",\n  \"smoke\": {smoke},\n  \"cases\": {},\n  \"padded_bytes\": {padded_bytes},\n  \"minimized_bytes\": {minimized_bytes},\n  \"shrink_ratio\": {shrink_ratio:.3},\n  \"attempts\": {attempts},\n  \"accepted\": {accepted},\n  \"wall_ms\": {wall_ms:.1}\n}}\n",
        seeds.len()
    );
    std::fs::write("BENCH_minimize.json", &json).expect("write BENCH_minimize.json");
    print!("{json}");
    eprintln!(
        "minimized {} case(s): {padded_bytes} -> {minimized_bytes} bytes \
         (ratio {shrink_ratio:.2}) in {wall_ms:.0} ms",
        seeds.len()
    );
}
