//! Writes `BENCH_matcher.json`: median ns/op for the compiled matcher,
//! the legacy reference matcher, ABNF generation, and a full
//! workflow+detection case — the perf numbers the compiled-IR rewrite
//! is accountable for.
//!
//! Usage: `cargo run --release -p hdiff-bench --bin perf_snapshot`
//! (`-- --smoke` for a fast CI-sized run).

use std::time::Instant;

use hdiff_abnf::matcher;
use hdiff_analyzer::DocumentAnalyzer;
use hdiff_diff::detect_case;
use hdiff_diff::workflow::Workflow;
use hdiff_gen::{AbnfGenerator, GenOptions, TestCase};
use hdiff_wire::Request;

/// Budget the old call sites granted the backtracking matcher.
const REFERENCE_BUDGET: usize = 500_000;

/// The matching workload (same shapes as `benches/matcher.rs`).
const WORKLOAD: &[(&str, &str)] = &[
    ("Host", "example.com:8080"),
    ("Host", "a.b.c.d.e.f.g.example.com:80"),
    ("Host", "mutated.host.with.many.labels.and.a.long.tail.example.com:8080"),
    ("Host", "h1.com@h2.com"),
    ("uri-host", "127.0.0.1"),
    ("origin-form", "/a/b/c/d/e/index.html?q=1&r=2"),
    ("transfer-coding", "chunked"),
];

/// Runs `f` (`reps` ops per sample, `samples` samples) and returns the
/// median per-op nanoseconds.
fn median_ns(samples: usize, reps: usize, mut f: impl FnMut()) -> f64 {
    let mut per_op = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        for _ in 0..reps {
            f();
        }
        per_op.push(start.elapsed().as_nanos() as f64 / reps as f64);
    }
    per_op.sort_by(|a, b| a.total_cmp(b));
    per_op[per_op.len() / 2]
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (samples, reps) = if smoke { (5, 10) } else { (21, 200) };

    let analysis = DocumentAnalyzer::with_default_inputs().analyze(&hdiff_corpus::core_documents());
    let grammar = &analysis.grammar;
    let _ = grammar.compiled(); // compile once, outside the timing loops

    // One matching "op" sweeps the whole workload, so both matchers pay
    // for the same mix of accepts and rejects.
    let compiled_ns = median_ns(samples, reps, || {
        for (rule, input) in WORKLOAD {
            std::hint::black_box(matcher::matches(grammar, rule, input.as_bytes()));
        }
    }) / WORKLOAD.len() as f64;
    let reference_ns = median_ns(samples, reps.div_ceil(10), || {
        for (rule, input) in WORKLOAD {
            std::hint::black_box(matcher::reference::matches_with_budget(
                grammar,
                rule,
                input.as_bytes(),
                REFERENCE_BUDGET,
            ));
        }
    }) / WORKLOAD.len() as f64;
    let speedup = reference_ns / compiled_ns;

    let mut generator = AbnfGenerator::new(grammar.clone(), GenOptions::default());
    let generate_ns = median_ns(samples, reps, || {
        std::hint::black_box(generator.generate("Host"));
    });

    let workflow = Workflow::standard();
    let products = hdiff_servers::products();
    let case = TestCase::generated(1, Request::get("h1.com@h2.com"), "perf snapshot case");
    let full_case_ns = median_ns(samples, reps.div_ceil(10), || {
        let outcome = workflow.run_case(&case);
        std::hint::black_box(detect_case(&products, &outcome));
    });

    let json = format!(
        "{{\n  \"schema\": \"hdiff-bench-matcher-v1\",\n  \"smoke\": {smoke},\n  \"samples\": {samples},\n  \"workload_inputs\": {},\n  \"match_compiled_ns\": {compiled_ns:.1},\n  \"match_reference_ns\": {reference_ns:.1},\n  \"speedup\": {speedup:.1},\n  \"generate_host_ns\": {generate_ns:.1},\n  \"full_case_ns\": {full_case_ns:.1}\n}}\n",
        WORKLOAD.len()
    );
    std::fs::write("BENCH_matcher.json", &json).expect("write BENCH_matcher.json");
    print!("{json}");
    eprintln!(
        "compiled {compiled_ns:.0} ns/op vs reference {reference_ns:.0} ns/op -> {speedup:.1}x"
    );
}
