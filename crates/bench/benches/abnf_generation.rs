//! Criterion bench: ABNF generation cost (predefined vs free traversal,
//! depth-cap sweep) — the §III-D design choices.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hdiff_analyzer::DocumentAnalyzer;
use hdiff_gen::{AbnfGenerator, GenOptions, PredefinedRules};

fn bench_generation(c: &mut Criterion) {
    let analysis = DocumentAnalyzer::with_default_inputs().analyze(&hdiff_corpus::core_documents());

    let mut group = c.benchmark_group("abnf_generation");
    for (label, predefined) in
        [("predefined", PredefinedRules::standard()), ("free", PredefinedRules::empty())]
    {
        group.bench_with_input(
            BenchmarkId::new("host_values", label),
            &predefined,
            |b, predefined| {
                b.iter(|| {
                    let mut gen = AbnfGenerator::new(
                        analysis.grammar.clone(),
                        GenOptions { predefined: predefined.clone(), ..GenOptions::default() },
                    );
                    std::hint::black_box(gen.generate_many("Host", 50))
                });
            },
        );
    }
    for depth in [3usize, 7, 12] {
        group.bench_with_input(BenchmarkId::new("http_message_depth", depth), &depth, |b, &d| {
            b.iter(|| {
                let mut gen = AbnfGenerator::new(
                    analysis.grammar.clone(),
                    GenOptions { max_depth: d, ..GenOptions::default() },
                );
                std::hint::black_box(gen.generate_many("HTTP-message", 10))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_generation);
criterion_main!(benches);
