//! Criterion bench: mutation-engine throughput per round count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hdiff_gen::MutationEngine;
use hdiff_wire::Request;

fn bench_mutation(c: &mut Criterion) {
    let mut group = c.benchmark_group("mutation");
    for rounds in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("rounds", rounds), &rounds, |b, &rounds| {
            b.iter(|| {
                let mut engine = MutationEngine::new(42);
                engine.rounds = rounds;
                let mut out = 0usize;
                for _ in 0..100 {
                    let mut req = Request::get("example.com");
                    out += engine.mutate(&mut req).len();
                }
                std::hint::black_box(out)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mutation);
criterion_main!(benches);
