//! Criterion bench: per-stage pipeline cost (analyzer, translation,
//! detection) — the end-to-end cost profile of Fig. 3.

use criterion::{criterion_group, criterion_main, Criterion};
use hdiff_analyzer::DocumentAnalyzer;
use hdiff_core::{HDiff, HdiffConfig};
use hdiff_diff::DiffEngine;
use hdiff_gen::{AbnfGenerator, GenOptions, SrTranslator};

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);

    group.bench_function("documentation_analyzer", |b| {
        let docs = hdiff_corpus::core_documents();
        b.iter(|| std::hint::black_box(DocumentAnalyzer::with_default_inputs().analyze(&docs)));
    });

    let analysis = DocumentAnalyzer::with_default_inputs().analyze(&hdiff_corpus::core_documents());
    group.bench_function("sr_translation", |b| {
        b.iter(|| {
            let gen = AbnfGenerator::new(analysis.grammar.clone(), GenOptions::default());
            let mut tr = SrTranslator::new(gen);
            std::hint::black_box(tr.translate_all(&analysis.requirements))
        });
    });

    let hdiff = HDiff::new(HdiffConfig::quick());
    let cases = hdiff.generate_cases(&analysis);
    group.bench_function("differential_testing", |b| {
        b.iter(|| {
            let engine = DiffEngine::standard();
            std::hint::black_box(engine.run(&cases))
        });
    });

    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
