//! Criterion bench: the compiled packrat matcher vs the legacy
//! backtracking reference ([`hdiff_abnf::matcher::reference`]) over the
//! adapted grammar — the speedup the compiled IR exists for.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hdiff_abnf::matcher;
use hdiff_analyzer::DocumentAnalyzer;

/// (rule, input) pairs spanning the shapes campaigns actually match:
/// plain members, near-misses, and backtracking-hostile long values.
const WORKLOAD: &[(&str, &str)] = &[
    ("Host", "example.com:8080"),
    ("Host", "a.b.c.d.e.f.g.example.com:80"),
    ("Host", "mutated.host.with.many.labels.and.a.long.tail.example.com:8080"),
    ("Host", "h1.com@h2.com"),
    ("uri-host", "127.0.0.1"),
    ("origin-form", "/a/b/c/d/e/index.html?q=1&r=2"),
    ("transfer-coding", "chunked"),
];

/// Reference budget matching the old call sites' workaround value.
const REFERENCE_BUDGET: usize = 500_000;

fn bench_matcher(c: &mut Criterion) {
    let analysis = DocumentAnalyzer::with_default_inputs().analyze(&hdiff_corpus::core_documents());
    let grammar = &analysis.grammar;
    // Warm the per-grammar compilation cache outside the timing loops.
    let _ = grammar.compiled();

    let mut group = c.benchmark_group("matcher_compiled");
    for (rule, input) in WORKLOAD {
        group.bench_with_input(BenchmarkId::new(*rule, *input), input, |b, input| {
            b.iter(|| std::hint::black_box(matcher::matches(grammar, rule, input.as_bytes())));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("matcher_reference");
    for (rule, input) in WORKLOAD {
        group.bench_with_input(BenchmarkId::new(*rule, *input), input, |b, input| {
            b.iter(|| {
                std::hint::black_box(matcher::reference::matches_with_budget(
                    grammar,
                    rule,
                    input.as_bytes(),
                    REFERENCE_BUDGET,
                ))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_matcher);
criterion_main!(benches);
