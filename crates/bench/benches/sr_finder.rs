//! Criterion bench: sentiment SR finder vs keyword grep over the corpus.

use criterion::{criterion_group, criterion_main, Criterion};
use hdiff_analyzer::{sentences, SentimentClassifier};

fn bench_sr_finder(c: &mut Criterion) {
    let docs = hdiff_corpus::core_documents();
    let all_sentences: Vec<_> = docs.iter().flat_map(|d| sentences(&d.full_text())).collect();
    let classifier = SentimentClassifier::new();

    let mut group = c.benchmark_group("sr_finder");
    group.bench_function("sentiment_classifier", |b| {
        b.iter(|| {
            std::hint::black_box(
                all_sentences.iter().filter(|s| classifier.is_requirement(&s.text)).count(),
            )
        });
    });
    group.bench_function("keyword_grep", |b| {
        b.iter(|| {
            std::hint::black_box(
                all_sentences.iter().filter(|s| SentimentClassifier::keyword_grep(&s.text)).count(),
            )
        });
    });
    group.bench_function("sentence_splitting", |b| {
        b.iter(|| {
            std::hint::black_box(
                docs.iter().map(|d| sentences(&d.full_text()).len()).sum::<usize>(),
            )
        });
    });
    group.finish();
}

criterion_group!(benches, bench_sr_finder);
criterion_main!(benches);
