//! Criterion bench: workflow cost with and without replay reduction —
//! quantifying the paper's step-2 heuristics.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hdiff_diff::Workflow;
use hdiff_gen::{catalog, Origin, TestCase};

fn catalog_cases() -> Vec<TestCase> {
    let mut out = Vec::new();
    let mut uuid = 1u64;
    for entry in catalog::catalog() {
        for (req, note) in &entry.requests {
            out.push(TestCase {
                uuid,
                request: req.clone(),
                assertions: Vec::new(),
                origin: Origin::Catalog(entry.id.to_string()),
                note: note.clone(),
            });
            uuid += 1;
        }
    }
    out
}

fn bench_replay(c: &mut Criterion) {
    let cases = catalog_cases();
    let mut group = c.benchmark_group("replay_reduction");
    group.sample_size(20);
    for reduction in [true, false] {
        group.bench_with_input(
            BenchmarkId::new("workflow", if reduction { "reduced" } else { "exhaustive" }),
            &reduction,
            |b, &reduction| {
                b.iter(|| {
                    let mut w = Workflow::standard();
                    w.replay_reduction = reduction;
                    let mut replays = 0usize;
                    for case in &cases {
                        let o = w.run_case(case);
                        replays += o.chains.iter().map(|ch| ch.replays.len()).sum::<usize>();
                    }
                    std::hint::black_box(replays)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_replay);
criterion_main!(benches);
