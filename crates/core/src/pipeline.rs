//! The end-to-end HDiff pipeline.

use hdiff_analyzer::{AnalyzerOutput, DocumentAnalyzer};
use hdiff_diff::{DiffEngine, RunSummary};
use hdiff_gen::{
    catalog, AbnfGenerator, GenOptions, MutationEngine, Origin, SrTranslator, TestCase, TreeMutator,
};
use hdiff_wire::{Method, Request, Version};

use crate::config::HdiffConfig;

/// Everything a pipeline run produced.
#[derive(Debug)]
pub struct PipelineReport {
    /// Documentation-analyzer output (SRs, grammar, statistics).
    pub analysis: AnalyzerOutput,
    /// Test cases translated from SRs.
    pub sr_cases: usize,
    /// Test cases generated from the ABNF grammar (+ mutations).
    pub abnf_cases: usize,
    /// Catalog cases.
    pub catalog_cases: usize,
    /// The generated test-case corpus (for exploit reports and replay).
    pub cases: Vec<TestCase>,
    /// The differential-testing summary (findings, verdicts, pairs).
    pub summary: RunSummary,
}

impl PipelineReport {
    /// Looks up the test case behind a finding.
    pub fn case(&self, uuid: u64) -> Option<&TestCase> {
        self.cases.iter().find(|c| c.uuid == uuid)
    }
}

impl PipelineReport {
    /// Total generated test cases.
    pub fn total_cases(&self) -> usize {
        self.sr_cases + self.abnf_cases + self.catalog_cases
    }
}

/// The orchestrator.
#[derive(Debug)]
pub struct HDiff {
    config: HdiffConfig,
}

impl HDiff {
    /// Creates an orchestrator with the given configuration.
    pub fn new(config: HdiffConfig) -> HDiff {
        HDiff { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &HdiffConfig {
        &self.config
    }

    /// Runs the Documentation Analyzer only.
    pub fn analyze(&self) -> AnalyzerOutput {
        DocumentAnalyzer::with_default_inputs().analyze(&hdiff_corpus::core_documents())
    }

    /// Track-1-only analysis: the adapted grammar (and everything
    /// derived from it) without the sentence-level SR extraction. The
    /// grammar is identical to [`HDiff::analyze`]'s; requirements are
    /// empty.
    pub fn analyze_syntax(&self) -> AnalyzerOutput {
        DocumentAnalyzer::with_default_inputs().analyze_syntax(&hdiff_corpus::core_documents())
    }

    /// Generates the full test-case corpus from an analysis.
    pub fn generate_cases(&self, analysis: &AnalyzerOutput) -> Vec<TestCase> {
        self.generate_cases_with_coverage(analysis).0
    }

    /// [`HDiff::generate_cases`] plus the grammar coverage the generation
    /// phase reached: generator-side rule/alternation hits merged with
    /// packrat-matcher traces over the generated `Host` values.
    pub fn generate_cases_with_coverage(
        &self,
        analysis: &AnalyzerOutput,
    ) -> (Vec<TestCase>, Option<hdiff_gen::GrammarCoverage>) {
        let mut cases = Vec::new();
        let mut next_uuid = 1u64;

        // 1. SR translator cases (with assertions).
        {
            let _stage = hdiff_obs::span("stage.sr-translate");
            let gen = AbnfGenerator::new(
                analysis.grammar.clone(),
                GenOptions {
                    max_depth: self.config.max_gen_depth,
                    seed: self.config.seed,
                    ..GenOptions::default()
                },
            );
            let mut translator = SrTranslator::new(gen);
            translator.variants = self.config.sr_variants;
            let mut sr_cases = translator.translate_all(&analysis.requirements);
            for c in &mut sr_cases {
                c.uuid = next_uuid;
                next_uuid += 1;
            }
            cases.extend(sr_cases);
        }

        // 2. ABNF-generated seeds plus mutations.
        let mut gen = AbnfGenerator::new(
            analysis.grammar.clone(),
            GenOptions {
                max_depth: self.config.max_gen_depth,
                seed: self.config.seed ^ 0xabcd,
                coverage_guided: self.config.coverage_guided,
                ..GenOptions::default()
            },
        );
        gen.enable_coverage();
        let mut mutator = MutationEngine::new(self.config.seed ^ 0x5eed);
        mutator.rounds = self.config.mutation_rounds;
        let gen_stage = hdiff_obs::span("stage.generate");
        let hosts = gen.generate_many("Host", self.config.abnf_seeds);
        // Matcher-side coverage feed: re-match each generated host so the
        // rules reachable only through matching (e.g. the `uri-host`
        // breakdown under predefined leaf values) are accounted too.
        {
            let cg = analysis.grammar.compiled();
            for host in &hosts {
                let (_, visited) = hdiff_abnf::memo::match_rule_traced(
                    &cg,
                    "Host",
                    host,
                    hdiff_abnf::matcher::DEFAULT_BUDGET,
                );
                if let Some(cov) = gen.coverage_mut() {
                    cov.absorb_rules(&visited);
                }
            }
        }
        let targets = gen.generate_many("origin-form", self.config.abnf_seeds / 2 + 1);
        let te_values = gen.generate_many("transfer-coding", 8);
        let expect_values = gen.generate_many("Expect", 4);
        drop(gen_stage);
        for i in 0..self.config.abnf_seeds {
            let host = &hosts[i % hosts.len().max(1)];
            let target =
                targets.get(i % targets.len().max(1)).cloned().unwrap_or_else(|| b"/".to_vec());
            let mut b = Request::builder();
            b.method(if i % 3 == 0 { Method::Post } else { Method::Get })
                .target(&target)
                .version(Version::Http11)
                .header("Host", host);
            match i % 5 {
                0 => {
                    b.header("Content-Length", "3").body(b"abc".to_vec());
                }
                1 => {
                    let te = &te_values[i % te_values.len().max(1)];
                    if te == b"chunked" {
                        b.header("Transfer-Encoding", te).body(hdiff_wire::encode_chunked(b"abc"));
                    } else {
                        b.header("X-Accept-Coding", te);
                    }
                }
                2 => {
                    let e = &expect_values[i % expect_values.len().max(1)];
                    b.header("Expect", e);
                }
                _ => {}
            }
            let seed_req = b.build();
            let mut seed_case = TestCase::generated(next_uuid, seed_req.clone(), "abnf seed");
            seed_case.origin = Origin::Abnf;
            next_uuid += 1;
            cases.push(seed_case);
            for _ in 0..self.config.mutants_per_seed {
                let _mutate = hdiff_obs::span("stage.mutate");
                let mut mutant = seed_req.clone();
                let notes = mutator.mutate(&mut mutant);
                let mut c = TestCase::generated(next_uuid, mutant, notes.join("; "));
                c.origin = Origin::Abnf;
                next_uuid += 1;
                cases.push(c);
            }
        }

        // 2b. Tree-mutated host values: "mutate the original ABNF syntax
        // tree to generate malformed host data" (§III-D).
        let mut tree_mutator = TreeMutator::new(self.config.seed ^ 0x7ee);
        let malformed = {
            let _mutate = hdiff_obs::span("stage.mutate");
            tree_mutator.malformed_values(&analysis.grammar, "Host", self.config.abnf_seeds / 4)
        };
        for (value, op) in malformed {
            if value.is_empty() || value.len() > 256 {
                continue;
            }
            let mut b = Request::builder();
            b.method(Method::Get).target("/").version(Version::Http11).header("Host", &value);
            let mut c =
                TestCase::generated(next_uuid, b.build(), format!("tree-mutated host ({op:?})"));
            c.origin = Origin::Abnf;
            next_uuid += 1;
            cases.push(c);
        }

        // 3. The Table II catalog.
        if self.config.include_catalog {
            for entry in catalog::catalog() {
                for (req, note) in &entry.requests {
                    cases.push(TestCase {
                        uuid: next_uuid,
                        request: req.clone(),
                        assertions: Vec::new(),
                        origin: Origin::Catalog(entry.id.to_string()),
                        note: note.clone(),
                    });
                    next_uuid += 1;
                }
            }
        }
        let coverage = gen.take_coverage().map(|c| c.summary());
        (cases, coverage)
    }

    /// Analyzes, generates the corpus, and builds the configured engine
    /// — everything [`HDiff::run`] does short of executing the cases.
    ///
    /// This is the determinism anchor for the sharded campaign fabric:
    /// the supervisor and every worker process call `prepare()` from the
    /// same [`HdiffConfig`], so corpus order, case UUIDs, and engine
    /// construction are byte-identical across processes and a shard is
    /// fully described by a contiguous index range into `cases`.
    pub fn prepare(&self) -> PreparedCampaign {
        hdiff_obs::set_enabled(self.config.telemetry);
        // Start the generation phase from a clean thread-local slate so a
        // previous run on this thread cannot leak into this summary.
        let _ = hdiff_obs::drain();
        let analysis = {
            let _stage = hdiff_obs::span("stage.analyze");
            self.analyze()
        };
        let (cases, coverage) = self.generate_cases_with_coverage(&analysis);

        let sr_cases = cases.iter().filter(|c| matches!(c.origin, Origin::Sr(_))).count();
        let abnf_cases = cases.iter().filter(|c| matches!(c.origin, Origin::Abnf)).count();
        let catalog_cases = cases.iter().filter(|c| matches!(c.origin, Origin::Catalog(_))).count();
        hdiff_obs::count_many(&[
            ("gen.cases.sr", sr_cases as u64),
            ("gen.cases.abnf", abnf_cases as u64),
            ("gen.cases.catalog", catalog_cases as u64),
        ]);

        let engine = self.build_engine(&analysis, coverage);
        PreparedCampaign { analysis, sr_cases, abnf_cases, catalog_cases, cases, engine }
    }

    /// [`HDiff::prepare`] fed a pre-generated corpus (the fleet
    /// supervisor's `corpus.json` artifact): skips SR extraction and
    /// case generation, rebuilding only the grammar the engine's syntax
    /// oracle needs. The engine configuration is identical to
    /// [`HDiff::prepare`]'s, so per-case records come out byte-identical
    /// — that is the fleet's merge invariant. Summary-level fields
    /// derived from generation (grammar coverage, SR assertions,
    /// generation telemetry) are absent here; fleet workers' own
    /// summaries are discarded in favor of the supervisor's canonical
    /// merge, which recomputes them from the full `prepare()`.
    pub fn prepare_with_cases(&self, cases: Vec<TestCase>) -> PreparedCampaign {
        hdiff_obs::set_enabled(self.config.telemetry);
        let _ = hdiff_obs::drain();
        let analysis = {
            let _stage = hdiff_obs::span("stage.analyze");
            self.analyze_syntax()
        };
        let sr_cases = cases.iter().filter(|c| matches!(c.origin, Origin::Sr(_))).count();
        let abnf_cases = cases.iter().filter(|c| matches!(c.origin, Origin::Abnf)).count();
        let catalog_cases = cases.iter().filter(|c| matches!(c.origin, Origin::Catalog(_))).count();
        hdiff_obs::count_many(&[
            ("gen.cases.sr", sr_cases as u64),
            ("gen.cases.abnf", abnf_cases as u64),
            ("gen.cases.catalog", catalog_cases as u64),
        ]);
        let engine = self.build_engine(&analysis, None);
        PreparedCampaign { analysis, sr_cases, abnf_cases, catalog_cases, cases, engine }
    }

    /// The one place engine knobs are set from the config, shared by
    /// both prepare paths so they cannot drift.
    fn build_engine(
        &self,
        analysis: &AnalyzerOutput,
        coverage: Option<hdiff_gen::GrammarCoverage>,
    ) -> DiffEngine {
        let mut engine = DiffEngine::standard();
        engine.threads = self.config.threads;
        engine.transport = self.config.transport;
        engine.checkpoint_every = self.config.checkpoint_every.max(1);
        // The adapted grammar doubles as a syntax oracle: HoT findings
        // get per-view `Host` conformance verdicts and lenient hosts
        // surface as SR violations.
        engine.syntax_oracle = Some(hdiff_diff::SyntaxOracle::new(&analysis.grammar));
        engine.grammar_coverage = coverage;
        if self.config.fault_rate > 0 {
            engine.fault_plan =
                hdiff_servers::fault::FaultPlan::new(self.config.seed, self.config.fault_rate);
        }
        // Generation-phase telemetry accumulated on this thread rides into
        // the summary alongside the per-case buckets the engine merges.
        engine.base_telemetry = hdiff_obs::drain();
        engine
    }

    /// Runs the whole pipeline.
    pub fn run(&self) -> PipelineReport {
        let prepared = self.prepare();
        let summary = prepared.engine.run(&prepared.cases);
        prepared.into_report(summary)
    }
}

/// A fully generated campaign that has not executed yet: the corpus in
/// canonical order plus the configured [`DiffEngine`]. Produced by
/// [`HDiff::prepare`]; shard workers run a slice of `cases`, the fleet
/// supervisor merges their checkpoints with the same engine.
#[derive(Debug)]
pub struct PreparedCampaign {
    /// Documentation-analyzer output (SRs, grammar, statistics).
    pub analysis: AnalyzerOutput,
    /// Test cases translated from SRs.
    pub sr_cases: usize,
    /// Test cases generated from the ABNF grammar (+ mutations).
    pub abnf_cases: usize,
    /// Catalog cases.
    pub catalog_cases: usize,
    /// The corpus in canonical (deterministic) order.
    pub cases: Vec<TestCase>,
    /// The configured engine, ready to run or to merge shard records.
    pub engine: DiffEngine,
}

impl PreparedCampaign {
    /// The same HTTP/1.1 surface behind the generic
    /// [`hdiff_diff::Protocol`] trait: the standard product matrix with
    /// this campaign's adapted grammar as the detection-time syntax
    /// oracle (exactly what the configured engine uses).
    pub fn http1_protocol(&self) -> hdiff_diff::Http1Protocol {
        hdiff_diff::Http1Protocol::standard().with_grammar(self.analysis.grammar.clone())
    }

    /// Packages an executed summary with this campaign's generation
    /// metadata into the [`PipelineReport`] that [`HDiff::run`] returns.
    pub fn into_report(self, summary: RunSummary) -> PipelineReport {
        PipelineReport {
            analysis: self.analysis,
            sr_cases: self.sr_cases,
            abnf_cases: self.abnf_cases,
            catalog_cases: self.catalog_cases,
            cases: self.cases,
            summary,
        }
    }
}

impl Default for HDiff {
    fn default() -> Self {
        HDiff::new(HdiffConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdiff_gen::AttackClass;

    #[test]
    fn prepared_campaign_exposes_http1_behind_the_protocol_trait() {
        use hdiff_diff::Protocol;

        let prepared = HDiff::new(HdiffConfig::quick()).prepare();
        let p = prepared.http1_protocol();
        assert_eq!(p.name(), "http1");
        let grammars = p.grammars();
        assert_eq!(grammars.len(), 1, "the adapted campaign grammar rides along");
        assert_eq!(grammars[0].0, "rfc7230");
        assert!(!p.seed_cases().is_empty());
    }

    #[test]
    fn quick_pipeline_end_to_end() {
        let report = HDiff::new(HdiffConfig::quick()).run();
        assert!(report.analysis.stats.srs >= 40);
        assert!(report.sr_cases > 0);
        assert!(report.abnf_cases > 0);
        assert!(report.catalog_cases >= 14);
        assert_eq!(report.summary.cases, report.total_cases());
        for class in AttackClass::ALL {
            assert!(!report.summary.findings_of(class).is_empty(), "no {class} findings");
        }
        assert!(!report.summary.sr_violations.is_empty());
        let cov = report.summary.coverage.expect("pipeline campaigns report grammar coverage");
        assert!(cov.rules_covered > 0 && cov.rules_covered <= cov.rules_total, "{cov}");
        assert!(cov.alts_covered > 0 && cov.alts_covered <= cov.alts_total, "{cov}");
    }

    #[test]
    fn coverage_guided_pipeline_does_not_lose_coverage() {
        let uniform = HDiff::new(HdiffConfig::quick()).run();
        let mut config = HdiffConfig::quick();
        config.coverage_guided = true;
        let guided = HDiff::new(config).run();
        let (u, g) = (uniform.summary.coverage.unwrap(), guided.summary.coverage.unwrap());
        assert_eq!(u.alts_total, g.alts_total);
        assert!(
            g.alts_covered >= u.alts_covered,
            "cold-biased generation must not cover fewer arms: {g} vs {u}"
        );
    }

    #[test]
    fn quick_pipeline_reproduces_table1_verdicts() {
        let report = HDiff::new(HdiffConfig::quick()).run();
        let v = &report.summary.verdicts;
        // The expected Table I matrix (see the paper).
        let expected: [(&str, &[AttackClass]); 10] = [
            ("iis", &[AttackClass::Hrs, AttackClass::Hot]),
            ("tomcat", &[AttackClass::Hrs, AttackClass::Hot]),
            ("weblogic", &[AttackClass::Hrs, AttackClass::Hot]),
            ("lighttpd", &[AttackClass::Hrs]),
            ("apache", &[AttackClass::Cpdos]),
            ("nginx", &[AttackClass::Hot, AttackClass::Cpdos]),
            ("varnish", &[AttackClass::Hrs, AttackClass::Hot, AttackClass::Cpdos]),
            ("squid", &[AttackClass::Hrs, AttackClass::Cpdos]),
            ("haproxy", &[AttackClass::Hrs, AttackClass::Hot, AttackClass::Cpdos]),
            ("ats", &[AttackClass::Hrs, AttackClass::Cpdos]),
        ];
        for (product, classes) in expected {
            for class in AttackClass::ALL {
                let expected_mark = classes.contains(&class);
                assert_eq!(
                    v.is_vulnerable(product, class),
                    expected_mark,
                    "{product} x {class}: expected {expected_mark}, verdicts {:?}",
                    v.classes(product)
                );
            }
        }
    }
}
