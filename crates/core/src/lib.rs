//! HDiff orchestration: the end-to-end pipeline of Fig. 3.
//!
//! ```text
//! RFC corpus ──► Documentation Analyzer ──► SRs + ABNF grammar
//!                                             │
//!                       SR translator ◄───────┤────► ABNF generator + mutations
//!                             │                              │
//!                             └───────── test cases ─────────┘
//!                                             │
//!                              Differential Testing (Fig. 6)
//!                                             │
//!                        findings, SR violations, Table I, Fig. 7
//! ```
//!
//! [`HDiff`] runs the whole thing; [`report`] renders the paper's tables.
//!
//! # Example
//!
//! ```no_run
//! use hdiff_core::{HDiff, HdiffConfig};
//!
//! let report = HDiff::new(HdiffConfig::quick()).run();
//! println!("{}", hdiff_core::report::render_table1(&report.summary));
//! ```

pub mod config;
pub mod pipeline;
pub mod report;

pub use config::HdiffConfig;
pub use pipeline::{HDiff, PipelineReport, PreparedCampaign};
