//! Rendering of the paper's tables and figures as text.

use hdiff_diff::RunSummary;
use hdiff_gen::{catalog, AttackClass};
use hdiff_servers::ParserProfile;

use crate::pipeline::PipelineReport;

fn mark(b: bool) -> &'static str {
    if b {
        "yes"
    } else {
        "-"
    }
}

/// Renders the §IV-B statistics paragraph ("Table 0").
pub fn render_stats(report: &PipelineReport) -> String {
    let s = &report.analysis.stats;
    let mut out = String::new();
    out.push_str("== Corpus & extraction statistics (paper §IV-B) ==\n");
    out.push_str(&format!("documents analyzed        : {}\n", s.documents));
    out.push_str(&format!("words                     : {}   (paper: 172,088)\n", s.words));
    out.push_str(&format!("valid sentences           : {}   (paper: 5,995)\n", s.sentences));
    out.push_str(&format!(
        "SR candidates (sentiment) : {}   [keyword grep baseline: {}]\n",
        s.sr_candidates, s.keyword_grep_candidates
    ));
    out.push_str(&format!("specification requirements: {}   (paper: 117)\n", s.srs));
    out.push_str(&format!("ABNF grammar rules        : {}   (paper: 269)\n", s.abnf_rules));
    out.push_str(&format!("SR-translated test cases  : {}   (paper: 8,427)\n", report.sr_cases));
    out.push_str(&format!("ABNF-generated test cases : {}   (paper: 92,658)\n", report.abnf_cases));
    out.push_str(&format!("catalog test cases        : {}\n", report.catalog_cases));
    out
}

/// Renders Table I: tested implementations and vulnerability verdicts.
pub fn render_table1(summary: &RunSummary) -> String {
    let products = hdiff_servers::products();
    let mut out = String::new();
    out.push_str("== Table I: tested HTTP implementations and vulnerability ==\n");
    out.push_str(&format!(
        "{:<10} {:<12} {:<7} {:<6} | {:<5} {:<5} {:<6}\n",
        "Product", "Version", "Server", "Proxy", "HRS", "HoT", "CPDoS"
    ));
    out.push_str(&"-".repeat(64));
    out.push('\n');
    for p in &products {
        let v = &summary.verdicts;
        let cpdos = if p.is_proxy() {
            mark(v.is_vulnerable(&p.name, AttackClass::Cpdos))
        } else {
            "-" // the paper does not consider CPDoS in server mode
        };
        out.push_str(&format!(
            "{:<10} {:<12} {:<7} {:<6} | {:<5} {:<5} {:<6}\n",
            p.name,
            p.version,
            mark(p.server_mode),
            mark(p.is_proxy()),
            mark(v.is_vulnerable(&p.name, AttackClass::Hrs)),
            mark(v.is_vulnerable(&p.name, AttackClass::Hot)),
            cpdos,
        ));
    }
    out
}

/// Renders Table II: the attack-vector inventory with findings counts.
pub fn render_table2(summary: &RunSummary) -> String {
    let mut out = String::new();
    out.push_str("== Table II: examples of semantic gap attacks found ==\n");
    out.push_str(&format!(
        "{:<14} {:<22} {:<12} {:<9}\n",
        "HTTP field", "Description", "Classes", "Findings"
    ));
    out.push_str(&"-".repeat(64));
    out.push('\n');
    for entry in catalog::catalog() {
        let origin = format!("catalog:{}", entry.id);
        let findings = summary.findings.iter().filter(|f| f.origin == origin).count();
        let classes: Vec<String> = entry.classes.iter().map(ToString::to_string).collect();
        out.push_str(&format!(
            "{:<14} {:<22} {:<12} {:<9}\n",
            entry.group.to_string(),
            entry.description,
            classes.join(","),
            findings
        ));
    }
    out
}

/// Renders Figure 7: the proxy × back-end pair grid per attack class.
pub fn render_figure7(summary: &RunSummary) -> String {
    let proxies = hdiff_servers::proxies();
    let backends = hdiff_servers::backends();
    let mut out = String::new();
    out.push_str("== Figure 7: server pairs affected by the three attacks ==\n");
    for class in AttackClass::ALL {
        out.push_str(&format!("\n[{class}] {} affected pair(s)\n", summary.pairs.count(class)));
        out.push_str(&format!("{:<10}", ""));
        for b in &backends {
            out.push_str(&format!("{:<10}", b.name));
        }
        out.push('\n');
        for p in &proxies {
            out.push_str(&format!("{:<10}", p.name));
            for b in &backends {
                let hit = summary.pairs.contains(class, &p.name, &b.name);
                out.push_str(&format!("{:<10}", if hit { "X" } else { "." }));
            }
            out.push('\n');
        }
    }
    out
}

/// Renders exploit write-ups: for each of the first `limit` findings, the
/// description plus the exact payload that reproduces it — "HDiff would
/// output the test case as a potential exploit together with the
/// description of the vulnerability discovered" (§III-D).
pub fn render_exploits(report: &PipelineReport, limit: usize) -> String {
    use hdiff_wire::ascii;
    let mut out = String::new();
    out.push_str("== potential exploits ==\n");
    let mut seen_cases = std::collections::BTreeSet::new();
    let mut written = 0usize;
    for finding in &report.summary.findings {
        if written >= limit {
            break;
        }
        if !seen_cases.insert((finding.uuid, finding.class)) {
            continue; // one write-up per (case, class)
        }
        let Some(case) = report.case(finding.uuid) else { continue };
        written += 1;
        out.push_str(&format!("\n[{}] case #{} ({})\n", finding.class, finding.uuid, case.note));
        if let Some((front, back)) = finding.pair() {
            out.push_str(&format!("  chain    : {front} -> {back}\n"));
        }
        out.push_str(&format!("  evidence : {}\n", finding.evidence));
        if !finding.culprits.is_empty() {
            let culprits: Vec<&str> = finding.culprits.iter().map(String::as_str).collect();
            out.push_str(&format!("  culprits : {}\n", culprits.join(", ")));
        }
        out.push_str("  payload  :\n");
        for line in ascii::escape_bytes(&case.request.to_bytes()).split("\\r\\n") {
            if !line.is_empty() {
                out.push_str(&format!("    {line}\n"));
            }
        }
    }
    out
}

/// Renders all findings as CSV (`class,uuid,origin,front,back,culprits,evidence`).
pub fn render_findings_csv(summary: &RunSummary) -> String {
    fn esc(s: &str) -> String {
        if s.contains([',', '"', '\n']) {
            format!("\"{}\"", s.replace('"', "\"\""))
        } else {
            s.to_string()
        }
    }
    let mut out = String::from("class,uuid,origin,front,back,culprits,evidence\n");
    for f in &summary.findings {
        let culprits: Vec<&str> = f.culprits.iter().map(String::as_str).collect();
        out.push_str(&format!(
            "{},{},{},{},{},{},{}\n",
            f.class,
            f.uuid,
            esc(&f.origin),
            esc(f.front.as_deref().unwrap_or("")),
            esc(f.back.as_deref().unwrap_or("")),
            esc(&culprits.join(";")),
            esc(&f.evidence),
        ));
    }
    out
}

/// Renders the resilience counters of a run: typed case errors, retries,
/// quarantined cases, and fault-degradation divergences.
pub fn render_resilience(summary: &RunSummary) -> String {
    let mut out = String::new();
    out.push_str("== resilience: errors, retries, quarantine, degradation ==\n");
    out.push_str(&format!("cases with terminal errors: {}\n", summary.errors));
    out.push_str(&format!("transient-fault retries   : {}\n", summary.retries));
    out.push_str(&format!("logical backoff units     : {}\n", summary.backoff_units));
    if let Some(cov) = &summary.coverage {
        out.push_str(&format!("grammar coverage          : {cov}\n"));
    }
    out.push_str(&format!(
        "quarantined cases         : {}{}\n",
        summary.quarantined.len(),
        if summary.quarantined.is_empty() {
            String::new()
        } else {
            format!(
                " (uuids: {})",
                summary.quarantined.iter().map(ToString::to_string).collect::<Vec<_>>().join(", ")
            )
        }
    ));
    out.push_str(&format!("degradation divergences   : {}\n", summary.degradations.len()));
    for d in &summary.degradations {
        out.push_str(&format!("  {d}\n"));
    }
    let topo = &summary.topology;
    if topo.shards > 0 {
        out.push_str(&format!(
            "fleet topology            : {} shard(s), {} respawn(s), {} chaos kill(s), {} watchdog kill(s)\n",
            topo.shards,
            topo.total_respawns(),
            topo.total_chaos_kills(),
            topo.total_watchdog_kills(),
        ));
        for (i, s) in topo.stats.iter().enumerate() {
            if s.respawns > 0 || s.chaos_kills > 0 || s.watchdog_kills > 0 {
                out.push_str(&format!(
                    "  shard {i}: {} case(s), {} respawn(s), {} chaos kill(s), {} watchdog kill(s), generation {}\n",
                    s.cases, s.respawns, s.chaos_kills, s.watchdog_kills, s.generation
                ));
            }
        }
    }
    for e in &summary.shard_errors {
        out.push_str(&format!("  {e}\n"));
    }
    out
}

/// Renders the per-product SR-violation counts (single-implementation
/// conformance checking).
pub fn render_sr_violations(summary: &RunSummary) -> String {
    let mut out = String::new();
    out.push_str("== SR-assertion violations (MUST-level) per implementation ==\n");
    let products: Vec<ParserProfile> = hdiff_servers::products();
    for p in &products {
        let mandatory = summary
            .sr_violations
            .iter()
            .filter(|v| v.implementation == p.name && v.is_mandatory())
            .count();
        let advisory = summary
            .sr_violations
            .iter()
            .filter(|v| v.implementation == p.name && !v.is_mandatory())
            .count();
        out.push_str(&format!(
            "{:<10} mandatory: {:<5} advisory: {:<5}\n",
            p.name, mandatory, advisory
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HDiff, HdiffConfig};

    #[test]
    fn reports_render_without_panicking() {
        let report = HDiff::new(HdiffConfig::quick()).run();
        let t0 = render_stats(&report);
        assert!(t0.contains("specification requirements"));
        let t1 = render_table1(&report.summary);
        assert!(t1.contains("varnish"));
        assert!(t1.lines().count() >= 13);
        let t2 = render_table2(&report.summary);
        assert!(t2.contains("Invalid CL/TE header"));
        let f7 = render_figure7(&report.summary);
        assert!(f7.contains("[HoT]"));
        let sr = render_sr_violations(&report.summary);
        assert!(sr.contains("mandatory"));
        let rz = render_resilience(&report.summary);
        assert!(rz.contains("quarantined cases         : 0"), "{rz}");
    }
}
