//! Pipeline configuration.

use std::io;

use hdiff_diff::json::Parser;
use hdiff_diff::{Frontend, Transport};

/// Configuration for one [`crate::HDiff`] run.
#[derive(Debug, Clone)]
pub struct HdiffConfig {
    /// Variants the SR translator produces per (SR, strategy).
    pub sr_variants: usize,
    /// Valid seed requests generated from the ABNF grammar.
    pub abnf_seeds: usize,
    /// Mutants derived from each seed.
    pub mutants_per_seed: usize,
    /// Mutation rounds per mutant (the paper keeps this small).
    pub mutation_rounds: usize,
    /// Include the Table II attack-vector catalog in the corpus.
    pub include_catalog: bool,
    /// RNG seed (full determinism per seed).
    pub seed: u64,
    /// Worker threads for the differential engine; `0` means one per
    /// available core (`std::thread::available_parallelism`).
    pub threads: usize,
    /// ABNF generator recursion depth cap (the paper uses 7).
    pub max_gen_depth: usize,
    /// Fault-injection rate in percent (0 disables the fault campaign).
    pub fault_rate: u8,
    /// Bias the ABNF generator toward grammar alternations it has not
    /// taken yet (changes the generated stream for a given seed; coverage
    /// is tracked and reported either way).
    pub coverage_guided: bool,
    /// How test cases reach the behavioral profiles: in-process
    /// simulation (the default) or real TCP sockets.
    pub transport: Transport,
    /// Which protocol the campaign client speaks to the front of the
    /// chain: HTTP/1.1 end to end (the default), or HTTP/2 into the
    /// downgrade front ends (`hdiff run --frontend h2`).
    pub frontend: Frontend,
    /// Collect spans, counters and latency histograms during the run
    /// (surfaced via `RunSummary::telemetry` and `hdiff report`). On by
    /// default; disable to shave the last few percent off a campaign.
    pub telemetry: bool,
    /// Worker *processes* for the sharded campaign fabric; `0` (the
    /// default) keeps the current in-process path.
    pub shards: u32,
    /// Fleet-chaos rate in percent: the supervisor SIGKILLs worker
    /// incarnations on a pure-hash schedule to exercise the recovery
    /// path (0 disables; only meaningful with `shards > 0`).
    pub fleet_chaos: u8,
    /// Cases per checkpoint interval (shard workers checkpoint and
    /// heartbeat at this granularity).
    pub checkpoint_every: usize,
    /// Which workload the campaign runs: `"http"` (the default, the
    /// full HTTP/1.1 pipeline) or the name of a [`hdiff_diff::Protocol`]
    /// workload such as `"cookie"`.
    pub protocol: String,
}

impl HdiffConfig {
    /// The full experiment configuration (used by the table harnesses).
    pub fn full() -> HdiffConfig {
        HdiffConfig {
            sr_variants: 3,
            abnf_seeds: 120,
            mutants_per_seed: 6,
            mutation_rounds: 2,
            include_catalog: true,
            seed: 0x4844_6966_6621,
            threads: 0,
            max_gen_depth: 7,
            fault_rate: 0,
            coverage_guided: false,
            transport: Transport::Sim,
            frontend: Frontend::H1,
            telemetry: true,
            shards: 0,
            fleet_chaos: 0,
            checkpoint_every: 64,
            protocol: "http".to_string(),
        }
    }

    /// A fast configuration for tests and examples.
    pub fn quick() -> HdiffConfig {
        HdiffConfig {
            sr_variants: 2,
            abnf_seeds: 20,
            mutants_per_seed: 2,
            mutation_rounds: 2,
            include_catalog: true,
            seed: 0x4844_6966_6621,
            threads: 2,
            max_gen_depth: 7,
            fault_rate: 0,
            coverage_guided: false,
            transport: Transport::Sim,
            frontend: Frontend::H1,
            telemetry: true,
            shards: 0,
            fleet_chaos: 0,
            checkpoint_every: 64,
            protocol: "http".to_string(),
        }
    }

    /// Serializes the configuration as one JSON object — how a fleet
    /// supervisor ships the *exact* campaign parameters to its worker
    /// processes, so every worker regenerates the identical corpus.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"sr_variants\":{},\"abnf_seeds\":{},\"mutants_per_seed\":{},",
                "\"mutation_rounds\":{},\"include_catalog\":{},\"seed\":{},\"threads\":{},",
                "\"max_gen_depth\":{},\"fault_rate\":{},\"coverage_guided\":{},",
                "\"transport\":\"{}\",\"frontend\":\"{}\",\"telemetry\":{},\"shards\":{},",
                "\"fleet_chaos\":{},\"checkpoint_every\":{},\"protocol\":\"{}\"}}"
            ),
            self.sr_variants,
            self.abnf_seeds,
            self.mutants_per_seed,
            self.mutation_rounds,
            self.include_catalog,
            self.seed,
            self.threads,
            self.max_gen_depth,
            self.fault_rate,
            self.coverage_guided,
            self.transport,
            self.frontend,
            self.telemetry,
            self.shards,
            self.fleet_chaos,
            self.checkpoint_every,
            self.protocol,
        )
    }

    /// Parses [`HdiffConfig::to_json`] output. Unknown keys are ignored
    /// and missing keys keep their [`HdiffConfig::full`] defaults, so
    /// config files stay forward- and backward-compatible.
    pub fn from_json(bytes: &[u8]) -> io::Result<HdiffConfig> {
        let root = Parser::new(bytes).value()?;
        let bad = |what: &str| io::Error::new(io::ErrorKind::InvalidData, what.to_string());
        let mut config = HdiffConfig::full();
        let usize_field = |key: &str, default: usize| -> io::Result<usize> {
            match root.get(key) {
                None => Ok(default),
                Some(v) => usize::try_from(
                    v.as_u64().ok_or_else(|| bad(&format!("config {key} must be a number")))?,
                )
                .map_err(|_| bad(&format!("config {key} out of range"))),
            }
        };
        config.sr_variants = usize_field("sr_variants", config.sr_variants)?;
        config.abnf_seeds = usize_field("abnf_seeds", config.abnf_seeds)?;
        config.mutants_per_seed = usize_field("mutants_per_seed", config.mutants_per_seed)?;
        config.mutation_rounds = usize_field("mutation_rounds", config.mutation_rounds)?;
        config.threads = usize_field("threads", config.threads)?;
        config.max_gen_depth = usize_field("max_gen_depth", config.max_gen_depth)?;
        config.checkpoint_every = usize_field("checkpoint_every", config.checkpoint_every)?;
        if let Some(v) = root.get("include_catalog") {
            config.include_catalog =
                v.as_bool().ok_or_else(|| bad("config include_catalog must be a bool"))?;
        }
        if let Some(v) = root.get("coverage_guided") {
            config.coverage_guided =
                v.as_bool().ok_or_else(|| bad("config coverage_guided must be a bool"))?;
        }
        if let Some(v) = root.get("telemetry") {
            config.telemetry = v.as_bool().ok_or_else(|| bad("config telemetry must be a bool"))?;
        }
        if let Some(v) = root.get("seed") {
            config.seed = v.as_u64().ok_or_else(|| bad("config seed must be a number"))?;
        }
        if let Some(v) = root.get("fault_rate") {
            let n = v.as_u64().ok_or_else(|| bad("config fault_rate must be a number"))?;
            config.fault_rate =
                u8::try_from(n).map_err(|_| bad("config fault_rate out of range"))?;
        }
        if let Some(v) = root.get("fleet_chaos") {
            let n = v.as_u64().ok_or_else(|| bad("config fleet_chaos must be a number"))?;
            config.fleet_chaos =
                u8::try_from(n).map_err(|_| bad("config fleet_chaos out of range"))?;
        }
        if let Some(v) = root.get("shards") {
            let n = v.as_u64().ok_or_else(|| bad("config shards must be a number"))?;
            config.shards = u32::try_from(n).map_err(|_| bad("config shards out of range"))?;
        }
        if let Some(v) = root.get("transport") {
            let s = v.as_str().ok_or_else(|| bad("config transport must be a string"))?;
            config.transport = Transport::parse(s)
                .ok_or_else(|| bad(&format!("unknown config transport {s:?}")))?;
        }
        if let Some(v) = root.get("frontend") {
            let s = v.as_str().ok_or_else(|| bad("config frontend must be a string"))?;
            config.frontend =
                Frontend::parse(s).ok_or_else(|| bad(&format!("unknown config frontend {s:?}")))?;
        }
        if let Some(v) = root.get("protocol") {
            let s = v.as_str().ok_or_else(|| bad("config protocol must be a string"))?;
            if s.is_empty() {
                return Err(bad("config protocol must not be empty"));
            }
            config.protocol = s.to_string();
        }
        Ok(config)
    }
}

impl Default for HdiffConfig {
    fn default() -> Self {
        HdiffConfig::full()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets() {
        let full = HdiffConfig::full();
        let quick = HdiffConfig::quick();
        assert!(full.abnf_seeds > quick.abnf_seeds);
        assert_eq!(HdiffConfig::default().abnf_seeds, full.abnf_seeds);
        assert_eq!(full.max_gen_depth, 7, "the paper's depth cap");
        assert_eq!(full.shards, 0, "default stays in-process");
    }

    #[test]
    fn json_roundtrip_preserves_every_field() {
        let mut config = HdiffConfig::quick();
        config.seed = 0xdead_beef;
        config.fault_rate = 13;
        config.coverage_guided = true;
        config.transport = Transport::Tcp;
        config.frontend = Frontend::H2;
        config.telemetry = false;
        config.shards = 4;
        config.fleet_chaos = 85;
        config.checkpoint_every = 8;
        config.protocol = "cookie".to_string();
        let parsed = HdiffConfig::from_json(config.to_json().as_bytes()).expect("roundtrip");
        assert_eq!(format!("{config:?}"), format!("{parsed:?}"));
    }

    #[test]
    fn from_json_defaults_missing_keys_and_rejects_garbage() {
        let sparse = HdiffConfig::from_json(b"{\"abnf_seeds\":5,\"shards\":2}").expect("sparse");
        assert_eq!(sparse.abnf_seeds, 5);
        assert_eq!(sparse.shards, 2);
        assert_eq!(sparse.checkpoint_every, HdiffConfig::full().checkpoint_every);
        assert_eq!(sparse.protocol, "http");
        assert!(HdiffConfig::from_json(b"not json").is_err());
        assert!(HdiffConfig::from_json(b"{\"protocol\":\"\"}").is_err());
        assert!(HdiffConfig::from_json(b"{\"protocol\":7}").is_err());
        assert!(HdiffConfig::from_json(b"{\"transport\":\"carrier-pigeon\"}").is_err());
        assert!(HdiffConfig::from_json(b"{\"frontend\":\"h3\"}").is_err());
        assert!(HdiffConfig::from_json(b"{\"fault_rate\":700}").is_err());
    }
}
