//! Pipeline configuration.

use hdiff_diff::Transport;

/// Configuration for one [`crate::HDiff`] run.
#[derive(Debug, Clone)]
pub struct HdiffConfig {
    /// Variants the SR translator produces per (SR, strategy).
    pub sr_variants: usize,
    /// Valid seed requests generated from the ABNF grammar.
    pub abnf_seeds: usize,
    /// Mutants derived from each seed.
    pub mutants_per_seed: usize,
    /// Mutation rounds per mutant (the paper keeps this small).
    pub mutation_rounds: usize,
    /// Include the Table II attack-vector catalog in the corpus.
    pub include_catalog: bool,
    /// RNG seed (full determinism per seed).
    pub seed: u64,
    /// Worker threads for the differential engine; `0` means one per
    /// available core (`std::thread::available_parallelism`).
    pub threads: usize,
    /// ABNF generator recursion depth cap (the paper uses 7).
    pub max_gen_depth: usize,
    /// Fault-injection rate in percent (0 disables the fault campaign).
    pub fault_rate: u8,
    /// Bias the ABNF generator toward grammar alternations it has not
    /// taken yet (changes the generated stream for a given seed; coverage
    /// is tracked and reported either way).
    pub coverage_guided: bool,
    /// How test cases reach the behavioral profiles: in-process
    /// simulation (the default) or real TCP sockets.
    pub transport: Transport,
    /// Collect spans, counters and latency histograms during the run
    /// (surfaced via `RunSummary::telemetry` and `hdiff report`). On by
    /// default; disable to shave the last few percent off a campaign.
    pub telemetry: bool,
}

impl HdiffConfig {
    /// The full experiment configuration (used by the table harnesses).
    pub fn full() -> HdiffConfig {
        HdiffConfig {
            sr_variants: 3,
            abnf_seeds: 120,
            mutants_per_seed: 6,
            mutation_rounds: 2,
            include_catalog: true,
            seed: 0x4844_6966_6621,
            threads: 0,
            max_gen_depth: 7,
            fault_rate: 0,
            coverage_guided: false,
            transport: Transport::Sim,
            telemetry: true,
        }
    }

    /// A fast configuration for tests and examples.
    pub fn quick() -> HdiffConfig {
        HdiffConfig {
            sr_variants: 2,
            abnf_seeds: 20,
            mutants_per_seed: 2,
            mutation_rounds: 2,
            include_catalog: true,
            seed: 0x4844_6966_6621,
            threads: 2,
            max_gen_depth: 7,
            fault_rate: 0,
            coverage_guided: false,
            transport: Transport::Sim,
            telemetry: true,
        }
    }
}

impl Default for HdiffConfig {
    fn default() -> Self {
        HdiffConfig::full()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets() {
        let full = HdiffConfig::full();
        let quick = HdiffConfig::quick();
        assert!(full.abnf_seeds > quick.abnf_seeds);
        assert_eq!(HdiffConfig::default().abnf_seeds, full.abnf_seeds);
        assert_eq!(full.max_gen_depth, 7, "the paper's depth cap");
    }
}
