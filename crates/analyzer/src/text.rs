//! Sentence splitting and tokenization for RFC prose.
//!
//! RFC text is line-wrapped at ~72 columns, interleaves ABNF blocks
//! (indented `name = …` lines), and is full of dotted abbreviations
//! ("e.g.", "i.e.", "Section 3.2.2.") and parenthetical status codes
//! ("400 (Bad Request)"). The splitter reflows paragraphs first, skips
//! ABNF blocks, and then splits on sentence-final punctuation with an
//! abbreviation guard.

use std::fmt;

/// A sentence with its position in the source document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sentence {
    /// The reflowed sentence text.
    pub text: String,
    /// Index of the sentence within its document (0-based).
    pub index: usize,
}

impl fmt::Display for Sentence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// A token: a word, number, or punctuation mark.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token text, case preserved.
    pub text: String,
}

impl Token {
    /// Lowercased view.
    pub fn lower(&self) -> String {
        self.text.to_ascii_lowercase()
    }

    /// Whether the token is entirely uppercase letters (RFC 2119 keywords
    /// are conventionally uppercase).
    pub fn is_all_caps(&self) -> bool {
        self.text.len() > 1 && self.text.chars().all(|c| c.is_ascii_uppercase())
    }

    /// Whether the token is a number.
    pub fn is_number(&self) -> bool {
        !self.text.is_empty() && self.text.chars().all(|c| c.is_ascii_digit())
    }
}

/// Splits document text into sentences, skipping ABNF blocks.
///
/// ```
/// let s = hdiff_analyzer::sentences("A server MUST reject it. A proxy MAY forward it.");
/// assert_eq!(s.len(), 2);
/// ```
pub fn sentences(text: &str) -> Vec<Sentence> {
    let mut flowed = String::new();
    // Indentation of the ABNF rule currently being skipped: lines indented
    // deeper than the rule line are its continuations.
    let mut abnf_indent: Option<usize> = None;
    for line in text.lines() {
        if line.trim().is_empty() {
            abnf_indent = None;
            if !flowed.ends_with('\n') {
                flowed.push('\n');
            }
            continue;
        }
        let indent = line.len() - line.trim_start().len();
        if let Some(base) = abnf_indent {
            if indent > base {
                continue; // grammar continuation line
            }
            abnf_indent = None;
        }
        if is_abnf_like(line) {
            abnf_indent = Some(indent);
            if !flowed.ends_with('\n') {
                flowed.push('\n');
            }
            continue;
        }
        if !flowed.is_empty() && !flowed.ends_with('\n') {
            flowed.push(' ');
        }
        flowed.push_str(line.trim());
    }

    let mut out = Vec::new();
    for paragraph in flowed.split('\n') {
        split_paragraph(paragraph, &mut out);
    }
    for (i, s) in out.iter_mut().enumerate() {
        s.index = i;
    }
    out
}

/// Heuristic: a line that looks like ABNF (indented `name = …`, a `/`
/// continuation, or a pure grammar fragment) is not prose.
fn is_abnf_like(line: &str) -> bool {
    let t = line.trim_start();
    let indent = line.len() - t.len();
    if indent < 4 {
        return false;
    }
    // `name = …` or `name =/ …`
    let mut chars = t.char_indices();
    match chars.next() {
        Some((_, c))
            if c.is_ascii_alphabetic()
                || c == '"'
                || c == '%'
                || c == '<'
                || c == '*'
                || c == '('
                || c == '['
                || c == '/' => {}
        _ => return false,
    }
    if t.starts_with('/')
        || t.starts_with('"')
        || t.starts_with('%')
        || t.starts_with('<')
        || t.starts_with('*')
        || t.starts_with('(')
        || t.starts_with('[')
    {
        return true; // continuation line of a grammar block
    }
    let name_end = t.find(|c: char| !(c.is_ascii_alphanumeric() || c == '-')).unwrap_or(t.len());
    let rest = t[name_end..].trim_start();
    rest.starts_with('=') && !rest.starts_with("==")
}

const ABBREVIATIONS: [&str; 10] =
    ["e.g", "i.e", "a.k.a", "cf", "vs", "etc", "no", "sec", "fig", "approx"];

fn split_paragraph(paragraph: &str, out: &mut Vec<Sentence>) {
    let bytes = paragraph.as_bytes();
    let mut start = 0usize;
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        if b == b'.' || b == b'!' || b == b'?' {
            let next_nonspace = bytes[i + 1..].iter().position(|&c| c != b' ');
            let followed_by_break = match next_nonspace {
                None => true,
                Some(off) => {
                    let c = bytes[i + 1 + off];
                    // Sentence boundary only if next token starts uppercase
                    // and at least one space separates them.
                    off + 1 > 1 && (c.is_ascii_uppercase() || c == b'"')
                }
            };
            let prev_word = last_word(&paragraph[..i]);
            let is_abbrev = ABBREVIATIONS.iter().any(|a| prev_word.eq_ignore_ascii_case(a))
                || prev_word.chars().all(|c| c.is_ascii_digit()) && !prev_word.is_empty()
                || prev_word.len() == 1;
            if followed_by_break && !is_abbrev {
                push_sentence(&paragraph[start..=i], out);
                start = i + 1;
            }
        }
        i += 1;
    }
    if start < paragraph.len() {
        push_sentence(&paragraph[start..], out);
    }
}

fn last_word(s: &str) -> &str {
    s.rsplit(|c: char| c.is_whitespace() || c == '(' || c == ',')
        .next()
        .unwrap_or("")
        .trim_matches(|c: char| !c.is_ascii_alphanumeric() && c != '.')
        .trim_end_matches('.')
}

fn push_sentence(text: &str, out: &mut Vec<Sentence>) {
    let t = text.trim();
    // "Valid sentence" filter: needs some words and a letter.
    if t.split_whitespace().count() >= 3 && t.chars().any(|c| c.is_ascii_alphabetic()) {
        out.push(Sentence { text: t.to_string(), index: 0 });
    }
}

/// Tokenizes a sentence into words, numbers and punctuation.
///
/// Hyphenated protocol names (`Transfer-Encoding`, `100-continue`,
/// `HTTP-version`) stay single tokens.
///
/// ```
/// let t = hdiff_analyzer::tokenize("A server MUST respond with a 400 (Bad Request) status code.");
/// let words: Vec<_> = t.iter().map(|t| t.text.as_str()).collect();
/// assert!(words.contains(&"400"));
/// assert!(words.contains(&"MUST"));
/// ```
pub fn tokenize(sentence: &str) -> Vec<Token> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for c in sentence.chars() {
        if c.is_ascii_alphanumeric()
            || c == '-'
            || c == '_'
            || c == '/'
                && !cur.is_empty()
                && cur.chars().all(|x| x.is_ascii_alphanumeric() || x == '.')
        {
            cur.push(c);
        } else if c == '.'
            && !cur.is_empty()
            && cur.chars().last().is_some_and(|x| x.is_ascii_digit() || x.is_ascii_alphabetic())
        {
            // Keep dots inside version numbers and dotted abbreviations;
            // trailing sentence dots are trimmed below.
            cur.push(c);
        } else {
            flush(&mut cur, &mut out);
            if !c.is_whitespace() {
                out.push(Token { text: c.to_string() });
            }
        }
    }
    flush(&mut cur, &mut out);
    out
}

fn flush(cur: &mut String, out: &mut Vec<Token>) {
    if cur.is_empty() {
        return;
    }
    let trimmed = cur.trim_end_matches('.').trim_matches('-');
    if !trimmed.is_empty() {
        out.push(Token { text: trimmed.to_string() });
    }
    cur.clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_simple_sentences() {
        let s = sentences("A server MUST reject it. A proxy MAY forward it. Short.");
        assert_eq!(s.len(), 2); // "Short." filtered as < 3 words
        assert_eq!(s[0].text, "A server MUST reject it.");
        assert_eq!(s[1].index, 1);
    }

    #[test]
    fn protects_abbreviations_and_numbers() {
        let s = sentences(
            "A recipient MAY recover, e.g. by ignoring the field. See Section 3.2.2. The server MUST close the connection.",
        );
        assert_eq!(s.len(), 3, "{s:?}");
        assert!(s[0].text.contains("e.g. by ignoring"));
    }

    #[test]
    fn status_code_parentheticals_do_not_split() {
        let s = sentences(
            "A server MUST respond with a 400 (Bad Request) status code to any request that lacks a Host header field.",
        );
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn reflows_wrapped_lines() {
        let s = sentences(
            "   A server MUST respond with a 400 status\n   code and then close the connection.",
        );
        assert_eq!(s.len(), 1);
        assert!(s[0].text.contains("status code and then"));
    }

    #[test]
    fn skips_abnf_blocks() {
        let text = "   The version is defined below.\n\n     HTTP-version = HTTP-name \"/\" DIGIT \".\" DIGIT\n     HTTP-name = %x48.54.54.50\n\n   A sender MUST NOT send a version to which it is not conformant.";
        let s = sentences(text);
        assert_eq!(s.len(), 2, "{s:?}");
        assert!(!s.iter().any(|x| x.text.contains("%x48")));
    }

    #[test]
    fn abnf_rule_start_detection() {
        assert!(is_abnf_like("     Transfer-Encoding = *( \",\" OWS ) transfer-coding"));
        assert!(is_abnf_like("      / %x61-7A"));
        assert!(!is_abnf_like("   A server MUST reject the message."));
        assert!(!is_abnf_like("A top-level prose line"));
    }

    #[test]
    fn abnf_continuation_lines_skipped_statefully() {
        // The second line has no grammar markers of its own but is more
        // deeply indented than the rule start, so it is a continuation.
        let text = "   Prose sentence before the grammar block here.\n\n     Transfer-Encoding = *( \",\" OWS ) transfer-coding *( OWS \",\" [ OWS\n      transfer-coding ] )\n\n   A recipient MUST parse the field accordingly every time.";
        let s = sentences(text);
        assert_eq!(s.len(), 2, "{s:?}");
        assert!(!s.iter().any(|x| x.text.contains("transfer-coding ]")));
    }

    #[test]
    fn tokenizer_keeps_protocol_names() {
        let toks = tokenize("If both Transfer-Encoding and Content-Length are present, HTTP/1.1 recipients MUST NOT accept 100-continue.");
        let words: Vec<_> = toks.iter().map(|t| t.text.as_str()).collect();
        assert!(words.contains(&"Transfer-Encoding"));
        assert!(words.contains(&"Content-Length"));
        assert!(words.contains(&"HTTP/1.1"));
        assert!(words.contains(&"100-continue"));
    }

    #[test]
    fn tokenizer_classifies() {
        let toks = tokenize("MUST respond 400.");
        assert!(toks[0].is_all_caps());
        assert!(toks[2].is_number());
        assert_eq!(toks[2].lower(), "400");
    }

    #[test]
    fn empty_input() {
        assert!(sentences("").is_empty());
        assert!(tokenize("").is_empty());
    }
}
