//! Documentation Analyzer — the NLP half of HDiff.
//!
//! The paper's analyzer uses three neural components (stanza sentiment,
//! spaCy dependency parsing, AllenNLP textual entailment). This
//! reproduction substitutes deterministic lexicon/rule equivalents that
//! compute the same three predicates for RFC-register English (see
//! `DESIGN.md` §2 for the substitution argument):
//!
//! * [`text`] — sentence splitting and tokenization tuned to RFC prose
//!   (abbreviations, section references, parenthetical status codes).
//! * [`sentiment`] — the *sentiment-based SR finder*: scores the
//!   requirement-intensity of a sentence from a modality/sentiment lexicon
//!   covering both RFC 2119 keywords and the non-keyword strong phrasings
//!   the paper highlights ("not allowed", "cannot", "ought to be handled
//!   as an error").
//! * [`depparse`] — a dependency-lite shallow parser: subject role, modal,
//!   main verb, and clause splitting on coordinating conjunctions.
//! * [`anaphora`] — the paper's forward-search referent resolution
//!   (keyword fuzzy match over up to five preceding sentences).
//! * [`entail`] — lexical textual entailment of seed-template hypotheses
//!   against a premise sentence (synonym sets + negation handling).
//! * [`field_dict`] — the HTTP field dictionary derived from the adapted
//!   ABNF grammar's rule names.
//! * [`text2rule`] — the Text2Rule converter assembling
//!   [`hdiff_sr::SpecRequirement`]s.
//! * [`pipeline`] — the end-to-end Documentation Analyzer over a corpus.
//!
//! # Example
//!
//! ```
//! use hdiff_analyzer::pipeline::DocumentAnalyzer;
//!
//! let analyzer = DocumentAnalyzer::with_default_inputs();
//! let output = analyzer.analyze(&hdiff_corpus::core_documents());
//! assert!(output.requirements.len() > 40);
//! assert!(output.grammar.contains("HTTP-message"));
//! ```

pub mod anaphora;
pub mod depparse;
pub mod entail;
pub mod field_dict;
pub mod lexicon;
pub mod pipeline;
pub mod sentiment;
pub mod text;
pub mod text2rule;

pub use field_dict::FieldDictionary;
pub use pipeline::{AnalyzerOutput, AnalyzerStats, DocumentAnalyzer};
pub use sentiment::SentimentClassifier;
pub use text::{sentences, tokenize, Sentence, Token};
pub use text2rule::Text2Rule;
