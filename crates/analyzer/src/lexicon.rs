//! The POS-lite lexicon behind the dependency-lite parser.
//!
//! The paper identifies clause boundaries "based on Part-of-speech
//! tagging" (cc/conj relations) and finds subjects/actions through the
//! dependency tree. This closed lexicon provides the tag inventory those
//! steps need for RFC-register English: modal keywords, the role-action
//! verb set, protocol role nouns, coordinating conjunctions, negations,
//! and relative pronouns.

use hdiff_sr::Role;

/// The part-of-speech tags the shallow parser distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PosTag {
    /// Requirement modals: `must`, `shall`, `should`, `may`, `cannot`,
    /// `never`, `ought`, `required`, `recommended`, `optional`.
    Modal,
    /// Verbs from the closed role-action vocabulary (`respond`, `reject`,
    /// `forward`, …).
    ActionVerb,
    /// Protocol role nouns (`server`, `proxy`, `user agent`, …).
    RoleNoun,
    /// Coordinating conjunctions (`and`, `or`) — the cc/conj markers the
    /// clause splitter cuts on.
    Conjunction,
    /// Negation particles (`not`, `no`, `nor`, `n't`).
    Negation,
    /// Relative pronouns introducing subordinate clauses (`that`,
    /// `which`) — role nouns after these are not subjects.
    RelativePronoun,
    /// Determiners/articles (`a`, `an`, `the`, `any`, `each`, `every`).
    Determiner,
    /// Everything else.
    Other,
}

/// Tags one lowercased word.
///
/// ```
/// use hdiff_analyzer::lexicon::{tag, PosTag};
/// assert_eq!(tag("must"), PosTag::Modal);
/// assert_eq!(tag("respond"), PosTag::ActionVerb);
/// assert_eq!(tag("proxy"), PosTag::RoleNoun);
/// assert_eq!(tag("and"), PosTag::Conjunction);
/// assert_eq!(tag("banana"), PosTag::Other);
/// ```
pub fn tag(word: &str) -> PosTag {
    if is_modal(word) {
        PosTag::Modal
    } else if is_action_verb(word) {
        PosTag::ActionVerb
    } else if Role::from_keyword(word).is_some() {
        PosTag::RoleNoun
    } else {
        match word {
            "and" | "or" => PosTag::Conjunction,
            "not" | "no" | "nor" | "n't" => PosTag::Negation,
            "that" | "which" => PosTag::RelativePronoun,
            "a" | "an" | "the" | "any" | "each" | "every" | "this" | "such" => PosTag::Determiner,
            _ => PosTag::Other,
        }
    }
}

/// Requirement-modal keywords (RFC 2119 plus the strong non-keyword
/// phrasings the paper highlights).
pub fn is_modal(word: &str) -> bool {
    matches!(
        word,
        "must"
            | "shall"
            | "should"
            | "may"
            | "cannot"
            | "never"
            | "ought"
            | "required"
            | "recommended"
            | "optional"
    )
}

/// The closed verb lexicon of RFC role actions.
pub fn is_action_verb(word: &str) -> bool {
    matches!(
        word,
        "respond"
            | "responds"
            | "reject"
            | "rejects"
            | "accept"
            | "accepts"
            | "ignore"
            | "ignores"
            | "close"
            | "closes"
            | "forward"
            | "forwards"
            | "send"
            | "sends"
            | "generate"
            | "generates"
            | "remove"
            | "removes"
            | "replace"
            | "replaces"
            | "store"
            | "stores"
            | "reuse"
            | "reuses"
            | "cache"
            | "caches"
            | "treat"
            | "treats"
            | "parse"
            | "parses"
            | "apply"
            | "applies"
            | "process"
            | "read"
            | "reads"
            | "consider"
            | "considers"
            | "discard"
            | "discards"
            | "handle"
            | "handled"
            | "handles"
            | "interpret"
            | "interprets"
            | "use"
            | "uses"
            | "evaluate"
            | "evaluates"
            | "obey"
            | "pass"
            | "check"
            | "update"
            | "omit"
            | "recover"
            | "rewrite"
            | "rewrites"
            | "understand"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_inventory() {
        assert_eq!(tag("shall"), PosTag::Modal);
        assert_eq!(tag("ought"), PosTag::Modal);
        assert_eq!(tag("discard"), PosTag::ActionVerb);
        assert_eq!(tag("proxies"), PosTag::RoleNoun);
        assert_eq!(tag("intermediary"), PosTag::RoleNoun);
        assert_eq!(tag("or"), PosTag::Conjunction);
        assert_eq!(tag("not"), PosTag::Negation);
        assert_eq!(tag("which"), PosTag::RelativePronoun);
        assert_eq!(tag("every"), PosTag::Determiner);
        assert_eq!(tag("chunked"), PosTag::Other);
    }

    #[test]
    fn lexica_are_disjoint_by_precedence() {
        // `cache` is both a verb and a role noun; the modal/verb order of
        // `tag` decides — verbs win, which is what the action extractor
        // needs ("MUST NOT cache").
        assert_eq!(tag("cache"), PosTag::ActionVerb);
    }
}
