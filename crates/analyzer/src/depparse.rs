//! Dependency-lite shallow parsing.
//!
//! Substitutes the paper's spaCy RoBERTa dependency parser with a rule
//! parser specialized for RFC requirement sentences, which follow a rigid
//! schema: `<subject role> <modal> [not] <verb> <arguments…>` optionally
//! prefixed/suffixed by condition clauses ("If a message is received
//! with …", "… to any request that lacks a Host header field").
//!
//! Two products are extracted:
//!
//! * [`ClauseParse`] — subject role (nsubj), modality, main verb, and the
//!   argument tokens for each clause;
//! * clause splitting on coordinating conjunctions (the paper's cc/conj
//!   handling for long multi-clause sentences).

use hdiff_sr::{Modality, Role};

use crate::text::{tokenize, Token};

/// A shallow parse of one clause.
#[derive(Debug, Clone, PartialEq)]
pub struct ClauseParse {
    /// The grammatical subject, if it is a protocol role.
    pub subject: Option<Role>,
    /// Requirement modality, if a modal is present.
    pub modality: Option<Modality>,
    /// The main verb governed by the modal (lowercased, e.g. "respond").
    pub verb: Option<String>,
    /// All tokens of the clause.
    pub tokens: Vec<Token>,
}

impl ClauseParse {
    /// The lowercased token texts.
    pub fn lower_words(&self) -> Vec<String> {
        self.tokens.iter().map(Token::lower).collect()
    }

    /// Joined lowercase clause text (normalized spacing).
    pub fn joined(&self) -> String {
        self.lower_words().join(" ")
    }
}

/// Splits a sentence into coordinated clauses and parses each.
///
/// ```
/// use hdiff_analyzer::depparse::parse_clauses;
/// let clauses = parse_clauses(
///     "A server MUST respond with a 400 status code and then close the connection.",
/// );
/// assert_eq!(clauses.len(), 2);
/// assert_eq!(clauses[1].verb.as_deref(), Some("close"));
/// ```
pub fn parse_clauses(sentence: &str) -> Vec<ClauseParse> {
    let tokens = tokenize(sentence);
    let chunks = split_on_coordination(&tokens);
    let mut out: Vec<ClauseParse> = Vec::new();
    for chunk in chunks {
        let mut parse = parse_clause(chunk);
        // Clause inheritance: "… MUST respond with 400 and [MUST] close …"
        // — a conjunct without its own subject/modal inherits from the
        // previous clause (the conj relation in a real dependency tree).
        if let Some(prev) = out.last() {
            if parse.subject.is_none() {
                parse.subject = prev.subject;
            }
            if parse.modality.is_none() {
                parse.modality = prev.modality;
            }
        }
        out.push(parse);
    }
    out
}

/// Splits token stream on clause-level coordination: `, and`, `; `,
/// `and then`, `or` followed by a verb/modal, etc. Conservative: only
/// splits when the right side contains a verb, so noun coordination
/// ("Transfer-Encoding and Content-Length") stays together.
fn split_on_coordination(tokens: &[Token]) -> Vec<&[Token]> {
    let mut cuts = vec![0usize];
    let mut paren_depth = 0i32;
    for (i, t) in tokens.iter().enumerate() {
        match t.text.as_str() {
            "(" => paren_depth += 1,
            ")" => paren_depth -= 1,
            _ => {}
        }
        if paren_depth > 0 {
            continue;
        }
        let lower = t.lower();
        let is_cc = lower == "and" || lower == "or";
        let is_semi = t.text == ";";
        if (is_cc || is_semi) && i + 1 < tokens.len() {
            // Only cut when a verb phrase follows within a few tokens.
            let window = &tokens[i + 1..(i + 6).min(tokens.len())];
            let has_verb = window.iter().any(|w| {
                let l = w.lower();
                is_action_verb(&l) || is_modal_word(&l)
            });
            // "both X and Y" is noun coordination, never a clause boundary.
            let in_both_frame = tokens[i.saturating_sub(8)..i]
                .iter()
                .any(|w| w.lower() == "both" || w.lower() == "either");
            if has_verb && !in_both_frame {
                cuts.push(i + 1);
            }
        }
    }
    cuts.push(tokens.len());
    cuts.dedup();
    let mut out = Vec::new();
    for w in cuts.windows(2) {
        if w[1] > w[0] {
            out.push(&tokens[w[0]..w[1]]);
        }
    }
    out
}

fn parse_clause(tokens: &[Token]) -> ClauseParse {
    let lowers: Vec<String> = tokens.iter().map(Token::lower).collect();

    // Modality: first modal keyword, checking for a following "not".
    let mut modality = None;
    let mut modal_idx = None;
    for (i, l) in lowers.iter().enumerate() {
        if is_modal_word(l) {
            let negated = lowers.get(i + 1).map(String::as_str) == Some("not");
            modality = Some(match l.as_str() {
                "must" | "shall" | "required" => {
                    if negated {
                        Modality::MustNot
                    } else {
                        Modality::Must
                    }
                }
                "should" | "recommended" | "ought" => {
                    if negated {
                        Modality::ShouldNot
                    } else {
                        Modality::Should
                    }
                }
                "cannot" | "never" => Modality::MustNot,
                _ => Modality::May,
            });
            modal_idx = Some(i);
            break;
        }
        // "is not allowed" / "is not permitted" without a modal.
        if (l == "allowed" || l == "permitted")
            && i >= 1
            && lowers[..i].iter().rev().take(2).any(|w| w == "not")
        {
            modality = Some(Modality::MustNot);
            modal_idx = Some(i);
            break;
        }
    }

    // Subject: first role noun before the modal that is not itself inside
    // a relative clause ("… that receives a request from a client …" — the
    // head noun "proxy" precedes the relative pronoun, so first wins).
    let search_end = modal_idx.unwrap_or(lowers.len());
    let mut subject = None;
    let mut i = 0;
    while i < search_end {
        let in_relative = i >= 1 && (lowers[i - 1] == "that" || lowers[i - 1] == "which");
        // Two-word roles first.
        if i + 1 < search_end && !in_relative {
            let two = format!("{} {}", lowers[i], lowers[i + 1]);
            if let Some(r) = Role::from_keyword(&two) {
                subject = Some(r);
                break;
            }
        }
        if !in_relative {
            if let Some(r) = Role::from_keyword(&lowers[i]) {
                subject = Some(r);
                break;
            }
        }
        i += 1;
    }

    // Main verb: first action verb after the modal (or from the clause
    // start for modal-less conjuncts that inherit modality). Passive
    // participles normalize to their base form (rejected -> reject).
    let verb_start = modal_idx.map_or(0, |mi| mi + 1);
    let verb = lowers[verb_start..].iter().find_map(|l| normalize_verb(l));

    // Passive subject: "… MUST be rejected by the server".
    if subject.is_none() {
        if let Some(mi) = modal_idx {
            let mut j = mi;
            while j < lowers.len() {
                if lowers[j] == "by" {
                    for k in j + 1..(j + 4).min(lowers.len()) {
                        if k + 1 < lowers.len() {
                            if let Some(r) =
                                Role::from_keyword(&format!("{} {}", lowers[k], lowers[k + 1]))
                            {
                                subject = Some(r);
                                break;
                            }
                        }
                        if let Some(r) = Role::from_keyword(&lowers[k]) {
                            subject = Some(r);
                            break;
                        }
                    }
                    if subject.is_some() {
                        break;
                    }
                }
                j += 1;
            }
        }
    }

    ClauseParse { subject, modality, verb, tokens: tokens.to_vec() }
}

/// Maps a token to a base action verb, normalizing passive participles.
fn normalize_verb(l: &str) -> Option<String> {
    if is_action_verb(l) {
        return Some(l.to_string());
    }
    if let Some(stem) = l.strip_suffix('d') {
        if is_action_verb(stem) {
            return Some(stem.to_string());
        }
    }
    if let Some(stem) = l.strip_suffix("ed") {
        if is_action_verb(stem) {
            return Some(stem.to_string());
        }
    }
    None
}

fn is_modal_word(l: &str) -> bool {
    crate::lexicon::is_modal(l)
}

/// The closed verb lexicon of RFC role actions (see [`crate::lexicon`]).
pub fn is_action_verb(l: &str) -> bool {
    crate::lexicon::is_action_verb(l)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_canonical_sr() {
        let c = parse_clauses(
            "A server MUST respond with a 400 (Bad Request) status code to any HTTP/1.1 request message that lacks a Host header field.",
        );
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].subject, Some(Role::Server));
        assert_eq!(c[0].modality, Some(Modality::Must));
        assert_eq!(c[0].verb.as_deref(), Some("respond"));
    }

    #[test]
    fn negated_modal() {
        let c = parse_clauses("A sender MUST NOT send a Content-Length header field in any message that contains a Transfer-Encoding header field.");
        assert_eq!(c[0].modality, Some(Modality::MustNot));
        assert_eq!(c[0].subject, Some(Role::Sender));
        assert_eq!(c[0].verb.as_deref(), Some("send"));
    }

    #[test]
    fn ought_to_is_should() {
        let c = parse_clauses(
            "Such a message ought to be handled as an error by the recipient involved.",
        );
        assert_eq!(c[0].modality, Some(Modality::Should));
    }

    #[test]
    fn not_allowed_is_must_not() {
        let c = parse_clauses(
            "Whitespace between the field name and colon is not allowed in a request.",
        );
        assert_eq!(c[0].modality, Some(Modality::MustNot));
    }

    #[test]
    fn clause_splitting_with_inheritance() {
        let c = parse_clauses(
            "The server MUST respond with a 400 (Bad Request) status code and then close the connection.",
        );
        assert_eq!(c.len(), 2, "{c:?}");
        assert_eq!(c[1].subject, Some(Role::Server)); // inherited
        assert_eq!(c[1].modality, Some(Modality::Must)); // inherited
        assert_eq!(c[1].verb.as_deref(), Some("close"));
    }

    #[test]
    fn noun_coordination_not_split() {
        let c = parse_clauses(
            "A message with both a Transfer-Encoding and a Content-Length header field MUST be rejected by the server.",
        );
        assert_eq!(c.len(), 1, "{c:?}");
    }

    #[test]
    fn two_word_roles() {
        let c = parse_clauses("An origin server SHOULD ignore the payload.");
        assert_eq!(c[0].subject, Some(Role::OriginServer));
        let c2 = parse_clauses("A user agent SHOULD send Content-Length when possible.");
        assert_eq!(c2[0].subject, Some(Role::UserAgent));
    }

    #[test]
    fn subject_inside_relative_clause_skipped() {
        // "server" is the subject, not the "request" in the relative clause.
        let c = parse_clauses(
            "A proxy that receives a request from a client MUST forward the message body.",
        );
        assert_eq!(c[0].subject, Some(Role::Proxy));
    }

    #[test]
    fn no_role_no_modal() {
        let c = parse_clauses("The weather patterns vary across different regions entirely.");
        assert_eq!(c[0].subject, None);
        assert_eq!(c[0].modality, None);
    }
}
