//! Lexical textual entailment against SR seed hypotheses.
//!
//! The paper frames Text2Rule as question answering: *does this sentence
//! imply the hypothesis "the Host header is invalid"?* Here entailment is
//! computed lexically — marker-phrase sets (with synonyms and negation
//! handling) per hypothesis — which is deterministic and auditable. The
//! interface mirrors a probabilistic model: [`entail_state`] and
//! [`entail_action`] return a confidence in `[0, 1]`, and callers accept a
//! hypothesis above [`CONFIDENCE_THRESHOLD`].

use hdiff_sr::{FieldState, RoleAction};

/// Minimum confidence to accept an entailed hypothesis.
pub const CONFIDENCE_THRESHOLD: f32 = 0.6;

/// Confidence that `premise` entails "the `field` is `state`".
///
/// ```
/// use hdiff_analyzer::entail::entail_state;
/// use hdiff_sr::FieldState;
/// let premise = "a request message that lacks a Host header field";
/// assert!(entail_state(premise, "Host", FieldState::Absent) > 0.6);
/// assert!(entail_state(premise, "Host", FieldState::Multiple) < 0.6);
/// ```
pub fn entail_state(premise: &str, field: &str, state: FieldState) -> f32 {
    let lower = premise.to_ascii_lowercase();
    let field_lower = field.to_ascii_lowercase();
    if !lower.contains(&field_lower) {
        return 0.0;
    }
    // Examine a window around each mention of the field. Determiner-like
    // markers ("lacks a", "multiple") must sit in the *pre-window*
    // immediately before the mention, so that "without Transfer-Encoding
    // and with multiple Content-Length fields" binds `without` to TE and
    // `multiple` to CL, not vice versa.
    let mut best: f32 = 0.0;
    for (idx, _) in lower.match_indices(&field_lower) {
        let pre = &lower[idx.saturating_sub(40)..idx];
        let post_end = (idx + field_lower.len() + 100).min(lower.len());
        let post = &lower[idx + field_lower.len()..post_end];
        best = best.max(state_markers(pre, post, state));
    }
    best
}

fn state_markers(pre: &str, post: &str, state: FieldState) -> f32 {
    let pre_ends = |markers: &[&str]| markers.iter().any(|m| pre.ends_with(m));
    let post_has = |markers: &[&str]| markers.iter().any(|m| post.contains(m));
    let around = format!("{pre}<>{post}");
    let has = |p: &str| around.contains(p);
    match state {
        FieldState::Absent => {
            if pre_ends(&[
                "lacks a ",
                "lacks ",
                "without a ",
                "without ",
                "no ",
                "missing ",
                "omits ",
                "does not contain a ",
                "does not contain ",
            ]) || post_has(&["is absent", "is missing"])
            {
                0.9
            } else {
                0.0
            }
        }
        FieldState::Multiple => {
            if pre_ends(&[
                "more than one ",
                "multiple ",
                "duplicate ",
                "duplicated ",
                "repeated ",
                "two or more ",
                "two ",
            ]) || post_has(&["more than once", "appears twice"])
            {
                0.9
            } else {
                0.0
            }
        }
        FieldState::Invalid => {
            if post_has(&["is not valid", "not a valid"]) {
                1.0
            } else if pre_ends(&["invalid ", "malformed ", "bad "])
                || post_has(&[
                    "invalid",
                    "malformed",
                    "does not match",
                    "is not the final",
                    "not the final encoding",
                ])
            {
                0.9
            } else {
                0.0
            }
        }
        FieldState::Empty => {
            if pre_ends(&["empty ", "an empty "])
                || post_has(&["empty field-value", "empty value", "with an empty"])
            {
                0.9
            } else {
                0.0
            }
        }
        FieldState::TooLong => {
            if post_has(&["longer than", "larger than", "too long", "exceeds", "oversize"])
                || pre_ends(&["oversized ", "long "])
            {
                0.9
            } else {
                0.0
            }
        }
        FieldState::MalformedSpacing => {
            if has("whitespace between") && (has("colon") || has("field-name")) {
                1.0
            } else {
                0.0
            }
        }
        FieldState::Conflicting => {
            // "both a Transfer-Encoding and a Content-Length" — field plus a
            // companion in a both/and or with/and frame.
            if (has("both") && has(" and "))
                || has("together with")
                || has("in any message that contains")
            {
                0.9
            } else {
                0.0
            }
        }
        FieldState::Valid => {
            if post_has(&["is not valid", "invalid"]) || pre_ends(&["invalid "]) {
                0.0
            } else if pre_ends(&["a valid ", "valid "]) {
                0.9
            } else {
                0.0
            }
        }
        FieldState::Present => {
            if pre_ends(&["lacks a ", "without ", "no "]) || post_has(&["is absent"]) {
                0.0
            } else if pre_ends(&[
                "contains a ",
                "contains ",
                "with a ",
                "with an ",
                "including ",
                "received with ",
                "a ",
                "an ",
                "any ",
                "the ",
            ]) {
                0.7
            } else {
                // Bare mention: weak evidence of presence.
                0.3
            }
        }
    }
}

/// Extracts the first status code (100–599) mentioned in the text. A bare
/// three-digit number only counts when the nearby context talks about a
/// status/response/error — "172,088 words" and "RFC 7230" are not codes.
pub fn find_status_code(text: &str) -> Option<u16> {
    let lower = text.to_ascii_lowercase();
    let mut digits = String::new();
    let bytes = lower.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i].is_ascii_digit() {
            digits.clear();
            let start = i;
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                digits.push(bytes[i] as char);
                i += 1;
            }
            // Word boundary: next char must not be alphanumeric, ',', or
            // '.'/'-' followed by a digit (protects HTTP/1.1, 172,088).
            let glued = i < bytes.len()
                && (bytes[i].is_ascii_alphabetic()
                    || (matches!(bytes[i], b'.' | b',' | b'-')
                        && i + 1 < bytes.len()
                        && bytes[i + 1].is_ascii_digit()));
            let after_sep = start > 0 && matches!(bytes[start - 1], b'/' | b'.' | b'-' | b',');
            let context = {
                let lo = start.saturating_sub(40);
                let hi = (i + 40).min(lower.len());
                &lower[lo..hi]
            };
            let status_context = ["status", "response", "respond", "code", "error"]
                .iter()
                .any(|w| context.contains(w));
            if digits.len() == 3 && !glued && !after_sep && status_context {
                if let Ok(code) = digits.parse::<u16>() {
                    if (100..=599).contains(&code) {
                        return Some(code);
                    }
                }
            }
            continue;
        }
        i += 1;
    }
    None
}

/// Confidence that a clause (already attributed to a role by the parser)
/// entails the given role action. `negated` is the clause's modality
/// negativity (MUST NOT …).
pub fn entail_action(clause: &str, verb: Option<&str>, negated: bool, action: &RoleAction) -> f32 {
    let lower = clause.to_ascii_lowercase();
    let has = |p: &str| lower.contains(p);
    let verb = verb.unwrap_or("");
    match action {
        RoleAction::Respond(code) => {
            let code_here = find_status_code(&lower) == Some(*code);
            let respond_verb = matches!(
                verb,
                "respond"
                    | "responds"
                    | "send"
                    | "sends"
                    | "reject"
                    | "rejects"
                    | "generate"
                    | "generates"
            ) || has("respond")
                || has("response");
            if code_here && respond_verb && !negated {
                1.0
            } else {
                0.0
            }
        }
        RoleAction::Reject => {
            if negated {
                0.0
            } else if matches!(verb, "reject" | "rejects")
                || has("reject the message")
                || has("reject it as invalid")
                || has("reject any received")
            {
                1.0
            } else if has("handled as an error")
                || has("treat it as an unrecoverable error")
                || has("treat the message as") && has("error")
            {
                0.8
            } else {
                0.0
            }
        }
        RoleAction::Accept => {
            if !negated && matches!(verb, "accept" | "accepts") {
                0.9
            } else {
                0.0
            }
        }
        RoleAction::Ignore => {
            if !negated && (matches!(verb, "ignore" | "ignores") || has("must ignore")) {
                1.0
            } else {
                0.0
            }
        }
        RoleAction::CloseConnection => {
            if !negated
                && (has("close the connection")
                    || (matches!(verb, "close" | "closes") && has("connection")))
            {
                1.0
            } else {
                0.0
            }
        }
        RoleAction::Forward => {
            if !negated && matches!(verb, "forward" | "forwards") {
                0.9
            } else {
                0.0
            }
        }
        RoleAction::NotForward => {
            // "MUST NOT forward the X header field" is a field-level
            // removal requirement, not a message-level one.
            if has("header field") && negated && matches!(verb, "forward" | "forwards") {
                0.0
            } else if (negated && matches!(verb, "forward" | "forwards"))
                || (has("not forward") && !has("header field"))
                || has("not allowed to blindly forward")
            {
                1.0
            } else {
                0.0
            }
        }
        RoleAction::RemoveField(_) => {
            if !negated && (matches!(verb, "remove" | "removes") || has("must remove")) {
                0.9
            } else if negated && matches!(verb, "forward" | "forwards") && has("header field") {
                // "MUST NOT forward the X header field".
                0.9
            } else {
                0.0
            }
        }
        RoleAction::ReplaceField(_) => {
            if !negated && (matches!(verb, "replace" | "replaces") || has("instead replace")) {
                0.9
            } else {
                0.0
            }
        }
        RoleAction::NotCache => {
            if (negated
                && matches!(
                    verb,
                    "store" | "stores" | "cache" | "caches" | "reuse" | "reuses" | "use" | "uses"
                ))
                || has("not store")
                || has("not reuse")
                || has("not cache")
            {
                0.9
            } else {
                0.0
            }
        }
        RoleAction::NotGenerate => {
            if negated
                && matches!(verb, "send" | "sends" | "generate" | "generates" | "apply" | "applies")
            {
                1.0
            } else {
                0.0
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_entailment_absent_vs_present() {
        let premise = "to any http/1.1 request message that lacks a host header field";
        assert!(entail_state(premise, "Host", FieldState::Absent) >= CONFIDENCE_THRESHOLD);
        assert!(entail_state(premise, "Host", FieldState::Present) < CONFIDENCE_THRESHOLD);
        assert!(entail_state(premise, "Host", FieldState::Invalid) < CONFIDENCE_THRESHOLD);
    }

    #[test]
    fn state_entailment_multiple() {
        let premise = "contains more than one host header field";
        assert!(entail_state(premise, "Host", FieldState::Multiple) >= CONFIDENCE_THRESHOLD);
    }

    #[test]
    fn state_entailment_invalid() {
        let premise = "or a host header field with an invalid field-value";
        assert!(entail_state(premise, "Host", FieldState::Invalid) >= CONFIDENCE_THRESHOLD);
    }

    #[test]
    fn state_entailment_ws_colon() {
        let premise = "contains whitespace between a header field-name and colon";
        // The "field" here is the generic header-field construct.
        assert!(
            entail_state(premise, "header field-name", FieldState::MalformedSpacing)
                >= CONFIDENCE_THRESHOLD
        );
    }

    #[test]
    fn state_entailment_conflict() {
        let premise =
            "a message is received with both a transfer-encoding and a content-length header field";
        assert!(
            entail_state(premise, "Transfer-Encoding", FieldState::Conflicting)
                >= CONFIDENCE_THRESHOLD
        );
        assert!(
            entail_state(premise, "Content-Length", FieldState::Conflicting)
                >= CONFIDENCE_THRESHOLD
        );
    }

    #[test]
    fn unmentioned_field_scores_zero() {
        assert_eq!(entail_state("a message without framing", "Host", FieldState::Absent), 0.0);
    }

    #[test]
    fn status_code_extraction() {
        assert_eq!(find_status_code("respond with a 400 (Bad Request) status code"), Some(400));
        assert_eq!(find_status_code("send a 505 response"), Some(505));
        assert_eq!(find_status_code("an http/1.1 request message"), None);
        assert_eq!(find_status_code("contains 172,088 words"), None);
        assert_eq!(find_status_code("RFC 7230 defines this"), None);
        assert_eq!(find_status_code("no codes here"), None);
    }

    #[test]
    fn action_entailment_respond() {
        let clause = "a server must respond with a 400 (bad request) status code";
        assert!(
            entail_action(clause, Some("respond"), false, &RoleAction::Respond(400))
                >= CONFIDENCE_THRESHOLD
        );
        assert!(
            entail_action(clause, Some("respond"), false, &RoleAction::Respond(501))
                < CONFIDENCE_THRESHOLD
        );
    }

    #[test]
    fn action_entailment_close_and_forward() {
        assert!(
            entail_action(
                "and then close the connection",
                Some("close"),
                false,
                &RoleAction::CloseConnection
            ) >= CONFIDENCE_THRESHOLD
        );
        assert!(
            entail_action("must send their own http-version in forwarded messages and is not allowed to blindly forward the first line", Some("send"), false, &RoleAction::NotForward)
                >= CONFIDENCE_THRESHOLD
        );
        assert!(
            entail_action(
                "must not forward the request",
                Some("forward"),
                true,
                &RoleAction::NotForward
            ) >= CONFIDENCE_THRESHOLD
        );
    }

    #[test]
    fn action_entailment_not_generate() {
        assert!(
            entail_action(
                "a sender must not send a content-length header field",
                Some("send"),
                true,
                &RoleAction::NotGenerate
            ) >= CONFIDENCE_THRESHOLD
        );
        assert!(
            entail_action(
                "a server must send a response",
                Some("send"),
                false,
                &RoleAction::NotGenerate
            ) < CONFIDENCE_THRESHOLD
        );
    }

    #[test]
    fn action_entailment_not_cache() {
        assert!(
            entail_action(
                "a cache must not store a response to any request",
                Some("store"),
                true,
                &RoleAction::NotCache
            ) >= CONFIDENCE_THRESHOLD
        );
    }
}
