//! Sentiment-based SR finder.
//!
//! The paper's key observation: requirement sentences carry *strong
//! sentiment* — forceful modality — whether or not they use RFC 2119
//! keywords ("chunked message is not allowed", "cannot contain a message
//! body", "ought to be handled as an error"). This classifier scores that
//! intensity from a weighted lexicon and flags sentences above a
//! threshold as SR candidates. It substitutes the paper's stanza-based
//! classifier with a deterministic equivalent (DESIGN.md §2).

use crate::text::{tokenize, Sentence};

/// A scored SR candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct SrCandidate {
    /// The sentence.
    pub sentence: Sentence,
    /// Requirement-intensity score.
    pub score: f32,
}

/// The sentiment/modality classifier.
#[derive(Debug, Clone)]
pub struct SentimentClassifier {
    /// Minimum score for a sentence to count as an SR candidate.
    pub threshold: f32,
}

impl Default for SentimentClassifier {
    fn default() -> Self {
        SentimentClassifier { threshold: 2.0 }
    }
}

impl SentimentClassifier {
    /// Creates a classifier with the default threshold.
    pub fn new() -> SentimentClassifier {
        SentimentClassifier::default()
    }

    /// Scores the requirement intensity of a sentence.
    ///
    /// ```
    /// let c = hdiff_analyzer::SentimentClassifier::new();
    /// assert!(c.score("A server MUST reject the message.") >= 2.0);
    /// assert!(c.score("HTTP has evolved over time.") < 2.0);
    /// ```
    pub fn score(&self, sentence: &str) -> f32 {
        let tokens = tokenize(sentence);
        let lowers: Vec<String> = tokens.iter().map(|t| t.lower()).collect();
        let mut score = 0.0f32;

        for (i, tok) in tokens.iter().enumerate() {
            let lower = &lowers[i];
            // RFC 2119 keywords in caps: the strongest signal.
            if tok.is_all_caps() {
                match lower.as_str() {
                    "must" | "shall" | "required" => score += 3.0,
                    "should" | "recommended" => score += 2.5,
                    "may" | "optional" => score += 1.5,
                    _ => {}
                }
                continue;
            }
            // Lowercase modal/sentiment words: weaker but still strong.
            match lower.as_str() {
                "must" | "shall" => score += 2.0,
                "should" => score += 1.5,
                "cannot" | "never" => score += 2.0,
                "ought" => score += 2.0,
                "forbidden" | "prohibited" | "unacceptable" | "invalid" | "reject" | "rejected"
                | "error" | "unrecoverable" => score += 0.75,
                "allowed" | "permitted" => {
                    // "not allowed" / "is not permitted" is a MUST NOT.
                    if preceded_by_negation(&lowers, i) {
                        score += 2.5;
                    } else {
                        score += 0.25;
                    }
                }
                "needs" | "need" if lowers.get(i + 1).map(String::as_str) == Some("to") => {
                    score += 1.0;
                }
                _ => {}
            }
        }

        // Imperative security phrasing boosts.
        let joined = lowers.join(" ");
        for (phrase, w) in [
            ("handled as an error", 1.5),
            ("treat it as", 0.75),
            ("is not allowed", 1.0),
            ("no whitespace is allowed", 1.5),
            ("security", 0.25),
        ] {
            if joined.contains(phrase) {
                score += w;
            }
        }
        score
    }

    /// Whether the sentence scores as a requirement.
    pub fn is_requirement(&self, sentence: &str) -> bool {
        self.score(sentence) >= self.threshold
    }

    /// Filters a document's sentences to SR candidates, highest score
    /// first for stable prioritization.
    pub fn find_candidates(&self, sentences: &[Sentence]) -> Vec<SrCandidate> {
        let mut out: Vec<SrCandidate> = sentences
            .iter()
            .filter_map(|s| {
                let score = self.score(&s.text);
                (score >= self.threshold).then(|| SrCandidate { sentence: s.clone(), score })
            })
            .collect();
        out.sort_by(|a, b| b.score.partial_cmp(&a.score).unwrap_or(std::cmp::Ordering::Equal));
        out
    }

    /// Baseline for the ablation bench: plain RFC 2119 keyword grep (what
    /// the paper argues is insufficient).
    pub fn keyword_grep(sentence: &str) -> bool {
        ["MUST", "SHALL", "SHOULD", "REQUIRED", "RECOMMENDED"].iter().any(|k| sentence.contains(k))
    }
}

fn preceded_by_negation(lowers: &[String], i: usize) -> bool {
    let lo = i.saturating_sub(3);
    lowers[lo..i].iter().any(|w| w == "not" || w == "no" || w == "nor" || w == "n't")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::text::sentences;

    #[test]
    fn rfc2119_keywords_score_high() {
        let c = SentimentClassifier::new();
        assert!(c.is_requirement("A server MUST respond with a 400 status code."));
        assert!(c.is_requirement("A sender MUST NOT send a Content-Length header field."));
        assert!(c.is_requirement("A proxy SHOULD NOT forward hop-by-hop fields."));
    }

    #[test]
    fn non_keyword_requirements_still_found() {
        // The paper's three examples of keyword-less SRs.
        let c = SentimentClassifier::new();
        assert!(c.is_requirement("A chunked message is not allowed in an HTTP/1.0 request."));
        assert!(c.is_requirement("A response to a HEAD request cannot contain a message body."));
        assert!(c.is_requirement("Such a mismatch ought to be handled as an error."));
    }

    #[test]
    fn descriptive_prose_scores_low() {
        let c = SentimentClassifier::new();
        assert!(!c.is_requirement("HTTP was created for the World Wide Web architecture."));
        assert!(!c.is_requirement("The method token indicates the request method."));
        assert!(!c.is_requirement("GET is the primary mechanism of information retrieval."));
    }

    #[test]
    fn weak_may_alone_is_below_threshold() {
        let c = SentimentClassifier::new();
        assert!(!c.is_requirement("A server MAY ignore the Range header field entirely sometimes."));
    }

    #[test]
    fn candidates_sorted_by_score() {
        let c = SentimentClassifier::new();
        let sents = sentences(
            "A server MUST NOT apply the request and MUST close the connection. A proxy SHOULD remove the field. The weather is nice today outside.",
        );
        let cands = c.find_candidates(&sents);
        assert_eq!(cands.len(), 2);
        assert!(cands[0].score >= cands[1].score);
        assert!(cands[0].sentence.text.contains("MUST NOT"));
    }

    #[test]
    fn recall_exceeds_keyword_grep_on_corpus() {
        // The sentiment finder must find everything the keyword grep finds
        // plus the keyword-less SRs — the paper's argument for the design.
        let c = SentimentClassifier::new();
        let doc = hdiff_corpus::document("rfc7230").unwrap();
        let sents = sentences(&doc.full_text());
        let sentiment_hits = sents.iter().filter(|s| c.is_requirement(&s.text)).count();
        let grep_hits = sents.iter().filter(|s| SentimentClassifier::keyword_grep(&s.text)).count();
        assert!(sentiment_hits >= grep_hits, "sentiment {sentiment_hits} < grep {grep_hits}");
        assert!(sentiment_hits > 30, "only {sentiment_hits} candidates in rfc7230");
    }
}
