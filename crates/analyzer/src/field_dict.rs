//! The HTTP field dictionary, derived from the adapted ABNF grammar.
//!
//! The paper's Text2Rule converter recognizes "HTTP fields that belong to
//! the field dictionary parsed through ABNF rules": the left-hand rule
//! names of the grammar. Header-field rules in the HTTP RFCs follow the
//! convention of capitalized names (`Host`, `Content-Length`,
//! `Transfer-Encoding`), which distinguishes them from internal syntax
//! rules (`token`, `uri-host`).

use hdiff_abnf::Grammar;

/// The dictionary of known header-field names plus protocol elements.
#[derive(Debug, Clone, Default)]
pub struct FieldDictionary {
    headers: Vec<String>,
}

impl FieldDictionary {
    /// Builds the dictionary from a grammar: rule names whose first
    /// character is uppercase are header fields by RFC convention.
    pub fn from_grammar(grammar: &Grammar) -> FieldDictionary {
        let mut headers: Vec<String> = grammar
            .iter()
            .filter(|r| r.name.chars().next().is_some_and(|c| c.is_ascii_uppercase()))
            .filter(|r| !is_non_header(&r.name))
            .map(|r| r.name.clone())
            .collect();
        headers.sort();
        headers.dedup();
        FieldDictionary { headers }
    }

    /// A dictionary from explicit names (tests, custom runs).
    pub fn from_names<I: IntoIterator<Item = String>>(names: I) -> FieldDictionary {
        let mut headers: Vec<String> = names.into_iter().collect();
        headers.sort();
        headers.dedup();
        FieldDictionary { headers }
    }

    /// All header names.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.headers.len()
    }

    /// Whether the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.headers.is_empty()
    }

    /// Case-insensitive membership test.
    pub fn contains(&self, name: &str) -> bool {
        self.headers.iter().any(|h| h.eq_ignore_ascii_case(name))
    }

    /// Finds every dictionary field mentioned in a sentence (longest
    /// names first so `Content-Length` wins over a hypothetical `Content`).
    ///
    /// Matching is **case-sensitive**: RFC prose capitalizes header names
    /// exactly as defined (`"the Connection header field"`), which is what
    /// distinguishes them from ordinary nouns (`"close the connection"`,
    /// `"the server MUST"`).
    pub fn mentions<'a>(&'a self, sentence: &str) -> Vec<&'a str> {
        let mut hits: Vec<&str> = self
            .headers
            .iter()
            .filter(|h| {
                sentence.match_indices(h.as_str()).any(|(i, _)| boundary_ok(sentence, i, h.len()))
            })
            .map(String::as_str)
            .collect();
        hits.sort_by_key(|h| std::cmp::Reverse(h.len()));
        hits
    }
}

fn boundary_ok(haystack: &str, start: usize, len: usize) -> bool {
    let before = haystack[..start].chars().next_back();
    let after = haystack[start + len..].chars().next();
    let is_word = |c: char| c.is_ascii_alphanumeric() || c == '-';
    before.is_none_or(|c| !is_word(c)) && after.is_none_or(|c| !is_word(c))
}

/// Capitalized grammar rules that are protocol elements, not headers.
fn is_non_header(name: &str) -> bool {
    matches!(
        name,
        "HTTP-message"
            | "HTTP-name"
            | "HTTP-version"
            | "URI-reference"
            | "OWS"
            | "RWS"
            | "BWS"
            | "IP-literal"
            | "IPv4address"
            | "IPv6address"
            | "IPvFuture"
            | "URI"
            | "GMT"
            | "IMF-fixdate"
            | "HTTP-date"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdiff_abnf::parse_rulelist;

    fn dict() -> FieldDictionary {
        let rules = parse_rulelist(
            "Host = uri-host\nContent-Length = 1*DIGIT\nTransfer-Encoding = token\nExpect = token\nConnection = token\ntoken = 1*tchar\ntchar = ALPHA\nuri-host = token\nHTTP-version = token\n",
        )
        .unwrap();
        FieldDictionary::from_grammar(&Grammar::from_rules("t", rules))
    }

    #[test]
    fn uppercase_rules_become_headers() {
        let d = dict();
        assert!(d.contains("Host"));
        assert!(d.contains("content-length"));
        assert!(!d.contains("token"));
        assert!(!d.contains("uri-host"));
        // Protocol elements excluded even though capitalized.
        assert!(!d.contains("HTTP-version"));
    }

    #[test]
    fn mentions_finds_fields_in_sentences() {
        let d = dict();
        let hits = d.mentions(
            "A sender MUST NOT send a Content-Length header field in any message that contains a Transfer-Encoding header field.",
        );
        assert_eq!(hits, vec!["Transfer-Encoding", "Content-Length"]);
    }

    #[test]
    fn mentions_respects_word_boundaries() {
        let d = FieldDictionary::from_names(vec!["TE".to_string(), "Host".to_string()]);
        assert!(d.mentions("The TE header is hop-by-hop.").contains(&"TE"));
        // "TE" inside "ROUTE" or "Content" must not match.
        assert!(d.mentions("The ROUTE markers and hostnames differ.").is_empty());
    }

    #[test]
    fn dictionary_over_real_corpus_is_rich() {
        let mut adaptor = hdiff_abnf::Adaptor::new();
        for doc in hdiff_corpus::core_documents() {
            let (rules, _) = hdiff_abnf::extract_abnf(&doc.full_text());
            adaptor.add_document(doc.tag.clone(), rules);
        }
        let (grammar, _) = adaptor.adapt(&hdiff_abnf::AdaptOptions::default());
        let d = FieldDictionary::from_grammar(&grammar);
        for name in
            ["Host", "Content-Length", "Transfer-Encoding", "Expect", "Connection", "Cache-Control"]
        {
            assert!(d.contains(name), "missing {name}");
        }
        assert!(d.len() >= 20, "{:?}", d.headers());
    }
}
