//! Cross-sentence anaphora resolution by forward search.
//!
//! RFC prose frequently states a condition in one sentence and the
//! requirement in the next: *"… a request with multiple Content-Length
//! header fields … . Such a message MUST be treated as an error."* The
//! paper found neural coreference tools (AllenNLP, NeuralCoref) inadequate
//! for these subtle references and fell back to a simple forward-search:
//! look back up to five sentences for a clause introducing the referent
//! noun, then merge the two sentences for entailment analysis. This module
//! implements exactly that algorithm.

use crate::text::Sentence;

/// Phrases that signal a back-reference, with the referent noun they carry.
const REFERENT_MARKERS: [&str; 8] = [
    "such a message",
    "such message",
    "such a request",
    "such request",
    "such requests",
    "this message",
    "this request",
    "such uri",
];

/// How far back the search may look (the paper uses five sentences).
pub const MAX_LOOKBACK: usize = 5;

/// Result of resolving one sentence against its context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Resolved {
    /// The (possibly merged) sentence text to analyze.
    pub text: String,
    /// Whether a referent was found and merged.
    pub merged: bool,
}

/// Detects a referent phrase in `sentence`; returns the noun to search for.
pub fn referent_noun(sentence: &str) -> Option<&'static str> {
    let lower = sentence.to_ascii_lowercase();
    for marker in REFERENT_MARKERS {
        if lower.contains(marker) {
            let noun = marker.rsplit(' ').next().expect("markers are non-empty");
            return Some(match noun {
                "message" => "message",
                "request" | "requests" => "request",
                "uri" => "uri",
                _ => "message",
            });
        }
    }
    None
}

/// Resolves sentence `idx` within its document context.
///
/// When the sentence begins with a referent phrase, searches up to
/// [`MAX_LOOKBACK`] preceding sentences (nearest first) for one that
/// *introduces* the referent noun (keyword fuzzy match: the noun appears
/// with an article or the passive "is received"/"contains" framing), and
/// merges the referred sentence in front of the current one.
pub fn resolve(sentences: &[Sentence], idx: usize) -> Resolved {
    let current = &sentences[idx];
    let Some(noun) = referent_noun(&current.text) else {
        return Resolved { text: current.text.clone(), merged: false };
    };
    let lo = idx.saturating_sub(MAX_LOOKBACK);
    for back in (lo..idx).rev() {
        let cand = &sentences[back];
        if introduces_noun(&cand.text, noun) {
            let merged = format!("{} {}", cand.text, current.text);
            return Resolved { text: merged, merged: true };
        }
    }
    Resolved { text: current.text.clone(), merged: false }
}

/// Fuzzy check that a sentence introduces the referent noun: the noun
/// appears outside a referent phrase itself and is framed as new ("a
/// message", "any request", "a request that contains …").
fn introduces_noun(sentence: &str, noun: &str) -> bool {
    let lower = sentence.to_ascii_lowercase();
    if referent_noun(sentence).is_some() {
        return false; // the paper found no iterative references
    }
    for article in ["a ", "an ", "any ", "each ", "every ", "the "] {
        let pattern = format!("{article}{noun}");
        if lower.contains(&pattern) {
            return true;
        }
    }
    false
}

/// Resolves all sentences of a document, merging where needed.
pub fn resolve_all(sentences: &[Sentence]) -> Vec<Resolved> {
    (0..sentences.len()).map(|i| resolve(sentences, i)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sents(texts: &[&str]) -> Vec<Sentence> {
        texts
            .iter()
            .enumerate()
            .map(|(index, text)| Sentence { text: (*text).to_string(), index })
            .collect()
    }

    #[test]
    fn detects_referent_phrases() {
        assert_eq!(
            referent_noun("Such a message ought to be handled as an error."),
            Some("message")
        );
        assert_eq!(referent_noun("A server MUST ignore such requests."), Some("request"));
        assert_eq!(referent_noun("A plain sentence."), None);
    }

    #[test]
    fn merges_with_nearest_introducing_sentence() {
        let s = sents(&[
            "A message can contain both a Transfer-Encoding and a Content-Length header field.",
            "Caching is discussed elsewhere in this document.",
            "Such a message might indicate an attempt to perform request smuggling.",
        ]);
        let r = resolve(&s, 2);
        assert!(r.merged);
        assert!(r.text.starts_with("A message can contain both"));
        assert!(r.text.ends_with("request smuggling."));
    }

    #[test]
    fn lookback_is_bounded() {
        let mut texts = vec!["A message is received with two Content-Length fields."];
        texts.extend(std::iter::repeat_n(
            "Filler sentence with no relevant nouns whatsoever.",
            MAX_LOOKBACK,
        ));
        texts.push("Such a message MUST be rejected by the server.");
        let s = sents(&texts);
        let r = resolve(&s, s.len() - 1);
        assert!(!r.merged, "referent beyond lookback window must not match");
    }

    #[test]
    fn no_iterative_references() {
        // A candidate that itself contains a referent phrase must not be
        // selected as the antecedent.
        let s = sents(&[
            "Such a message is discussed above.",
            "Such a message MUST be rejected by the server.",
        ]);
        let r = resolve(&s, 1);
        assert!(!r.merged);
    }

    #[test]
    fn unreferenced_sentences_pass_through() {
        let s = sents(&["A server MUST reject the message."]);
        let r = resolve(&s, 0);
        assert!(!r.merged);
        assert_eq!(r.text, s[0].text);
    }

    #[test]
    fn resolve_all_covers_document() {
        let s = sents(&[
            "A request might contain an invalid Host header field.",
            "Such a request MUST be rejected with a 400 status code.",
        ]);
        let all = resolve_all(&s);
        assert_eq!(all.len(), 2);
        assert!(all[1].merged);
    }
}
