//! The end-to-end Documentation Analyzer (Fig. 3, left half).
//!
//! Runs both extraction tracks over a corpus:
//!
//! 1. **syntax** — ABNF extraction per document, then adaptation into one
//!    closed grammar (with RFC 3986 registered for prose expansion);
//! 2. **semantics** — sentence splitting → sentiment SR finder →
//!    Text2Rule conversion into formal [`SpecRequirement`]s.

use hdiff_abnf::{extract_abnf, AdaptOptions, AdaptReport, Adaptor, Grammar};
use hdiff_corpus::RfcDocument;
use hdiff_sr::{default_templates, SpecRequirement, SrTemplate};

use crate::field_dict::FieldDictionary;
use crate::sentiment::SentimentClassifier;
use crate::text::sentences;
use crate::text2rule::{ConvertStats, Text2Rule};

/// Aggregate statistics, reported by the `table0_stats` harness.
#[derive(Debug, Clone, Default)]
pub struct AnalyzerStats {
    /// Documents analyzed.
    pub documents: usize,
    /// Total words.
    pub words: usize,
    /// Valid sentences after splitting.
    pub sentences: usize,
    /// Sentiment-selected SR candidates.
    pub sr_candidates: usize,
    /// Candidates found by the plain RFC 2119 keyword grep (ablation
    /// baseline).
    pub keyword_grep_candidates: usize,
    /// Formal SRs produced.
    pub srs: usize,
    /// ABNF rules in the adapted grammar.
    pub abnf_rules: usize,
    /// Conversion detail.
    pub convert: ConvertStats,
}

impl std::fmt::Display for AnalyzerStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} documents, {} words, {} sentences -> {} SR candidates (keyword grep: {}), {} SRs, {} ABNF rules",
            self.documents,
            self.words,
            self.sentences,
            self.sr_candidates,
            self.keyword_grep_candidates,
            self.srs,
            self.abnf_rules
        )
    }
}

/// Analyzer output: the two rule sets plus statistics and reports.
#[derive(Debug, Clone)]
pub struct AnalyzerOutput {
    /// Formal specification requirements.
    pub requirements: Vec<SpecRequirement>,
    /// The adapted, closed ABNF grammar.
    pub grammar: Grammar,
    /// The field dictionary derived from the grammar.
    pub dictionary: FieldDictionary,
    /// Adaptation report (namespacing, prose expansion, substitutions).
    pub adapt_report: AdaptReport,
    /// Aggregate statistics.
    pub stats: AnalyzerStats,
}

/// The Documentation Analyzer.
#[derive(Debug, Clone)]
pub struct DocumentAnalyzer {
    classifier: SentimentClassifier,
    templates: Vec<SrTemplate>,
    adapt_options: AdaptOptions,
    references: Vec<RfcDocument>,
}

impl DocumentAnalyzer {
    /// Analyzer with the paper's default manual inputs: default seed
    /// templates, default sentiment threshold, RFC 3986 as the reference
    /// document, and the custom rules needed to close the HTTP grammar.
    pub fn with_default_inputs() -> DocumentAnalyzer {
        let custom =
            hdiff_abnf::parse_rulelist("obs-date = token\nIMF-fixdate = token\nGMT = %x47.4D.54\n")
                .expect("custom rules are well-formed");
        DocumentAnalyzer {
            classifier: SentimentClassifier::new(),
            templates: default_templates(),
            adapt_options: AdaptOptions { custom_rules: custom },
            references: hdiff_corpus::reference_documents(),
        }
    }

    /// Replaces the sentiment classifier (threshold tuning).
    pub fn classifier(&mut self, classifier: SentimentClassifier) -> &mut Self {
        self.classifier = classifier;
        self
    }

    /// Replaces the seed templates.
    pub fn templates(&mut self, templates: Vec<SrTemplate>) -> &mut Self {
        self.templates = templates;
        self
    }

    /// Track 1 only: ABNF extraction and grammar adaptation, skipping
    /// the sentence-level SR pipeline entirely. The grammar (and the
    /// dictionary and report derived from it) is identical to what
    /// [`DocumentAnalyzer::analyze`] produces — this is the entry point
    /// for processes that only need the syntax oracle, like fleet
    /// workers fed a pre-generated corpus artifact.
    pub fn analyze_syntax(&self, documents: &[RfcDocument]) -> AnalyzerOutput {
        let (grammar, adapt_report, dictionary) = self.adapt_syntax(documents);
        let stats = AnalyzerStats {
            documents: documents.len(),
            abnf_rules: grammar.len(),
            ..AnalyzerStats::default()
        };
        AnalyzerOutput { requirements: Vec::new(), grammar, dictionary, adapt_report, stats }
    }

    /// The shared Track 1 body: extract every document's ABNF, register
    /// the reference grammars, adapt, and derive the field dictionary.
    fn adapt_syntax(&self, documents: &[RfcDocument]) -> (Grammar, AdaptReport, FieldDictionary) {
        let mut adaptor = Adaptor::new();
        for doc in documents {
            let (rules, _) = extract_abnf(&doc.full_text());
            adaptor.add_document(doc.tag.clone(), rules);
        }
        for reference in &self.references {
            let (rules, _) = extract_abnf(&reference.full_text());
            adaptor.register_reference(
                reference.tag.clone(),
                Grammar::from_rules(&reference.tag, rules),
            );
        }
        let (grammar, adapt_report) = adaptor.adapt(&self.adapt_options);
        let dictionary = FieldDictionary::from_grammar(&grammar);
        (grammar, adapt_report, dictionary)
    }

    /// Runs the full analysis over a document set.
    pub fn analyze(&self, documents: &[RfcDocument]) -> AnalyzerOutput {
        // Track 1: syntax.
        let (grammar, adapt_report, dictionary) = self.adapt_syntax(documents);

        // Track 2: semantics.
        let converter = Text2Rule::new(dictionary.clone(), self.templates.clone());
        let mut stats = AnalyzerStats {
            documents: documents.len(),
            abnf_rules: grammar.len(),
            ..AnalyzerStats::default()
        };
        let mut requirements = Vec::new();
        for doc in documents {
            stats.words += doc.word_count();
            // Analyze per section so every SR carries its source section
            // number (anaphora still sees the full in-section context).
            for section in &doc.sections {
                let sents = sentences(&section.text);
                stats.sentences += sents.len();
                stats.keyword_grep_candidates +=
                    sents.iter().filter(|s| SentimentClassifier::keyword_grep(&s.text)).count();
                let candidates = self.classifier.find_candidates(&sents);
                stats.sr_candidates += candidates.len();
                let (mut srs, cstats) = converter.convert_document(&doc.tag, &sents, &candidates);
                for sr in &mut srs {
                    sr.section = section.number.clone();
                }
                stats.convert.candidates += cstats.candidates;
                stats.convert.converted += cstats.converted;
                stats.convert.dropped += cstats.dropped;
                stats.convert.anaphora_merges += cstats.anaphora_merges;
                requirements.append(&mut srs);
            }
        }
        // Re-number SRs stably across the corpus.
        for (i, sr) in requirements.iter_mut().enumerate() {
            sr.id = format!("{}:sr{:03}", sr.source, i);
        }
        stats.srs = requirements.len();

        AnalyzerOutput { requirements, grammar, dictionary, adapt_report, stats }
    }
}

impl Default for DocumentAnalyzer {
    fn default() -> Self {
        DocumentAnalyzer::with_default_inputs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdiff_sr::{FieldState, Role, RoleAction};

    fn output() -> AnalyzerOutput {
        DocumentAnalyzer::with_default_inputs().analyze(&hdiff_corpus::core_documents())
    }

    #[test]
    fn syntax_only_analysis_reproduces_the_grammar() {
        let full = output();
        let syntax =
            DocumentAnalyzer::with_default_inputs().analyze_syntax(&hdiff_corpus::core_documents());
        assert_eq!(syntax.grammar.to_string(), full.grammar.to_string());
        assert_eq!(syntax.stats.abnf_rules, full.stats.abnf_rules);
        assert!(syntax.requirements.is_empty());
    }

    #[test]
    fn produces_substantial_rule_sets() {
        let out = output();
        assert!(out.stats.srs >= 40, "{}", out.stats);
        assert!(out.stats.abnf_rules >= 150, "{}", out.stats);
        assert!(out.stats.sentences >= 300, "{}", out.stats);
    }

    #[test]
    fn finds_the_canonical_host_sr() {
        let out = output();
        let found = out.requirements.iter().any(|sr| {
            sr.role == Role::Server
                && sr.action == RoleAction::Respond(400)
                && sr.conditions.iter().any(|c| {
                    matches!(&c.field, hdiff_sr::MessageField::Header(h) if h == "Host")
                        && c.state == FieldState::Absent
                })
        });
        assert!(found, "missing host-absent SR");
    }

    #[test]
    fn finds_the_ws_colon_sr() {
        let out = output();
        assert!(
            out.requirements
                .iter()
                .any(|sr| sr.conditions.iter().any(|c| c.state == FieldState::MalformedSpacing)),
            "missing whitespace-before-colon SR"
        );
    }

    #[test]
    fn finds_cl_te_conflict_srs() {
        let out = output();
        assert!(
            out.requirements
                .iter()
                .any(|sr| sr.conditions.iter().any(|c| c.state == FieldState::Conflicting)),
            "missing CL+TE conflict SR"
        );
    }

    #[test]
    fn sr_ids_are_unique() {
        let out = output();
        let mut ids: Vec<_> = out.requirements.iter().map(|s| s.id.clone()).collect();
        let before = ids.len();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), before);
    }

    #[test]
    fn sentiment_beats_keyword_grep() {
        let out = output();
        assert!(out.stats.sr_candidates >= out.stats.keyword_grep_candidates, "{}", out.stats);
    }

    #[test]
    fn grammar_closed_and_dictionary_rich() {
        let out = output();
        assert!(out.grammar.undefined_references().is_empty());
        assert!(out.dictionary.len() >= 20);
    }
}
