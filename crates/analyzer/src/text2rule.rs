//! The Text2Rule converter: SR sentence → formal [`SpecRequirement`].
//!
//! Mirrors Fig. 4 of the paper: dependency(-lite) parsing finds the target
//! role and action clauses, the ABNF-derived field dictionary anchors the
//! message description, anaphora resolution recovers cross-sentence
//! conditions, and textual entailment classifies the sentence into seed
//! template instances.

use hdiff_sr::{
    FieldState, MessageDescription, MessageField, Modality, RoleAction, SpecRequirement,
    SrTemplate, TemplateKind,
};

use crate::anaphora;
use crate::depparse::{parse_clauses, ClauseParse};
use crate::entail::{self, CONFIDENCE_THRESHOLD};
use crate::field_dict::FieldDictionary;
use crate::sentiment::SrCandidate;
use crate::text::Sentence;

/// Conversion statistics for the pipeline report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConvertStats {
    /// Candidate sentences examined.
    pub candidates: usize,
    /// Sentences that produced at least one SR.
    pub converted: usize,
    /// Sentences dropped (no role, no action, or no conditions).
    pub dropped: usize,
    /// Sentences whose conditions came from a merged antecedent.
    pub anaphora_merges: usize,
}

/// The converter.
#[derive(Debug, Clone)]
pub struct Text2Rule {
    dict: FieldDictionary,
    templates: Vec<SrTemplate>,
}

impl Text2Rule {
    /// Builds a converter from a field dictionary and seed templates.
    pub fn new(dict: FieldDictionary, templates: Vec<SrTemplate>) -> Text2Rule {
        Text2Rule { dict, templates }
    }

    /// Converts the SR candidates of one document.
    ///
    /// `sentences` is the full (ordered) sentence list of the document so
    /// anaphora can search preceding context; `candidates` are the
    /// sentiment-selected subset.
    pub fn convert_document(
        &self,
        doc_tag: &str,
        sentences: &[Sentence],
        candidates: &[SrCandidate],
    ) -> (Vec<SpecRequirement>, ConvertStats) {
        let mut stats = ConvertStats { candidates: candidates.len(), ..ConvertStats::default() };
        let mut out = Vec::new();
        for cand in candidates {
            let resolved = anaphora::resolve(
                sentences,
                cand.sentence.index.min(sentences.len().saturating_sub(1)),
            );
            if resolved.merged {
                stats.anaphora_merges += 1;
            }
            let srs =
                self.convert_sentence(doc_tag, &cand.sentence.text, &resolved.text, out.len());
            if srs.is_empty() {
                stats.dropped += 1;
            } else {
                stats.converted += 1;
                out.extend(srs);
            }
        }
        (out, stats)
    }

    /// Converts one sentence (with its anaphora-resolved context text).
    ///
    /// Disjunctive message descriptions ("lacks a Host header … or more
    /// than one Host header … or an invalid field-value") expand into one
    /// SR per entailed state combination — the paper's Fig. 4 inference of
    /// `Host is valid/invalid/repeat`.
    pub fn convert_sentence(
        &self,
        doc_tag: &str,
        original: &str,
        resolved: &str,
        ordinal_base: usize,
    ) -> Vec<SpecRequirement> {
        let clauses = parse_clauses(resolved);
        let condition_sets = self.condition_sets(resolved);
        if condition_sets.is_empty() {
            return Vec::new();
        }

        let mut out = Vec::new();
        for conditions in &condition_sets {
            for clause in &clauses {
                let Some(modality) = clause.modality else { continue };
                let Some(role) = clause.subject else { continue };
                if let Some(action) = self.best_action(clause, modality, conditions) {
                    out.push(SpecRequirement {
                        id: format!("{doc_tag}:sr{}", ordinal_base + out.len()),
                        source: doc_tag.to_string(),
                        section: String::new(),
                        sentence: original.to_string(),
                        role,
                        modality,
                        conditions: conditions.clone(),
                        action,
                    });
                }
            }
        }
        out
    }

    /// All condition sets entailed by the sentence: the cross-product of
    /// per-field entailed states (capped), each extended with the shared
    /// protocol-element conditions.
    fn condition_sets(&self, text: &str) -> Vec<Vec<MessageDescription>> {
        const MAX_SETS: usize = 12;
        let shared = self.protocol_conditions(text);

        let states: Vec<FieldState> = self
            .templates
            .iter()
            .find_map(|t| match &t.kind {
                TemplateKind::MessageDescription { states } => Some(states.clone()),
                _ => None,
            })
            .unwrap_or_else(|| FieldState::ALL.to_vec());

        let mut per_field: Vec<(String, Vec<FieldState>)> = Vec::new();
        for field in self.dict.mentions(text) {
            let mut entailed: Vec<FieldState> = states
                .iter()
                .copied()
                .filter(|&s| s != FieldState::Present)
                .filter(|&s| entail::entail_state(text, field, s) >= CONFIDENCE_THRESHOLD)
                .collect();
            if entailed.is_empty()
                && entail::entail_state(text, field, FieldState::Present) >= CONFIDENCE_THRESHOLD
            {
                entailed.push(FieldState::Present);
            }
            if !entailed.is_empty() {
                per_field.push((field.to_string(), entailed));
            }
        }

        if per_field.is_empty() {
            return if shared.is_empty() { Vec::new() } else { vec![shared] };
        }

        let mut sets: Vec<Vec<MessageDescription>> = vec![Vec::new()];
        for (field, entailed) in &per_field {
            let mut next = Vec::new();
            for base in &sets {
                for &state in entailed {
                    if next.len() >= MAX_SETS {
                        break;
                    }
                    let mut s = base.clone();
                    s.push(MessageDescription::header(field, state));
                    next.push(s);
                }
            }
            sets = next;
        }
        for s in &mut sets {
            s.extend(shared.iter().cloned());
        }
        sets
    }

    /// Protocol-element conditions the field dictionary cannot carry
    /// (whitespace-before-colon, chunked coding, versions, body-on-GET).
    fn protocol_conditions(&self, text: &str) -> Vec<MessageDescription> {
        let lower = text.to_ascii_lowercase();
        let mut out = Vec::new();

        // Whitespace-before-colon applies to the generic header construct.
        if lower.contains("whitespace between")
            && (lower.contains("colon") || lower.contains("field-name"))
        {
            out.push(MessageDescription::header("*", FieldState::MalformedSpacing));
        }
        // Chunked-coding structure conditions.
        if lower.contains("chunked")
            && !out
                .iter()
                .any(|c| matches!(&c.field, MessageField::Header(h) if h == "Transfer-Encoding"))
        {
            out.push(MessageDescription::new(MessageField::Chunked, FieldState::Present));
        }
        // Obsolete line folding.
        if lower.contains("obs-fold") || lower.contains("line folding") {
            out.push(MessageDescription::header("*", FieldState::Invalid));
        }
        // Version conditions.
        if lower.contains("invalid request-line") || lower.contains("request-line is not valid") {
            out.push(MessageDescription::new(MessageField::RequestLine, FieldState::Invalid));
        }
        if lower.contains("version to which it is not conformant")
            || lower.contains("own http-version in forwarded messages")
            || lower.contains("major protocol version")
            || lower.contains("major version")
        {
            out.push(MessageDescription::new(MessageField::HttpVersion, FieldState::Invalid));
        }
        if lower.contains("http/1.0") {
            out.push(MessageDescription::new(MessageField::HttpVersion, FieldState::Valid));
        }
        // Body-on-GET/HEAD conditions.
        if (lower.contains("payload within a get")
            || lower.contains("payload within a head")
            || lower.contains("body in a get"))
            || (lower.contains("payload body")
                && (lower.contains(" get ") || lower.contains(" head ")))
        {
            out.push(MessageDescription::new(MessageField::MessageBody, FieldState::Present));
        }
        out
    }

    /// Best-entailed action for a clause, given the sentence conditions.
    fn best_action(
        &self,
        clause: &ClauseParse,
        modality: Modality,
        conditions: &[MessageDescription],
    ) -> Option<RoleAction> {
        let joined = clause.joined();
        let negated = modality.is_negative();
        let verb = clause.verb.as_deref();

        let mut best: Option<(RoleAction, f32)> = None;
        for template in &self.templates {
            let TemplateKind::RoleAction { actions } = &template.kind else { continue };
            for action in actions {
                let action = self.instantiate(action, conditions);
                let conf = entail::entail_action(&joined, verb, negated, &action);
                if conf >= CONFIDENCE_THRESHOLD && best.as_ref().is_none_or(|(_, b)| conf > *b) {
                    best = Some((action, conf));
                }
            }
        }
        // NotGenerate fallback for sender prohibitions not in templates.
        if best.is_none() && negated {
            let conf = entail::entail_action(&joined, verb, negated, &RoleAction::NotGenerate);
            if conf >= CONFIDENCE_THRESHOLD {
                return Some(RoleAction::NotGenerate);
            }
        }
        best.map(|(a, _)| a)
    }

    /// Fills the field slot of Remove/Replace actions from the conditions.
    fn instantiate(&self, action: &RoleAction, conditions: &[MessageDescription]) -> RoleAction {
        let first_header = conditions.iter().find_map(|c| match &c.field {
            MessageField::Header(h) if h != "*" => Some(h.clone()),
            _ => None,
        });
        match action {
            RoleAction::RemoveField(f) if f.is_empty() => {
                RoleAction::RemoveField(first_header.unwrap_or_default())
            }
            RoleAction::ReplaceField(f) if f.is_empty() => {
                RoleAction::ReplaceField(first_header.unwrap_or_default())
            }
            other => other.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdiff_sr::{default_templates, Role};

    fn converter() -> Text2Rule {
        let dict = FieldDictionary::from_names(vec![
            "Host".to_string(),
            "Content-Length".to_string(),
            "Transfer-Encoding".to_string(),
            "Expect".to_string(),
            "Connection".to_string(),
        ]);
        Text2Rule::new(dict, default_templates())
    }

    fn convert_one(text: &str) -> Vec<SpecRequirement> {
        converter().convert_sentence("rfc7230", text, text, 0)
    }

    #[test]
    fn converts_the_fig4_host_sentence() {
        let srs = convert_one(
            "A server MUST respond with a 400 (Bad Request) status code to any HTTP/1.1 request message that lacks a Host header field.",
        );
        assert_eq!(srs.len(), 1, "{srs:?}");
        let sr = &srs[0];
        assert_eq!(sr.role, Role::Server);
        assert_eq!(sr.modality, Modality::Must);
        assert_eq!(sr.action, RoleAction::Respond(400));
        assert!(sr
            .conditions
            .iter()
            .any(|c| c == &MessageDescription::header("Host", FieldState::Absent)));
    }

    #[test]
    fn converts_multi_host_sentence() {
        let srs = convert_one(
            "A server MUST respond with a 400 (Bad Request) status code to any request message that contains more than one Host header field or a Host header field with an invalid field-value.",
        );
        assert!(!srs.is_empty());
        let states: Vec<_> = srs[0]
            .conditions
            .iter()
            .filter(|c| matches!(&c.field, MessageField::Header(h) if h == "Host"))
            .map(|c| c.state)
            .collect();
        // Multiple or Invalid must be picked up (best single state).
        assert!(
            states.iter().any(|s| matches!(s, FieldState::Multiple | FieldState::Invalid)),
            "{srs:?}"
        );
    }

    #[test]
    fn converts_ws_colon_sentence() {
        let srs = convert_one(
            "A server MUST reject any received request message that contains whitespace between a header field-name and colon with a response code of 400 (Bad Request).",
        );
        assert!(!srs.is_empty(), "no srs");
        assert!(srs[0].conditions.iter().any(|c| c.state == FieldState::MalformedSpacing));
        assert!(matches!(srs[0].action, RoleAction::Respond(400) | RoleAction::Reject));
    }

    #[test]
    fn converts_sender_prohibition_to_not_generate() {
        let srs = convert_one(
            "A sender MUST NOT send a Content-Length header field in any message that contains a Transfer-Encoding header field.",
        );
        assert_eq!(srs.len(), 1, "{srs:?}");
        assert_eq!(srs[0].action, RoleAction::NotGenerate);
        assert_eq!(srs[0].role, Role::Sender);
        assert!(srs[0].conditions.iter().any(|c| c.state == FieldState::Conflicting));
    }

    #[test]
    fn converts_conjoined_respond_and_close() {
        let srs = convert_one(
            "If a message is received without Transfer-Encoding and with multiple Content-Length header fields, then the server MUST respond with a 400 (Bad Request) status code and then close the connection.",
        );
        let actions: Vec<_> = srs.iter().map(|s| s.action.clone()).collect();
        assert!(actions.contains(&RoleAction::Respond(400)), "{actions:?}");
        assert!(actions.contains(&RoleAction::CloseConnection), "{actions:?}");
    }

    #[test]
    fn drops_sentences_without_conditions() {
        let srs = convert_one("A client SHOULD remember its own configuration at all times.");
        assert!(srs.is_empty());
    }

    #[test]
    fn converts_cache_prohibition() {
        let srs = convert_one(
            "A cache MUST NOT store a response to any request that contains an invalid Host header field.",
        );
        assert_eq!(srs.len(), 1, "{srs:?}");
        assert_eq!(srs[0].action, RoleAction::NotCache);
        assert_eq!(srs[0].role, Role::Cache);
    }
}
