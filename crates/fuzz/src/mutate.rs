//! Stream-level and request-level mutators.
//!
//! Stream-level operators (splice, duplicate-with-mutation, reorder,
//! boundary-shift segmentation, truncate-then-continue) reshape the
//! connection; request-level operators rewrite one request's bytes from
//! an [`IngredientPool`] of grammar-generated and tree-mutated
//! material, composing with the existing `hdiff_gen::tree_mutate`
//! single-request mutators. Every operator ends in [`Stream::repair`],
//! so mutants always satisfy [`Stream::well_formed`] — the invariant
//! the property tests pin.

use hdiff_abnf::Grammar;
use hdiff_gen::{AbnfGenerator, TreeMutator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::stream::{Delivery, Stream, StreamRequest};

/// Hard cap on requests per stream — keeps effective byte streams (and
/// workflow execution cost) bounded while still exercising multi-request
/// interactions.
pub const MAX_REQUESTS: usize = 6;

/// Deterministic pool of semantically loaded building blocks: `Host`
/// values straight from the grammar generator, malformed hosts from the
/// tree mutator, framing-relevant header lines, and fresh request
/// templates. Built once per session from the seed, so the mutation
/// neighborhood is a pure function of `(grammar, seed)`.
#[derive(Debug, Clone)]
pub struct IngredientPool {
    /// Grammar-generated and tree-mutated `Host` values.
    pub hosts: Vec<Vec<u8>>,
    /// Complete `Name: value\r\n` header lines (framing conflicts,
    /// duplicate hosts, obs-folds, bare CRs).
    pub header_lines: Vec<Vec<u8>>,
    /// Whole-request templates (GET, CL-body POST, chunked POST).
    pub requests: Vec<Vec<u8>>,
}

impl IngredientPool {
    /// Builds the pool from the adapted grammar and a seed.
    pub fn build(grammar: &Grammar, seed: u64) -> IngredientPool {
        let mut gen = AbnfGenerator::new(
            grammar.clone(),
            hdiff_gen::GenOptions { seed: seed ^ 0xf002, ..hdiff_gen::GenOptions::default() },
        );
        let mut hosts: Vec<Vec<u8>> = gen.generate_many("Host", 12);
        let mut tree = TreeMutator::new(seed ^ 0x7ee);
        hosts.extend(
            tree.malformed_values(grammar, "Host", 12).into_iter().map(|(value, _op)| value),
        );
        hosts.retain(|h| !h.is_empty() && h.len() < 64);
        if hosts.is_empty() {
            hosts.push(b"h1.com".to_vec());
        }

        let h = |i: usize| -> &[u8] { &hosts[i % hosts.len()] };
        let mut header_lines: Vec<Vec<u8>> = vec![
            [b"Host: ".as_slice(), h(0), b"\r\n"].concat(),
            [b"Host: ".as_slice(), h(1), b"\r\n"].concat(),
            b"Transfer-Encoding: chunked\r\n".to_vec(),
            b"Transfer-Encoding : chunked\r\n".to_vec(),
            b"Transfer-Encoding: xchunked\r\n".to_vec(),
            b"Transfer-Encoding: identity\r\n".to_vec(),
            b"Content-Length: 0\r\n".to_vec(),
            b"Content-Length: 5\r\n".to_vec(),
            b"Content-Length: +5\r\n".to_vec(),
            b"Content-Length: 5, 5\r\n".to_vec(),
            b"Expect: 100-continue\r\n".to_vec(),
            b" folded-continuation\r\n".to_vec(),
            [b"X-Ignore: a\rHost: ".as_slice(), h(2), b"\r\n"].concat(),
            b"Connection: keep-alive\r\n".to_vec(),
        ];
        for host in hosts.iter().skip(2).take(4) {
            header_lines.push([b"Host: ".as_slice(), host, b"\r\n"].concat());
        }

        let requests: Vec<Vec<u8>> = vec![
            [b"GET / HTTP/1.1\r\nHost: ".as_slice(), h(0), b"\r\n\r\n"].concat(),
            [b"POST /p HTTP/1.1\r\nHost: ".as_slice(), h(1), b"\r\nContent-Length: 5\r\n\r\nAAAAA"]
                .concat(),
            {
                let mut req = [
                    b"POST /c HTTP/1.1\r\nHost: ".as_slice(),
                    h(2),
                    b"\r\nTransfer-Encoding: chunked\r\n\r\n",
                ]
                .concat();
                req.extend_from_slice(&hdiff_wire::encode_chunked(b"abc"));
                req
            },
            [b"GET /v HTTP/1.0\r\nHost: ".as_slice(), h(3), b"\r\n\r\n"].concat(),
        ];

        IngredientPool { hosts, header_lines, requests }
    }

    fn pick<'a>(&'a self, rng: &mut StdRng, which: &'a [Vec<u8>]) -> &'a [u8] {
        &which[rng.gen_range(0..which.len())]
    }
}

/// Names of the stream-level operators, for telemetry counters.
pub const STREAM_OPS: [&str; 7] = [
    "splice",
    "dup-mutate",
    "reorder",
    "boundary-shift",
    "truncate-continue",
    "append-fresh",
    "request-rewrite",
];

/// The seeded mutator. One [`StreamMutator::mutate`] call applies one
/// operator (falling back to a byte tweak when the operator is a no-op
/// on the given stream) and returns a repaired, well-formed mutant.
#[derive(Debug)]
pub struct StreamMutator {
    rng: StdRng,
    pool: IngredientPool,
}

impl StreamMutator {
    /// Builds a mutator over a pool.
    pub fn new(seed: u64, pool: IngredientPool) -> StreamMutator {
        StreamMutator { rng: StdRng::seed_from_u64(seed), pool }
    }

    /// The ingredient pool in use.
    pub fn pool(&self) -> &IngredientPool {
        &self.pool
    }

    /// Mutates `base`, splicing against `other` when the chosen operator
    /// needs a second parent. Returns the mutant and the operator name.
    pub fn mutate(&mut self, base: &Stream, other: &Stream) -> (Stream, &'static str) {
        let op = STREAM_OPS[self.rng.gen_range(0..STREAM_OPS.len())];
        let mut out = match op {
            "splice" => self.splice(base, other),
            "dup-mutate" => self.duplicate_with_mutation(base),
            "reorder" => self.reorder(base),
            "boundary-shift" => self.boundary_shift(base),
            "truncate-continue" => self.truncate_then_continue(base),
            "append-fresh" => self.append_fresh(base),
            _ => self.request_rewrite(base),
        };
        if !out.repair() || out == *base {
            out = self.request_rewrite(base);
            if !out.repair() {
                out = base.clone();
            }
        }
        debug_assert!(out.well_formed(), "mutator produced ill-formed stream: {out:?}");
        (out, op)
    }

    /// Prefix of one parent, suffix of the other.
    fn splice(&mut self, a: &Stream, b: &Stream) -> Stream {
        let cut_a = self.rng.gen_range(0..=a.requests.len());
        let cut_b = self.rng.gen_range(0..b.requests.len());
        let mut requests: Vec<StreamRequest> = a.requests[..cut_a].to_vec();
        requests.extend(b.requests[cut_b..].iter().cloned());
        requests.truncate(MAX_REQUESTS);
        Stream { requests }
    }

    /// Duplicates one request and rewrites the copy's bytes.
    fn duplicate_with_mutation(&mut self, base: &Stream) -> Stream {
        let mut out = base.clone();
        if out.requests.len() >= MAX_REQUESTS {
            return self.request_rewrite(base);
        }
        let i = self.rng.gen_range(0..out.requests.len());
        let mut copy = out.requests[i].clone();
        self.rewrite_bytes(&mut copy.bytes);
        copy.repair_delivery();
        copy.pipelined = self.rng.gen_bool(0.5);
        out.requests.insert(i + 1, copy);
        out
    }

    /// Swaps two requests.
    fn reorder(&mut self, base: &Stream) -> Stream {
        let mut out = base.clone();
        if out.requests.len() < 2 {
            return self.request_rewrite(base);
        }
        let i = self.rng.gen_range(0..out.requests.len());
        let j = self.rng.gen_range(0..out.requests.len());
        out.requests.swap(i, j);
        out
    }

    /// Creates or shifts segmentation boundaries on one request.
    fn boundary_shift(&mut self, base: &Stream) -> Stream {
        let mut out = base.clone();
        let i = self.rng.gen_range(0..out.requests.len());
        let req = &mut out.requests[i];
        let len = req.bytes.len();
        if len < 2 {
            return self.request_rewrite(base);
        }
        match &mut req.delivery {
            Delivery::Segmented(offsets) if !offsets.is_empty() => {
                let k = self.rng.gen_range(0..offsets.len());
                let shifted = if self.rng.gen_bool(0.5) {
                    offsets[k].saturating_add(1)
                } else {
                    offsets[k].saturating_sub(1)
                };
                offsets[k] = shifted.clamp(1, len - 1);
            }
            _ => {
                let mut offsets = vec![self.rng.gen_range(1..len)];
                if len > 3 && self.rng.gen_bool(0.5) {
                    offsets.push(self.rng.gen_range(1..len));
                }
                req.delivery = Delivery::Segmented(offsets);
            }
        }
        out
    }

    /// Cuts one request short and guarantees more bytes follow the cut —
    /// the classic request-boundary confusion shape.
    fn truncate_then_continue(&mut self, base: &Stream) -> Stream {
        let mut out = base.clone();
        let i = self.rng.gen_range(0..out.requests.len());
        let len = out.requests[i].bytes.len();
        if len < 2 {
            return self.request_rewrite(base);
        }
        out.requests[i].delivery = Delivery::TruncateAt(self.rng.gen_range(1..len));
        if i + 1 == out.requests.len() && out.requests.len() < MAX_REQUESTS {
            let template = self.pool.pick(&mut self.rng, &self.pool.requests).to_vec();
            out.requests.push(StreamRequest {
                bytes: template,
                delivery: Delivery::Whole,
                pipelined: true,
            });
        }
        out
    }

    /// Appends a fresh pool template request.
    fn append_fresh(&mut self, base: &Stream) -> Stream {
        let mut out = base.clone();
        if out.requests.len() >= MAX_REQUESTS {
            return self.request_rewrite(base);
        }
        let template = self.pool.pick(&mut self.rng, &self.pool.requests).to_vec();
        out.requests.push(StreamRequest {
            bytes: template,
            delivery: Delivery::Whole,
            pipelined: self.rng.gen_bool(0.5),
        });
        out
    }

    /// Rewrites one request's bytes in place (header injection,
    /// duplication, host swap, drop, byte tweak).
    fn request_rewrite(&mut self, base: &Stream) -> Stream {
        let mut out = base.clone();
        let i = self.rng.gen_range(0..out.requests.len());
        self.rewrite_bytes(&mut out.requests[i].bytes);
        out.requests[i].repair_delivery();
        out
    }

    /// One byte-level operator on a raw request.
    fn rewrite_bytes(&mut self, bytes: &mut Vec<u8>) {
        match self.rng.gen_range(0u32..5) {
            0 => self.inject_header(bytes),
            1 => self.duplicate_header_line(bytes),
            2 => self.swap_host_value(bytes),
            3 => self.drop_header_line(bytes),
            _ => self.tweak_byte(bytes),
        }
    }

    /// Inserts a pool header line right after the request line.
    fn inject_header(&mut self, bytes: &mut Vec<u8>) {
        let line = self.pool.pick(&mut self.rng, &self.pool.header_lines).to_vec();
        let at = find(bytes, b"\r\n").map_or(0, |i| i + 2);
        bytes.splice(at..at, line);
    }

    /// Duplicates one existing header line adjacent to itself.
    fn duplicate_header_line(&mut self, bytes: &mut Vec<u8>) {
        let Some(lines) = header_line_spans(bytes) else { return self.tweak_byte(bytes) };
        if lines.is_empty() {
            return self.tweak_byte(bytes);
        }
        let (start, end) = lines[self.rng.gen_range(0..lines.len())];
        let line = bytes[start..end].to_vec();
        bytes.splice(start..start, line);
    }

    /// Replaces the first `Host` header's value with a pool host.
    fn swap_host_value(&mut self, bytes: &mut Vec<u8>) {
        let Some(lines) = header_line_spans(bytes) else { return self.tweak_byte(bytes) };
        for (start, end) in lines {
            let line = &bytes[start..end];
            if line.len() >= 5 && line[..5].eq_ignore_ascii_case(b"host:") {
                let value_start = start + 5 + line[5..].iter().take_while(|&&b| b == b' ').count();
                let host = self.pool.pick(&mut self.rng, &self.pool.hosts).to_vec();
                bytes.splice(value_start..end - 2, host);
                return;
            }
        }
        self.inject_header(bytes);
    }

    /// Removes one header line.
    fn drop_header_line(&mut self, bytes: &mut Vec<u8>) {
        let Some(lines) = header_line_spans(bytes) else { return self.tweak_byte(bytes) };
        if lines.is_empty() {
            return self.tweak_byte(bytes);
        }
        let (start, end) = lines[self.rng.gen_range(0..lines.len())];
        bytes.drain(start..end);
    }

    /// Overwrites one byte with a delimiter-flavored replacement.
    fn tweak_byte(&mut self, bytes: &mut Vec<u8>) {
        const FLAVORS: &[u8] = b" \t:;,\r\n/.x0";
        if bytes.is_empty() {
            bytes.push(b'x');
            return;
        }
        let i = self.rng.gen_range(0..bytes.len());
        bytes[i] = FLAVORS[self.rng.gen_range(0..FLAVORS.len())];
    }
}

/// Inserts a complete header line right after the request line — the
/// engine's fresh-material operator (grammar-generated hosts drawn at
/// candidate creation so their alternation arms are attributable).
pub(crate) fn inject_line(bytes: &mut Vec<u8>, line: &[u8]) {
    let at = find(bytes, b"\r\n").map_or(0, |i| i + 2);
    bytes.splice(at..at, line.iter().copied());
}

/// The value of every `Host` header line in `bytes` — the matcher-trace
/// coverage feed.
pub(crate) fn host_values(bytes: &[u8]) -> Vec<Vec<u8>> {
    let Some(lines) = header_line_spans(bytes) else { return Vec::new() };
    let mut out = Vec::new();
    for (start, end) in lines {
        let line = &bytes[start..end - 2];
        if line.len() >= 5 && line[..5].eq_ignore_ascii_case(b"host:") {
            let value: Vec<u8> =
                line[5..].iter().copied().skip_while(|&b| b == b' ' || b == b'\t').collect();
            if !value.is_empty() && value.len() <= 128 {
                out.push(value);
            }
        }
    }
    out
}

/// `(start, end)` spans of the header lines between the request line and
/// the blank line, end-exclusive including the CRLF. `None` when the
/// bytes have no HTTP-shaped head.
fn header_line_spans(bytes: &[u8]) -> Option<Vec<(usize, usize)>> {
    let head_end = find(bytes, b"\r\n\r\n")?;
    let line_end = find(bytes, b"\r\n")?;
    let mut spans = Vec::new();
    let mut pos = line_end + 2;
    while pos < head_end + 2 {
        let rel = find(&bytes[pos..head_end + 2], b"\r\n")?;
        spans.push((pos, pos + rel + 2));
        pos += rel + 2;
    }
    Some(spans)
}

fn find(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack.windows(needle.len()).position(|w| w == needle)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grammar() -> Grammar {
        hdiff_analyzer::DocumentAnalyzer::with_default_inputs()
            .analyze_syntax(&hdiff_corpus::core_documents())
            .grammar
    }

    fn seed_stream() -> Stream {
        Stream::single(b"GET / HTTP/1.1\r\nHost: h1.com\r\nX-A: 1\r\n\r\n".to_vec())
    }

    #[test]
    fn mutants_stay_well_formed_across_many_rounds() {
        let g = grammar();
        let pool = IngredientPool::build(&g, 1);
        let mut m = StreamMutator::new(2, pool);
        let other =
            Stream::single(b"POST /p HTTP/1.1\r\nHost: b\r\nContent-Length: 3\r\n\r\nxyz".to_vec());
        let mut current = seed_stream();
        for _ in 0..400 {
            let (next, op) = m.mutate(&current, &other);
            assert!(next.well_formed(), "op {op} broke invariants: {next:?}");
            assert!(next.requests.len() <= MAX_REQUESTS);
            current = next;
        }
    }

    #[test]
    fn mutation_is_deterministic_per_seed() {
        let g = grammar();
        let mut a = StreamMutator::new(9, IngredientPool::build(&g, 9));
        let mut b = StreamMutator::new(9, IngredientPool::build(&g, 9));
        let base = seed_stream();
        let other = seed_stream();
        for _ in 0..50 {
            assert_eq!(a.mutate(&base, &other), b.mutate(&base, &other));
        }
    }

    #[test]
    fn pool_carries_grammar_and_tree_mutated_hosts() {
        let g = grammar();
        let pool = IngredientPool::build(&g, 3);
        assert!(pool.hosts.len() >= 4, "{:?}", pool.hosts.len());
        assert!(pool.header_lines.iter().any(|l| l.starts_with(b"Transfer-Encoding")));
        assert!(pool.requests.iter().all(|r| find(r, b"\r\n\r\n").is_some()));
    }
}
