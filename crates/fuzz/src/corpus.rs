//! Energy-weighted corpus scheduling.
//!
//! Every interesting stream (it touched a cold grammar arm or produced
//! a never-seen behavior digest) earns a corpus slot with an energy
//! budget; parents are drawn with probability proportional to energy,
//! so the scheduler spends its executions descending from inputs that
//! recently paid off. Producing another novel child rewards the parent.
//! The corpus is bounded: when full, the lowest-energy (oldest on ties)
//! entry is evicted. All decisions are pure functions of the RNG
//! stream, so a seeded session replays identically.

use rand::rngs::StdRng;
use rand::Rng;

use crate::stream::Stream;

/// One scheduled input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusEntry {
    /// Stable id (assignment order).
    pub id: u64,
    /// The stream itself.
    pub stream: Stream,
    /// Scheduling weight.
    pub energy: u64,
    /// Parent entry id, if the stream was derived by mutation.
    pub parent: Option<u64>,
}

/// The bounded, energy-weighted corpus.
#[derive(Debug)]
pub struct Corpus {
    entries: Vec<CorpusEntry>,
    next_id: u64,
    cap: usize,
}

/// Energy ceiling — rewards saturate so one lucky ancestor cannot
/// monopolize the schedule forever.
pub const ENERGY_CAP: u64 = 32;

impl Corpus {
    /// An empty corpus holding at most `cap` entries.
    pub fn new(cap: usize) -> Corpus {
        Corpus { entries: Vec::new(), next_id: 0, cap: cap.max(1) }
    }

    /// Entries currently scheduled.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Admits a stream with starting `energy`, evicting the weakest
    /// entry when full. Returns the new entry's id.
    pub fn add(&mut self, stream: Stream, energy: u64, parent: Option<u64>) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.entries.push(CorpusEntry { id, stream, energy: energy.clamp(1, ENERGY_CAP), parent });
        if self.entries.len() > self.cap {
            // Weakest first, oldest on ties: deterministic eviction.
            let victim = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| (e.energy, e.id))
                .map(|(i, _)| i)
                .expect("corpus is non-empty");
            self.entries.remove(victim);
        }
        id
    }

    /// Draws one parent, weighted by energy.
    pub fn pick<'a>(&'a self, rng: &mut StdRng) -> &'a CorpusEntry {
        assert!(!self.entries.is_empty(), "cannot schedule from an empty corpus");
        let total: u64 = self.entries.iter().map(|e| e.energy).sum();
        let mut x = rng.gen_range(0..total);
        for e in &self.entries {
            if x < e.energy {
                return e;
            }
            x -= e.energy;
        }
        self.entries.last().expect("non-empty")
    }

    /// Rewards an entry (a descendant paid off). Missing ids — evicted
    /// parents — are ignored.
    pub fn reward(&mut self, id: u64, delta: u64) {
        if let Some(e) = self.entries.iter_mut().find(|e| e.id == id) {
            e.energy = (e.energy + delta).min(ENERGY_CAP);
        }
    }

    /// Structural digests of every entry, in admission order — the
    /// corpus identity the determinism gates compare.
    pub fn digests(&self) -> Vec<u64> {
        self.entries.iter().map(|e| e.stream.digest()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn stream(tag: u8) -> Stream {
        Stream::single(vec![b'G', b'E', b'T', b' ', tag])
    }

    #[test]
    fn eviction_removes_the_weakest_oldest() {
        let mut c = Corpus::new(2);
        let a = c.add(stream(1), 1, None);
        let b = c.add(stream(2), 5, None);
        let d = c.add(stream(3), 3, None);
        assert_eq!(c.len(), 2);
        assert!(c.entries.iter().all(|e| e.id != a), "lowest energy evicted");
        assert!(c.entries.iter().any(|e| e.id == b));
        assert!(c.entries.iter().any(|e| e.id == d));
    }

    #[test]
    fn weighted_pick_prefers_high_energy() {
        let mut c = Corpus::new(8);
        let low = c.add(stream(1), 1, None);
        let high = c.add(stream(2), ENERGY_CAP, None);
        let mut rng = StdRng::seed_from_u64(3);
        let picks: Vec<u64> = (0..200).map(|_| c.pick(&mut rng).id).collect();
        let high_share = picks.iter().filter(|&&id| id == high).count();
        assert!(high_share > 150, "{high_share} of 200 picks; low id {low}");
    }

    #[test]
    fn rewards_saturate_and_tolerate_missing_ids() {
        let mut c = Corpus::new(4);
        let id = c.add(stream(1), 1, None);
        c.reward(id, 1000);
        c.reward(9999, 5);
        assert_eq!(c.entries[0].energy, ENERGY_CAP);
    }
}
