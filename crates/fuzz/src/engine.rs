//! The coverage-guided differential fuzzing loop.
//!
//! Each iteration draws an energy-weighted parent (and a second parent
//! for splices) from the corpus, mutates it into a candidate stream,
//! executes the stream's effective bytes through the full Fig. 6
//! workflow on the configured transport, and scores it with a two-part
//! fitness signal:
//!
//! 1. **grammar coverage delta** — alternation arms the candidate's
//!    freshly generated material touched (generator-side
//!    [`CoverageMap`] merge delta) plus rules its `Host` values visit
//!    under the packrat matcher's trace;
//! 2. **behavior-digest novelty** — `(view label, FNV-1a digest)` pairs
//!    across the 12 implementation views (6 direct back-ends, 6 proxy
//!    chains) never seen in the session.
//!
//! Either signal earns a corpus slot and rewards the parent. Every
//! never-seen divergence class (`class|front|back` of a detector
//! finding) is ddmin-minimized at stream granularity
//! ([`minimize_stream`]) and promoted to a candidate golden
//! [`ReplayBundle`].
//!
//! Determinism-under-seed is the core promise: candidates are derived
//! and scored serially in batch order from one RNG stream; worker
//! threads only execute a batch (order-preserving, see
//! `hdiff_diff::schedule`), so a session is a pure function of
//! `(seed, iteration budget, transport)` — invariant across `--threads`.

use std::panic::{self, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

use hdiff_abnf::Grammar;
use hdiff_diff::minimize::{ddmin_items, minimize, MinimizeOptions, MinimizeStats};
use hdiff_diff::replay::behavior_digests;
use hdiff_diff::transport::{try_run_bytes_tcp, try_run_bytes_tcp_async};
use hdiff_diff::{detect_case, schedule, Finding, ReplayBundle, Transport, Workflow};
use hdiff_gen::{AbnfGenerator, CoverageMap, GenOptions, GrammarCoverage};
use hdiff_servers::fault::{FaultInjector, FaultPlan, FaultSession};
use hdiff_servers::ParserProfile;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::corpus::Corpus;
use crate::mutate::{host_values, inject_line, IngredientPool, StreamMutator};
use crate::stream::Stream;

/// Per-attempt logical step budget (matches the campaign runner's).
pub const STEP_BUDGET: u64 = 4096;

/// `(grammar rule, header-line prefix)` pairs the fresh-material
/// operator draws from: the fields the three detection models care
/// about plus the alternation-rich grammar regions.
pub const FRESH_RULES: [(&str, &[u8]); 6] = [
    ("Host", b"Host: "),
    ("transfer-coding", b"Transfer-Encoding: "),
    ("TE", b"TE: "),
    ("Via", b"Via: "),
    ("Expect", b"Expect: "),
    ("Connection", b"Connection: "),
];

/// Base of the uuid range fuzz cases occupy, far above campaign uuids.
pub const FUZZ_UUID_BASE: u64 = 0xfa22_0000_0000_0000;

/// How long the loop runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FuzzBudget {
    /// Exactly this many stream executions (seed streams included) —
    /// the fully deterministic mode the regression gates use.
    Iters(u64),
    /// Wall-clock bound: the deterministic candidate sequence is cut at
    /// whatever prefix fits the time window.
    Seconds(u64),
}

/// Session configuration.
#[derive(Debug, Clone)]
pub struct FuzzOptions {
    /// RNG seed — the session is a pure function of it (given the same
    /// iteration budget and transport).
    pub seed: u64,
    /// Iteration or wall-clock budget.
    pub budget: FuzzBudget,
    /// Worker threads for batch execution; `0` = one per core. Never
    /// affects results, only wall-clock.
    pub threads: usize,
    /// Transport streams execute over.
    pub transport: Transport,
    /// Corpus capacity.
    pub corpus_cap: usize,
    /// Candidates per scheduling batch. Fixed independently of
    /// `threads` so the candidate sequence is thread-invariant.
    pub batch: usize,
    /// Predicate-call budget for stream minimization at promotion.
    pub minimize_attempts: usize,
    /// Promotion ceiling per session (counted when hit, never silent).
    pub max_promotions: usize,
    /// Directory promoted bundles (and their stream sidecars) are
    /// written to.
    pub promote_dir: Option<PathBuf>,
    /// Directory of previously promoted artifacts to seed the session
    /// with: every `*.stream` sidecar loads as a full connection
    /// stream, and every `*.json` replay bundle *without* a sidecar
    /// contributes its request bytes as a single-request stream.
    /// Files load in sorted name order ahead of the template seeds, so
    /// a corpus-seeded session is as deterministic as a cold one.
    pub seed_corpus: Option<PathBuf>,
}

impl Default for FuzzOptions {
    fn default() -> Self {
        FuzzOptions {
            seed: 0xfa22,
            budget: FuzzBudget::Iters(256),
            threads: 0,
            transport: Transport::Sim,
            corpus_cap: 256,
            batch: 8,
            minimize_attempts: 256,
            max_promotions: 16,
            promote_dir: None,
            seed_corpus: None,
        }
    }
}

/// A minimized, bundled divergence the session discovered.
#[derive(Debug, Clone)]
pub struct PromotedStream {
    /// Bundle name (`fuzz-<fnv64 of the class key>`).
    pub name: String,
    /// The divergence class that triggered promotion.
    pub class_key: String,
    /// The minimized stream.
    pub stream: Stream,
    /// The candidate golden bundle recorded from the minimized stream.
    pub bundle: ReplayBundle,
    /// Minimization bookkeeping (byte lengths, attempts, quarantines).
    pub shrink: MinimizeStats,
}

/// Everything a session produced. The determinism gates compare
/// [`FuzzReport::corpus_digests`], [`FuzzReport::coverage`],
/// [`FuzzReport::novel_digest_views`], [`FuzzReport::divergence_classes`]
/// and the promoted name set — never wall-clock.
#[derive(Debug)]
pub struct FuzzReport {
    /// Transport the session executed over.
    pub transport: Transport,
    /// Streams executed (seeds included).
    pub execs: u64,
    /// Executions that panicked the harness (quarantined, skipped).
    pub quarantined: u64,
    /// Executions lost to loopback testbed failures (wire transports).
    pub net_errors: u64,
    /// Wall-clock of the loop.
    pub elapsed: Duration,
    /// Structural digests of the final corpus, admission order.
    pub corpus_digests: Vec<u64>,
    /// Grammar coverage the session reached.
    pub coverage: GrammarCoverage,
    /// Distinct `(view label, digest)` pairs observed.
    pub novel_digest_views: u64,
    /// Distinct divergence class keys observed, ascending.
    pub divergence_classes: Vec<String>,
    /// Minimized promoted bundles, discovery order.
    pub promoted: Vec<PromotedStream>,
    /// Session telemetry (fuzz counters, generation counters, per-case
    /// spans) merged in batch order.
    pub telemetry: hdiff_obs::Telemetry,
}

impl FuzzReport {
    /// Executions per second.
    pub fn execs_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.execs as f64 / secs
        } else {
            0.0
        }
    }

    /// Names of the promoted bundles, discovery order.
    pub fn promoted_names(&self) -> Vec<String> {
        self.promoted.iter().map(|p| p.name.clone()).collect()
    }

    /// Human-readable session summary (the `hdiff fuzz` stdout view).
    pub fn render(&self) -> String {
        use std::fmt::Write;

        let mut out = String::new();
        let _ = writeln!(out, "== fuzz session ({}) ==", self.transport.as_str());
        let _ = writeln!(
            out,
            "executions      : {} ({:.1}/s, {} quarantined, {} net errors)",
            self.execs,
            self.execs_per_sec(),
            self.quarantined,
            self.net_errors
        );
        let _ = writeln!(out, "corpus          : {} entries", self.corpus_digests.len());
        let _ = writeln!(
            out,
            "grammar coverage: {}/{} rules ({:.1}%), {}/{} alternation arms ({:.1}%)",
            self.coverage.rules_covered,
            self.coverage.rules_total,
            100.0 * self.coverage.rule_fraction(),
            self.coverage.alts_covered,
            self.coverage.alts_total,
            100.0 * self.coverage.alt_fraction(),
        );
        let _ =
            writeln!(out, "novel digests   : {} behavior-digest views", self.novel_digest_views);
        let _ = writeln!(
            out,
            "divergences     : {} class(es){}",
            self.divergence_classes.len(),
            if self.divergence_classes.is_empty() { String::new() } else { ":".to_string() }
        );
        for class in &self.divergence_classes {
            let _ = writeln!(out, "  {class}");
        }
        let _ = writeln!(out, "promoted        : {} minimized bundle(s)", self.promoted.len());
        for p in &self.promoted {
            let _ = writeln!(
                out,
                "  {}  {}  {} -> {} bytes ({} requests)",
                p.name,
                p.class_key,
                p.shrink.original_len,
                p.shrink.minimized_len,
                p.stream.requests.len(),
            );
        }
        out
    }
}

/// Loads seed streams from a directory of promoted artifacts.
///
/// `*.stream` sidecars parse as full connection streams; `*.json`
/// replay bundles whose stem has no sidecar contribute their request
/// bytes as single-request streams (the sidecar, when present, is the
/// richer form of the same case). Files load in sorted name order and
/// unreadable entries are skipped with a diagnostic, never a panic —
/// a corpus directory is operator input.
fn load_seed_corpus(dir: &std::path::Path) -> Vec<Stream> {
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) => {
            eprintln!("cannot read seed corpus {}: {e}", dir.display());
            return Vec::new();
        }
    };
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    paths.sort();
    let has_sidecar = |path: &std::path::Path| path.with_extension("stream").is_file();
    let mut streams = Vec::new();
    for path in &paths {
        let ext = path.extension().and_then(|e| e.to_str());
        let loaded = match ext {
            Some("stream") => std::fs::read(path)
                .map_err(|e| e.to_string())
                .and_then(|bytes| Stream::from_json(&bytes).map_err(|e| e.to_string()))
                .map(Some),
            Some("json") if !has_sidecar(path) => std::fs::read(path)
                .map_err(|e| e.to_string())
                .and_then(|bytes| ReplayBundle::from_json(&bytes).map_err(|e| e.to_string()))
                .map(|bundle| Some(Stream::single(bundle.request))),
            _ => Ok(None),
        };
        match loaded {
            Ok(Some(stream)) => streams.push(stream),
            Ok(None) => {}
            Err(e) => eprintln!("skipping seed corpus entry {}: {e}", path.display()),
        }
    }
    streams
}

/// The fuzzing session driver.
#[derive(Debug)]
pub struct FuzzEngine {
    opts: FuzzOptions,
    workflow: Workflow,
    profiles: Vec<ParserProfile>,
    grammar: Grammar,
    async_testbed: OnceLock<Result<hdiff_net::AsyncTestbed, hdiff_net::NetError>>,
}

/// What one executed candidate came back with.
struct ExecResult {
    digests: Vec<(String, u64)>,
    findings: Vec<Finding>,
    quarantined: bool,
    net_error: bool,
    telemetry: hdiff_obs::Telemetry,
}

/// A candidate awaiting execution: the stream, its parent (if any), and
/// the generator-side coverage gain attributed at creation.
struct Candidate {
    stream: Stream,
    parent: Option<u64>,
    gen_gain: usize,
    op: &'static str,
    uuid: u64,
    origin: String,
}

impl FuzzEngine {
    /// An engine over the standard Fig. 6 environment and the adapted
    /// RFC grammar.
    pub fn standard(opts: FuzzOptions) -> FuzzEngine {
        let grammar = hdiff_analyzer::DocumentAnalyzer::with_default_inputs()
            .analyze_syntax(&hdiff_corpus::core_documents())
            .grammar;
        FuzzEngine::with_environment(opts, Workflow::standard(), hdiff_servers::products(), grammar)
    }

    /// An engine over an explicit environment (tests reuse one analyzed
    /// grammar across many sessions).
    pub fn with_environment(
        opts: FuzzOptions,
        workflow: Workflow,
        profiles: Vec<ParserProfile>,
        grammar: Grammar,
    ) -> FuzzEngine {
        FuzzEngine { opts, workflow, profiles, grammar, async_testbed: OnceLock::new() }
    }

    /// The options in use.
    pub fn options(&self) -> &FuzzOptions {
        &self.opts
    }

    fn effective_threads(&self) -> usize {
        if self.opts.threads == 0 {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            self.opts.threads
        }
    }

    fn async_testbed(&self) -> Result<&hdiff_net::AsyncTestbed, hdiff_net::NetError> {
        self.async_testbed
            .get_or_init(|| {
                hdiff_net::AsyncTestbed::new(self.workflow.backends(), self.workflow.proxies())
            })
            .as_ref()
            .map_err(Clone::clone)
    }

    /// Runs the session to its budget and reports.
    pub fn run(&self) -> FuzzReport {
        let started = Instant::now();
        let opts = &self.opts;
        if let Some(dir) = &opts.promote_dir {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("cannot create promote dir {}: {e}", dir.display());
            }
        }
        let mut rng = StdRng::seed_from_u64(opts.seed);
        let cg = self.grammar.compiled();
        let mut global_cov = CoverageMap::new(&cg);
        let mut tele = hdiff_obs::Telemetry::default();

        // Pool + generator: built inside a case scope so their
        // generation counters land in the session telemetry, not the
        // ambient thread-local.
        let ((pool, mut gen), build_tel) = hdiff_obs::with_case(FUZZ_UUID_BASE, || {
            let pool = IngredientPool::build(&self.grammar, opts.seed);
            let gen = AbnfGenerator::new(
                self.grammar.clone(),
                GenOptions {
                    seed: opts.seed ^ 0x9e0_47a1,
                    coverage_guided: true,
                    ..GenOptions::default()
                },
            );
            (pool, gen)
        });
        tele.merge(&build_tel);
        let mut mutator = StreamMutator::new(opts.seed ^ 0x5_7e4a, pool);
        let mut corpus = Corpus::new(opts.corpus_cap);

        let mut execs = 0u64;
        let mut quarantined = 0u64;
        let mut net_errors = 0u64;
        let mut seen_views: std::collections::BTreeSet<(String, u64)> =
            std::collections::BTreeSet::new();
        let mut novel_views = 0u64;
        let mut seen_classes: std::collections::BTreeSet<String> =
            std::collections::BTreeSet::new();
        let mut promoted: Vec<PromotedStream> = Vec::new();

        let deadline = match opts.budget {
            FuzzBudget::Seconds(s) => Some(started + Duration::from_secs(s)),
            FuzzBudget::Iters(_) => None,
        };
        let target = match opts.budget {
            FuzzBudget::Iters(n) => Some(n),
            FuzzBudget::Seconds(_) => None,
        };
        let threads = self.effective_threads();
        let batch_cap = opts.batch.max(1);

        // Seed streams: corpus-loaded artifacts first (they carry known
        // divergences), then every pool template as a single-request
        // stream, plus one pipelined two-request stream.
        let mut pending_seeds: Vec<Stream> = Vec::new();
        if let Some(dir) = &opts.seed_corpus {
            let (loaded, load_tel) = hdiff_obs::with_case(FUZZ_UUID_BASE, || {
                let loaded = load_seed_corpus(dir);
                hdiff_obs::count("fuzz.seed-corpus.loaded", loaded.len() as u64);
                loaded
            });
            tele.merge(&load_tel);
            pending_seeds.extend(loaded);
        }
        pending_seeds.extend(mutator.pool().requests.iter().map(|r| Stream::single(r.clone())));
        if mutator.pool().requests.len() >= 2 {
            let mut s = Stream::single(mutator.pool().requests[0].clone());
            s.requests.push(crate::stream::StreamRequest {
                bytes: mutator.pool().requests[1].clone(),
                delivery: crate::stream::Delivery::Whole,
                pipelined: true,
            });
            pending_seeds.push(s);
        }

        loop {
            if let Some(t) = target {
                if execs >= t {
                    break;
                }
            }
            if let Some(d) = deadline {
                if Instant::now() >= d {
                    break;
                }
            }

            // Assemble the next batch: remaining seeds first, then
            // mutated candidates. Serial and RNG-driven — identical for
            // every thread count.
            let room = match target {
                Some(t) => (t - execs).min(batch_cap as u64) as usize,
                None => batch_cap,
            };
            let mut batch: Vec<Candidate> = Vec::with_capacity(room);
            while batch.len() < room {
                let exec_idx = execs + batch.len() as u64;
                let uuid = FUZZ_UUID_BASE + 1 + exec_idx;
                let origin = format!("fuzz:{}:{}", opts.seed, exec_idx);
                if let Some(stream) = pending_seeds.first().cloned() {
                    pending_seeds.remove(0);
                    batch.push(Candidate {
                        stream,
                        parent: None,
                        gen_gain: 0,
                        op: "seed",
                        uuid,
                        origin,
                    });
                    continue;
                }
                if corpus.is_empty() {
                    // Every seed quarantined (pathological profile set):
                    // fall back to a pool template.
                    batch.push(Candidate {
                        stream: Stream::single(mutator.pool().requests[0].clone()),
                        parent: None,
                        gen_gain: 0,
                        op: "seed",
                        uuid,
                        origin,
                    });
                    continue;
                }
                let parent = corpus.pick(&mut rng);
                let parent_id = parent.id;
                let parent_stream = parent.stream.clone();
                let other = corpus.pick(&mut rng).stream.clone();
                let ((mut stream, op), mut_tel) =
                    hdiff_obs::with_case(uuid, || mutator.mutate(&parent_stream, &other));
                tele.merge(&mut_tel);
                // Fresh-material operator: a quarter of candidates get a
                // grammar-generated header value spliced in; the
                // alternation arms that generation touched are the
                // candidate's gen-side coverage claim. The rule table
                // mixes the attack-relevant fields (Host, the framing
                // headers) with the arm-rich ones (Via, TE) so the
                // session keeps finding cold grammar regions.
                let mut gen_gain = 0usize;
                if rng.gen_bool(0.25) {
                    let (rule, header) = FRESH_RULES[rng.gen_range(0..FRESH_RULES.len())];
                    let (value, gen_tel) = hdiff_obs::with_case(uuid, || gen.generate(rule));
                    tele.merge(&gen_tel);
                    if let Some(value) = value {
                        let req = rng.gen_range(0..stream.requests.len());
                        let line = [header, &value, b"\r\n"].concat();
                        inject_line(&mut stream.requests[req].bytes, &line);
                        stream.requests[req].repair_delivery();
                        let before = summary_points(&global_cov);
                        if let Some(cov) = gen.coverage() {
                            global_cov.merge(cov);
                        }
                        gen_gain = summary_points(&global_cov) - before;
                    }
                }
                batch.push(Candidate {
                    stream,
                    parent: Some(parent_id),
                    gen_gain,
                    op,
                    uuid,
                    origin,
                });
            }
            if batch.is_empty() {
                break;
            }

            // Execute the batch across workers; results come back in
            // batch order regardless of scheduling.
            let results: Vec<ExecResult> =
                schedule::run_stealing(&batch, threads.min(batch.len()), |c| self.execute(c));

            // Score serially, in batch order.
            for (cand, result) in batch.iter().zip(results.iter()) {
                execs += 1;
                tele.record_count("fuzz.execs", 1);
                tele.record_count(&format!("fuzz.op.{}", cand.op), 1);
                tele.merge(&result.telemetry);
                if result.quarantined {
                    quarantined += 1;
                    tele.record_count("fuzz.quarantined", 1);
                    continue;
                }
                if result.net_error {
                    net_errors += 1;
                    tele.record_count("fuzz.net-error", 1);
                    continue;
                }

                // Matcher-side coverage: trace every Host value the
                // stream carries.
                let before = summary_points(&global_cov);
                for req in &cand.stream.requests {
                    for host in host_values(&req.bytes) {
                        let (_, visited) =
                            hdiff_abnf::memo::match_rule_traced(&cg, "Host", &host, 20_000);
                        global_cov.absorb_rules(&visited);
                    }
                }
                let cov_gain = cand.gen_gain + (summary_points(&global_cov) - before);

                let mut new_views = 0u64;
                for (label, digest) in &result.digests {
                    if seen_views.insert((label.clone(), *digest)) {
                        new_views += 1;
                    }
                }
                novel_views += new_views;
                if new_views > 0 {
                    tele.record_count("fuzz.digest.novel", new_views);
                }

                let mut fresh_classes: Vec<(String, Finding)> = Vec::new();
                for f in &result.findings {
                    let key = class_key(f);
                    if seen_classes.insert(key.clone()) {
                        fresh_classes.push((key, f.clone()));
                    }
                }
                if !fresh_classes.is_empty() {
                    tele.record_count("fuzz.class.novel", fresh_classes.len() as u64);
                }

                if cov_gain > 0 || new_views > 0 || !fresh_classes.is_empty() {
                    let energy = 1 + 2 * (cov_gain as u64).min(8) + 2 * new_views.min(8);
                    corpus.add(cand.stream.clone(), energy, cand.parent);
                    tele.record_count("fuzz.corpus.add", 1);
                    if let Some(parent) = cand.parent {
                        corpus.reward(parent, 2);
                    }
                }

                for (key, finding) in fresh_classes {
                    if promoted.len() >= opts.max_promotions {
                        tele.record_count("fuzz.promote.skipped", 1);
                        continue;
                    }
                    let ((stream, bundle, shrink), promote_tel) =
                        hdiff_obs::with_case(cand.uuid, || self.promote(cand, &finding, &key));
                    tele.merge(&promote_tel);
                    tele.record_count("fuzz.promoted", 1);
                    let name = bundle_name(&key);
                    if let Some(dir) = &opts.promote_dir {
                        let _ = std::fs::create_dir_all(dir);
                        if let Err(e) = bundle.save(&dir.join(format!("{name}.json"))) {
                            eprintln!("cannot save promoted bundle {name}: {e}");
                        }
                        let _ =
                            std::fs::write(dir.join(format!("{name}.stream")), stream.to_json());
                    }
                    promoted.push(PromotedStream { name, class_key: key, stream, bundle, shrink });
                }
            }
        }

        FuzzReport {
            transport: opts.transport,
            execs,
            quarantined,
            net_errors,
            elapsed: started.elapsed(),
            corpus_digests: corpus.digests(),
            coverage: global_cov.summary(),
            novel_digest_views: novel_views,
            divergence_classes: seen_classes.into_iter().collect(),
            promoted,
            telemetry: tele,
        }
    }

    /// Executes one candidate stream's effective bytes through the
    /// workflow on the configured transport, under `catch_unwind`.
    fn execute(&self, cand: &Candidate) -> ExecResult {
        let (outcome, telemetry) = hdiff_obs::with_case(cand.uuid, || {
            let _span = hdiff_obs::span("stage.fuzz-exec");
            panic::catch_unwind(AssertUnwindSafe(|| {
                let bytes = cand.stream.effective_bytes();
                let injector = FaultInjector::new(FaultPlan::disabled());
                let session = FaultSession::new(&injector, cand.uuid, 0, STEP_BUDGET);
                let outcome = match self.opts.transport {
                    Transport::Sim => Ok(self.workflow.run_bytes_faulted(
                        cand.uuid,
                        &cand.origin,
                        &bytes,
                        Some(&session),
                    )),
                    Transport::Tcp => try_run_bytes_tcp(
                        &self.workflow,
                        cand.uuid,
                        &cand.origin,
                        &bytes,
                        Some(&session),
                    ),
                    Transport::TcpAsync => self.async_testbed().and_then(|testbed| {
                        try_run_bytes_tcp_async(
                            &self.workflow,
                            cand.uuid,
                            &cand.origin,
                            &bytes,
                            Some(&session),
                            testbed,
                        )
                    }),
                };
                outcome.map(|outcome| {
                    let digests = behavior_digests(&outcome);
                    let findings = detect_case(&self.profiles, &outcome);
                    (digests, findings)
                })
            }))
        });
        match outcome {
            Ok(Ok((digests, findings))) => {
                ExecResult { digests, findings, quarantined: false, net_error: false, telemetry }
            }
            Ok(Err(_net)) => ExecResult {
                digests: Vec::new(),
                findings: Vec::new(),
                quarantined: false,
                net_error: true,
                telemetry,
            },
            Err(_panic) => ExecResult {
                digests: Vec::new(),
                findings: Vec::new(),
                quarantined: true,
                net_error: false,
                telemetry,
            },
        }
    }

    /// Minimizes the triggering stream and records the candidate golden
    /// bundle. The bundle is recorded over the sim transport (the
    /// canonical form every golden bundle uses); transport parity is
    /// the replay gate's job.
    fn promote(
        &self,
        cand: &Candidate,
        finding: &Finding,
        key: &str,
    ) -> (Stream, ReplayBundle, MinimizeStats) {
        let opts = MinimizeOptions {
            max_attempts: self.opts.minimize_attempts,
            byte_pass_limit: 0,
            chunk_width: 16,
        };
        let predicate = |s: &Stream| {
            self.findings_for(cand.uuid, &cand.origin, &s.effective_bytes()).iter().any(|f| {
                f.class == finding.class && f.front == finding.front && f.back == finding.back
            })
        };
        let (stream, shrink) = minimize_stream(&cand.stream, predicate, &opts);
        let bundle = ReplayBundle::record(
            &bundle_name(key),
            &format!("fuzz-promoted divergence {key}"),
            cand.uuid,
            &cand.origin,
            &stream.effective_bytes(),
            None,
            &self.workflow,
            &self.profiles,
            None,
        );
        (stream, bundle, shrink)
    }

    /// Detects findings on exact candidate bytes (fresh disabled fault
    /// session, same step budget as execution).
    fn findings_for(&self, uuid: u64, origin: &str, bytes: &[u8]) -> Vec<Finding> {
        let injector = FaultInjector::new(FaultPlan::disabled());
        let session = FaultSession::new(&injector, uuid, 0, STEP_BUDGET);
        let outcome = self.workflow.run_bytes_faulted(uuid, origin, bytes, Some(&session));
        detect_case(&self.profiles, &outcome)
    }
}

/// Shrinks a whole stream while `predicate` keeps holding: request-level
/// ddmin first (dropping whole requests via
/// [`hdiff_diff::minimize::ddmin_items`]), then a byte-level
/// [`hdiff_diff::minimize::minimize`] pass inside each surviving
/// request. Every predicate call — at both granularities — runs under
/// `catch_unwind`; a candidate hostile enough to panic the probe is
/// quarantined and rejected, never fatal. Deterministic.
pub fn minimize_stream<P>(
    stream: &Stream,
    predicate: P,
    opts: &MinimizeOptions,
) -> (Stream, MinimizeStats)
where
    P: Fn(&Stream) -> bool,
{
    let original_len = stream.raw_len();
    let (kept, mut stats) = ddmin_items(
        &stream.requests,
        |requests| !requests.is_empty() && predicate(&Stream { requests: requests.to_vec() }),
        opts,
    );
    let mut current = Stream { requests: kept };
    if !current.repair() {
        current = stream.clone();
    }
    for i in 0..current.requests.len() {
        if stats.attempts >= opts.max_attempts {
            break;
        }
        let remaining =
            MinimizeOptions { max_attempts: opts.max_attempts - stats.attempts, ..opts.clone() };
        let base = current.clone();
        let shrunk = minimize(
            &base.requests[i].bytes,
            |candidate| {
                let mut t = base.clone();
                t.requests[i].bytes = candidate.to_vec();
                t.requests[i].repair_delivery();
                predicate(&t)
            },
            &remaining,
        );
        stats.attempts += shrunk.stats.attempts;
        stats.accepted += shrunk.stats.accepted;
        stats.quarantined += shrunk.stats.quarantined;
        current.requests[i].bytes = shrunk.bytes;
        current.requests[i].repair_delivery();
    }
    stats.original_len = original_len;
    stats.minimized_len = current.raw_len();
    (current, stats)
}

/// `class|front|back` — the divergence-class identity promotion keys on.
pub fn class_key(f: &Finding) -> String {
    format!(
        "{}|{}|{}",
        f.class,
        f.front.as_deref().unwrap_or("-"),
        f.back.as_deref().unwrap_or("-")
    )
}

/// `fuzz-<fnv64 of the class key>` — stable per divergence class.
pub fn bundle_name(class_key: &str) -> String {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in class_key.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("fuzz-{h:016x}")
}

fn summary_points(cov: &CoverageMap) -> usize {
    let s = cov.summary();
    s.rules_covered + s.alts_covered
}
