//! Coverage-guided differential fuzzing over multi-request connection
//! streams.
//!
//! The campaign pipeline (`crates/core`) tests what the generators and
//! the catalog already know how to write. This crate closes the other
//! loop: it *evolves* inputs, guided by what the testbed does with
//! them. The unit of evolution is not a request but a **connection
//! stream** ([`Stream`]) — an ordered request sequence with a per-request
//! delivery directive ([`Delivery`]: whole, segmented, or truncated) and
//! keep-alive/pipelining structure — because the highest-value semantic
//! gaps (request smuggling, desync) live at request *boundaries*, which
//! single-request corpora cannot express.
//!
//! * [`stream`] — the stream model, its well-formedness invariants,
//!   repair, digesting, and a byte-exact JSON codec.
//! * [`mutate`] — stream-level mutators (splice, duplicate-with-mutation,
//!   reorder, boundary-shift segmentation, truncate-then-continue)
//!   composed with grammar-aware byte mutators over an
//!   [`IngredientPool`] distilled from the analyzed RFC grammar.
//! * [`corpus`] — the bounded energy-weighted scheduler.
//! * [`engine`] — the loop: mutate → execute on sim/tcp/tcp-async →
//!   score by grammar-coverage delta and behavior-digest novelty →
//!   ddmin-minimize and promote each never-seen divergence class to a
//!   candidate golden [`hdiff_diff::ReplayBundle`].
//!
//! Sessions are deterministic per `(seed, iteration budget, transport)`
//! and invariant across worker-thread counts; see [`engine`] for the
//! mechanism.

pub mod corpus;
pub mod engine;
pub mod mutate;
pub mod stream;

pub use corpus::{Corpus, CorpusEntry, ENERGY_CAP};
pub use engine::{
    bundle_name, class_key, minimize_stream, FuzzBudget, FuzzEngine, FuzzOptions, FuzzReport,
    PromotedStream, FUZZ_UUID_BASE,
};
pub use mutate::{IngredientPool, StreamMutator, MAX_REQUESTS, STREAM_OPS};
pub use stream::{Delivery, Stream, StreamRequest, STREAM_FORMAT_VERSION};
