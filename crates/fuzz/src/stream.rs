//! The connection-stream model the fuzzer evolves.
//!
//! A [`Stream`] is an ordered sequence of requests delivered over one
//! client connection. Each request carries a [`Delivery`] directive —
//! sent whole, segmented at explicit byte offsets, or truncated at a
//! byte offset with the *rest of the stream still following* — plus a
//! pipelining flag (sent back-to-back with its predecessor without
//! awaiting the response). Truncate-then-continue is the load-bearing
//! directive: cutting a `Content-Length` body short makes the next
//! request's bytes become body remainder under one framing model and a
//! fresh request under another, which is exactly the request-boundary
//! confusion the Table II vectors weaponize.
//!
//! The canonical execution semantics of a stream are its
//! [`Stream::effective_bytes`]: the concatenation of every request's
//! delivered bytes, in order. That is what one keep-alive connection
//! carries on the wire, what `Workflow::run_bytes_faulted` parses
//! message-by-message in the sim, and what the wire transports send —
//! so a promoted stream replays identically over `sim`, `tcp`, and
//! `tcp-async` (segment boundaries shape delivery timing, never bytes).

use std::fmt;
use std::io;

use hdiff_diff::json::{push_json_str, Json, Parser};

/// Stream codec format version.
pub const STREAM_FORMAT_VERSION: u64 = 1;

/// How one request's bytes are delivered on the connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Delivery {
    /// One contiguous write.
    Whole,
    /// Split into `offsets.len() + 1` writes at the given byte offsets
    /// (strictly ascending, each in `1..len`).
    Segmented(Vec<usize>),
    /// Only the first `n` bytes (`n <= len`) are delivered; the stream
    /// continues with the next request immediately after the cut.
    TruncateAt(usize),
}

impl Delivery {
    /// Stable tag used by the codec and reports.
    pub fn tag(&self) -> &'static str {
        match self {
            Delivery::Whole => "whole",
            Delivery::Segmented(_) => "segmented",
            Delivery::TruncateAt(_) => "truncate",
        }
    }
}

/// One request on the connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamRequest {
    /// Raw request bytes (non-empty).
    pub bytes: Vec<u8>,
    /// Delivery directive.
    pub delivery: Delivery,
    /// Sent back-to-back with the previous request without awaiting its
    /// response (meaningless — and kept `false` — on the first request).
    pub pipelined: bool,
}

impl StreamRequest {
    /// A whole, non-pipelined request.
    pub fn whole(bytes: Vec<u8>) -> StreamRequest {
        StreamRequest { bytes, delivery: Delivery::Whole, pipelined: false }
    }

    /// The bytes this request actually puts on the connection.
    pub fn delivered_bytes(&self) -> &[u8] {
        match self.delivery {
            Delivery::TruncateAt(n) => &self.bytes[..n.min(self.bytes.len())],
            _ => &self.bytes,
        }
    }

    /// Whether the delivery directive is in-bounds for the bytes.
    pub fn well_formed(&self) -> bool {
        if self.bytes.is_empty() {
            return false;
        }
        match &self.delivery {
            Delivery::Whole => true,
            Delivery::Segmented(offsets) => {
                !offsets.is_empty()
                    && offsets.windows(2).all(|w| w[0] < w[1])
                    && offsets.iter().all(|&o| o >= 1 && o < self.bytes.len())
            }
            Delivery::TruncateAt(n) => *n <= self.bytes.len(),
        }
    }

    /// Clamps the delivery directive back in-bounds after a byte-level
    /// mutation changed the request's length.
    pub fn repair_delivery(&mut self) {
        let len = self.bytes.len();
        match &mut self.delivery {
            Delivery::Whole => {}
            Delivery::Segmented(offsets) => {
                offsets.retain(|&o| o >= 1 && o < len);
                offsets.sort_unstable();
                offsets.dedup();
                if offsets.is_empty() {
                    self.delivery = Delivery::Whole;
                }
            }
            Delivery::TruncateAt(n) => *n = (*n).min(len),
        }
    }
}

/// An ordered multi-request connection stream — the unit the fuzzer
/// schedules, mutates, minimizes, and promotes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stream {
    /// The requests, in connection order (non-empty).
    pub requests: Vec<StreamRequest>,
}

impl Stream {
    /// A single whole request.
    pub fn single(bytes: Vec<u8>) -> Stream {
        Stream { requests: vec![StreamRequest::whole(bytes)] }
    }

    /// The well-formedness invariants every mutation preserves: a
    /// non-empty pipelined batch of non-empty requests, segment offsets
    /// in-bounds and ascending, truncation points `<= len`, and the
    /// first request never marked pipelined.
    pub fn well_formed(&self) -> bool {
        !self.requests.is_empty()
            && self.requests.iter().all(StreamRequest::well_formed)
            && !self.requests[0].pipelined
    }

    /// Re-establishes [`Stream::well_formed`] after structural
    /// mutations: drops empty requests, repairs deliveries, and clears
    /// the first request's pipelined flag. Returns `false` when nothing
    /// survives (the caller should discard the mutant).
    pub fn repair(&mut self) -> bool {
        self.requests.retain(|r| !r.bytes.is_empty());
        if self.requests.is_empty() {
            return false;
        }
        for r in &mut self.requests {
            r.repair_delivery();
        }
        self.requests[0].pipelined = false;
        true
    }

    /// The canonical byte stream this connection carries: every
    /// request's delivered bytes, concatenated in order.
    pub fn effective_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for r in &self.requests {
            out.extend_from_slice(r.delivered_bytes());
        }
        out
    }

    /// Total byte length across all requests (pre-truncation).
    pub fn raw_len(&self) -> usize {
        self.requests.iter().map(|r| r.bytes.len()).sum()
    }

    /// FNV-1a structural digest over requests, deliveries and flags —
    /// the corpus identity used by determinism gates.
    pub fn digest(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut write = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            for b in (bytes.len() as u64).to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        for r in &self.requests {
            write(&r.bytes);
            write(r.delivery.tag().as_bytes());
            match &r.delivery {
                Delivery::Whole => {}
                Delivery::Segmented(offsets) => {
                    for &o in offsets {
                        write(&(o as u64).to_le_bytes());
                    }
                }
                Delivery::TruncateAt(n) => write(&(*n as u64).to_le_bytes()),
            }
            write(&[u8::from(r.pipelined)]);
        }
        h
    }

    /// Serializes the stream as a canonical JSON document (one line,
    /// fixed key order) so round-trips are byte-exact.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{{\"version\":{STREAM_FORMAT_VERSION},\"requests\":["));
        for (i, r) in self.requests.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"bytes_hex\":");
            push_json_str(&mut out, &hex_encode(&r.bytes));
            out.push_str(",\"delivery\":");
            match &r.delivery {
                Delivery::Whole => out.push_str("{\"kind\":\"whole\"}"),
                Delivery::Segmented(offsets) => {
                    out.push_str("{\"kind\":\"segmented\",\"offsets\":[");
                    for (j, o) in offsets.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        out.push_str(&o.to_string());
                    }
                    out.push_str("]}");
                }
                Delivery::TruncateAt(n) => {
                    out.push_str(&format!("{{\"kind\":\"truncate\",\"at\":{n}}}"));
                }
            }
            out.push_str(&format!(",\"pipelined\":{}}}", r.pipelined));
        }
        out.push_str("]}\n");
        out
    }

    /// Parses a stream back from its JSON form.
    pub fn from_json(bytes: &[u8]) -> io::Result<Stream> {
        let bad = |m: &str| io::Error::new(io::ErrorKind::InvalidData, m.to_string());
        let doc = Parser::new(bytes).value()?;
        let version = doc.get("version").and_then(Json::as_u64).ok_or_else(|| bad("version"))?;
        if version != STREAM_FORMAT_VERSION {
            return Err(bad(&format!("unsupported stream version {version}")));
        }
        let reqs = doc.get("requests").and_then(Json::as_arr).ok_or_else(|| bad("requests"))?;
        let mut requests = Vec::with_capacity(reqs.len());
        for r in reqs {
            let hex = r.get("bytes_hex").and_then(Json::as_str).ok_or_else(|| bad("bytes_hex"))?;
            let bytes = hex_decode(hex).ok_or_else(|| bad("bytes_hex"))?;
            let delivery = r.get("delivery").ok_or_else(|| bad("delivery"))?;
            let kind = delivery.get("kind").and_then(Json::as_str).ok_or_else(|| bad("kind"))?;
            let delivery = match kind {
                "whole" => Delivery::Whole,
                "segmented" => {
                    let offsets = delivery
                        .get("offsets")
                        .and_then(Json::as_arr)
                        .ok_or_else(|| bad("offsets"))?
                        .iter()
                        .map(|o| o.as_u64().map(|v| v as usize))
                        .collect::<Option<Vec<usize>>>()
                        .ok_or_else(|| bad("offsets"))?;
                    Delivery::Segmented(offsets)
                }
                "truncate" => Delivery::TruncateAt(
                    delivery.get("at").and_then(Json::as_u64).ok_or_else(|| bad("at"))? as usize,
                ),
                other => return Err(bad(&format!("unknown delivery kind {other:?}"))),
            };
            let pipelined =
                r.get("pipelined").and_then(Json::as_bool).ok_or_else(|| bad("pipelined"))?;
            requests.push(StreamRequest { bytes, delivery, pipelined });
        }
        Ok(Stream { requests })
    }
}

impl fmt::Display for Stream {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "stream[{} req, {} bytes]", self.requests.len(), self.effective_bytes().len())
    }
}

fn hex_encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

fn hex_decode(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    let raw = s.as_bytes();
    let mut out = Vec::with_capacity(s.len() / 2);
    for pair in raw.chunks(2) {
        let hi = (pair[0] as char).to_digit(16)?;
        let lo = (pair[1] as char).to_digit(16)?;
        out.push((hi * 16 + lo) as u8);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Stream {
        Stream {
            requests: vec![
                StreamRequest {
                    bytes: b"GET / HTTP/1.1\r\nHost: a\r\n\r\n".to_vec(),
                    delivery: Delivery::Segmented(vec![4, 9]),
                    pipelined: false,
                },
                StreamRequest {
                    bytes: b"POST /x HTTP/1.1\r\nHost: b\r\nContent-Length: 3\r\n\r\nabc".to_vec(),
                    delivery: Delivery::TruncateAt(20),
                    pipelined: true,
                },
            ],
        }
    }

    #[test]
    fn effective_bytes_concats_and_truncates() {
        let s = sample();
        let eff = s.effective_bytes();
        assert!(eff.starts_with(b"GET / HTTP/1.1\r\nHost: a\r\n\r\n"));
        assert_eq!(eff.len(), 27 + 20);
    }

    #[test]
    fn codec_round_trips_byte_exactly() {
        let s = sample();
        let json = s.to_json();
        let back = Stream::from_json(json.as_bytes()).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn invariants_catch_out_of_bounds() {
        let mut s = sample();
        assert!(s.well_formed());
        s.requests[0].delivery = Delivery::Segmented(vec![0]);
        assert!(!s.well_formed());
        s.requests[0].delivery = Delivery::Segmented(vec![5, 5]);
        assert!(!s.well_formed());
        s.requests[0].delivery = Delivery::TruncateAt(10_000);
        assert!(!s.well_formed());
        s.requests[0].repair_delivery();
        assert!(s.well_formed());
    }

    #[test]
    fn repair_restores_invariants() {
        let mut s = sample();
        s.requests[0].delivery = Delivery::Segmented(vec![0, 4, 4, 9, 10_000]);
        s.requests.push(StreamRequest::whole(Vec::new()));
        s.requests[1].pipelined = true;
        assert!(s.repair());
        assert!(s.well_formed());
        assert_eq!(s.requests.len(), 2);
        assert_eq!(s.requests[0].delivery, Delivery::Segmented(vec![4, 9]));
    }

    #[test]
    fn digest_distinguishes_delivery_shapes() {
        let whole = Stream::single(b"GET / HTTP/1.1\r\nHost: a\r\n\r\n".to_vec());
        let mut seg = whole.clone();
        seg.requests[0].delivery = Delivery::Segmented(vec![4]);
        let mut cut = whole.clone();
        cut.requests[0].delivery = Delivery::TruncateAt(4);
        assert_ne!(whole.digest(), seg.digest());
        assert_ne!(whole.digest(), cut.digest());
        assert_ne!(seg.digest(), cut.digest());
    }
}
