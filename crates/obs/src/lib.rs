//! Campaign observability: tracing spans, counters, and fixed-bucket
//! latency histograms — with zero dependencies and an overhead budget.
//!
//! A differential campaign is a pipeline of stages (generate, mutate,
//! SR-translate, chain-execute, detect, minimize) fanned out over worker
//! threads. Explaining *where time goes and what each stage produced*
//! needs instrumentation, but the instrumentation must not perturb the
//! thing it measures: the campaign's hot paths (the packrat matcher, the
//! wire client) run in the hundreds of nanoseconds to tens of
//! microseconds, so every recording primitive here is a thread-local
//! operation — no locks, no atomics on the data path, no allocation
//! after the first touch of a name.
//!
//! The model:
//!
//! * every thread owns a private [`Telemetry`] behind a `thread_local!`;
//!   [`span`], [`count`], and [`observe`] record into it;
//! * the campaign runner brackets each test case with [`with_case`],
//!   which drains exactly the telemetry that case produced (stashing and
//!   restoring whatever ambient telemetry the thread already held) — the
//!   per-case bucket travels with the case record, so checkpoints carry
//!   partial telemetry and a resumed campaign merges it back without
//!   double-counting;
//! * buckets are merged ([`Telemetry::merge`]) at campaign end in input
//!   order — the same reassembly pattern the work-stealing scheduler
//!   uses for case results, so the merged view is identical across
//!   thread counts.
//!
//! Durations are wall-clock and therefore nondeterministic; everything
//! else (span counts, counter totals, histogram populations) is a pure
//! function of the campaign's seed. [`Telemetry`]'s `PartialEq` compares
//! only that deterministic shape, which is what lets `RunSummary`
//! equality gates keep holding across thread counts and hardware.
//!
//! Recording is globally gated by [`set_enabled`] (on by default; the
//! CLI's `--no-telemetry` turns it off) and event tracing — one
//! [`TraceEvent`] per span/counter/histogram observation, for the
//! `--trace-out` JSONL log — by [`set_trace`] (off by default).

mod record;
mod report;
mod telemetry;

pub use record::{
    count, count_many, drain, enabled, observe, set_enabled, set_trace, span, trace_enabled,
    with_case, SpanGuard,
};
pub use report::{render_report, ReportInput};
pub use telemetry::{EventKind, Histogram, SpanStat, Telemetry, TraceEvent, HIST_BUCKETS};
