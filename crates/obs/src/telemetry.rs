//! The merged telemetry value: span statistics, counters, histograms,
//! and (when tracing) the raw event log.

use std::collections::BTreeMap;

/// Number of power-of-two nanosecond buckets a [`Histogram`] holds.
/// Bucket `i` covers `[2^i, 2^(i+1))` ns; bucket 0 additionally absorbs
/// 0 ns. 40 buckets reach ~18 minutes — far beyond any single campaign
/// observation.
pub const HIST_BUCKETS: usize = 40;

/// Aggregate statistics for one named span.
#[derive(Debug, Clone, Default)]
pub struct SpanStat {
    /// Times the span was entered and exited.
    pub count: u64,
    /// Total wall time across all entries, nanoseconds.
    pub total_ns: u64,
    /// Shortest single entry, nanoseconds.
    pub min_ns: u64,
    /// Longest single entry, nanoseconds.
    pub max_ns: u64,
}

impl SpanStat {
    pub(crate) fn record(&mut self, ns: u64) {
        if self.count == 0 || ns < self.min_ns {
            self.min_ns = ns;
        }
        if ns > self.max_ns {
            self.max_ns = ns;
        }
        self.count += 1;
        self.total_ns += ns;
    }

    fn absorb(&mut self, other: &SpanStat) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 || other.min_ns < self.min_ns {
            self.min_ns = other.min_ns;
        }
        if other.max_ns > self.max_ns {
            self.max_ns = other.max_ns;
        }
        self.count += other.count;
        self.total_ns += other.total_ns;
    }

    /// Mean duration in nanoseconds (0 when never entered).
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.count).unwrap_or(0)
    }
}

/// A fixed-bucket latency histogram over power-of-two ns buckets.
#[derive(Debug, Clone)]
pub struct Histogram {
    /// One population count per bucket (see [`HIST_BUCKETS`]).
    pub buckets: [u64; HIST_BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values, nanoseconds.
    pub total_ns: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram { buckets: [0; HIST_BUCKETS], count: 0, total_ns: 0 }
    }
}

/// The bucket index an observation of `ns` lands in.
pub(crate) fn bucket_index(ns: u64) -> usize {
    ((63 - (ns | 1).leading_zeros()) as usize).min(HIST_BUCKETS - 1)
}

impl Histogram {
    pub(crate) fn record(&mut self, ns: u64) {
        self.buckets[bucket_index(ns)] += 1;
        self.count += 1;
        self.total_ns += ns;
    }

    fn absorb(&mut self, other: &Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.total_ns += other.total_ns;
    }

    /// Mean observation in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.count).unwrap_or(0)
    }

    /// Lower bound (ns) of the bucket holding the `q` quantile
    /// (`0.0..=1.0`), or 0 when empty. Bucket-resolution only — good
    /// enough for a p50/p99 line in a report, not for SLOs.
    pub fn quantile_lower_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as f64 * q).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return if i == 0 { 0 } else { 1u64 << i };
            }
        }
        1u64 << (HIST_BUCKETS - 1)
    }
}

/// What one [`TraceEvent`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span exit; the value is the span's duration in ns.
    Span,
    /// A counter increment; the value is the delta.
    Counter,
    /// A histogram observation; the value is the observed ns.
    Hist,
}

impl EventKind {
    /// Stable name used in the JSONL trace format.
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::Span => "span",
            EventKind::Counter => "counter",
            EventKind::Hist => "hist",
        }
    }

    /// Parses [`EventKind::as_str`] output.
    pub fn parse(s: &str) -> Option<EventKind> {
        match s {
            "span" => Some(EventKind::Span),
            "counter" => Some(EventKind::Counter),
            "hist" => Some(EventKind::Hist),
            _ => None,
        }
    }
}

/// One recorded observation, kept only when tracing is enabled.
///
/// Events are ordered by `(case, seq)`: `seq` restarts at 0 for every
/// [`crate::with_case`] scope, so the sort order is a pure function of
/// the campaign's seed — replay-stable across thread counts — even
/// though the values of span events are wall-clock durations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// The case uuid the event belongs to (0 outside any case scope).
    pub case: u64,
    /// Position within the case's event stream.
    pub seq: u64,
    /// What was recorded.
    pub kind: EventKind,
    /// The span/counter/histogram name.
    pub name: String,
    /// Duration ns (span/hist) or delta (counter).
    pub value: u64,
}

/// One thread's (or one case's, or one campaign's) collected telemetry.
///
/// # Equality
///
/// `PartialEq` deliberately compares only the *deterministic shape*:
/// span names and entry counts, counter names and totals, histogram
/// names and populations. Durations (`total_ns`, `min_ns`, `max_ns`,
/// bucket placement) and the raw event log are ignored — they are
/// wall-clock measurements and two runs of the same seed will never
/// reproduce them. This is what keeps `RunSummary` equality gates
/// (single- vs multi-thread, interrupted vs resumed) meaningful with
/// telemetry embedded.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    /// Aggregate span statistics by name.
    pub spans: BTreeMap<String, SpanStat>,
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Latency histograms by name.
    pub hists: BTreeMap<String, Histogram>,
    /// Raw event log (only populated while [`crate::set_trace`] is on).
    pub events: Vec<TraceEvent>,
}

impl PartialEq for Telemetry {
    fn eq(&self, other: &Telemetry) -> bool {
        self.spans.len() == other.spans.len()
            && self
                .spans
                .iter()
                .zip(other.spans.iter())
                .all(|((an, a), (bn, b))| an == bn && a.count == b.count)
            && self.counters == other.counters
            && self.hists.len() == other.hists.len()
            && self
                .hists
                .iter()
                .zip(other.hists.iter())
                .all(|((an, a), (bn, b))| an == bn && a.count == b.count)
    }
}

impl Telemetry {
    /// Whether nothing was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
            && self.counters.is_empty()
            && self.hists.is_empty()
            && self.events.is_empty()
    }

    /// Folds `other` into `self`: span stats and histograms absorb,
    /// counters add, events concatenate. Merging is associative and
    /// commutative on the deterministic shape, so any merge order
    /// (worker buckets, checkpoint restores, chunk boundaries) produces
    /// an equal result.
    pub fn merge(&mut self, other: &Telemetry) {
        for (name, stat) in &other.spans {
            self.spans.entry(name.clone()).or_default().absorb(stat);
        }
        for (name, delta) in &other.counters {
            *self.counters.entry(name.clone()).or_default() += delta;
        }
        for (name, hist) in &other.hists {
            self.hists.entry(name.clone()).or_default().absorb(hist);
        }
        self.events.extend(other.events.iter().cloned());
    }

    /// A 64-bit FNV-1a digest of the deterministic shape — exactly the
    /// fields [`Telemetry`] equality compares (span names and counts,
    /// counter names and totals, histogram names and populations), never
    /// durations. Two telemetries are `==` iff their digests agree (up
    /// to hash collisions), which gives distributed-campaign gates a
    /// single number to compare and log instead of a structural diff.
    pub fn shape_digest(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x1000_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |bytes: &[u8]| {
            // Length-separated so ("ab", 1) never collides with ("a", b1).
            for &b in (bytes.len() as u64).to_le_bytes().iter().chain(bytes) {
                h ^= u64::from(b);
                h = h.wrapping_mul(PRIME);
            }
        };
        for (name, stat) in &self.spans {
            eat(b"span");
            eat(name.as_bytes());
            eat(&stat.count.to_le_bytes());
        }
        for (name, total) in &self.counters {
            eat(b"counter");
            eat(name.as_bytes());
            eat(&total.to_le_bytes());
        }
        for (name, hist) in &self.hists {
            eat(b"hist");
            eat(name.as_bytes());
            eat(&hist.count.to_le_bytes());
        }
        h
    }

    /// The events sorted into their replay-stable `(case, seq)` order.
    pub fn sorted_events(&self) -> Vec<TraceEvent> {
        let mut events = self.events.clone();
        events.sort_by_key(|e| (e.case, e.seq));
        events
    }

    pub fn record_span(&mut self, name: &str, ns: u64) {
        match self.spans.get_mut(name) {
            Some(s) => s.record(ns),
            None => self.spans.entry(name.to_string()).or_default().record(ns),
        }
    }

    pub fn record_count(&mut self, name: &str, delta: u64) {
        match self.counters.get_mut(name) {
            Some(c) => *c += delta,
            None => {
                self.counters.insert(name.to_string(), delta);
            }
        }
    }

    pub fn record_hist(&mut self, name: &str, ns: u64) {
        match self.hists.get_mut(name) {
            Some(h) => h.record(ns),
            None => self.hists.entry(name.to_string()).or_default().record(ns),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_indexing_is_monotonic_and_bounded() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(u64::MAX), HIST_BUCKETS - 1);
        let mut prev = 0;
        for ns in [0u64, 1, 7, 100, 4096, 1 << 20, 1 << 35, u64::MAX] {
            let b = bucket_index(ns);
            assert!(b >= prev, "bucket order broke at {ns}");
            prev = b;
        }
    }

    #[test]
    fn span_stat_tracks_min_max_mean() {
        let mut s = SpanStat::default();
        s.record(10);
        s.record(30);
        s.record(20);
        assert_eq!((s.count, s.min_ns, s.max_ns, s.mean_ns()), (3, 10, 30, 20));
    }

    #[test]
    fn merge_is_order_insensitive_on_the_deterministic_shape() {
        let mut a = Telemetry::default();
        a.record_count("memo.hit", 3);
        a.record_span("stage.detect", 100);
        a.record_hist("rtt", 50);
        let mut b = Telemetry::default();
        b.record_count("memo.hit", 4);
        b.record_count("memo.miss", 1);
        b.record_span("stage.detect", 999);
        b.record_hist("rtt", 5000);

        let mut ab = Telemetry::default();
        ab.merge(&a);
        ab.merge(&b);
        let mut ba = Telemetry::default();
        ba.merge(&b);
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.counters["memo.hit"], 7);
        assert_eq!(ab.spans["stage.detect"].count, 2);
        assert_eq!(ab.hists["rtt"].count, 2);
    }

    #[test]
    fn equality_ignores_durations_but_not_counts() {
        let mut a = Telemetry::default();
        a.record_span("s", 10);
        let mut b = Telemetry::default();
        b.record_span("s", 99999);
        assert_eq!(a, b, "durations must not break equality");
        b.record_span("s", 1);
        assert_ne!(a, b, "span counts must break equality");
    }

    #[test]
    fn shape_digest_tracks_equality_not_durations() {
        let mut a = Telemetry::default();
        a.record_span("stage.detect", 10);
        a.record_count("memo.hit", 3);
        a.record_hist("rtt", 50);
        let mut b = Telemetry::default();
        b.record_span("stage.detect", 99999); // same shape, wild duration
        b.record_count("memo.hit", 3);
        b.record_hist("rtt", 1 << 30);
        assert_eq!(a, b);
        assert_eq!(a.shape_digest(), b.shape_digest());

        b.record_count("memo.hit", 1);
        assert_ne!(a, b);
        assert_ne!(a.shape_digest(), b.shape_digest());

        // Name/count boundaries must not alias.
        let mut c = Telemetry::default();
        c.record_span("ab", 1);
        let mut d = Telemetry::default();
        d.record_span("a", 1);
        d.record_span("b", 1);
        assert_ne!(c.shape_digest(), d.shape_digest());
        assert_ne!(Telemetry::default().shape_digest(), c.shape_digest());
    }

    #[test]
    fn histogram_quantiles_land_in_the_right_bucket() {
        let mut h = Histogram::default();
        for _ in 0..99 {
            h.record(100); // bucket 6: [64,128)
        }
        h.record(1 << 20); // one outlier
        assert_eq!(h.quantile_lower_ns(0.5), 64);
        assert_eq!(h.quantile_lower_ns(1.0), 1 << 20);
        assert_eq!(Histogram::default().quantile_lower_ns(0.5), 0);
    }
}
