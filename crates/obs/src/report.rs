//! Text rendering for merged telemetry — what `hdiff report` prints.

use crate::telemetry::Telemetry;

/// Everything the renderer needs: the merged telemetry plus the bits of
/// campaign context (slowest cases, a title line) that live outside the
/// [`Telemetry`] value itself.
#[derive(Debug, Clone, Default)]
pub struct ReportInput {
    /// Heading printed above the tables (e.g. the summary path).
    pub title: String,
    /// The campaign's merged telemetry.
    pub telemetry: Telemetry,
    /// `(case uuid, case duration ns)` pairs, slowest first.
    pub slowest: Vec<(u64, u64)>,
    /// How many slowest cases to print (0 hides the section).
    pub top_n: usize,
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

fn push_row(out: &mut String, cols: &[(&str, usize)]) {
    for (i, (cell, width)) in cols.iter().enumerate() {
        if i == 0 {
            out.push_str(&format!("  {cell:<width$}"));
        } else {
            out.push_str(&format!("  {cell:>width$}"));
        }
    }
    out.push('\n');
}

/// Renders a merged telemetry view as plain-text tables: span (stage)
/// breakdown with time share, counter totals, histogram summaries, and
/// the top-N slowest cases.
pub fn render_report(input: &ReportInput) -> String {
    let tel = &input.telemetry;
    let mut out = String::new();
    if !input.title.is_empty() {
        out.push_str(&input.title);
        out.push('\n');
        out.push_str(&"=".repeat(input.title.len()));
        out.push('\n');
    }
    if tel.is_empty() && input.slowest.is_empty() {
        out.push_str("no telemetry recorded\n");
        return out;
    }

    if !tel.spans.is_empty() {
        // Share is computed against the stage.* spans only: "case" and
        // transport spans nest inside stages and would double-count.
        let stage_total: u64 = tel
            .spans
            .iter()
            .filter(|(name, _)| name.starts_with("stage."))
            .map(|(_, s)| s.total_ns)
            .sum();
        let mut rows: Vec<_> = tel.spans.iter().collect();
        rows.sort_by(|a, b| b.1.total_ns.cmp(&a.1.total_ns).then(a.0.cmp(b.0)));
        out.push_str("\nspans\n");
        push_row(
            &mut out,
            &[("name", 24), ("count", 10), ("total", 10), ("mean", 10), ("max", 10), ("share", 6)],
        );
        for (name, stat) in rows {
            let share = if name.starts_with("stage.") && stage_total > 0 {
                format!("{:.1}%", stat.total_ns as f64 * 100.0 / stage_total as f64)
            } else {
                "-".to_string()
            };
            push_row(
                &mut out,
                &[
                    (name.as_str(), 24),
                    (&stat.count.to_string(), 10),
                    (&fmt_ns(stat.total_ns), 10),
                    (&fmt_ns(stat.mean_ns()), 10),
                    (&fmt_ns(stat.max_ns), 10),
                    (&share, 6),
                ],
            );
        }
    }

    if !tel.counters.is_empty() {
        out.push_str("\ncounters\n");
        push_row(&mut out, &[("name", 24), ("total", 12)]);
        let mut rows: Vec<_> = tel.counters.iter().collect();
        rows.sort_by(|a, b| b.1.cmp(a.1).then(a.0.cmp(b.0)));
        for (name, total) in rows {
            push_row(&mut out, &[(name.as_str(), 24), (&total.to_string(), 12)]);
        }
    }

    if !tel.hists.is_empty() {
        out.push_str("\nlatency histograms\n");
        push_row(
            &mut out,
            &[("name", 24), ("count", 10), ("mean", 10), ("p50>=", 10), ("p99>=", 10)],
        );
        for (name, hist) in &tel.hists {
            push_row(
                &mut out,
                &[
                    (name.as_str(), 24),
                    (&hist.count.to_string(), 10),
                    (&fmt_ns(hist.mean_ns()), 10),
                    (&fmt_ns(hist.quantile_lower_ns(0.5)), 10),
                    (&fmt_ns(hist.quantile_lower_ns(0.99)), 10),
                ],
            );
        }
    }

    // Coverage-guided generation health: every `gen.alt.saturated` tick
    // is an alternation pick that found no cold arm left to chase. Once
    // those dominate, further generation stops buying grammar coverage —
    // a campaign-level signal worth surfacing, not just a counter row.
    let saturated = tel.counters.get("gen.alt.saturated").copied().unwrap_or(0);
    let cold = tel.counters.get("gen.alt.cold").copied().unwrap_or(0);
    if saturated > cold && saturated > 0 {
        let picks = saturated + cold;
        out.push_str(&format!(
            "\nwarning: coverage-guided generation is saturated — {saturated} of {picks} \
             alternation picks ({:.1}%) found no cold arm; more generation will not \
             improve grammar coverage\n",
            saturated as f64 * 100.0 / picks as f64
        ));
    }

    if input.top_n > 0 && !input.slowest.is_empty() {
        out.push_str(&format!("\nslowest cases (top {})\n", input.top_n));
        push_row(&mut out, &[("case", 20), ("duration", 10)]);
        for &(uuid, ns) in input.slowest.iter().take(input.top_n) {
            push_row(&mut out, &[(&format!("{uuid:#018x}"), 20), (&fmt_ns(ns), 10)]);
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_all_sections() {
        let mut tel = Telemetry::default();
        tel.record_span("stage.generate", 2_000_000);
        tel.record_span("stage.detect", 6_000_000);
        tel.record_span("case", 8_000_000);
        tel.record_count("memo.hit", 42);
        tel.record_hist("transport.rtt.sim", 1500);
        let input = ReportInput {
            title: "campaign".to_string(),
            telemetry: tel,
            slowest: vec![(0xabc, 8_000_000), (0x1, 10)],
            top_n: 1,
        };
        let text = render_report(&input);
        assert!(text.contains("stage.detect"), "{text}");
        assert!(text.contains("75.0%"), "detect is 6/8 of stage time: {text}");
        assert!(text.contains("memo.hit"), "{text}");
        assert!(text.contains("transport.rtt.sim"), "{text}");
        assert!(text.contains("0x0000000000000abc"), "{text}");
        assert!(!text.contains("0x0000000000000001"), "top_n=1 must truncate: {text}");
    }

    #[test]
    fn saturation_warning_appears_when_saturated_dominates() {
        let mut tel = Telemetry::default();
        tel.record_count("gen.alt.saturated", 90);
        tel.record_count("gen.alt.cold", 10);
        let text = render_report(&ReportInput { telemetry: tel, ..ReportInput::default() });
        assert!(text.contains("warning: coverage-guided generation is saturated"), "{text}");
        assert!(text.contains("90 of 100"), "{text}");
        assert!(text.contains("90.0%"), "{text}");
    }

    #[test]
    fn no_saturation_warning_while_cold_arms_remain() {
        let mut tel = Telemetry::default();
        tel.record_count("gen.alt.saturated", 10);
        tel.record_count("gen.alt.cold", 90);
        let text = render_report(&ReportInput { telemetry: tel, ..ReportInput::default() });
        assert!(!text.contains("warning:"), "{text}");
    }

    #[test]
    fn empty_telemetry_says_so() {
        let text = render_report(&ReportInput::default());
        assert!(text.contains("no telemetry recorded"));
    }

    #[test]
    fn duration_formatting_picks_sane_units() {
        assert_eq!(fmt_ns(5), "5ns");
        assert_eq!(fmt_ns(1_500), "1.5us");
        assert_eq!(fmt_ns(2_500_000), "2.50ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.00s");
    }
}
