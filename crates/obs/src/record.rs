//! The recording side: thread-local collection, scoped spans, and the
//! per-case drain the campaign runner uses.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

use crate::telemetry::{EventKind, Telemetry, TraceEvent};

/// Process-wide recording gate. On by default; `--no-telemetry` (and the
/// overhead benchmark's control arm) turn it off. Checked with one
/// relaxed load per recording call.
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Process-wide event-tracing gate (the `--trace-out` JSONL log). Off by
/// default: traces keep every observation and are meant for profiling
/// runs, not steady state.
static TRACE: AtomicBool = AtomicBool::new(false);

/// Whether recording is currently enabled.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Globally enables or disables recording.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether event tracing is currently enabled.
pub fn trace_enabled() -> bool {
    TRACE.load(Ordering::Relaxed)
}

/// Globally enables or disables event tracing.
pub fn set_trace(on: bool) {
    TRACE.store(on, Ordering::Relaxed);
}

/// One thread's private recording state.
#[derive(Default)]
struct Local {
    tel: Telemetry,
    /// Case uuid events are attributed to (0 outside [`with_case`]).
    case: u64,
    /// Next event sequence number within the current case scope.
    seq: u64,
}

thread_local! {
    static LOCAL: RefCell<Local> = RefCell::new(Local::default());
}

/// Runs `f` against the thread's local state. Re-entrant drops (a span
/// guard dropping while the local is borrowed) are silently skipped —
/// losing one observation beats panicking in a destructor.
fn with_local(f: impl FnOnce(&mut Local)) {
    LOCAL.with(|l| {
        if let Ok(mut l) = l.try_borrow_mut() {
            f(&mut l);
        }
    });
}

fn push_event(local: &mut Local, kind: EventKind, name: &str, value: u64) {
    let event =
        TraceEvent { case: local.case, seq: local.seq, kind, name: name.to_string(), value };
    local.seq += 1;
    local.tel.events.push(event);
}

/// Adds `delta` to the named counter on this thread.
#[inline]
pub fn count(name: &str, delta: u64) {
    if !enabled() || delta == 0 {
        return;
    }
    let trace = trace_enabled();
    with_local(|l| {
        l.tel.record_count(name, delta);
        if trace {
            push_event(l, EventKind::Counter, name, delta);
        }
    });
}

/// Adds several counters in one thread-local access — what hot callers
/// (the memo matcher) use to keep overhead to a single borrow per batch.
#[inline]
pub fn count_many(pairs: &[(&str, u64)]) {
    if !enabled() || pairs.iter().all(|(_, d)| *d == 0) {
        return;
    }
    let trace = trace_enabled();
    with_local(|l| {
        for &(name, delta) in pairs {
            if delta == 0 {
                continue;
            }
            l.tel.record_count(name, delta);
            if trace {
                push_event(l, EventKind::Counter, name, delta);
            }
        }
    });
}

/// Records one observation of `ns` into the named histogram.
#[inline]
pub fn observe(name: &str, ns: u64) {
    if !enabled() {
        return;
    }
    let trace = trace_enabled();
    with_local(|l| {
        l.tel.record_hist(name, ns);
        if trace {
            push_event(l, EventKind::Hist, name, ns);
        }
    });
}

/// A scoped span: created by [`span`], records its wall duration into
/// the named span statistic when dropped.
#[must_use = "a span measures the scope it lives in; drop it where the stage ends"]
pub struct SpanGuard {
    name: &'static str,
    start: Option<Instant>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let trace = trace_enabled();
        with_local(|l| {
            l.tel.record_span(self.name, ns);
            if trace {
                push_event(l, EventKind::Span, self.name, ns);
            }
        });
    }
}

/// Enters a named span; the returned guard records enter-to-drop wall
/// time (monotonic, via [`Instant`]). Inert when recording is disabled.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    SpanGuard { name, start: enabled().then(Instant::now) }
}

/// Takes everything this thread has recorded, leaving it empty.
pub fn drain() -> Telemetry {
    let mut out = Telemetry::default();
    with_local(|l| out = std::mem::take(&mut l.tel));
    out
}

/// Runs `f` with all telemetry it records collected into a private
/// bucket attributed to case `uuid`, returning `(result, bucket)`.
///
/// Whatever the thread had already recorded (generation-stage telemetry
/// on the main thread, a previous case's leftovers) is stashed before
/// `f` runs and restored after, so per-case buckets never absorb ambient
/// state and ambient state never loses observations. Event sequence
/// numbers restart at 0 for the case, which is what makes the trace
/// ordering replay-stable across thread counts.
pub fn with_case<R>(uuid: u64, f: impl FnOnce() -> R) -> (R, Telemetry) {
    let mut stash = Telemetry::default();
    let mut prev_case = 0u64;
    let mut prev_seq = 0u64;
    with_local(|l| {
        stash = std::mem::take(&mut l.tel);
        prev_case = std::mem::replace(&mut l.case, uuid);
        prev_seq = std::mem::replace(&mut l.seq, 0);
    });
    let result = f();
    let mut bucket = Telemetry::default();
    with_local(|l| {
        bucket = std::mem::replace(&mut l.tel, stash);
        l.case = prev_case;
        l.seq = prev_seq;
    });
    (result, bucket)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_case_isolates_and_restores_ambient_telemetry() {
        let _ = drain();
        count("ambient", 2);
        let ((), bucket) = with_case(7, || {
            count("inner", 5);
            let _s = span("work");
        });
        assert_eq!(bucket.counters.get("inner"), Some(&5));
        assert_eq!(bucket.counters.get("ambient"), None);
        assert_eq!(bucket.spans["work"].count, 1);
        let ambient = drain();
        assert_eq!(ambient.counters.get("ambient"), Some(&2));
        assert_eq!(ambient.counters.get("inner"), None);
    }

    #[test]
    fn disabled_recording_is_inert() {
        let _ = drain();
        set_enabled(false);
        count("c", 1);
        observe("h", 10);
        let _s = span("s");
        drop(_s);
        set_enabled(true);
        assert!(drain().is_empty());
    }

    #[test]
    fn trace_events_carry_case_and_restarting_seq() {
        let _ = drain();
        set_trace(true);
        let ((), a) = with_case(3, || {
            count("x", 1);
            count("y", 1);
        });
        let ((), b) = with_case(4, || count("z", 1));
        set_trace(false);
        let seqs: Vec<(u64, u64)> = a.events.iter().map(|e| (e.case, e.seq)).collect();
        assert_eq!(seqs, vec![(3, 0), (3, 1)]);
        assert_eq!(b.events[0].case, 4);
        assert_eq!(b.events[0].seq, 0, "seq restarts per case");
        let _ = drain();
    }

    #[test]
    fn count_many_batches_into_one_bucket() {
        let _ = drain();
        count_many(&[("a", 2), ("b", 0), ("c", 3)]);
        let t = drain();
        assert_eq!(t.counters.get("a"), Some(&2));
        assert_eq!(t.counters.get("b"), None, "zero deltas are not recorded");
        assert_eq!(t.counters.get("c"), Some(&3));
    }
}
