//! Predefined leaf rules — the fourth manual input of Fig. 3.
//!
//! Unconstrained traversal of the ABNF tree yields values like
//! `Host:\t!VAA2.:='i:22` — grammar-valid but "too distorted and easy to
//! be directly rejected by the target server" (§III-D). Predefined rules
//! pin representative values for selected leaf rules so the generated
//! seeds are realistic; the generator falls back to free traversal for
//! everything else.

use std::collections::BTreeMap;

/// Representative values per rule name (case-insensitive keys).
#[derive(Debug, Clone, Default)]
pub struct PredefinedRules {
    values: BTreeMap<String, Vec<Vec<u8>>>,
}

impl PredefinedRules {
    /// An empty table (pure grammar traversal).
    pub fn empty() -> PredefinedRules {
        PredefinedRules::default()
    }

    /// The default table used in the experiments.
    pub fn standard() -> PredefinedRules {
        let mut t = PredefinedRules::default();
        let entries: &[(&str, &[&str])] = &[
            ("IPv4address", &["127.0.0.1", "8.8.8.8"]),
            ("uri-host", &["h1.com", "h2.com", "example.com", "127.0.0.1"]),
            ("host", &["h1.com", "h2.com", "example.com"]),
            ("reg-name", &["h1.com", "h2.com"]),
            ("port", &["80", "8080"]),
            ("method", &["GET", "POST", "HEAD", "OPTIONS", "PUT"]),
            ("scheme", &["http", "https", "test"]),
            ("segment", &["index.html", "a", "test"]),
            ("query", &["a=1", "q=x"]),
            ("absolute-path", &["/", "/index.html", "/a/b"]),
            ("token", &["foo", "bar", "x-test"]),
            ("field-name", &["X-Custom", "X-Test"]),
            ("field-value", &["value", "1"]),
            ("transfer-coding", &["chunked", "gzip", "identity"]),
            ("chunk-size", &["3", "a", "0"]),
            ("chunk-data", &["abc", "hello"]),
            ("connection-option", &["close", "keep-alive"]),
            ("protocol-version", &["1.1"]),
            ("protocol-name", &["HTTP"]),
            ("pseudonym", &["proxy1"]),
            ("delta-seconds", &["60"]),
            ("delay-seconds", &["120"]),
            ("qdtext", &["q"]),
            ("OCTET", &["a"]),
            ("CHAR", &["a"]),
            ("VCHAR", &["a"]),
        ];
        for (name, vals) in entries {
            t.set(name, vals.iter().map(|v| v.as_bytes().to_vec()).collect());
        }
        // obs-text = %x80-FF: a single high byte, set directly because a
        // &str literal would UTF-8-encode it into two bytes.
        t.set("obs-text", vec![vec![0x80]]);
        t
    }

    /// Sets the representative values for a rule.
    pub fn set(&mut self, name: &str, values: Vec<Vec<u8>>) {
        self.values.insert(name.to_ascii_lowercase(), values);
    }

    /// The values for a rule, if predefined.
    pub fn get(&self, name: &str) -> Option<&[Vec<u8>]> {
        self.values.get(&name.to_ascii_lowercase()).map(Vec::as_slice)
    }

    /// Number of predefined rules.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no rules are predefined.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_table_has_representative_hosts() {
        let t = PredefinedRules::standard();
        let hosts = t.get("uri-host").unwrap();
        assert!(hosts.contains(&b"h1.com".to_vec()));
        assert!(t.get("IPV4ADDRESS").is_some(), "case-insensitive lookup");
        assert!(t.get("nothing").is_none());
    }

    #[test]
    fn empty_table() {
        assert!(PredefinedRules::empty().is_empty());
        assert_eq!(PredefinedRules::empty().len(), 0);
    }

    #[test]
    fn set_overrides() {
        let mut t = PredefinedRules::standard();
        t.set("port", vec![b"443".to_vec()]);
        assert_eq!(t.get("port").unwrap(), &[b"443".to_vec()]);
    }
}
