//! The mutation engine (§III-D).
//!
//! "To trigger possible processing discrepancies between different HTTP
//! servers, HDiff also introduces common mutations on the valid requests,
//! such as header repeating, inserting Unicode characters, header
//! encoding, and case variation. … We only apply several rounds of
//! mutations to each test case so that the changes make a small impact on
//! the format."
//!
//! Special characters follow Table II's `[sc]` legend: common whitespace
//! (`SP`, `HTAB`, `\x0b`, `\x0d`, `\x00`), grammatical characters
//! (`{ } < > @ , " $`) and Unicode bytes.

use hdiff_wire::{HeaderField, Request};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Table II's `[sc]` special characters.
pub const SPECIAL_CHARS: &[&[u8]] = &[
    b" ",
    b"\t",
    b"\x0b",
    b"\x0d",
    b"\x00",
    b"{",
    b"}",
    b"<",
    b">",
    b"@",
    b",",
    b"\"",
    b"$",
    b"\xc2\xa0",     // U+00A0 no-break space (UTF-8)
    b"\xe2\x80\x8b", // U+200B zero-width space
];

/// The mutation operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MutationKind {
    /// Duplicate an existing header with a different value.
    HeaderRepeat,
    /// Insert a special character before the header name.
    SpecialCharBeforeName,
    /// Insert a special character between name and colon.
    SpecialCharBeforeColon,
    /// Insert a special character right after the colon.
    SpecialCharAfterColon,
    /// Insert a special character inside the value.
    SpecialCharInValue,
    /// Randomly flip letter case in a header name.
    NameCaseVariation,
    /// Randomly flip letter case in the method token.
    MethodCaseVariation,
    /// Percent-encode one byte of the value (header encoding).
    ValuePercentEncode,
    /// Turn a header into an obs-fold continuation pair.
    ObsFold,
    /// Replace the HTTP version with a malformed/shifted token.
    VersionSwap,
}

impl MutationKind {
    /// All operators, for round-robin application.
    pub const ALL: [MutationKind; 10] = [
        MutationKind::HeaderRepeat,
        MutationKind::SpecialCharBeforeName,
        MutationKind::SpecialCharBeforeColon,
        MutationKind::SpecialCharAfterColon,
        MutationKind::SpecialCharInValue,
        MutationKind::NameCaseVariation,
        MutationKind::MethodCaseVariation,
        MutationKind::ValuePercentEncode,
        MutationKind::ObsFold,
        MutationKind::VersionSwap,
    ];
}

/// Version tokens used by [`MutationKind::VersionSwap`] — Table II's
/// invalid and lower/higher versions.
pub const VERSION_POOL: &[&[u8]] = &[
    b"1.1/HTTP",
    b"HTTP/3-1",
    b"hTTP/1.1",
    b"HTTP/0.9",
    b"HTTP/1.0",
    b"HTTP/2.0",
    b"HTTP/1.2",
    b"HTTP/11",
];

/// Seeded mutation engine.
#[derive(Debug)]
pub struct MutationEngine {
    rng: StdRng,
    /// Mutation rounds per case (the paper keeps this small).
    pub rounds: usize,
}

impl MutationEngine {
    /// Engine with a seed and the default small round count.
    pub fn new(seed: u64) -> MutationEngine {
        MutationEngine { rng: StdRng::seed_from_u64(seed), rounds: 2 }
    }

    /// Applies one specific mutation, returning a description of what was
    /// done (or `None` if the request has no applicable site).
    pub fn apply(&mut self, request: &mut Request, kind: MutationKind) -> Option<String> {
        match kind {
            MutationKind::HeaderRepeat => {
                let n = request.headers.len();
                if n == 0 {
                    return None;
                }
                let idx = self.rng.gen_range(0..n);
                let field = request.headers.iter().nth(idx)?.clone();
                let name = field.name_trimmed().to_vec();
                let mut value = field.value().to_vec();
                value.extend_from_slice(b".alt");
                request.headers.push(name.clone(), value);
                Some(format!("repeat header {}", String::from_utf8_lossy(&name)))
            }
            MutationKind::SpecialCharBeforeName
            | MutationKind::SpecialCharBeforeColon
            | MutationKind::SpecialCharAfterColon
            | MutationKind::SpecialCharInValue => self.special_char(request, kind),
            MutationKind::NameCaseVariation => {
                let n = request.headers.len();
                if n == 0 {
                    return None;
                }
                let idx = self.rng.gen_range(0..n);
                let field = request.headers.iter().nth(idx)?.clone();
                let mut raw = field.raw().to_vec();
                let flip = self.rng.gen_range(0..raw.len().max(1));
                for (i, b) in raw.iter_mut().enumerate() {
                    if i <= flip && b.is_ascii_alphabetic() {
                        *b ^= 0x20;
                    }
                    if *b == b':' {
                        break;
                    }
                }
                replace_header(request, idx, raw);
                Some("case variation in header name".to_string())
            }
            MutationKind::MethodCaseVariation => {
                let mut m = request.method_bytes().to_vec();
                if m.is_empty() {
                    return None;
                }
                let i = self.rng.gen_range(0..m.len());
                if m[i].is_ascii_alphabetic() {
                    m[i] ^= 0x20;
                }
                request.set_method(&m);
                Some("case variation in method".to_string())
            }
            MutationKind::ValuePercentEncode => {
                let n = request.headers.len();
                if n == 0 {
                    return None;
                }
                let idx = self.rng.gen_range(0..n);
                let field = request.headers.iter().nth(idx)?.clone();
                let value = field.value();
                if value.is_empty() {
                    return None;
                }
                let pos = self.rng.gen_range(0..value.len());
                let mut new_value = value[..pos].to_vec();
                new_value.extend_from_slice(format!("%{:02X}", value[pos]).as_bytes());
                new_value.extend_from_slice(&value[pos + 1..]);
                let mut raw = field.name_raw().to_vec();
                raw.extend_from_slice(b": ");
                raw.extend_from_slice(&new_value);
                replace_header(request, idx, raw);
                Some("percent-encode byte in value".to_string())
            }
            MutationKind::ObsFold => {
                // Only headers with a foldable (>=2 byte) value qualify.
                let eligible: Vec<usize> = request
                    .headers
                    .iter()
                    .enumerate()
                    .filter(|(_, f)| f.value().len() >= 2)
                    .map(|(i, _)| i)
                    .collect();
                if eligible.is_empty() {
                    return None;
                }
                let idx = eligible[self.rng.gen_range(0..eligible.len())];
                let field = request.headers.iter().nth(idx)?.clone();
                let value = field.value().to_vec();
                let split = value.len() / 2;
                let mut raw = field.name_raw().to_vec();
                raw.extend_from_slice(b": ");
                raw.extend_from_slice(&value[..split]);
                raw.extend_from_slice(b"\r\n ");
                raw.extend_from_slice(&value[split..]);
                replace_header(request, idx, raw);
                Some("obs-fold continuation".to_string())
            }
            MutationKind::VersionSwap => {
                let v = VERSION_POOL[self.rng.gen_range(0..VERSION_POOL.len())];
                request.set_version(v);
                Some(format!("version swapped to {}", String::from_utf8_lossy(v)))
            }
        }
    }

    fn special_char(&mut self, request: &mut Request, kind: MutationKind) -> Option<String> {
        let n = request.headers.len();
        if n == 0 {
            return None;
        }
        let idx = self.rng.gen_range(0..n);
        let sc = SPECIAL_CHARS[self.rng.gen_range(0..SPECIAL_CHARS.len())];
        let field = request.headers.iter().nth(idx)?.clone();
        let name = field.name_raw().to_vec();
        let value = field.value_raw().to_vec();
        let mut raw = Vec::new();
        match kind {
            MutationKind::SpecialCharBeforeName => {
                raw.extend_from_slice(sc);
                raw.extend_from_slice(&name);
                raw.push(b':');
                raw.extend_from_slice(&value);
            }
            MutationKind::SpecialCharBeforeColon => {
                raw.extend_from_slice(&name);
                raw.extend_from_slice(sc);
                raw.push(b':');
                raw.extend_from_slice(&value);
            }
            MutationKind::SpecialCharAfterColon => {
                raw.extend_from_slice(&name);
                raw.push(b':');
                raw.extend_from_slice(sc);
                raw.extend_from_slice(&value);
            }
            MutationKind::SpecialCharInValue => {
                raw.extend_from_slice(&name);
                raw.push(b':');
                if value.is_empty() {
                    raw.extend_from_slice(sc);
                } else {
                    let pos = self.rng.gen_range(0..value.len());
                    raw.extend_from_slice(&value[..pos]);
                    raw.extend_from_slice(sc);
                    raw.extend_from_slice(&value[pos..]);
                }
            }
            _ => unreachable!("non-special-char kind"),
        }
        replace_header(request, idx, raw);
        Some(format!("{kind:?} with {:?}", String::from_utf8_lossy(sc)))
    }

    /// Applies up to `rounds` random mutations, returning descriptions.
    pub fn mutate(&mut self, request: &mut Request) -> Vec<String> {
        let rounds = self.rounds;
        let mut notes = Vec::new();
        for _ in 0..rounds {
            let kind = MutationKind::ALL[self.rng.gen_range(0..MutationKind::ALL.len())];
            if let Some(note) = self.apply(request, kind) {
                notes.push(note);
            }
        }
        notes
    }
}

fn replace_header(request: &mut Request, idx: usize, raw: Vec<u8>) {
    let fields: Vec<HeaderField> = request
        .headers
        .iter()
        .enumerate()
        .map(|(i, f)| if i == idx { HeaderField::from_raw(raw.clone()) } else { f.clone() })
        .collect();
    request.headers = fields.into_iter().collect();
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdiff_wire::{Method, Request, Version};

    fn base() -> Request {
        Request::builder()
            .method(Method::Post)
            .target("/a")
            .version(Version::Http11)
            .header("Host", "h1.com")
            .header("Content-Length", "3")
            .body(b"abc".to_vec())
            .build()
    }

    #[test]
    fn header_repeat_duplicates() {
        let mut e = MutationEngine::new(1);
        let mut r = base();
        let note = e.apply(&mut r, MutationKind::HeaderRepeat).unwrap();
        assert!(note.starts_with("repeat header"));
        assert_eq!(r.headers.len(), 3);
    }

    #[test]
    fn special_char_before_colon_breaks_strictness() {
        let mut e = MutationEngine::new(2);
        let mut r = base();
        e.apply(&mut r, MutationKind::SpecialCharBeforeColon).unwrap();
        let any_ws = r.headers.iter().any(|f| !f.name_is_strict());
        assert!(any_ws, "{:?}", r.to_bytes());
    }

    #[test]
    fn version_swap_uses_pool() {
        let mut e = MutationEngine::new(3);
        let mut r = base();
        e.apply(&mut r, MutationKind::VersionSwap).unwrap();
        assert!(VERSION_POOL.contains(&r.version_bytes()));
    }

    #[test]
    fn obs_fold_inserts_continuation() {
        let mut e = MutationEngine::new(4);
        let mut r = base();
        e.apply(&mut r, MutationKind::ObsFold).unwrap();
        assert!(r.to_bytes().windows(3).any(|w| w == b"\r\n " || w == b"\r\n\t"));
    }

    #[test]
    fn mutate_applies_bounded_rounds() {
        let mut e = MutationEngine::new(5);
        let mut r = base();
        let notes = e.mutate(&mut r);
        assert!(notes.len() <= e.rounds);
    }

    #[test]
    fn mutations_never_panic_on_minimal_request() {
        let mut e = MutationEngine::new(6);
        for kind in MutationKind::ALL {
            let mut r = Request::builder().build(); // no headers at all
            let _ = e.apply(&mut r, kind);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut e = MutationEngine::new(seed);
            let mut r = base();
            e.mutate(&mut r);
            r.to_bytes()
        };
        assert_eq!(run(9), run(9));
    }

    #[test]
    fn percent_encode_changes_value() {
        let mut e = MutationEngine::new(7);
        let mut r = base();
        e.apply(&mut r, MutationKind::ValuePercentEncode).unwrap();
        assert!(r.to_bytes().contains(&b'%'));
    }
}
