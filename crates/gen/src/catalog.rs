//! The attack-vector catalog — Table II of the paper, as executable data.
//!
//! Each entry names a semantic-gap vector, the message element it abuses,
//! the attack classes it can enable, and concrete example requests. The
//! catalog is what the `table2_attack_examples` harness regenerates, and
//! the differential engine uses it for targeted sweeps.

use std::fmt;

use hdiff_wire::{encode_chunked, Method, Request, Version};

/// The three semantic gap attacks HDiff detects.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub enum AttackClass {
    /// HTTP Request Smuggling.
    Hrs,
    /// Host of Troubles.
    Hot,
    /// Cache-Poisoned Denial of Service.
    Cpdos,
}

impl AttackClass {
    /// All classes.
    pub const ALL: [AttackClass; 3] = [AttackClass::Hrs, AttackClass::Hot, AttackClass::Cpdos];
}

impl fmt::Display for AttackClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttackClass::Hrs => f.write_str("HRS"),
            AttackClass::Hot => f.write_str("HoT"),
            AttackClass::Cpdos => f.write_str("CPDoS"),
        }
    }
}

/// Which message element a catalog row abuses (Table II's first column).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FieldGroup {
    /// The request line.
    RequestLine,
    /// A header field.
    HeaderField,
    /// The message body.
    MessageBody,
}

impl fmt::Display for FieldGroup {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldGroup::RequestLine => f.write_str("Request-Line"),
            FieldGroup::HeaderField => f.write_str("Header-field"),
            FieldGroup::MessageBody => f.write_str("Message-body"),
        }
    }
}

/// One Table II row.
#[derive(Debug, Clone)]
pub struct CatalogEntry {
    /// Stable identifier (`invalid-http-version`).
    pub id: &'static str,
    /// The abused message element.
    pub group: FieldGroup,
    /// Table II's description column.
    pub description: &'static str,
    /// Attack classes this vector can enable.
    pub classes: Vec<AttackClass>,
    /// Concrete example requests (payload, note).
    pub requests: Vec<(Request, String)>,
}

fn req() -> hdiff_wire::RequestBuilder {
    let mut b = Request::builder();
    b.method(Method::Get).target("/").version(Version::Http11).header("Host", "h1.com");
    b
}

fn post_body(body: &[u8]) -> hdiff_wire::RequestBuilder {
    let mut b = Request::builder();
    b.method(Method::Post)
        .target("/")
        .version(Version::Http11)
        .header("Host", "h1.com")
        .body(body.to_vec());
    b
}

/// Builds the full Table II catalog (14 vectors, including the three the
/// paper reports as novel: HTTP-version HRS/CPDoS and the Expect header).
pub fn catalog() -> Vec<CatalogEntry> {
    let mut out = Vec::new();

    // ---- Request-Line ----------------------------------------------------
    out.push(CatalogEntry {
        id: "invalid-http-version",
        group: FieldGroup::RequestLine,
        description: "Invalid HTTP-version",
        classes: vec![AttackClass::Cpdos],
        requests: [b"1.1/HTTP".as_slice(), b"HTTP/3-1", b"hTTP/1.1"]
            .iter()
            .map(|v| {
                (req().version_raw(v).build(), format!("version={}", String::from_utf8_lossy(v)))
            })
            .collect(),
    });

    let shifted = vec![
        (req().version(Version::Http09).build(), "HTTP/0.9 with headers".to_string()),
        (
            post_body(&encode_chunked(b"abc"))
                .version(Version::Http10)
                .header("Transfer-Encoding", "chunked")
                .build(),
            "HTTP/1.0 with chunked".to_string(),
        ),
        (req().version(Version::Http20).build(), "HTTP/2.0 token".to_string()),
    ];
    out.push(CatalogEntry {
        id: "shifted-http-version",
        group: FieldGroup::RequestLine,
        description: "lower/higher HTTP-version",
        classes: vec![AttackClass::Hrs, AttackClass::Cpdos],
        requests: shifted,
    });

    let mut absuri = Vec::new();
    absuri.push((
        req().target("test://h2.com/?a=1").build(),
        "non-http scheme absolute-URI vs Host".to_string(),
    ));
    absuri.push((
        req().target("http://h1@h2.com/").build(),
        "userinfo in absolute-URI authority".to_string(),
    ));
    {
        let mut b = Request::builder();
        b.method(Method::Get).target("http://h2.com/").version(Version::Http11);
        absuri.push((b.build(), "http absolute-URI without Host header".to_string()));
    }
    out.push(CatalogEntry {
        id: "bad-absolute-uri",
        group: FieldGroup::RequestLine,
        description: "Bad absolute-URI vs Host",
        classes: vec![AttackClass::Hot],
        requests: absuri,
    });

    out.push(CatalogEntry {
        id: "fat-head-get",
        group: FieldGroup::RequestLine,
        description: "Fat HEAD/GET request",
        classes: vec![AttackClass::Hrs, AttackClass::Cpdos],
        requests: vec![
            (
                req().header("Content-Length", "17").body(b"GET /x HTTP/1.1\r\n".to_vec()).build(),
                "GET with message-body".to_string(),
            ),
            (
                {
                    let mut b = Request::builder();
                    b.method(Method::Head)
                        .target("/")
                        .version(Version::Http11)
                        .header("Host", "h1.com")
                        .header("Content-Length", "5")
                        .body(b"hello".to_vec());
                    b.build()
                },
                "HEAD with message-body".to_string(),
            ),
        ],
    });

    // ---- Header-field ----------------------------------------------------
    let mut invalid_clte = Vec::new();
    for (raw, note) in [
        (&b"Content-Length: +6"[..], "CL +6"),
        (b"Content-Length: 6,9", "CL 6,9"),
        (b"Content-Length:\x0b9", "CL [sc]9"),
        (b"Transfer-Encoding:\x0bchunked", "TE value [sc]chunked"),
        (b"Transfer-Encoding : chunked", "ws before colon TE"),
        (b"\x0bTransfer-Encoding: chunked", "[sc] before TE name"),
    ] {
        let is_te = note.contains("TE") || note.contains("colon");
        let body: Vec<u8> = if is_te { encode_chunked(b"smuggl") } else { b"smuggl".to_vec() };
        invalid_clte.push((
            {
                let mut b = Request::builder();
                b.method(Method::Post)
                    .target("/")
                    .version(Version::Http11)
                    .header("Host", "h1.com")
                    .header_raw(raw.to_vec())
                    .body(body);
                b.build()
            },
            note.to_string(),
        ));
    }
    out.push(CatalogEntry {
        id: "invalid-cl-te",
        group: FieldGroup::HeaderField,
        description: "Invalid CL/TE header",
        classes: vec![AttackClass::Hrs],
        requests: invalid_clte,
    });

    let mut multiple_clte = Vec::new();
    multiple_clte.push((
        post_body(b"0123456789")
            .header("Content-Length", "10")
            .header("Content-Length", "0")
            .build(),
        "two differing CL".to_string(),
    ));
    multiple_clte.push((
        {
            let mut b = Request::builder();
            b.method(Method::Post)
                .target("/")
                .version(Version::Http11)
                .header("Host", "h1.com")
                .header("Content-Length", "10")
                .header_raw(b"Transfer-Encoding\x0b: chunked".to_vec())
                .body(encode_chunked(b"x"));
            b.build()
        },
        "CL plus TE with [sc] before colon".to_string(),
    ));
    multiple_clte.push((
        post_body(&encode_chunked(b"x"))
            .header("Content-Length", "3")
            .header("Transfer-Encoding", "chunked")
            .build(),
        "plain CL plus TE".to_string(),
    ));
    multiple_clte.push((
        post_body(&encode_chunked(b"x"))
            .header("Transfer-Encoding", "chunked")
            .header("Transfer-Encoding", "chunked")
            .build(),
        "repeated Transfer-Encoding headers (CVE-2020-1944 class)".to_string(),
    ));
    out.push(CatalogEntry {
        id: "multiple-cl-te",
        group: FieldGroup::HeaderField,
        description: "Multiple CL/TE headers",
        classes: vec![AttackClass::Hrs],
        requests: multiple_clte,
    });

    let mut invalid_host = Vec::new();
    for (value, note) in [
        (&b"h1.com@h2.com"[..], "userinfo ambiguity"),
        (b"h1.com, h2.com", "comma list"),
        (b"h1.com/.//test?", "path-looking suffix"),
    ] {
        let mut b = Request::builder();
        b.method(Method::Get).target("/").version(Version::Http11).header("Host", value);
        invalid_host.push((b.build(), note.to_string()));
    }
    {
        let mut b = Request::builder();
        b.method(Method::Get)
            .target("/")
            .version(Version::Http11)
            .header_raw(b"Host\x0b: h1.com".to_vec());
        invalid_host.push((b.build(), "[sc] before colon in Host".to_string()));
    }
    out.push(CatalogEntry {
        id: "invalid-host",
        group: FieldGroup::HeaderField,
        description: "Invalid Host header",
        classes: vec![AttackClass::Hot, AttackClass::Cpdos],
        requests: invalid_host,
    });

    out.push(CatalogEntry {
        id: "multiple-host",
        group: FieldGroup::HeaderField,
        description: "Multiple Host headers",
        classes: vec![AttackClass::Hot],
        requests: vec![
            (
                {
                    let mut b = Request::builder();
                    b.method(Method::Get)
                        .target("/")
                        .version(Version::Http11)
                        .header_raw(b"\x0bHost: h1.com".to_vec())
                        .header("Host", "h2.com");
                    b.build()
                },
                "[sc]Host + Host".to_string(),
            ),
            (req().header("Host", "h2.com").build(), "two plain Host headers".to_string()),
        ],
    });

    out.push(CatalogEntry {
        id: "hop-by-hop",
        group: FieldGroup::HeaderField,
        description: "Hop-by-Hop headers",
        classes: vec![AttackClass::Cpdos],
        requests: vec![
            (
                req().header("Connection", "close, Host").build(),
                "Connection nominates Host for removal".to_string(),
            ),
            (
                req().header("Cookie", "session=1").header("Connection", "Cookie").build(),
                "Connection nominates Cookie".to_string(),
            ),
        ],
    });

    out.push(CatalogEntry {
        id: "expect",
        group: FieldGroup::HeaderField,
        description: "Expect header",
        classes: vec![AttackClass::Hrs, AttackClass::Cpdos],
        requests: vec![
            (
                req().header("Expect", "100-continue").build(),
                "Expect 100-continue in GET".to_string(),
            ),
            (
                req().header("Expect", "100-continuce").build(),
                "misspelled expectation value".to_string(),
            ),
        ],
    });

    out.push(CatalogEntry {
        id: "obs-fold-host",
        group: FieldGroup::HeaderField,
        description: "Obs-fold header",
        classes: vec![AttackClass::Hot],
        requests: vec![(
            {
                let mut b = Request::builder();
                b.method(Method::Get)
                    .target("/")
                    .version(Version::Http11)
                    .header_raw(b"Host: h1.com\r\n\th2.com".to_vec());
                b.build()
            },
            "obs-fold continuation carrying a second host".to_string(),
        )],
    });

    out.push(CatalogEntry {
        id: "obsolete-te",
        group: FieldGroup::HeaderField,
        description: "Obsoleted header or value",
        classes: vec![AttackClass::Hrs, AttackClass::Cpdos],
        requests: vec![(
            post_body(&encode_chunked(b"abc"))
                .header("Transfer-Encoding", "chunked, identity")
                .build(),
            "obsolete identity coding after chunked".to_string(),
        )],
    });

    // ---- Message-body ----------------------------------------------------
    out.push(CatalogEntry {
        id: "bad-chunk-size",
        group: FieldGroup::MessageBody,
        description: "Bad chunk-size value",
        classes: vec![AttackClass::Hrs],
        requests: vec![
            (
                post_body(b"1000000000000000a\r\nabc\r\n0\r\n\r\n")
                    .header("Transfer-Encoding", "chunked")
                    .build(),
                "overflowing chunk-size (wraps to 10)".to_string(),
            ),
            (
                post_body(b"0xfgh\r\nabc\r\n0\r\n\r\n")
                    .header("Transfer-Encoding", "chunked")
                    .build(),
                "invalid hex chunk-size 0xfgh".to_string(),
            ),
        ],
    });

    out.push(CatalogEntry {
        id: "nul-chunk-data",
        group: FieldGroup::MessageBody,
        description: "NULL in chunk-data",
        classes: vec![AttackClass::Hrs],
        requests: vec![(
            post_body(b"3\r\na\x00c\r\n0\r\n\r\n").header("Transfer-Encoding", "chunked").build(),
            "NUL byte inside chunk-data".to_string(),
        )],
    });

    out
}

/// Looks up a catalog entry by id.
pub fn entry(id: &str) -> Option<CatalogEntry> {
    catalog().into_iter().find(|e| e.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fourteen_vectors_like_table2() {
        let c = catalog();
        assert_eq!(c.len(), 14);
        // Every class is covered by at least one vector.
        for class in AttackClass::ALL {
            assert!(c.iter().any(|e| e.classes.contains(&class)), "{class}");
        }
    }

    #[test]
    fn every_entry_has_payloads() {
        for e in catalog() {
            assert!(!e.requests.is_empty(), "{} has no payloads", e.id);
            for (r, note) in &e.requests {
                assert!(!r.to_bytes().is_empty(), "{id}: {note}", id = e.id);
            }
        }
    }

    #[test]
    fn novel_vectors_present() {
        // The paper's three new attack vectors.
        for id in ["invalid-http-version", "shifted-http-version", "expect"] {
            assert!(entry(id).is_some(), "{id}");
        }
    }

    #[test]
    fn invalid_versions_serialize_verbatim() {
        let e = entry("invalid-http-version").unwrap();
        let all: Vec<Vec<u8>> = e.requests.iter().map(|(r, _)| r.to_bytes()).collect();
        assert!(all.iter().any(|b| b.windows(8).any(|w| w == b"1.1/HTTP")));
    }

    #[test]
    fn multiple_host_really_has_two_hosts() {
        let e = entry("multiple-host").unwrap();
        for (r, note) in &e.requests {
            // The [sc]Host variant is deliberately not a canonical Host
            // header — count raw occurrences of the name on the wire.
            let bytes = r.to_bytes();
            let hosts = bytes.windows(5).filter(|w| w.eq_ignore_ascii_case(b"Host:")).count();
            assert!(hosts >= 2, "{note}: {hosts} in {:?}", String::from_utf8_lossy(&bytes));
        }
    }

    #[test]
    fn groups_cover_table2_rows() {
        let c = catalog();
        assert!(c.iter().any(|e| e.group == FieldGroup::RequestLine));
        assert!(c.iter().any(|e| e.group == FieldGroup::HeaderField));
        assert!(c.iter().any(|e| e.group == FieldGroup::MessageBody));
    }
}
