//! Test cases: a request plus optional assertions and provenance.

use std::fmt;

use hdiff_sr::{Expectation, Modality, Role};
use hdiff_wire::Request;

/// Where a test case came from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Origin {
    /// Translated from a formal SR.
    Sr(String),
    /// Free generation from the ABNF grammar (plus mutations).
    Abnf,
    /// A named catalog attack vector (Table II).
    Catalog(String),
}

impl fmt::Display for Origin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Origin::Sr(id) => write!(f, "sr:{id}"),
            Origin::Abnf => f.write_str("abnf"),
            Origin::Catalog(name) => write!(f, "catalog:{name}"),
        }
    }
}

/// An expectation bound to a role — "any implementation acting as `role`
/// must behave like `expect` on this request, per SR `sr_id`".
#[derive(Debug, Clone, PartialEq)]
pub struct Assertion {
    /// The role the assertion binds.
    pub role: Role,
    /// Requirement strength (violations of SHOULD are advisory).
    pub modality: Modality,
    /// The checkable expectation.
    pub expect: Expectation,
    /// Originating SR id.
    pub sr_id: String,
}

/// A generated test case.
#[derive(Debug, Clone, PartialEq)]
pub struct TestCase {
    /// Unique id (the paper associates a UUID with every request).
    pub uuid: u64,
    /// The request to send.
    pub request: Request,
    /// Assertions, if the case came from an SR.
    pub assertions: Vec<Assertion>,
    /// Provenance.
    pub origin: Origin,
    /// Human-readable note (mutation applied, catalog row, …).
    pub note: String,
}

impl TestCase {
    /// Builds a plain generated case with no assertions.
    pub fn generated(uuid: u64, request: Request, note: impl Into<String>) -> TestCase {
        TestCase { uuid, request, assertions: Vec::new(), origin: Origin::Abnf, note: note.into() }
    }

    /// Whether the case carries SR assertions (it can check a *single*
    /// implementation against the spec, not just pairs — the paper's
    /// advantage over plain differential testing).
    pub fn has_assertions(&self) -> bool {
        !self.assertions.is_empty()
    }
}

impl fmt::Display for TestCase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{} [{}] {}", self.uuid, self.origin, self.note)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_flags() {
        let tc = TestCase::generated(7, Request::get("h1.com"), "seed");
        assert!(!tc.has_assertions());
        assert_eq!(tc.to_string(), "#7 [abnf] seed");
        assert_eq!(Origin::Sr("a".into()).to_string(), "sr:a");
        assert_eq!(Origin::Catalog("fat-get".into()).to_string(), "catalog:fat-get");
    }
}
