//! The SR translator (§III-D): formal SRs → test cases with assertions.
//!
//! "The SR translator would translate the SR previously extracted in the
//! documentation analyzer module into test cases with assertions. If the
//! protocol implementation violates the assertion in the testing phase,
//! we believe that the target implementation violates the specification."
//!
//! Each message-description condition maps to a generation strategy via
//! the SR semantic definitions; each role action maps to a checkable
//! expectation bound as an [`Assertion`].

use hdiff_sr::{FieldState, GenStrategy, MessageField, SemanticDefinitions, SpecRequirement};
use hdiff_wire::{encode_chunked, Method, Request, Version};

use crate::generator::AbnfGenerator;
use crate::testcase::{Assertion, Origin, TestCase};

/// Canned grammar-invalid values per header (the "slight distortions" the
/// paper derives by mutating the ABNF tree).
fn invalid_values(field: &str) -> Vec<&'static [u8]> {
    match field.to_ascii_lowercase().as_str() {
        "host" => vec![
            b"h1.com@h2.com",
            b"h1.com, h2.com",
            b"h1.com/.//test?",
            b"h1 h2.com",
            b"h1..com:80:80",
        ],
        "content-length" => vec![b"+6", b"6,9", b"0x10", b"-1", b"ten"],
        "transfer-encoding" => vec![
            b"\x0bchunked",
            b"xchunked",
            b"chunked, identity",
            b"chunked, gzip",
            b"CHUNKED\x0b",
        ],
        "expect" => vec![b"100-continuce", b"200-continue", b"tomorrow"],
        "connection" => vec![b"close, Host", b"Cookie"],
        _ => vec![b"\x0bvalue", b"a\x00b", b"{bad}"],
    }
}

/// The translator.
#[derive(Debug)]
pub struct SrTranslator {
    generator: AbnfGenerator,
    defs: SemanticDefinitions,
    /// Variants generated per (SR, strategy) combination.
    pub variants: usize,
    next_uuid: u64,
}

impl SrTranslator {
    /// Builds a translator over an adapted-grammar generator.
    pub fn new(generator: AbnfGenerator) -> SrTranslator {
        SrTranslator { generator, defs: SemanticDefinitions::new(), variants: 3, next_uuid: 1 }
    }

    /// Translates a batch of SRs.
    pub fn translate_all(&mut self, srs: &[SpecRequirement]) -> Vec<TestCase> {
        srs.iter().flat_map(|sr| self.translate(sr)).collect()
    }

    /// Translates one SR into test cases with assertions.
    pub fn translate(&mut self, sr: &SpecRequirement) -> Vec<TestCase> {
        // Response-side requirements ("… obs-fold in a response message …")
        // cannot be exercised by sending requests; skip them.
        let sentence = sr.sentence.to_ascii_lowercase();
        if sentence.contains("response message") || sentence.contains("in a response") {
            return Vec::new();
        }
        let mut out = Vec::new();
        for variant in 0..self.variants {
            if let Some((request, note)) = self.build_request(sr, variant) {
                let uuid = self.next_uuid;
                self.next_uuid += 1;
                out.push(TestCase {
                    uuid,
                    request,
                    assertions: vec![Assertion {
                        role: sr.role,
                        modality: sr.modality,
                        expect: self.defs.expectation(&sr.action),
                        sr_id: sr.id.clone(),
                    }],
                    origin: Origin::Sr(sr.id.clone()),
                    note,
                });
            }
        }
        out
    }

    /// Builds the `variant`-th request realizing all of the SR's
    /// conditions. Returns `None` when a condition cannot be realized for
    /// this variant (e.g. fewer canned invalid values than variants).
    fn build_request(&mut self, sr: &SpecRequirement, variant: usize) -> Option<(Request, String)> {
        let mut b = Request::builder();
        b.method(Method::Get).target("/").version(Version::Http11);
        let mut request = b.build();
        request.headers.push("Host", "h1.com");
        let mut notes = Vec::new();
        let mut body_set = false;

        for cond in &sr.conditions {
            let strategy = self.defs.strategy(cond.state);
            match (&cond.field, strategy) {
                (MessageField::Header(name), strategy) => {
                    self.apply_header(
                        &mut request,
                        name,
                        strategy,
                        variant,
                        &mut notes,
                        &mut body_set,
                    )?;
                }
                (MessageField::Chunked, _) => {
                    request.set_method(b"POST");
                    request.headers.set("Transfer-Encoding", "chunked");
                    request.body = encode_chunked(b"abc");
                    body_set = true;
                    notes.push("chunked body".to_string());
                }
                (MessageField::HttpVersion, s) => {
                    let v: &[u8] = match s {
                        GenStrategy::MutateInvalid => {
                            [b"1.1/HTTP".as_slice(), b"HTTP/3-1", b"hTTP/1.1"][variant % 3]
                        }
                        _ => {
                            if cond.state == FieldState::Valid {
                                b"HTTP/1.0"
                            } else {
                                b"HTTP/1.1"
                            }
                        }
                    };
                    request.set_version(v);
                    notes.push(format!("version {}", String::from_utf8_lossy(v)));
                }
                (MessageField::RequestLine, GenStrategy::MutateInvalid) => {
                    request.set_raw_request_line(b"GET /  HTTP/1.1".to_vec());
                    notes.push("malformed request line".to_string());
                }
                (MessageField::MessageBody, _) => {
                    if !body_set {
                        request.body = b"abc".to_vec();
                        request.headers.set("Content-Length", "3");
                        body_set = true;
                        notes.push("body on GET".to_string());
                    }
                }
                (MessageField::Method, _)
                | (MessageField::RequestTarget, _)
                | (MessageField::RequestLine, _) => {
                    // Covered by the generic valid seed.
                }
            }
        }

        // Framing fix-up: a Content-Length header that should be valid must
        // match the body we actually carry.
        if !body_set {
            if let Some(cl) = request.headers.first(b"Content-Length") {
                if hdiff_wire::ascii::parse_dec_strict(cl.value()).is_some() {
                    let n = cl.value().to_vec();
                    if let Some(len) = hdiff_wire::ascii::parse_dec_strict(&n) {
                        request.body = vec![b'x'; usize::try_from(len.min(64)).expect("capped")];
                        if len > 64 {
                            request.headers.set("Content-Length", "64");
                        }
                    }
                }
            }
        }

        Some((request, notes.join("; ")))
    }

    #[allow(clippy::too_many_arguments)]
    fn apply_header(
        &mut self,
        request: &mut Request,
        name: &str,
        strategy: GenStrategy,
        variant: usize,
        notes: &mut Vec<String>,
        body_set: &mut bool,
    ) -> Option<()> {
        // "*" means "any header": realize on the Host header, which every
        // seed carries.
        let target = if name == "*" { "Host" } else { name };
        let is_te = target.eq_ignore_ascii_case("Transfer-Encoding");
        let is_cl = target.eq_ignore_ascii_case("Content-Length");

        match strategy {
            GenStrategy::UseValid => {
                let value = self.valid_value(target, request, body_set);
                request.headers.set(target, &value);
                notes.push(format!("{target} valid"));
            }
            GenStrategy::Omit => {
                request.headers.remove(target.as_bytes());
                notes.push(format!("{target} absent"));
            }
            GenStrategy::MutateInvalid => {
                let values = invalid_values(target);
                let value = values.get(variant % values.len())?;
                request.headers.remove(target.as_bytes());
                request.headers.push(target, value);
                if is_te {
                    request.set_method(b"POST");
                    request.body = encode_chunked(b"abc");
                    *body_set = true;
                } else if is_cl {
                    request.set_method(b"POST");
                    request.body = b"abcdef".to_vec();
                    *body_set = true;
                }
                notes.push(format!("{target} invalid {:?}", String::from_utf8_lossy(value)));
            }
            GenStrategy::Repeat => {
                let value = self.valid_value(target, request, body_set);
                request.headers.set(target, &value);
                let alt: Vec<u8> = if target.eq_ignore_ascii_case("Host") {
                    b"h2.com".to_vec()
                } else if is_cl {
                    b"0".to_vec()
                } else {
                    let mut v = value.clone();
                    v.extend_from_slice(b".alt");
                    v
                };
                request.headers.push(target, alt);
                notes.push(format!("{target} repeated"));
            }
            GenStrategy::EmptyValue => {
                request.headers.set(target, "");
                notes.push(format!("{target} empty"));
            }
            GenStrategy::Oversize => {
                let big = vec![b'a'; 16 * 1024];
                request.headers.set(target, &big);
                notes.push(format!("{target} oversized"));
            }
            GenStrategy::SpaceBeforeColon => {
                let value = self.valid_value(target, request, body_set);
                request.headers.remove(target.as_bytes());
                let mut raw = target.as_bytes().to_vec();
                raw.extend_from_slice(b" : ");
                raw.extend_from_slice(&value);
                request.headers.push_raw(raw);
                notes.push(format!("whitespace before colon in {target}"));
            }
            GenStrategy::AddConflict => {
                // The canonical conflict: CL together with TE chunked.
                request.set_method(b"POST");
                request.headers.set("Content-Length", "3");
                request.headers.set("Transfer-Encoding", "chunked");
                request.body = encode_chunked(b"abc");
                *body_set = true;
                notes.push("CL+TE conflict".to_string());
            }
        }
        Some(())
    }

    fn valid_value(&mut self, field: &str, request: &mut Request, body_set: &mut bool) -> Vec<u8> {
        match field.to_ascii_lowercase().as_str() {
            "host" => b"h1.com".to_vec(),
            "content-length" => {
                request.body = b"abc".to_vec();
                *body_set = true;
                b"3".to_vec()
            }
            "transfer-encoding" => {
                request.set_method(b"POST");
                request.body = encode_chunked(b"abc");
                *body_set = true;
                b"chunked".to_vec()
            }
            "expect" => b"100-continue".to_vec(),
            "connection" => b"close".to_vec(),
            other => self
                .generator
                .generate(other)
                .filter(|v| !v.is_empty() && v.len() < 128)
                .unwrap_or_else(|| b"value".to_vec()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::GenOptions;
    use hdiff_abnf::{parse_rulelist, Grammar};
    use hdiff_sr::{MessageDescription, Modality, Role, RoleAction};

    fn translator() -> SrTranslator {
        let grammar = Grammar::from_rules(
            "t",
            parse_rulelist("Host = 1*ALPHA\nExpect = \"100-continue\"\n").unwrap(),
        );
        SrTranslator::new(AbnfGenerator::new(grammar, GenOptions::default()))
    }

    fn sr(conditions: Vec<MessageDescription>, action: RoleAction) -> SpecRequirement {
        SpecRequirement {
            id: "test:sr0".into(),
            source: "test".into(),
            section: String::new(),
            sentence: "test sentence".into(),
            role: Role::Server,
            modality: Modality::Must,
            conditions,
            action,
        }
    }

    #[test]
    fn host_absent_sr_yields_hostless_requests() {
        let mut t = translator();
        let cases = t.translate(&sr(
            vec![MessageDescription::header("Host", FieldState::Absent)],
            RoleAction::Respond(400),
        ));
        assert_eq!(cases.len(), 3);
        for c in &cases {
            assert!(c.request.host().is_none(), "{}", c.request);
            assert!(c.has_assertions());
            assert_eq!(c.assertions[0].expect.allowed_status, vec![400]);
        }
    }

    #[test]
    fn invalid_host_variants_differ() {
        let mut t = translator();
        let cases = t.translate(&sr(
            vec![MessageDescription::header("Host", FieldState::Invalid)],
            RoleAction::Respond(400),
        ));
        let hosts: Vec<Vec<u8>> =
            cases.iter().filter_map(|c| c.request.host().map(<[u8]>::to_vec)).collect();
        assert_eq!(hosts.len(), 3);
        assert!(hosts.contains(&b"h1.com@h2.com".to_vec()), "{hosts:?}");
        let set: std::collections::BTreeSet<_> = hosts.iter().collect();
        assert_eq!(set.len(), 3, "variants must differ");
    }

    #[test]
    fn multiple_host_sr() {
        let mut t = translator();
        let cases = t.translate(&sr(
            vec![MessageDescription::header("Host", FieldState::Multiple)],
            RoleAction::Respond(400),
        ));
        for c in &cases {
            assert_eq!(c.request.headers.count(b"Host"), 2);
        }
    }

    #[test]
    fn conflict_sr_builds_cl_plus_te() {
        let mut t = translator();
        let cases = t.translate(&sr(
            vec![MessageDescription::header("Transfer-Encoding", FieldState::Conflicting)],
            RoleAction::Reject,
        ));
        for c in &cases {
            assert_eq!(c.request.content_lengths().len(), 1);
            assert_eq!(c.request.transfer_encodings().len(), 1);
        }
    }

    #[test]
    fn ws_colon_sr_produces_nonstrict_header() {
        let mut t = translator();
        let cases = t.translate(&sr(
            vec![MessageDescription::header("*", FieldState::MalformedSpacing)],
            RoleAction::Respond(400),
        ));
        for c in &cases {
            assert!(c.request.headers.iter().any(|f| f.has_ws_before_colon()), "{}", c.request);
        }
    }

    #[test]
    fn chunked_condition_sets_body() {
        let mut t = translator();
        let cases = t.translate(&sr(
            vec![MessageDescription::new(MessageField::Chunked, FieldState::Present)],
            RoleAction::Accept,
        ));
        for c in &cases {
            assert!(c.request.body.ends_with(b"0\r\n\r\n"));
        }
    }

    #[test]
    fn uuids_are_unique_across_translations() {
        let mut t = translator();
        let a = t.translate(&sr(
            vec![MessageDescription::header("Host", FieldState::Absent)],
            RoleAction::Respond(400),
        ));
        let b = t.translate(&sr(
            vec![MessageDescription::header("Host", FieldState::Multiple)],
            RoleAction::Respond(400),
        ));
        let mut ids: Vec<u64> = a.iter().chain(b.iter()).map(|c| c.uuid).collect();
        let n = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), n);
    }

    #[test]
    fn translate_all_over_real_pipeline_output() {
        let out = hdiff_analyzer::DocumentAnalyzer::with_default_inputs()
            .analyze(&hdiff_corpus::core_documents());
        let gen = AbnfGenerator::new(out.grammar.clone(), GenOptions::default());
        let mut t = SrTranslator::new(gen);
        let cases = t.translate_all(&out.requirements);
        assert!(cases.len() >= out.requirements.len(), "{} cases", cases.len());
        assert!(cases.iter().all(TestCase::has_assertions));
    }
}
