//! Grammar coverage over the compiled op arena.
//!
//! A campaign that generates thousands of requests from the adapted
//! RFC 7230–7235 grammar still tells us nothing about *which slice* of
//! that grammar it exercised — a generator stuck sampling the same three
//! `Host` spellings looks exactly like one sweeping the whole production.
//! This module tracks two complementary coverage dimensions over the
//! [`CompiledGrammar`] IR:
//!
//! * **rule coverage** — an interned-rule bitset: which grammar-defined
//!   rules were entered at all, fed by both the generator walk and the
//!   packrat matcher ([`hdiff_abnf::memo::match_rule_traced`]);
//! * **alternation coverage** — a bitset with one slot per arm of every
//!   multi-arm [`Op::Alt`] reachable from a grammar rule's definition:
//!   which grammar *choices* the generator actually took. Rule coverage
//!   saturates quickly (every walk touches `header-field`); arm coverage
//!   is the discriminating progress metric, exactly as grammar-based
//!   protocol fuzzers use it.
//!
//! Both denominators deliberately exclude the implicit core rules
//! (`ALPHA`, `HEXDIG`, …): their alternations are trivially saturated and
//! would only dilute the signal the metric exists to provide.
//!
//! The map is cheap to merge (word-wise OR) and deterministic, so
//! campaign summaries can carry a [`GrammarCoverage`] snapshot without
//! perturbing cross-thread reproducibility. The generator's
//! coverage-guided mode ([`crate::GenOptions::coverage_guided`]) consults
//! [`CoverageMap::alt_covered`] to bias traversal toward cold arms.

use std::fmt;
use std::sync::Arc;

use hdiff_abnf::compile::{CompiledGrammar, Op, RuleOrigin};

/// Sentinel for "this op is not a tracked alternation".
const NO_ALT: u32 = u32::MAX;

/// Mutable coverage state over one compiled grammar.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoverageMap {
    /// One bit per interned rule: tracked (grammar-defined) rules.
    tracked_rules: Vec<u64>,
    /// One bit per interned rule: entered at least once.
    rule_bits: Vec<u64>,
    /// Tracked rules (the denominator of rule coverage).
    rule_total: usize,
    /// Per-op offset into `arm_bits`, [`NO_ALT`] for ops that are not
    /// tracked alternations.
    alt_offsets: Vec<u32>,
    /// One bit per tracked alternation arm.
    arm_bits: Vec<u64>,
    /// Total tracked arms (the denominator of alternation coverage).
    arm_total: usize,
}

#[inline]
fn set_bit(bits: &mut [u64], idx: usize) {
    bits[idx / 64] |= 1u64 << (idx % 64);
}

#[inline]
fn get_bit(bits: &[u64], idx: usize) -> bool {
    bits[idx / 64] & (1u64 << (idx % 64)) != 0
}

fn count_bits(bits: &[u64]) -> usize {
    bits.iter().map(|w| w.count_ones() as usize).sum()
}

fn words(bits: usize) -> usize {
    bits.div_ceil(64)
}

impl CoverageMap {
    /// Builds an all-cold map for `cg`: walks each grammar-defined rule's
    /// op tree once (rule references are boundaries, so core-rule regions
    /// are never entered), assigning a dense arm-bit range to every
    /// multi-arm alternation met along the way.
    pub fn new(cg: &CompiledGrammar) -> CoverageMap {
        let ops = cg.arena().ops.len();
        let mut alt_offsets = vec![NO_ALT; ops];
        let mut arm_total = 0usize;
        let mut tracked_rules = vec![0u64; words(cg.rule_count()).max(1)];
        let mut rule_total = 0usize;
        let mut stack = Vec::new();
        for idx in 0..cg.rule_count() {
            let info = cg.rule(idx as u32);
            if info.origin != RuleOrigin::Grammar {
                continue;
            }
            let Some(root) = info.root else { continue };
            set_bit(&mut tracked_rules, idx);
            rule_total += 1;
            stack.push(root);
            while let Some(op) = stack.pop() {
                match cg.arena().op(op) {
                    Op::Alt(range) => {
                        let kids = cg.arena().kid_slice(range);
                        if kids.len() >= 2 && alt_offsets[op as usize] == NO_ALT {
                            alt_offsets[op as usize] = arm_total as u32;
                            arm_total += kids.len();
                        }
                        stack.extend_from_slice(kids);
                    }
                    Op::Cat(range) => stack.extend_from_slice(cg.arena().kid_slice(range)),
                    Op::Repeat { kid, .. } | Op::Opt { kid } => stack.push(kid),
                    Op::Rule(_) | Op::Lit { .. } | Op::Byte(_) | Op::Range { .. } | Op::Fail => {}
                }
            }
        }
        CoverageMap {
            tracked_rules,
            rule_bits: vec![0; words(cg.rule_count()).max(1)],
            rule_total,
            alt_offsets,
            arm_bits: vec![0; words(arm_total).max(1)],
            arm_total,
        }
    }

    /// Convenience constructor from a shared compiled grammar.
    pub fn for_grammar(cg: &Arc<CompiledGrammar>) -> CoverageMap {
        CoverageMap::new(cg)
    }

    /// Marks rule `idx` as entered. Untracked indices (core rules,
    /// undefined references, detached-program extra names) are ignored,
    /// so callers can record unconditionally.
    pub fn record_rule(&mut self, idx: u32) {
        let idx = idx as usize;
        if idx < self.tracked_rules.len() * 64 && get_bit(&self.tracked_rules, idx) {
            set_bit(&mut self.rule_bits, idx);
        }
    }

    /// Marks arm `arm` of the alternation at op `op` as taken. Ops that
    /// are not tracked alternations are ignored.
    pub fn record_alt(&mut self, op: u32, arm: usize) {
        let Some(&off) = self.alt_offsets.get(op as usize) else { return };
        if off != NO_ALT {
            set_bit(&mut self.arm_bits, off as usize + arm);
        }
    }

    /// Whether arm `arm` of the alternation at op `op` has been taken.
    /// Untracked ops report `true` (nothing cold to chase there).
    pub fn alt_covered(&self, op: u32, arm: usize) -> bool {
        match self.alt_offsets.get(op as usize) {
            Some(&off) if off != NO_ALT => get_bit(&self.arm_bits, off as usize + arm),
            _ => true,
        }
    }

    /// Whether rule `idx` has been entered.
    pub fn rule_covered(&self, idx: u32) -> bool {
        (idx as usize) < self.rule_bits.len() * 64 && get_bit(&self.rule_bits, idx as usize)
    }

    /// Absorbs a matcher trace (the visited-rule list from
    /// [`hdiff_abnf::memo::match_rule_traced`]).
    pub fn absorb_rules(&mut self, rules: &[u32]) {
        for &r in rules {
            self.record_rule(r);
        }
    }

    /// Word-wise OR of another map over the same grammar.
    ///
    /// # Panics
    ///
    /// Panics if the maps were built for different grammars (shape
    /// mismatch) — merging those would silently corrupt both metrics.
    pub fn merge(&mut self, other: &CoverageMap) {
        assert_eq!(self.arm_total, other.arm_total, "coverage maps of different grammars");
        assert_eq!(self.rule_bits.len(), other.rule_bits.len());
        for (a, b) in self.rule_bits.iter_mut().zip(&other.rule_bits) {
            *a |= b;
        }
        for (a, b) in self.arm_bits.iter_mut().zip(&other.arm_bits) {
            *a |= b;
        }
    }

    /// Immutable summary snapshot.
    pub fn summary(&self) -> GrammarCoverage {
        GrammarCoverage {
            rules_covered: count_bits(&self.rule_bits),
            rules_total: self.rule_total,
            alts_covered: count_bits(&self.arm_bits),
            alts_total: self.arm_total,
        }
    }
}

/// A frozen coverage summary, reported per campaign in the diff engine's
/// `RunSummary`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GrammarCoverage {
    /// Grammar-defined rules entered at least once.
    pub rules_covered: usize,
    /// Grammar-defined rules in total.
    pub rules_total: usize,
    /// Alternation arms taken at least once.
    pub alts_covered: usize,
    /// Alternation arms in grammar-defined rules in total.
    pub alts_total: usize,
}

impl GrammarCoverage {
    /// Rule coverage in [0, 1].
    pub fn rule_fraction(&self) -> f64 {
        if self.rules_total == 0 {
            0.0
        } else {
            self.rules_covered as f64 / self.rules_total as f64
        }
    }

    /// Alternation-arm coverage in [0, 1].
    pub fn alt_fraction(&self) -> f64 {
        if self.alts_total == 0 {
            0.0
        } else {
            self.alts_covered as f64 / self.alts_total as f64
        }
    }
}

impl fmt::Display for GrammarCoverage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rules {}/{} ({:.0}%), alternation arms {}/{} ({:.0}%)",
            self.rules_covered,
            self.rules_total,
            self.rule_fraction() * 100.0,
            self.alts_covered,
            self.alts_total,
            self.alt_fraction() * 100.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{AbnfGenerator, GenOptions};
    use crate::predefined::PredefinedRules;
    use hdiff_abnf::{parse_rulelist, Grammar};

    fn grammar(text: &str) -> Grammar {
        Grammar::from_rules("t", parse_rulelist(text).unwrap())
    }

    fn opts() -> GenOptions {
        GenOptions { predefined: PredefinedRules::empty(), ..GenOptions::default() }
    }

    #[test]
    fn fresh_map_is_all_cold() {
        let g = grammar("x = \"aa\" / \"bb\" / \"cc\"");
        let map = CoverageMap::new(&g.compiled());
        let s = map.summary();
        assert_eq!(s.alts_covered, 0);
        assert_eq!(s.alts_total, 3);
        assert_eq!(s.rules_covered, 0);
        assert_eq!(s.rules_total, 1);
    }

    #[test]
    fn core_rule_alternations_are_not_tracked() {
        // ALPHA is itself an alternation, but core rules must not dilute
        // the denominator.
        let g = grammar("x = 1*ALPHA");
        let s = CoverageMap::new(&g.compiled()).summary();
        assert_eq!(s.alts_total, 0);
        assert_eq!(s.rules_total, 1);
    }

    #[test]
    fn full_enumeration_reaches_full_alternation_coverage() {
        // Depth-first traversal of the whole derivation tree must light
        // every arm of every alternation — 100% by construction.
        let g = grammar("x = y \"!\" / z\ny = \"aa\" / \"bb\"\nz = \"cc\" / \"dd\" / \"ee\"");
        let mut generator = AbnfGenerator::new(g, opts());
        generator.enable_coverage();
        let all = generator.enumerate("x", 1000);
        assert!(all.len() >= 5);
        let s = generator.coverage().unwrap().summary();
        assert_eq!(s.alts_covered, s.alts_total, "{s}");
        assert_eq!(s.alts_total, 7, "{s}");
        assert_eq!(s.rules_covered, 3, "{s}");
        assert_eq!(s.rules_total, 3, "{s}");
    }

    #[test]
    fn cold_biased_mode_strictly_beats_uniform_on_a_fixed_seed() {
        // Twelve arms, twelve draws. The cold-biased walk covers a fresh
        // arm per draw; uniform sampling repeats itself (birthday bound).
        let text = "x = \"a1\" / \"b1\" / \"c1\" / \"d1\" / \"e1\" / \"f1\" / \"g1\" / \"h1\" / \"i1\" / \"j1\" / \"k1\" / \"l1\"";
        let run = |guided: bool| {
            let mut generator = AbnfGenerator::new(
                grammar(text),
                GenOptions { coverage_guided: guided, seed: 7, ..opts() },
            );
            generator.enable_coverage();
            for _ in 0..12 {
                generator.generate("x").unwrap();
            }
            generator.coverage().unwrap().summary()
        };
        let uniform = run(false);
        let guided = run(true);
        assert_eq!(guided.alts_covered, guided.alts_total, "guided covers all: {guided}");
        assert!(
            guided.alts_covered > uniform.alts_covered,
            "guided {guided} must strictly beat uniform {uniform}"
        );
    }

    #[test]
    fn guided_mode_stays_deterministic_per_seed() {
        let text = "x = 1*3( \"aa\" / \"bb\" / \"cc\" / \"dd\" )";
        let run = || {
            let mut generator = AbnfGenerator::new(
                grammar(text),
                GenOptions { coverage_guided: true, seed: 11, ..opts() },
            );
            (0..20).filter_map(|_| generator.generate("x")).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn matcher_traces_feed_rule_coverage() {
        let g = grammar("t = a \"!\"\na = 1*ALPHA");
        let cg = g.compiled();
        let mut map = CoverageMap::new(&cg);
        let (outcome, visited) = hdiff_abnf::memo::match_rule_traced(&cg, "t", b"abc!", 10_000);
        assert_eq!(outcome, hdiff_abnf::matcher::MatchOutcome::Match);
        assert!(!visited.is_empty());
        map.absorb_rules(&visited);
        assert!(map.rule_covered(cg.rule_index("t").unwrap()));
        assert!(map.rule_covered(cg.rule_index("a").unwrap()));
        assert_eq!(map.summary().rules_covered, 2);
    }

    #[test]
    fn merge_is_a_union() {
        let g = grammar("x = \"aa\" / \"bb\"");
        let cg = g.compiled();
        let mut a = CoverageMap::new(&cg);
        let mut b = CoverageMap::new(&cg);
        a.record_rule(cg.rule_index("x").unwrap());
        let alt_op = (0..cg.arena().ops.len() as u32)
            .find(|&i| a.alt_offsets[i as usize] != NO_ALT)
            .unwrap();
        b.record_alt(alt_op, 1);
        a.merge(&b);
        let merged = a.summary();
        assert_eq!(merged.rules_covered, 1);
        assert_eq!(merged.alts_covered, 1);
        assert!(a.alt_covered(alt_op, 1));
        assert!(!a.alt_covered(alt_op, 0));
    }
}
