//! Test-case generation for HDiff: ABNF generator, mutation engine, SR
//! translator, and the attack-vector catalog.
//!
//! * [`predefined`] — the fourth manual input of Fig. 3: representative
//!   values for leaf rules so generated messages are accepted by servers
//!   (e.g. `IPv4address` ∈ {127.0.0.1, 8.8.8.8}).
//! * [`generator`] — depth-bounded traversal of the adapted ABNF tree
//!   (recursion cap, the paper uses 7) producing grammar-valid byte
//!   strings, plus whole-request seed generation.
//! * [`mutate`] — the mutation engine: special-character insertion, header
//!   repetition, case variation, obs-fold, encoding tricks — "several
//!   rounds … so that the changes make a small impact on the format".
//! * [`sr_translator`] — turns formal SRs into [`TestCase`]s with
//!   assertions, via the SR semantic definitions.
//! * [`catalog`] — the named attack-vector inventory of Table II, used by
//!   the differential engine and the `table2` harness.
//! * [`coverage`] — rule- and alternation-level grammar coverage over the
//!   compiled op arena, fed by the generator and matcher, and consumed by
//!   the coverage-guided generation mode.

pub mod catalog;
pub mod coverage;
pub mod generator;
pub mod mutate;
pub mod predefined;
pub mod sr_translator;
pub mod testcase;
pub mod tree_mutate;

pub use catalog::{AttackClass, CatalogEntry};
pub use coverage::{CoverageMap, GrammarCoverage};
pub use generator::{AbnfGenerator, GenOptions};
pub use mutate::{MutationEngine, MutationKind};
pub use predefined::PredefinedRules;
pub use sr_translator::SrTranslator;
pub use testcase::{Assertion, Origin, TestCase};
pub use tree_mutate::{TreeMutation, TreeMutator};
